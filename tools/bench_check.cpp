// bench_check — diffs a bench run against a committed baseline.
//
//   bench_check --baseline=bench/baselines/BENCH_fig4.json \
//               --current=BENCH_fig4.json \
//               [--tolerance=1e-9] [--tol=ls_p99_ms=0.05 --tol=p99=0.05]
//
// Exit codes: 0 = within tolerance, 1 = regression/mismatch, 2 = usage or
// I/O error. Rules are in stats/bench_report.h: every baseline point and
// metric must exist in the current run and match within the (relative)
// tolerance; host wall-clock and thread counts are never compared; metrics
// added since the baseline was captured are ignored. When the baseline
// carries a top-level "metrics" block (the unified meshnet-metrics-v1
// snapshot), its series gate too — counter values exactly at the default
// tolerance, histogram summaries per-leaf (override with --tol=p99=...);
// "wall_*"-named leaves are skipped like everywhere else.
//
// Refreshing a baseline is deliberate: re-run the bench with --json-out
// pointed at the baseline path and commit the diff (see EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "stats/bench_report.h"
#include "util/flags.h"
#include "util/strings.h"

using namespace meshnet;

namespace {

// --tol can repeat, but util::Flags keeps one value per name (recording
// the duplicate as an error), so multiple overrides use a comma list:
//   --tol=ls_p99_ms=0.05,p99=0.02
bool parse_tolerances(const std::string& spec,
                      std::map<std::string, double>& out) {
  for (const std::string_view item : util::split(spec, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string name(util::trim(item.substr(0, eq)));
    char* end = nullptr;
    const std::string value_text(item.substr(eq + 1));
    const double value = std::strtod(value_text.c_str(), &end);
    if (name.empty() || end == value_text.c_str() || *end != '\0') {
      return false;
    }
    out[name] = value;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse_or_die(
      argc, argv, {"baseline", "current", "tolerance", "tol"});

  const std::string baseline_path = flags.get_or("baseline", "");
  const std::string current_path = flags.get_or("current", "");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_check --baseline=FILE --current=FILE "
                 "[--tolerance=REL] [--tol=metric=REL,...]\n");
    return 2;
  }

  stats::CompareOptions options;
  options.default_tolerance =
      flags.get_double_or("tolerance", options.default_tolerance);
  if (flags.has("tol") &&
      !parse_tolerances(flags.get_or("tol", ""), options.metric_tolerance)) {
    std::fprintf(stderr, "bench_check: malformed --tol (want metric=REL[,"
                         "metric=REL...])\n");
    return 2;
  }

  std::string error;
  const auto baseline = stats::load_report(baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr, "bench_check: %s\n", error.c_str());
    return 2;
  }
  const auto current = stats::load_report(current_path, &error);
  if (!current) {
    std::fprintf(stderr, "bench_check: %s\n", error.c_str());
    return 2;
  }

  const stats::CompareOutcome outcome =
      stats::compare_reports(*baseline, *current, options);
  for (const std::string& failure : outcome.failures) {
    std::fprintf(stderr, "FAIL %s\n", failure.c_str());
  }
  std::printf("bench_check: %zu comparisons, %zu failures — %s\n",
              outcome.compared, outcome.failures.size(),
              outcome.ok ? "OK" : "REGRESSION");
  return outcome.ok ? 0 : 1;
}
