// MESHSCALE — control-plane scaling on the declarative mesh (DESIGN.md
// §13).
//
// Each arm builds `--cells` independent N-service meshes from one
// generated MeshSpec (cluster::MeshBuilder) on the sharded parallel
// engine and drives them end to end through the ingress gateway while
// one leaf endpoint is crashed, deregistered and restored mid-run. The
// sweep scales N (--services, default 10,50,100; the paper's "thousands
// of services" pressure test) and contrasts three control-plane
// transports at the largest N:
//
//   push=delta   incremental (xDS delta-style) config pushes
//   push=full    full-snapshot pushes, same channel otherwise
//   scope=on     delta + cluster scoping + endpoint subsetting
//                (bounded per-sidecar endpoint tables)
//
// The binary enforces the MESHSCALE acceptance criteria itself:
//   * at the largest N, the delta arm's churn-window bytes must be
//     < 25% of the full-snapshot arm's (single-endpoint churn);
//   * the delta arm's post-churn reconvergence must not regress vs the
//     full arm (both must reconverge at all);
//   * the smallest arm re-runs at 1 and 2 engine threads and the whole
//     metrics block must be bit-identical.
//
//   --services=CSV      sweep sizes (default 10,50,100; try 250)
//   --cells=N           independent mesh replicas = engine shards
//   --engine-threads=N  worker threads for the sweep arms (default 1)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "stats/table.h"
#include "workload/bench_harness.h"

using namespace meshnet;

namespace {

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) values.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

bool same_metrics(const workload::PointMetrics& a,
                  const workload::PointMetrics& b) {
  return a.scalars == b.scalars && a.counters == b.counters &&
         a.histograms == b.histograms && a.snapshot == b.snapshot;
}

struct Arm {
  int services = 0;
  bool delta = true;
  bool scoped = false;  ///< cluster scopes + subset_size=1
};

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "meshscale", /*default_duration_s=*/3, /*default_seed=*/42,
      {"services", "cells", "engine-threads"});

  const std::vector<int> sizes =
      parse_int_list(options.flags.get_or("services", "10,50,100"));
  const int cells = static_cast<int>(options.flags.get_int_or("cells", 2));
  const int engine_threads =
      static_cast<int>(options.flags.get_int_or("engine-threads", 1));
  if (sizes.empty()) {
    std::fprintf(stderr, "--services: no arms\n");
    return 2;
  }
  const int largest = *std::max_element(sizes.begin(), sizes.end());

  std::vector<Arm> arms;
  for (const int n : sizes) arms.push_back({n, /*delta=*/true, false});
  arms.push_back({largest, /*delta=*/false, false});  // byte comparator
  arms.push_back({largest, /*delta=*/true, true});    // bounded-state arm

  std::printf(
      "MESHSCALE: %d-cell declarative meshes under single-endpoint churn\n"
      "(delta config push vs full snapshots; scoped arm adds cluster "
      "scoping + endpoint subsetting).\n\n",
      cells);

  const auto make_config = [&](const Arm& arm) {
    workload::MeshscaleConfig config;
    config.services = arm.services;
    config.cells = cells;
    config.threads = engine_threads;
    config.seed = options.seed;
    config.duration = sim::seconds(options.duration_s);
    config.churn_at = config.duration * 2 / 5;
    config.restore_at = config.duration * 3 / 5;
    config.delta_push = arm.delta;
    config.derive_scopes = arm.scoped;
    config.subset_size = arm.scoped ? 1 : 0;
    return config;
  };
  const auto arm_params = [](const Arm& arm) {
    return std::vector<std::pair<std::string, std::string>>{
        {"services", std::to_string(arm.services)},
        {"push", arm.delta ? "delta" : "full"},
        {"scope", arm.scoped ? "on" : "off"}};
  };

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::MeshscaleExperimentResult> outcomes(arms.size());
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    const Arm arm = arms[slot];
    runner.add(arm_params(arm), [arm, slot, &outcomes, &make_config] {
      outcomes[slot] = workload::run_meshscale_experiment(make_config(arm));
      return workload::meshscale_point_metrics(outcomes[slot]);
    });
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"services", "push", "scope", "pushes", "full KB",
                      "delta KB", "churn KB", "reconv (ms)", "eps/sidecar",
                      "max eps", "p50 (ms)", "p99 (ms)", "ok%"});
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    const workload::MeshscaleExperimentResult& r = outcomes[slot];
    const workload::PointMetrics& m = sweep.points[slot].metrics;
    table.add_row(
        {std::to_string(r.services), arms[slot].delta ? "delta" : "full",
         arms[slot].scoped ? "on" : "off", std::to_string(r.cp_pushes),
         stats::Table::num(static_cast<double>(r.bytes.full_bytes) / 1024.0,
                           1),
         stats::Table::num(static_cast<double>(r.bytes.delta_bytes) / 1024.0,
                           1),
         stats::Table::num(
             static_cast<double>(r.churn_bytes.full_bytes +
                                 r.churn_bytes.delta_bytes) /
                 1024.0,
             1),
         stats::Table::num(sim::to_milliseconds(r.churn_convergence), 1),
         stats::Table::num(m.scalars.at("mean_endpoints_per_sidecar"), 1),
         std::to_string(r.max_endpoints_per_sidecar),
         stats::Table::num(m.scalars.at("e2e_p50_ms"), 2),
         stats::Table::num(m.scalars.at("e2e_p99_ms"), 2),
         stats::Table::num(m.scalars.at("success_rate") * 100.0, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // --- acceptance: delta churn bytes < 25% of full, at the largest N ----
  const workload::MeshscaleExperimentResult* delta_arm = nullptr;
  const workload::MeshscaleExperimentResult* full_arm = nullptr;
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    if (arms[slot].services != largest || arms[slot].scoped) continue;
    (arms[slot].delta ? delta_arm : full_arm) = &outcomes[slot];
  }
  if (delta_arm != nullptr && full_arm != nullptr) {
    const auto wire = [](const workload::MeshscaleExperimentResult& r) {
      return r.churn_bytes.full_bytes + r.churn_bytes.delta_bytes;
    };
    const double ratio =
        wire(*full_arm) > 0 ? static_cast<double>(wire(*delta_arm)) /
                                  static_cast<double>(wire(*full_arm))
                            : 1.0;
    std::printf(
        "churn window at %d services: delta %llu B vs full %llu B "
        "(%.1f%% of full)\n",
        largest, static_cast<unsigned long long>(wire(*delta_arm)),
        static_cast<unsigned long long>(wire(*full_arm)), ratio * 100.0);
    if (ratio >= 0.25) {
      std::fprintf(stderr,
                   "DELTA FAILURE: churn-window delta bytes are %.1f%% of "
                   "full-snapshot bytes (need < 25%%)\n",
                   ratio * 100.0);
      return 1;
    }
    if (!delta_arm->converged || !full_arm->converged) {
      std::fprintf(stderr, "CONVERGENCE FAILURE: an arm never reconverged "
                           "after the churn restore\n");
      return 1;
    }
    if (sim::to_milliseconds(delta_arm->churn_convergence) >
        sim::to_milliseconds(full_arm->churn_convergence) * 1.05) {
      std::fprintf(
          stderr,
          "CONVERGENCE FAILURE: delta reconvergence %.1f ms regressed vs "
          "full %.1f ms\n",
          sim::to_milliseconds(delta_arm->churn_convergence),
          sim::to_milliseconds(full_arm->churn_convergence));
      return 1;
    }
  }

  // --- acceptance: engine-thread bit-identity on the smallest arm -------
  {
    const Arm smallest{*std::min_element(sizes.begin(), sizes.end()), true,
                       false};
    workload::PointMetrics per_threads[2];
    for (int t = 1; t <= 2; ++t) {
      workload::MeshscaleConfig config = make_config(smallest);
      config.threads = t;
      config.respect_worker_budget = false;
      per_threads[t - 1] = workload::meshscale_point_metrics(
          workload::run_meshscale_experiment(config));
    }
    if (!same_metrics(per_threads[0], per_threads[1])) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: metrics differ between 1 and 2 "
                   "engine threads\n");
      return 1;
    }
    std::printf("determinism: %d-service arm bit-identical at 1 and 2 "
                "engine threads\n",
                smallest.services);
  }

  stats::BenchReport report = workload::make_bench_report(
      "meshscale",
      {{"seed", std::to_string(options.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"services", options.flags.get_or("services", "10,50,100")},
       {"cells", std::to_string(cells)}},
      sweep);
  return workload::finish_harness(report, options);
}
