// PARSIM — the parallel-engine speedup case (DESIGN.md §12).
//
// One generated 64-service layered fan-out mesh, partitioned into
// --shards shards, is simulated once per arm with a different engine
// worker-thread count (--engine-threads, default 1,2,4,8). For a fixed
// shard count every arm must produce a bit-identical metrics block —
// the binary enforces that itself and exits 1 on any divergence — while
// wall-clock drops with threads. Speedup is a wall_* figure: reported,
// never baseline-compared, and only meaningful when the host actually
// has the cores (see --require-speedup).
//
// Arms always run sequentially (each arm is measuring whole-machine
// wall-clock); the standard --threads flag is accepted but does not fan
// arms out. The engine opts out of the shared worker budget for the same
// reason: this binary IS the top-level thread consumer.
//
//   --shards=N            partition size (default 8)
//   --engine-threads=CSV  worker-thread arms (default 1,2,4,8)
//   --require-speedup=X   exit 1 unless wall(t=1)/wall(best) >= X.
//                         Off by default: CI containers are often
//                         single-core, where the honest speedup is ~1.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "stats/table.h"
#include "workload/bench_harness.h"

using namespace meshnet;

namespace {

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) values.push_back(std::stoi(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

bool same_metrics(const workload::PointMetrics& a,
                  const workload::PointMetrics& b) {
  return a.scalars == b.scalars && a.counters == b.counters &&
         a.histograms == b.histograms && a.snapshot == b.snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "parsim", /*default_duration_s=*/5, /*default_seed=*/42,
      {"shards", "engine-threads", "require-speedup"});

  const int shards =
      static_cast<int>(options.flags.get_int_or("shards", 8));
  const std::vector<int> arms = parse_int_list(
      options.flags.get_or("engine-threads", "1,2,4,8"));
  const double require_speedup =
      options.flags.get_double_or("require-speedup", 0.0);
  if (arms.empty()) {
    std::fprintf(stderr, "--engine-threads: no arms\n");
    return 2;
  }
  if (options.threads != 1) {
    std::fprintf(stderr,
                 "note: PARSIM arms measure whole-machine wall clock and "
                 "always run sequentially; --threads does not fan them.\n");
  }

  std::printf(
      "PARSIM: sharded parallel engine on a generated 64-service mesh\n"
      "(identical metrics at every thread count; wall-clock is the only "
      "thing allowed to change).\n\n");

  workload::SweepOptions sweep_opts;
  sweep_opts.threads = 1;  // arms own the machine, one at a time
  sweep_opts.progress = true;
  workload::SweepRunner runner(sweep_opts);

  std::vector<workload::ParsimExperimentResult> outcomes(arms.size());
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    const int threads = arms[slot];
    runner.add({{"threads", std::to_string(threads)}},
               [threads, shards, slot, &outcomes, &options] {
                 workload::ParsimConfig config;
                 config.shards = shards;
                 config.threads = threads;
                 config.respect_worker_budget = false;
                 config.seed = options.seed;
                 config.duration = sim::seconds(options.duration_s);
                 outcomes[slot] = workload::run_parsim_experiment(config);
                 return workload::parsim_point_metrics(outcomes[slot]);
               });
  }
  const workload::SweepResult sweep = runner.run();

  const double base_wall = sweep.points.front().wall_ms;
  double best_wall = base_wall;
  stats::Table table({"threads", "executors", "events", "epochs",
                      "cross-shard msgs", "wall (ms)", "Mev/s", "speedup"});
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    const workload::ParsimExperimentResult& r = outcomes[slot];
    const double wall = sweep.points[slot].wall_ms;
    best_wall = std::min(best_wall, wall);
    table.add_row(
        {std::to_string(arms[slot]), std::to_string(r.executors),
         std::to_string(r.events_executed), std::to_string(r.engine.epochs),
         std::to_string(r.engine.messages), stats::Table::num(wall, 1),
         stats::Table::num(static_cast<double>(r.events_executed) /
                               (wall * 1000.0),
                           2),
         stats::Table::num(wall > 0 ? base_wall / wall : 0.0, 2) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  const workload::ParsimExperimentResult& shape = outcomes.front();
  std::printf(
      "topology: %d services, %d edges; partition: %d shards, %d cut "
      "edges, lookahead %.3f ms\n",
      shape.services, shape.edges, shape.shards, shape.cut_edges,
      sim::to_milliseconds(shape.lookahead));

  // The engine's core claim, enforced on every run: thread count changes
  // wall-clock only. Any metric divergence between arms is a bug.
  for (std::size_t slot = 1; slot < arms.size(); ++slot) {
    if (!same_metrics(sweep.points.front().metrics,
                      sweep.points[slot].metrics)) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: metrics at --engine-threads=%d "
                   "differ from the %d-thread arm\n",
                   arms[slot], arms.front());
      return 1;
    }
  }
  std::printf("determinism: %zu arms bit-identical\n", arms.size());

  const double speedup = best_wall > 0 ? base_wall / best_wall : 0.0;
  if (require_speedup > 0.0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "SPEEDUP FAILURE: best wall-clock speedup %.2fx < required "
                 "%.2fx\n",
                 speedup, require_speedup);
    return 1;
  }

  stats::BenchReport report = workload::make_bench_report(
      "parsim",
      {{"seed", std::to_string(options.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"shards", std::to_string(shards)},
       {"engine_threads", options.flags.get_or("engine-threads", "1,2,4,8")},
       {"topology", "4x8x16x36"}},
      sweep);
  for (std::size_t slot = 0; slot < arms.size(); ++slot) {
    const double wall = sweep.points[slot].wall_ms;
    report.engine.emplace_back(
        "wall_speedup_t" + std::to_string(arms[slot]),
        wall > 0 ? base_wall / wall : 0.0);
  }
  return workload::finish_harness(report, options);
}
