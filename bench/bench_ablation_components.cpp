// ABL-COMP — ablation of the cross-layer design components (paper §4.2
// lists them; §5 "Maturing cross-layer prioritization" calls for exactly
// this kind of decomposition).
//
// At a fixed load (default 40 RPS per workload), runs the e-library mix
// under different subsets of the machinery:
//   none            baseline (no cross-layer)
//   route-only      (a) priority replica routing, no qdisc, no marks
//   tc-only         (c) 95/5 TC qdiscs matching pod IPs, no routing*
//   route+tc        the paper's prototype configuration
//   route+tc+scav   + (b) scavenger transport for low priority
//   route+strict    strict-priority qdisc instead of 95/5
//   dscp+tc         (d-in-band) qdiscs classify on DSCP marks instead of
//                   pod IPs (works without dedicated replicas)
//
// *tc-only with dst-IP matching needs priority-routed replicas to be able
//  to tell classes apart — which is why the paper combines them; with
//  routing off we match on DSCP instead, isolating the queueing effect.
//
// Each variant is an independent sweep point (--threads fans them out).

#include <cstdio>
#include <string>
#include <vector>

#include "stats/table.h"
#include "workload/bench_harness.h"

using namespace meshnet;

namespace {

struct Variant {
  std::string name;
  std::string id;  ///< stable short id for the JSON report
  bool enabled = true;  ///< false = plain baseline
  bool routing = false;
  bool tc = false;
  core::TcMatch match = core::TcMatch::kDstIp;
  bool strict = false;
  bool scavenger = false;
  bool dscp = true;
  bool sdn = false;  ///< out-of-band coordination (optimization d)
};

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "ablation_components", /*default_duration_s=*/15,
      /*default_seed=*/42, {"rps"});
  const double rps = options.flags.get_double_or("rps", 40.0);
  const auto duration = sim::seconds(options.duration_s);
  const auto seed = options.seed;

  std::printf(
      "ABL-COMP: contribution of each cross-layer component at %.0f RPS "
      "per workload.\n\n", rps);

  const std::vector<Variant> variants = {
      {"none (baseline)", "none", false},
      {"route-only", "route_only", true, true, false},
      {"tc-only (dscp match)", "tc_only", true, false, true,
       core::TcMatch::kDscp},
      {"route+tc (paper proto)", "route_tc", true, true, true,
       core::TcMatch::kDstIp},
      {"route+tc+scavenger", "route_tc_scav", true, true, true,
       core::TcMatch::kDstIp, false, true},
      {"route+strict-tc", "route_strict_tc", true, true, true,
       core::TcMatch::kDstIp, true},
      {"dscp+tc (no subsets)", "dscp_tc", true, false, true,
       core::TcMatch::kDscp},
      {"sdn out-of-band", "sdn", true, true, false, core::TcMatch::kDstIp,
       false, false, false, true},
      // DSCP marking stays on: the mark is how the accepting transport
      // knows to answer with the scavenger controller (responses carry
      // the bytes); with tc off, the marks are inert at every queue.
      {"scavenger-only", "scavenger_only", true, false, false,
       core::TcMatch::kDstIp, false, true, true, false},
  };

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::ElibraryExperimentResult> outcomes(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    runner.add({{"variant", v.id}},
               [&v, rps, duration, seed, i, &outcomes] {
                 workload::ElibraryExperimentConfig config;
                 config.ls_rps = rps;
                 config.li_rps = rps;
                 config.duration = duration;
                 config.seed = seed;
                 config.cross_layer = v.enabled;
                 if (v.enabled) {
                   auto& cc = config.cross_layer_config;
                   cc.priority_routing = v.routing;
                   cc.tc_priority = v.tc;
                   cc.tc_match = v.match;
                   cc.strict_tc = v.strict;
                   cc.scavenger_transport = v.scavenger;
                   cc.dscp_tagging = v.dscp;
                   config.sdn_out_of_band = v.sdn;
                 }
                 outcomes[i] = workload::run_elibrary_experiment(config);
                 return workload::elibrary_point_metrics(outcomes[i]);
               });
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"variant", "LS p50 (ms)", "LS p99 (ms)",
                      "LI p50 (ms)", "LI p99 (ms)", "LS errs", "util"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = outcomes[i];
    table.add_row({variants[i].name, stats::Table::num(r.ls.p50_ms, 1),
                   stats::Table::num(r.ls.p99_ms, 1),
                   stats::Table::num(r.li.p50_ms, 1),
                   stats::Table::num(r.li.p99_ms, 1),
                   std::to_string(r.ls.errors),
                   stats::Table::num(r.bottleneck_utilization, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());

  const stats::BenchReport report = workload::make_bench_report(
      "ablation_components",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"rps", stats::Table::num(rps, 0)}},
      sweep);
  return workload::finish_harness(report, options);
}
