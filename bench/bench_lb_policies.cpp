// ABL-LB — load-balancing policy ablation (paper §2 lists LB among core
// sidecar functions; §3.6 notes "the right algorithms for these modules
// may be non-obvious").
//
// A three-replica service where one replica is 10x slower serves an open-
// loop stream under each LB policy. Expected shape: least-request routes
// around the slow replica and wins the tail; round-robin and random keep
// feeding it and pay at p99; weighted-round-robin wins only if the
// operator already knew the weights. One sweep point per policy.

#include <cstdio>
#include <map>
#include <vector>

#include "app/microservice.h"
#include "mesh/control_plane.h"
#include "stats/table.h"
#include "workload/bench_harness.h"
#include "workload/generator.h"

using namespace meshnet;

namespace {

struct RunResult {
  double p50_ms, p99_ms, mean_ms;
  std::uint64_t completed, errors;
  std::map<std::string, std::uint64_t> per_replica;
  stats::LogHistogram latency;
};

RunResult run_once(mesh::LbPolicy policy, double rps, sim::Duration duration,
                   std::uint64_t seed) {
  http::reset_request_id_counter();
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& client_pod = cluster.add_pod("node-a", "client", "client", 0);

  std::vector<cluster::Pod*> replicas;
  for (int i = 1; i <= 3; ++i) {
    cluster::PodOptions options;
    options.labels = {{"weight", i == 3 ? "1" : "10"}};  // for WRR
    replicas.push_back(&cluster.add_pod(
        "node-a", "server-v" + std::to_string(i), "server", 8080, options));
  }

  mesh::MeshPolicies policies;
  policies.default_lb = policy;
  mesh::ControlPlane control_plane(sim, cluster, policies);
  control_plane.tracer().set_retention(0);
  control_plane.inject_sidecar(client_pod, {});
  for (cluster::Pod* pod : replicas) control_plane.inject_sidecar(*pod, {});
  control_plane.start();

  std::vector<std::unique_ptr<app::Microservice>> apps;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const bool slow = i == 2;  // server-v3 is the straggler
    apps.push_back(std::make_unique<app::Microservice>(
        sim, *replicas[i], [slow](const http::HttpRequest&) {
          app::HandlerResult plan;
          plan.processing_delay =
              slow ? sim::milliseconds(20) : sim::milliseconds(2);
          plan.response_bytes = 2048;
          return plan;
        }));
  }

  mesh::HttpClientPool::Options options;
  options.max_connections = 512;
  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{client_pod.ip(), 15001},
                              options);

  workload::WorkloadSpec spec;
  spec.name = "lb";
  spec.rps = rps;
  spec.arrival = workload::ArrivalProcess::kPoisson;
  spec.make_request = workload::simple_get_factory("server", "/item");
  spec.start = 0;
  spec.end = sim::seconds(1) + duration;
  spec.measure_start = sim::seconds(1);
  spec.measure_end = spec.end;

  workload::OpenLoopGenerator gen(sim, client, spec, seed);
  gen.start();
  sim.run_until(spec.end + sim::seconds(10));

  RunResult result{gen.recorder().p50_ms(), gen.recorder().p99_ms(),
                   gen.recorder().mean_ms(), gen.recorder().count(),
                   gen.recorder().errors(), {},
                   gen.recorder().histogram()};
  for (cluster::Pod* pod : replicas) {
    // The app's own served-request counter is the ground truth.
    result.per_replica[pod->name()] = 0;
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    result.per_replica[replicas[i]->name()] = apps[i]->requests_served();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "lb_policies", /*default_duration_s=*/20,
      /*default_seed=*/7, {"rps"});
  const double rps = options.flags.get_double_or("rps", 300.0);
  const auto duration = sim::seconds(options.duration_s);
  const auto seed = options.seed;

  std::printf(
      "ABL-LB: sidecar load-balancing policies, 3 replicas, one 10x "
      "slower, %.0f RPS.\n\n", rps);

  const std::vector<mesh::LbPolicy> lb_policies = {
      mesh::LbPolicy::kRoundRobin, mesh::LbPolicy::kRandom,
      mesh::LbPolicy::kLeastRequest, mesh::LbPolicy::kWeightedRoundRobin};

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<RunResult> outcomes(lb_policies.size());
  for (std::size_t i = 0; i < lb_policies.size(); ++i) {
    const mesh::LbPolicy policy = lb_policies[i];
    runner.add({{"policy", std::string(mesh::lb_policy_name(policy))}},
               [policy, rps, duration, seed, i, &outcomes] {
                 outcomes[i] = run_once(policy, rps, duration, seed);
                 const RunResult& r = outcomes[i];
                 workload::PointMetrics metrics;
                 metrics.scalars["p50_ms"] = r.p50_ms;
                 metrics.scalars["p99_ms"] = r.p99_ms;
                 metrics.scalars["mean_ms"] = r.mean_ms;
                 metrics.counters["completed"] = r.completed;
                 metrics.counters["errors"] = r.errors;
                 for (const auto& [replica, served] : r.per_replica) {
                   metrics.counters["served_" + replica] = served;
                 }
                 metrics.histograms["latency_ns"] = r.latency;
                 return metrics;
               });
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"policy", "mean (ms)", "p50 (ms)", "p99 (ms)",
                      "v1", "v2", "v3(slow)", "errors"});
  for (std::size_t i = 0; i < lb_policies.size(); ++i) {
    const RunResult& r = outcomes[i];
    table.add_row({std::string(mesh::lb_policy_name(lb_policies[i])),
                   stats::Table::num(r.mean_ms, 2),
                   stats::Table::num(r.p50_ms, 2),
                   stats::Table::num(r.p99_ms, 2),
                   std::to_string(r.per_replica.at("server-v1")),
                   std::to_string(r.per_replica.at("server-v2")),
                   std::to_string(r.per_replica.at("server-v3")),
                   std::to_string(r.errors)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const stats::BenchReport report = workload::make_bench_report(
      "lb_policies",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"rps", stats::Table::num(rps, 0)}},
      sweep);
  return workload::finish_harness(report, options);
}
