// ABL-CPU — extending prioritization beyond the network (paper §5:
// "coordinating management of other resources beyond the network (i.e.,
// compute and storage) ... prioritized request queuing").
//
// A single CPU-bound service (fixed worker pool) serves short latency-
// sensitive requests and long batch requests. With FIFO admission, LS
// requests wait behind whole batch jobs; with priority-aware admission
// queuing, they jump the queue. The network is uncontended throughout,
// isolating the compute effect. Two sweep points: fifo, priority.

#include <cstdio>
#include <memory>
#include <vector>

#include "app/microservice.h"
#include "core/priority.h"
#include "mesh/control_plane.h"
#include "stats/table.h"
#include "workload/bench_harness.h"
#include "workload/generator.h"

using namespace meshnet;

namespace {

struct RunResult {
  double ls_p50, ls_p99, li_p50, li_p99;
  std::uint64_t ls_done, li_done, max_queue;
  stats::LogHistogram ls_latency;
};

RunResult run_once(bool priority_scheduling, double ls_rps, double li_rps,
                   sim::Duration duration, std::uint64_t seed) {
  http::reset_request_id_counter();
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& client_pod = cluster.add_pod("node-a", "client", "client", 0);
  cluster::Pod& server_pod =
      cluster.add_pod("node-a", "server-v1", "server", 8080);

  mesh::ControlPlane control_plane(sim, cluster);
  control_plane.tracer().set_retention(0);
  control_plane.inject_sidecar(client_pod, {});
  control_plane.inject_sidecar(server_pod, {});
  control_plane.start();

  app::MicroserviceOptions options;
  options.max_concurrency = 4;
  options.priority_scheduling = priority_scheduling;
  app::Microservice server(
      sim, server_pod,
      [](const http::HttpRequest& request) {
        app::HandlerResult plan;
        const bool batch =
            request.headers.get_or(http::headers::kMeshPriority, "") == "low";
        plan.processing_delay =
            batch ? sim::milliseconds(40) : sim::milliseconds(2);
        plan.response_bytes = batch ? 16 * 1024 : 1024;
        return plan;
      },
      options);

  mesh::HttpClientPool::Options pool_options;
  pool_options.max_connections = 1024;
  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{client_pod.ip(), 15001},
                              pool_options);

  auto make_factory = [](const char* priority) {
    return [priority](std::uint64_t i) {
      http::HttpRequest request;
      request.path = "/job/" + std::to_string(i);
      request.headers.set(http::headers::kHost, "server");
      request.headers.set(http::headers::kMeshPriority, priority);
      return request;
    };
  };

  const sim::Time end = sim::seconds(1) + duration;
  workload::WorkloadSpec ls{"ls", ls_rps,
                            workload::ArrivalProcess::kUniformRandom,
                            make_factory("high"), 0, end, sim::seconds(1),
                            end};
  workload::WorkloadSpec li{"li", li_rps,
                            workload::ArrivalProcess::kUniformRandom,
                            make_factory("low"), 0, end, sim::seconds(1),
                            end};
  workload::OpenLoopGenerator ls_gen(sim, client, ls, seed);
  workload::OpenLoopGenerator li_gen(sim, client, li, seed + 1);
  ls_gen.start();
  li_gen.start();
  sim.run_until(end + sim::seconds(30));

  return RunResult{ls_gen.recorder().p50_ms(), ls_gen.recorder().p99_ms(),
                   li_gen.recorder().p50_ms(), li_gen.recorder().p99_ms(),
                   ls_gen.recorder().count(), li_gen.recorder().count(),
                   server.max_admission_queue_seen(),
                   ls_gen.recorder().histogram()};
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "compute_priority", /*default_duration_s=*/20,
      /*default_seed=*/7, {"ls-rps", "li-rps"});
  const double ls_rps = options.flags.get_double_or("ls-rps", 100.0);
  const double li_rps = options.flags.get_double_or("li-rps", 85.0);
  const auto duration = sim::seconds(options.duration_s);
  const auto seed = options.seed;

  std::printf(
      "ABL-CPU: prioritized request queuing at a CPU-bound service "
      "(4 workers,\nLS jobs 2 ms, batch jobs 40 ms; %.0f/%.0f RPS).\n\n",
      ls_rps, li_rps);

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<RunResult> outcomes(2);
  for (const bool priority : {false, true}) {
    const std::size_t slot = priority ? 1 : 0;
    runner.add({{"admission", priority ? "priority" : "fifo"}},
               [priority, ls_rps, li_rps, duration, seed, slot, &outcomes] {
                 outcomes[slot] =
                     run_once(priority, ls_rps, li_rps, duration, seed);
                 const RunResult& r = outcomes[slot];
                 workload::PointMetrics metrics;
                 metrics.scalars["ls_p50_ms"] = r.ls_p50;
                 metrics.scalars["ls_p99_ms"] = r.ls_p99;
                 metrics.scalars["li_p50_ms"] = r.li_p50;
                 metrics.scalars["li_p99_ms"] = r.li_p99;
                 metrics.counters["ls_completed"] = r.ls_done;
                 metrics.counters["li_completed"] = r.li_done;
                 metrics.counters["max_admission_queue"] = r.max_queue;
                 metrics.histograms["ls_latency_ns"] = r.ls_latency;
                 return metrics;
               });
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"admission", "LS p50 (ms)", "LS p99 (ms)",
                      "LI p50 (ms)", "LI p99 (ms)", "LS done", "LI done",
                      "max queue"});
  for (const bool priority : {false, true}) {
    const RunResult& r = outcomes[priority ? 1 : 0];
    table.add_row({priority ? "priority-aware" : "fifo",
                   stats::Table::num(r.ls_p50, 2),
                   stats::Table::num(r.ls_p99, 2),
                   stats::Table::num(r.li_p50, 2),
                   stats::Table::num(r.li_p99, 2), std::to_string(r.ls_done),
                   std::to_string(r.li_done), std::to_string(r.max_queue)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const stats::BenchReport report = workload::make_bench_report(
      "compute_priority",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"ls_rps", stats::Table::num(ls_rps, 0)},
       {"li_rps", stats::Table::num(li_rps, 0)}},
      sweep);
  return workload::finish_harness(report, options);
}
