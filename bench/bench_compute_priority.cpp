// ABL-CPU — extending prioritization beyond the network (paper §5:
// "coordinating management of other resources beyond the network (i.e.,
// compute and storage) ... prioritized request queuing").
//
// A single CPU-bound service (fixed worker pool) serves short latency-
// sensitive requests and long batch requests. With FIFO admission, LS
// requests wait behind whole batch jobs; with priority-aware admission
// queuing, they jump the queue. The network is uncontended throughout,
// isolating the compute effect.

#include <cstdio>
#include <memory>

#include "app/microservice.h"
#include "core/priority.h"
#include "mesh/control_plane.h"
#include "stats/table.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace meshnet;

namespace {

struct RunResult {
  double ls_p50, ls_p99, li_p50, li_p99;
  std::uint64_t ls_done, li_done, max_queue;
};

RunResult run_once(bool priority_scheduling, double ls_rps, double li_rps,
                   sim::Duration duration, std::uint64_t seed) {
  http::reset_request_id_counter();
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& client_pod = cluster.add_pod("node-a", "client", "client", 0);
  cluster::Pod& server_pod =
      cluster.add_pod("node-a", "server-v1", "server", 8080);

  mesh::ControlPlane control_plane(sim, cluster);
  control_plane.tracer().set_retention(0);
  control_plane.inject_sidecar(client_pod, {});
  control_plane.inject_sidecar(server_pod, {});
  control_plane.start();

  app::MicroserviceOptions options;
  options.max_concurrency = 4;
  options.priority_scheduling = priority_scheduling;
  app::Microservice server(
      sim, server_pod,
      [](const http::HttpRequest& request) {
        app::HandlerResult plan;
        const bool batch =
            request.headers.get_or(http::headers::kMeshPriority, "") == "low";
        plan.processing_delay =
            batch ? sim::milliseconds(40) : sim::milliseconds(2);
        plan.response_bytes = batch ? 16 * 1024 : 1024;
        return plan;
      },
      options);

  mesh::HttpClientPool::Options pool_options;
  pool_options.max_connections = 1024;
  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{client_pod.ip(), 15001},
                              pool_options);

  auto make_factory = [](const char* priority) {
    return [priority](std::uint64_t i) {
      http::HttpRequest request;
      request.path = "/job/" + std::to_string(i);
      request.headers.set(http::headers::kHost, "server");
      request.headers.set(http::headers::kMeshPriority, priority);
      return request;
    };
  };

  const sim::Time end = sim::seconds(1) + duration;
  workload::WorkloadSpec ls{"ls", ls_rps,
                            workload::ArrivalProcess::kUniformRandom,
                            make_factory("high"), 0, end, sim::seconds(1),
                            end};
  workload::WorkloadSpec li{"li", li_rps,
                            workload::ArrivalProcess::kUniformRandom,
                            make_factory("low"), 0, end, sim::seconds(1),
                            end};
  workload::OpenLoopGenerator ls_gen(sim, client, ls, seed);
  workload::OpenLoopGenerator li_gen(sim, client, li, seed + 1);
  ls_gen.start();
  li_gen.start();
  sim.run_until(end + sim::seconds(30));

  return RunResult{ls_gen.recorder().p50_ms(), ls_gen.recorder().p99_ms(),
                   li_gen.recorder().p50_ms(), li_gen.recorder().p99_ms(),
                   ls_gen.recorder().count(), li_gen.recorder().count(),
                   server.max_admission_queue_seen()};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const double ls_rps = flags.get_double_or("ls-rps", 100.0);
  const double li_rps = flags.get_double_or("li-rps", 85.0);
  const auto duration = sim::seconds(flags.get_int_or("duration", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int_or("seed", 7));

  std::printf(
      "ABL-CPU: prioritized request queuing at a CPU-bound service "
      "(4 workers,\nLS jobs 2 ms, batch jobs 40 ms; %.0f/%.0f RPS).\n\n",
      ls_rps, li_rps);

  stats::Table table({"admission", "LS p50 (ms)", "LS p99 (ms)",
                      "LI p50 (ms)", "LI p99 (ms)", "LS done", "LI done",
                      "max queue"});
  for (const bool priority : {false, true}) {
    const RunResult r =
        run_once(priority, ls_rps, li_rps, duration, seed);
    table.add_row({priority ? "priority-aware" : "fifo",
                   stats::Table::num(r.ls_p50, 2),
                   stats::Table::num(r.ls_p99, 2),
                   stats::Table::num(r.li_p50, 2),
                   stats::Table::num(r.li_p99, 2), std::to_string(r.ls_done),
                   std::to_string(r.li_done), std::to_string(r.max_queue)});
    std::fprintf(stderr, "  [%s] done\n", priority ? "priority" : "fifo");
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
