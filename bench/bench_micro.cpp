// Component microbenchmarks (google-benchmark): the per-operation costs
// that bound how much simulated traffic the harness can push — event
// scheduling, qdisc enqueue/dequeue, HTTP codec, histogram recording.
// These back DESIGN.md's methodology note that full Fig. 4 sweeps are
// tractable on a laptop.
//
// Takes the standard harness flags (--json-out writes the meshnet-bench
// report with one point per benchmark) alongside google-benchmark's own
// --benchmark_* flags. Times are wall-clock and machine-dependent, so
// --baseline comparisons need a generous --tolerance (they are NOT
// deterministic like the simulator benches).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "http/codec.h"
#include "net/qdisc.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "workload/bench_harness.h"

using namespace meshnet;

static void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

static void BM_HistogramRecord(benchmark::State& state) {
  stats::LogHistogram histogram(7);
  std::uint64_t v = 12345;
  for (auto _ : state) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    histogram.record(v >> 32);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_HistogramPercentile(benchmark::State& state) {
  stats::LogHistogram histogram(7);
  std::uint64_t v = 12345;
  for (int i = 0; i < 100000; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    histogram.record(v >> 40);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.percentile(99.0));
  }
}
BENCHMARK(BM_HistogramPercentile);

static void BM_FifoQdisc(benchmark::State& state) {
  net::FifoQdisc qdisc(1 << 30);
  net::Packet packet;
  packet.payload = std::make_shared<const std::string>(1400, 'x');
  for (auto _ : state) {
    qdisc.enqueue(packet, 0);
    benchmark::DoNotOptimize(qdisc.dequeue(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoQdisc);

static void BM_WeightedPrioQdisc(benchmark::State& state) {
  net::WeightedPrioQdisc qdisc({0.95, 0.05}, net::classify_by_dscp(),
                               1 << 30);
  net::Packet high;
  high.dscp = net::Dscp::kExpedited;
  high.payload = std::make_shared<const std::string>(1400, 'x');
  net::Packet low;
  low.dscp = net::Dscp::kScavenger;
  low.payload = high.payload;
  for (auto _ : state) {
    qdisc.enqueue(high, 0);
    qdisc.enqueue(low, 0);
    benchmark::DoNotOptimize(qdisc.dequeue(0));
    benchmark::DoNotOptimize(qdisc.dequeue(0));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WeightedPrioQdisc);

static void BM_HttpSerializeRequest(benchmark::State& state) {
  http::HttpRequest request;
  request.method = "GET";
  request.path = "/product/42";
  request.headers.set(http::headers::kHost, "frontend");
  request.headers.set(http::headers::kRequestId, "req-1-abcdef");
  request.headers.set(http::headers::kMeshPriority, "high");
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::serialize_request(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpSerializeRequest);

static void BM_HttpParseResponse(benchmark::State& state) {
  http::HttpResponse response;
  response.status = 200;
  response.headers.set("x-app", "ratings");
  response.body.assign(static_cast<std::size_t>(state.range(0)), 'x');
  const std::string wire = http::serialize_response(response);
  http::HttpParser parser(http::ParserKind::kResponse);
  std::uint64_t parsed = 0;
  parser.set_on_response([&](http::HttpResponse) { ++parsed; });
  for (auto _ : state) {
    parser.feed(wire);
  }
  benchmark::DoNotOptimize(parsed);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseResponse)->Arg(1024)->Arg(64 * 1024);

namespace {

// Console output as usual, plus a capture of every per-iteration run so
// the harness can emit the standard meshnet-bench report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_time_ns;
    double cpu_time_ns;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Captured captured;
      captured.name = run.benchmark_name();
      captured.real_time_ns = run.GetAdjustedRealTime();
      captured.cpu_time_ns = run.GetAdjustedCPUTime();
      for (const auto& [name, counter] : run.counters) {
        captured.counters.emplace_back(name, counter.value);
      }
      runs_.push_back(std::move(captured));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Captured>& runs() const { return runs_; }

 private:
  std::vector<Captured> runs_;
};

// Report point ids must be stable flag-style tokens: BM_Foo/1024 ->
// BM_Foo_1024.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == ':' || c == ' ') c = '_';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "micro", /*default_duration_s=*/0, /*default_seed=*/0,
      /*extra_flags=*/{}, /*extra_prefixes=*/{"benchmark_"});

  // google-benchmark parses argv itself and rejects flags it does not
  // know, so hand it only argv[0] and the --benchmark_* flags.
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  stats::BenchReport report;
  report.experiment = "micro";
  report.threads = 1;
  for (const CapturingReporter::Captured& run : reporter.runs()) {
    stats::BenchPoint point;
    point.id = sanitize(run.name);
    point.params.emplace_back("benchmark", run.name);
    point.scalars["real_time_ns"] = run.real_time_ns;
    point.scalars["cpu_time_ns"] = run.cpu_time_ns;
    for (const auto& [name, value] : run.counters) {
      point.scalars[name] = value;
    }
    report.points.push_back(std::move(point));
  }
  return workload::finish_harness(report, options);
}
