// Component microbenchmarks (google-benchmark): the per-operation costs
// that bound how much simulated traffic the harness can push — event
// scheduling, qdisc enqueue/dequeue, HTTP codec, histogram recording.
// These back DESIGN.md's methodology note that full Fig. 4 sweeps are
// tractable on a laptop.
//
// Takes the standard harness flags (--json-out writes the meshnet-bench
// report with one point per benchmark) alongside google-benchmark's own
// --benchmark_* flags. Times are wall-clock and machine-dependent, so
// --baseline comparisons need a generous --tolerance (they are NOT
// deterministic like the simulator benches).

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "http/codec.h"
#include "mesh/telemetry.h"
#include "net/payload.h"
#include "net/qdisc.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "workload/bench_harness.h"

using namespace meshnet;

// The counting global operator new lives in alloc_counter.cc (shared by
// every bench binary); the scheduler/payload benches read it to report
// allocations per operation (the zero-alloc claim, measured).

static void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

namespace {

// Retry-timer churn: the sidecar/RTO pattern. Every fire re-arms itself
// and cancels + re-arms a neighbour (an ACK disarming a retransmit
// timer), so half of all scheduled timers are cancelled before they fire.
struct Churn {
  sim::Simulator sim;
  std::array<sim::EventId, 256> timers{};
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  int remaining = 20000;

  void arm(int slot) {
    if (remaining <= 0) return;
    --remaining;
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const sim::Duration delay =
        1 + static_cast<sim::Duration>((rng >> 33) % 2'000'000);  // <= 2 ms
    timers[static_cast<std::size_t>(slot)] =
        sim.schedule_after(delay, [this, slot] { fired(slot); });
  }

  void fired(int slot) {
    timers[static_cast<std::size_t>(slot)] = sim::kInvalidEventId;
    arm(slot);
    const int n = (slot + 1) & 255;
    if (timers[static_cast<std::size_t>(n)] != sim::kInvalidEventId) {
      sim.cancel(timers[static_cast<std::size_t>(n)]);
      timers[static_cast<std::size_t>(n)] = sim::kInvalidEventId;
      arm(n);
    }
  }

  std::uint64_t run() {
    for (int i = 0; i < 256; ++i) arm(i);
    sim.run();
    return sim.events_executed();
  }
};

}  // namespace

static void BM_SchedulerChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    Churn churn;
    const std::uint64_t before =
        workload::bench_allocation_count();
    events += churn.run();
    allocs += workload::bench_allocation_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_rep"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(allocs) /
                         static_cast<double>(events > 0 ? events : 1));
}
BENCHMARK(BM_SchedulerChurn);

// Bulk cancellation of far-future timers: the pattern that used to leave
// tombstones in the queue forever. Lazy compaction must keep this cheap.
static void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule_after(sim::seconds(100) + i, [] {}));
    }
    for (const sim::EventId id : ids) sim.cancel(id);
    sim.schedule_after(1, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

// Steady-state packet flow through the pool: one block copy per "send",
// sliced into MSS segments, all refs dropped each round. Once the pool is
// warm this should be allocation-free.
static void BM_PayloadSendSlice(benchmark::State& state) {
  const std::string data(16 * 1024, 'x');
  std::uint64_t allocs = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const std::uint64_t before =
        workload::bench_allocation_count();
    net::Payload whole = net::Payload::copy_of(data);
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t len = std::min<std::size_t>(1460, data.size() - offset);
      net::Payload seg = whole.slice(offset, len);
      benchmark::DoNotOptimize(seg.view().data());
      offset += len;
    }
    allocs += workload::bench_allocation_count() - before;
    ++rounds;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(rounds) *
                          static_cast<std::int64_t>(data.size()));
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(rounds > 0 ? rounds : 1));
}
BENCHMARK(BM_PayloadSendSlice);

// One request through the unified telemetry pipeline: edge + cluster +
// total counters and a per-class latency histogram. After the first
// request interns the series, recording must be allocation-free — the
// label-handling refactor is gated on allocs_per_record staying at 0.
static void BM_TelemetryRecordRequest(benchmark::State& state) {
  obs::MetricRegistry registry;
  mesh::TelemetrySink sink(&registry);
  mesh::RequestSample sample;
  sample.source = "frontend";
  sample.upstream = "reviews";
  sample.status = 200;
  sample.latency = 1'500'000;
  sample.retries = 0;
  sample.priority = mesh::TrafficClass::kLatencySensitive;
  sink.record_request(sample);  // warm: intern every cell up front
  std::uint64_t allocs = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    const std::uint64_t before =
        workload::bench_allocation_count();
    sink.record_request(sample);
    allocs += workload::bench_allocation_count() - before;
    ++records;
  }
  benchmark::DoNotOptimize(sink.total_requests());
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["allocs_per_record"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(records > 0 ? records : 1));
}
BENCHMARK(BM_TelemetryRecordRequest);

static void BM_HistogramRecord(benchmark::State& state) {
  stats::LogHistogram histogram(7);
  std::uint64_t v = 12345;
  for (auto _ : state) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    histogram.record(v >> 32);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_HistogramPercentile(benchmark::State& state) {
  stats::LogHistogram histogram(7);
  std::uint64_t v = 12345;
  for (int i = 0; i < 100000; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    histogram.record(v >> 40);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.percentile(99.0));
  }
}
BENCHMARK(BM_HistogramPercentile);

static void BM_FifoQdisc(benchmark::State& state) {
  net::FifoQdisc qdisc(1 << 30);
  net::Packet packet;
  packet.payload = net::Payload::filled(1400, 'x');
  for (auto _ : state) {
    qdisc.enqueue(packet, 0);
    benchmark::DoNotOptimize(qdisc.dequeue(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoQdisc);

static void BM_WeightedPrioQdisc(benchmark::State& state) {
  net::WeightedPrioQdisc qdisc({0.95, 0.05}, net::classify_by_dscp(),
                               1 << 30);
  net::Packet high;
  high.dscp = net::Dscp::kExpedited;
  high.payload = net::Payload::filled(1400, 'x');
  net::Packet low;
  low.dscp = net::Dscp::kScavenger;
  low.payload = high.payload;
  for (auto _ : state) {
    qdisc.enqueue(high, 0);
    qdisc.enqueue(low, 0);
    benchmark::DoNotOptimize(qdisc.dequeue(0));
    benchmark::DoNotOptimize(qdisc.dequeue(0));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WeightedPrioQdisc);

static void BM_HeaderMapGet(benchmark::State& state) {
  http::HeaderMap headers;
  headers.set("x-app", "frontend");
  headers.set(http::headers::Id::kHost, "reviews");
  headers.set(http::headers::Id::kRequestId, "req-1-abcdef");
  headers.set(http::headers::Id::kTraceId, "trace-0000000000000001");
  headers.set(http::headers::Id::kMeshPriority, "high");
  for (auto _ : state) {
    // Interned fast path (integer compare)...
    benchmark::DoNotOptimize(headers.get(http::headers::Id::kMeshPriority));
    // ...string name of a well-known header (interned per lookup)...
    benchmark::DoNotOptimize(headers.get("X-Mesh-Priority"));
    // ...and the slow path for an unknown name.
    benchmark::DoNotOptimize(headers.get("x-app"));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_HeaderMapGet);

static void BM_HeaderMapSet(benchmark::State& state) {
  for (auto _ : state) {
    http::HeaderMap headers;
    headers.set(http::headers::Id::kHost, "reviews");
    headers.set(http::headers::Id::kRequestId, "req-1-abcdef");
    headers.set(http::headers::Id::kMeshPriority, "high");
    headers.set(http::headers::Id::kMeshPriority, "low");  // overwrite
    benchmark::DoNotOptimize(headers.size());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_HeaderMapSet);

// The microservice fan-out pattern: copy the propagated trace/identity
// headers from an inbound request onto a sub-request.
static void BM_HeaderPropagation(benchmark::State& state) {
  http::HeaderMap inbound;
  inbound.set(http::headers::Id::kRequestId, "req-1-abcdef");
  inbound.set(http::headers::Id::kTraceId, "trace-0000000000000001");
  inbound.set(http::headers::Id::kSpanId, "span-0000000000000002");
  inbound.set(http::headers::Id::kMeshPriority, "high");
  constexpr http::headers::Id kPropagated[] = {
      http::headers::Id::kRequestId,
      http::headers::Id::kTraceId,
      http::headers::Id::kSpanId,
      http::headers::Id::kMeshPriority,
  };
  for (auto _ : state) {
    http::HeaderMap sub;
    sub.set(http::headers::Id::kHost, "ratings");
    for (const http::headers::Id id : kPropagated) {
      if (const auto value = inbound.get(id)) sub.set(id, *value);
    }
    benchmark::DoNotOptimize(sub.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeaderPropagation);

static void BM_HttpSerializeRequest(benchmark::State& state) {
  http::HttpRequest request;
  request.method = "GET";
  request.path = "/product/42";
  request.headers.set(http::headers::kHost, "frontend");
  request.headers.set(http::headers::kRequestId, "req-1-abcdef");
  request.headers.set(http::headers::kMeshPriority, "high");
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::serialize_request(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpSerializeRequest);

static void BM_HttpParseResponse(benchmark::State& state) {
  http::HttpResponse response;
  response.status = 200;
  response.headers.set("x-app", "ratings");
  response.body.assign(static_cast<std::size_t>(state.range(0)), 'x');
  const std::string wire = http::serialize_response(response);
  http::HttpParser parser(http::ParserKind::kResponse);
  std::uint64_t parsed = 0;
  parser.set_on_response([&](http::HttpResponse) { ++parsed; });
  for (auto _ : state) {
    parser.feed(wire);
  }
  benchmark::DoNotOptimize(parsed);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseResponse)->Arg(1024)->Arg(64 * 1024);

namespace {

// Console output as usual, plus a capture of every per-iteration run so
// the harness can emit the standard meshnet-bench report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_time_ns;
    double cpu_time_ns;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Captured captured;
      captured.name = run.benchmark_name();
      captured.real_time_ns = run.GetAdjustedRealTime();
      captured.cpu_time_ns = run.GetAdjustedCPUTime();
      for (const auto& [name, counter] : run.counters) {
        captured.counters.emplace_back(name, counter.value);
      }
      runs_.push_back(std::move(captured));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Captured>& runs() const { return runs_; }

 private:
  std::vector<Captured> runs_;
};

// Report point ids must be stable flag-style tokens: BM_Foo/1024 ->
// BM_Foo_1024.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == ':' || c == ' ') c = '_';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "micro", /*default_duration_s=*/0, /*default_seed=*/0,
      /*extra_flags=*/{}, /*extra_prefixes=*/{"benchmark_"});

  // google-benchmark parses argv itself and rejects flags it does not
  // know, so hand it only argv[0] and the --benchmark_* flags.
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  stats::BenchReport report;
  report.experiment = "micro";
  report.threads = 1;
  for (const CapturingReporter::Captured& run : reporter.runs()) {
    stats::BenchPoint point;
    point.id = sanitize(run.name);
    point.params.emplace_back("benchmark", run.name);
    point.scalars["real_time_ns"] = run.real_time_ns;
    point.scalars["cpu_time_ns"] = run.cpu_time_ns;
    for (const auto& [name, value] : run.counters) {
      point.scalars[name] = value;
    }
    report.points.push_back(std::move(point));
  }
  return workload::finish_harness(report, options);
}
