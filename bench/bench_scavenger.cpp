// ABL-SCAV — scavenger transport in isolation (paper §4.2 optimization b:
// "utilization of scavenger transport protocols for latency-insensitive
// requests", citing TCP-LP / LEDBAT / Proteus).
//
// Pure transport experiment, no mesh: two hosts share a 1 Gbps bottleneck
// with a large (bufferbloat-sized) FIFO queue. N bulk background flows
// run either Reno or LEDBAT while a foreground flow sends periodic small
// messages whose delivery latency is measured. Expected shape: with Reno
// backgrounds the standing queue inflates foreground latency by tens of
// ms; LEDBAT backgrounds keep queueing near the delay target while still
// consuming most of the idle capacity. One sweep point per (cc, flows).

#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "net/network.h"
#include "stats/table.h"
#include "stats/histogram.h"
#include "transport/transport_host.h"
#include "workload/bench_harness.h"

using namespace meshnet;

namespace {

struct RunResult {
  double fg_p50_ms, fg_p99_ms;
  double bg_goodput_gbps;
  double avg_queue_ms;  ///< mean bottleneck backlog in time units
  std::uint64_t drops;
  stats::LogHistogram fg_latency{7};
};

RunResult run_once(transport::CcAlgorithm bg_cc, int bg_flows,
                   sim::Duration duration) {
  sim::Simulator sim;
  net::Network network(sim);
  const auto a = network.add_location("host-a");
  const auto b = network.add_location("host-b");
  // 1 Gbps bottleneck with a 9 MB (≈72 ms) drop-tail queue; fat reverse
  // path for ACKs.
  net::Link& bottleneck = network.add_link(
      a, b, 1e9, sim::microseconds(100),
      std::make_unique<net::FifoQdisc>(9'000'000), "bottleneck");
  network.add_link(b, a, 10e9, sim::microseconds(100), nullptr, "ack-path");
  const auto ip_a = net::make_ip(10, 0, 0, 1);
  const auto ip_b = net::make_ip(10, 0, 0, 2);
  network.attach_interface(ip_a, a);
  network.attach_interface(ip_b, b);
  transport::TransportHost host_a(sim, network, ip_a);
  transport::TransportHost host_b(sim, network, ip_b);

  // Sink: accept everything, count bytes.
  std::uint64_t bg_bytes = 0;
  host_b.listen(9000, [&](transport::Connection& conn) {
    conn.set_on_data([&](std::string_view data) { bg_bytes += data.size(); });
  });

  // Foreground receiver: track 16 KB message boundaries.
  std::deque<sim::Time> fg_send_times;
  stats::LogHistogram fg_latency(7);
  constexpr std::size_t kFgMessage = 16 * 1024;
  std::uint64_t fg_received = 0;
  host_b.listen(9001, [&](transport::Connection& conn) {
    conn.set_on_data([&](std::string_view data) {
      fg_received += data.size();
      while (fg_received >= kFgMessage && !fg_send_times.empty()) {
        fg_received -= kFgMessage;
        fg_latency.record(
            static_cast<std::uint64_t>(sim.now() - fg_send_times.front()));
        fg_send_times.pop_front();
      }
    });
  });

  // Background bulk flows: keep ~4 MB of backlog queued in the sender.
  std::vector<transport::Connection*> bg;
  for (int i = 0; i < bg_flows; ++i) {
    transport::ConnectionOptions options;
    options.mss = 8960;
    options.cc = bg_cc;
    bg.push_back(&host_a.connect({ip_b, 9000}, options));
  }
  const std::string chunk(1 << 20, 'b');
  std::function<void()> top_up = [&] {
    for (transport::Connection* conn : bg) {
      while (conn->send_backlog() < 4 * (1 << 20)) conn->send(chunk);
    }
    sim.schedule_after(sim::milliseconds(10), top_up);
  };
  sim.schedule_after(0, top_up);

  // Foreground: one small message every 50 ms on a Reno connection.
  transport::ConnectionOptions fg_options;
  fg_options.mss = 8960;
  transport::Connection& fg = host_a.connect({ip_b, 9001}, fg_options);
  const std::string fg_message(kFgMessage, 'f');
  std::function<void()> tick = [&] {
    fg_send_times.push_back(sim.now());
    fg.send(fg_message);
    sim.schedule_after(sim::milliseconds(50), tick);
  };
  sim.schedule_after(sim::milliseconds(500), tick);  // after bg ramp-up

  // Sample bottleneck backlog.
  double backlog_sum = 0.0;
  std::uint64_t backlog_samples = 0;
  std::function<void()> sample = [&] {
    backlog_sum += static_cast<double>(bottleneck.qdisc().backlog_bytes());
    ++backlog_samples;
    sim.schedule_after(sim::milliseconds(5), sample);
  };
  sim.schedule_after(0, sample);

  sim.run_until(duration);

  RunResult result{};
  result.fg_p50_ms = sim::to_milliseconds(
      static_cast<sim::Duration>(fg_latency.percentile(50)));
  result.fg_p99_ms = sim::to_milliseconds(
      static_cast<sim::Duration>(fg_latency.percentile(99)));
  result.bg_goodput_gbps =
      static_cast<double>(bg_bytes) * 8.0 / sim::to_seconds(duration) / 1e9;
  const double avg_backlog_bytes =
      backlog_samples ? backlog_sum / static_cast<double>(backlog_samples)
                      : 0.0;
  result.avg_queue_ms = avg_backlog_bytes * 8.0 / 1e9 * 1e3;
  result.drops = bottleneck.qdisc().stats().dropped_packets;
  result.fg_latency = fg_latency;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "scavenger", /*default_duration_s=*/20, /*default_seed=*/0);
  const auto duration = sim::seconds(options.duration_s);

  std::printf(
      "ABL-SCAV: background bulk flows (Reno vs LEDBAT scavenger) sharing a "
      "1 Gbps\nbottleneck with a periodic small-message foreground flow.\n\n");

  struct Point {
    transport::CcAlgorithm cc;
    int flows;
  };
  std::vector<Point> grid;
  for (const int flows : {1, 4}) {
    for (const auto cc :
         {transport::CcAlgorithm::kReno, transport::CcAlgorithm::kLedbat}) {
      grid.push_back({cc, flows});
    }
  }

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<RunResult> outcomes(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point point = grid[i];
    const char* cc_name =
        point.cc == transport::CcAlgorithm::kReno ? "reno" : "ledbat";
    runner.add({{"cc", cc_name}, {"flows", std::to_string(point.flows)}},
               [point, duration, i, &outcomes] {
                 outcomes[i] = run_once(point.cc, point.flows, duration);
                 const RunResult& r = outcomes[i];
                 workload::PointMetrics metrics;
                 metrics.scalars["fg_p50_ms"] = r.fg_p50_ms;
                 metrics.scalars["fg_p99_ms"] = r.fg_p99_ms;
                 metrics.scalars["bg_goodput_gbps"] = r.bg_goodput_gbps;
                 metrics.scalars["avg_queue_ms"] = r.avg_queue_ms;
                 metrics.counters["drops"] = r.drops;
                 metrics.histograms["fg_latency_ns"] = r.fg_latency;
                 return metrics;
               });
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"background", "flows", "fg p50 (ms)", "fg p99 (ms)",
                      "bg goodput (Gbps)", "avg queue (ms)", "drops"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RunResult& r = outcomes[i];
    table.add_row(
        {grid[i].cc == transport::CcAlgorithm::kReno ? "reno" : "ledbat",
         std::to_string(grid[i].flows), stats::Table::num(r.fg_p50_ms, 2),
         stats::Table::num(r.fg_p99_ms, 2),
         stats::Table::num(r.bg_goodput_gbps, 3),
         stats::Table::num(r.avg_queue_ms, 2), std::to_string(r.drops)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: ledbat keeps the queue near its delay target "
              "(~2 ms), cutting\nforeground latency by an order of magnitude "
              "while still using idle capacity.\n");

  const stats::BenchReport report = workload::make_bench_report(
      "scavenger",
      {{"duration_s", std::to_string(options.duration_s)},
       {"flows", "1,4"},
       {"cc", "reno,ledbat"}},
      sweep);
  return workload::finish_harness(report, options);
}
