// Counting global operator new, shared by every bench binary.
//
// Linking this TU replaces the program's allocator with a malloc-backed
// one that counts calls; workload::bench_allocation_count() (declared
// weak in bench_harness.cc with a zero-returning fallback) then resolves
// to the strong definition here, and finish_harness reports
// wall_allocs_per_event in the bench report's "engine" section. Binaries
// that do not link this TU — the examples/ demos — simply report no
// allocation profile. Keep this out of libraries: replaceable operator
// new may be defined at most once per program.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

static std::atomic<std::uint64_t> g_alloc_count{0};

// GCC cannot see that the replacement operator new below is malloc-based
// and flags every new/free pairing in dependent TUs.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace meshnet::workload {

std::uint64_t bench_allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace meshnet::workload
