// TXT-OVH — reproduces the paper's §3.6 data point: the two sidecars
// interposed in each service-to-service call add latency "in the range of
// 3 msec at the 99th percentile for Istio".
//
// Two pods on one node. The same request stream runs twice:
//   direct : client app -> server app (no proxies)
//   meshed : client app -> local sidecar (outbound) -> remote sidecar
//            (inbound) -> server app
// and the table reports the per-percentile latency and the added
// overhead. The shape to check: a sub-millisecond median cost with a tail
// of a few milliseconds at p99 — not the absolute Istio numbers. The two
// runs are independent sweep points, so --threads=2 runs them in
// parallel with bit-identical results.

#include <cstdio>
#include <vector>

#include "app/microservice.h"
#include "mesh/control_plane.h"
#include "stats/table.h"
#include "workload/bench_harness.h"
#include "workload/generator.h"

using namespace meshnet;

namespace {

struct RunResult {
  double p50_ms, p90_ms, p99_ms, mean_ms;
  std::uint64_t completed, errors;
  stats::LogHistogram latency;
};

RunResult run_once(bool meshed, double rps, sim::Duration duration,
                   std::uint64_t seed) {
  http::reset_request_id_counter();
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& client_pod =
      cluster.add_pod("node-a", "client", "client", 0);
  cluster::Pod& server_pod =
      cluster.add_pod("node-a", "server-v1", "server", 8080);

  mesh::ControlPlane control_plane(sim, cluster);
  control_plane.tracer().set_retention(0);
  if (meshed) {
    control_plane.inject_sidecar(client_pod, {});
    control_plane.inject_sidecar(server_pod, {});
    control_plane.start();
  }

  app::Microservice server(sim, server_pod, [](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.processing_delay = 0;  // isolate proxy + network cost
    plan.response_bytes = 1024;
    return plan;
  });

  // Meshed mode: requests enter through the client pod's outbound sidecar
  // listener, exactly as a meshed app's traffic would. Direct mode:
  // straight to the server app's port.
  const net::SocketAddress target =
      meshed ? net::SocketAddress{client_pod.ip(), 15001}
             : net::SocketAddress{server_pod.ip(), 8080};
  mesh::HttpClientPool::Options options;
  options.max_connections = 512;
  mesh::HttpClientPool client(sim, client_pod.transport(), target, options);

  workload::WorkloadSpec spec;
  spec.name = meshed ? "meshed" : "direct";
  spec.rps = rps;
  spec.arrival = workload::ArrivalProcess::kPoisson;
  spec.make_request = workload::simple_get_factory("server", "/item");
  spec.start = 0;
  spec.end = sim::seconds(1) + duration;
  spec.measure_start = sim::seconds(1);
  spec.measure_end = spec.end;

  workload::OpenLoopGenerator gen(sim, client, spec, seed);
  gen.start();
  sim.run_until(spec.end + sim::seconds(10));

  return RunResult{gen.recorder().p50_ms(), gen.recorder().p90_ms(),
                   gen.recorder().p99_ms(), gen.recorder().mean_ms(),
                   gen.recorder().count(), gen.recorder().errors(),
                   gen.recorder().histogram()};
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "sidecar_overhead", /*default_duration_s=*/30,
      /*default_seed=*/7, {"rps"});
  const double rps = options.flags.get_double_or("rps", 200.0);
  const auto duration = sim::seconds(options.duration_s);
  const auto seed = options.seed;

  std::printf(
      "TXT-OVH: latency added by the sidecar pair on one service-to-service "
      "hop\n(paper/Istio: ~3 ms at p99).\n\n");

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<RunResult> outcomes(2);
  for (const bool meshed : {false, true}) {
    const std::size_t slot = meshed ? 1 : 0;
    runner.add({{"path", meshed ? "meshed" : "direct"}},
               [meshed, rps, duration, seed, slot, &outcomes] {
                 outcomes[slot] = run_once(meshed, rps, duration, seed);
                 const RunResult& r = outcomes[slot];
                 workload::PointMetrics metrics;
                 metrics.scalars["p50_ms"] = r.p50_ms;
                 metrics.scalars["p90_ms"] = r.p90_ms;
                 metrics.scalars["p99_ms"] = r.p99_ms;
                 metrics.scalars["mean_ms"] = r.mean_ms;
                 metrics.counters["completed"] = r.completed;
                 metrics.counters["errors"] = r.errors;
                 metrics.histograms["latency_ns"] = r.latency;
                 return metrics;
               });
  }
  const workload::SweepResult sweep = runner.run();
  const RunResult& direct = outcomes[0];
  const RunResult& meshed = outcomes[1];

  stats::Table table({"path", "mean (ms)", "p50 (ms)", "p90 (ms)",
                      "p99 (ms)", "requests"});
  table.add_row({"direct", stats::Table::num(direct.mean_ms, 3),
                 stats::Table::num(direct.p50_ms, 3),
                 stats::Table::num(direct.p90_ms, 3),
                 stats::Table::num(direct.p99_ms, 3),
                 std::to_string(direct.completed)});
  table.add_row({"via sidecars", stats::Table::num(meshed.mean_ms, 3),
                 stats::Table::num(meshed.p50_ms, 3),
                 stats::Table::num(meshed.p90_ms, 3),
                 stats::Table::num(meshed.p99_ms, 3),
                 std::to_string(meshed.completed)});
  table.add_row({"overhead", stats::Table::num(meshed.mean_ms - direct.mean_ms, 3),
                 stats::Table::num(meshed.p50_ms - direct.p50_ms, 3),
                 stats::Table::num(meshed.p90_ms - direct.p90_ms, 3),
                 stats::Table::num(meshed.p99_ms - direct.p99_ms, 3), "-"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("sidecar pair adds %.3f ms at p99 (paper cites ~3 ms for "
              "Istio; shape, not absolute, is the target)\n",
              meshed.p99_ms - direct.p99_ms);

  const stats::BenchReport report = workload::make_bench_report(
      "sidecar_overhead",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"rps", stats::Table::num(rps, 0)}},
      sweep);
  return workload::finish_harness(report, options);
}
