// MTLS — the mTLS datapath's cost on the e-library, and session
// resumption as the mitigation for a mesh-wide handshake storm.
//
// Six arms through the sweep harness (--threads runs them in parallel,
// bit-identically):
//
//   plaintext     mesh-wide mTLS off (the overhead baseline)
//   mtls-full     mTLS on, session resumption off
//   mtls-resume   mTLS on, resumption on (the recommended config)
//   mtls-ratings  per-service knob: mTLS on *only* for the ratings
//                 service — the reviews->ratings bottleneck hop pays
//                 crypto, every other hop stays plaintext
//   storm-full    mTLS on, resumption off, mass pod restart mid-window
//   storm-resume  same storm, resumption on — cached tickets turn the
//                 reconnect wave into cheap resumed handshakes
//
// Acceptance (exit 1 on violation): mTLS shows a nonzero steady-state
// p50/p99 overhead over plaintext; the storm arms' post-restart p99
// recovers faster with resumption than without; full and resumed
// handshake counters are nonzero where the arm implies them; and the
// per-hop arm performs fewer handshakes than the mesh-wide one.

#include <cstdio>
#include <vector>

#include "workload/bench_harness.h"
#include "workload/mtls_experiment.h"

using namespace meshnet;

namespace {

struct Arm {
  const char* name;
  bool mtls;
  bool resumption;
  bool storm;
  bool ratings_only;
};

constexpr Arm kArms[] = {
    {"plaintext", false, false, false, false},
    {"mtls-full", true, false, false, false},
    {"mtls-resume", true, true, false, false},
    {"mtls-ratings", false, true, false, true},
    {"storm-full", true, false, true, false},
    {"storm-resume", true, true, true, false},
};

}  // namespace

int main(int argc, char** argv) {
  workload::MtlsExperimentConfig base;
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "mtls",
      /*default_duration_s=*/static_cast<std::int64_t>(
          sim::to_seconds(base.duration)),
      /*default_seed=*/base.seed, {"ls-rps", "li-rps"});
  base.seed = options.seed;
  base.duration = sim::seconds(options.duration_s);
  base.ls_rps = options.flags.get_double_or("ls-rps", base.ls_rps);
  base.li_rps = options.flags.get_double_or("li-rps", base.li_rps);

  std::printf(
      "MTLS: plaintext vs mTLS e-library, %llds window, seed %llu\n"
      "(storm arms: every service pod restarts mid-window; resumption is "
      "the measured mitigation)\n\n",
      static_cast<long long>(options.duration_s),
      static_cast<unsigned long long>(base.seed));

  workload::SweepRunner runner(workload::sweep_options(options));
  const std::size_t arm_count = std::size(kArms);
  std::vector<workload::MtlsExperimentResult> arms(arm_count);
  for (std::size_t i = 0; i < arm_count; ++i) {
    const Arm& arm = kArms[i];
    runner.add({{"arm", arm.name}}, [base, arm, i, &arms] {
      workload::MtlsExperimentConfig config = base;
      config.mtls = arm.mtls;
      config.session_resumption = arm.resumption;
      config.storm = arm.storm;
      if (arm.ratings_only) config.mtls_overrides["ratings"] = true;
      arms[i] = workload::run_mtls_experiment(config);
      return workload::mtls_point_metrics(arms[i]);
    });
  }
  const workload::SweepResult sweep = runner.run();

  const workload::MtlsExperimentResult& plaintext = arms[0];
  const workload::MtlsExperimentResult& mtls_full = arms[1];
  const workload::MtlsExperimentResult& mtls_resume = arms[2];
  const workload::MtlsExperimentResult& mtls_ratings = arms[3];
  const workload::MtlsExperimentResult& storm_full = arms[4];
  const workload::MtlsExperimentResult& storm_resume = arms[5];

  std::fputs(workload::format_mtls_comparison(plaintext, mtls_full,
                                              mtls_resume, storm_full,
                                              storm_resume)
                 .c_str(),
             stdout);
  std::printf(
      "per-hop arm (ratings only): p50 %.2f ms, %llu full handshakes "
      "(mesh-wide arm: %llu)\n",
      mtls_ratings.ls.p50_ms,
      static_cast<unsigned long long>(mtls_ratings.handshakes_full),
      static_cast<unsigned long long>(mtls_full.handshakes_full));

  // The crypto cost lands where the bytes are: the bulk LI workload's
  // p50/p99 carry the per-record AEAD charge on every hop, and the LS
  // p50 carries the fixed per-request share.
  const bool overhead_ok =
      mtls_resume.ls.p50_ms > plaintext.ls.p50_ms &&
      mtls_resume.li.p50_ms > plaintext.li.p50_ms &&
      mtls_resume.li.p99_ms > plaintext.li.p99_ms;
  const bool storm_ok =
      storm_resume.post.p99_ms < storm_full.post.p99_ms &&
      storm_resume.handshakes_resumed > 0 && storm_full.handshakes_full > 0;
  const bool counters_ok =
      plaintext.handshakes_full == 0 && mtls_full.handshakes_full > 0 &&
      mtls_full.handshakes_resumed == 0 && mtls_resume.tickets_issued > 0;
  const bool per_hop_ok =
      mtls_ratings.handshakes_full > 0 &&
      mtls_ratings.handshakes_full + mtls_ratings.handshakes_resumed <
          mtls_full.handshakes_full + mtls_full.handshakes_resumed;
  std::printf(
      "\nacceptance:\n"
      "  mTLS steady-state p50/p99 overhead nonzero          %s\n"
      "  resumption cuts post-storm p99 (%.2f < %.2f ms)     %s\n"
      "  handshake counters consistent per arm               %s\n"
      "  per-hop arm handshakes < mesh-wide arm              %s\n",
      overhead_ok ? "PASS" : "FAIL", storm_resume.post.p99_ms,
      storm_full.post.p99_ms, storm_ok ? "PASS" : "FAIL",
      counters_ok ? "PASS" : "FAIL", per_hop_ok ? "PASS" : "FAIL");

  const stats::BenchReport report = workload::make_bench_report(
      "mtls",
      {{"seed", std::to_string(base.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"ls_rps", std::to_string(base.ls_rps)},
       {"li_rps", std::to_string(base.li_rps)}},
      sweep);
  const int harness_rc = workload::finish_harness(report, options);
  if (harness_rc != 0) return harness_rc;
  return (overhead_ok && storm_ok && counters_ok && per_hop_ok) ? 0 : 1;
}
