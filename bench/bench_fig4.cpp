// FIG4 — reproduces the paper's Figure 4: "Reduction in request latency
// from cross-layer optimization."
//
// Sweeps offered load (RPS per workload, default 10..50 as in the paper)
// and, for each level, runs the e-library mix twice — without and with
// cross-layer prioritization — reporting the latency-sensitive workload's
// p50 and p99, the same four series the figure plots. The 2×|rps| points
// fan across the sweep harness (--threads) and produce bit-identical
// results at any thread count.
//
// Flags (plus the standard harness set, see workload/bench_harness.h):
//   --rps=10,20,30,40,50   load levels
//   --duration=15          measured seconds per run
//   --warmup=4 --cooldown=2
//   --seed=42
//   --csv                  also emit CSV for plotting
//   --threads=N --json-out[=PATH] --baseline=PATH --tolerance=R

#include <cstdio>
#include <string>
#include <vector>

#include "stats/table.h"
#include "util/strings.h"
#include "workload/bench_harness.h"

using namespace meshnet;

namespace {

std::vector<double> parse_rps_list(const std::string& text) {
  std::vector<double> out;
  for (const auto part : util::split(text, ',')) {
    const auto v = util::parse_u64(util::trim(part));
    if (v) out.push_back(static_cast<double>(*v));
  }
  if (out.empty()) out = {10, 20, 30, 40, 50};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "fig4", /*default_duration_s=*/15, /*default_seed=*/42,
      {"rps", "warmup", "cooldown", "csv"});
  const util::Flags& flags = options.flags;
  const std::vector<double> rps_levels =
      parse_rps_list(flags.get_or("rps", "10,20,30,40,50"));
  const auto duration = sim::seconds(options.duration_s);
  const auto warmup = sim::seconds(flags.get_int_or("warmup", 4));
  const auto cooldown = sim::seconds(flags.get_int_or("cooldown", 2));
  const auto seed = options.seed;

  std::printf(
      "FIG4: HTTP request latency of the latency-sensitive workload vs "
      "offered RPS,\nwith and without cross-layer optimization "
      "(e-library app, 1 Gbps reviews->ratings bottleneck,\nLI responses "
      "~200x larger, uniform-random arrivals).\n\n");

  // One sweep point per (rps, cross_layer) pair; each runs its own
  // simulator and stores the typed result in its slot for the table.
  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::ElibraryExperimentResult> outcomes(
      rps_levels.size() * 2);
  for (std::size_t level = 0; level < rps_levels.size(); ++level) {
    const double rps = rps_levels[level];
    for (const bool cross_layer : {false, true}) {
      const std::size_t slot = level * 2 + (cross_layer ? 1 : 0);
      runner.add(
          {{"rps", stats::Table::num(rps, 0)},
           {"cross_layer", cross_layer ? "on" : "off"}},
          [rps, cross_layer, duration, warmup, cooldown, seed, slot,
           &outcomes] {
            workload::ElibraryExperimentConfig config;
            config.ls_rps = rps;
            config.li_rps = rps;
            config.duration = duration;
            config.warmup = warmup;
            config.cooldown = cooldown;
            config.seed = seed;
            config.cross_layer = cross_layer;
            outcomes[slot] = workload::run_elibrary_experiment(config);
            return workload::elibrary_point_metrics(outcomes[slot]);
          });
    }
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"RPS", "p50 w/o (ms)", "p50 w/ (ms)", "p99 w/o (ms)",
                      "p99 w/ (ms)", "p50 gain", "p99 gain", "bneck util"});

  struct Row {
    double rps, p50_base, p50_opt, p99_base, p99_opt, util;
  };
  std::vector<Row> rows;
  for (std::size_t level = 0; level < rps_levels.size(); ++level) {
    const workload::ElibraryExperimentResult& base = outcomes[level * 2];
    const workload::ElibraryExperimentResult& opt = outcomes[level * 2 + 1];
    Row row{rps_levels[level], base.ls.p50_ms,  opt.ls.p50_ms,
            base.ls.p99_ms,    opt.ls.p99_ms,   opt.bottleneck_utilization};
    rows.push_back(row);
    table.add_row({stats::Table::num(row.rps, 0),
                   stats::Table::num(row.p50_base, 1),
                   stats::Table::num(row.p50_opt, 1),
                   stats::Table::num(row.p99_base, 1),
                   stats::Table::num(row.p99_opt, 1),
                   stats::Table::num(row.p50_base / row.p50_opt, 2) + "x",
                   stats::Table::num(row.p99_base / row.p99_opt, 2) + "x",
                   stats::Table::num(row.util, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());

  // The paper's headline claim: ~1.5x improvement in p50 and p99 at load.
  const Row& top = rows.back();
  std::printf("at %.0f RPS: cross-layer optimization improves LS p50 %.2fx "
              "and p99 %.2fx (paper: ~1.5x)\n",
              top.rps, top.p50_base / top.p50_opt,
              top.p99_base / top.p99_opt);
  std::fprintf(stderr, "sweep: %zu points, %d threads, %.0f ms wall\n",
               sweep.points.size(), sweep.threads_used, sweep.wall_ms);

  if (flags.get_bool_or("csv", false)) {
    stats::Table csv({"rps", "p50_wo_ms", "p50_w_ms", "p99_wo_ms",
                      "p99_w_ms", "util"});
    for (const Row& r : rows) {
      csv.add_row({stats::Table::num(r.rps, 0), stats::Table::num(r.p50_base, 3),
                   stats::Table::num(r.p50_opt, 3),
                   stats::Table::num(r.p99_base, 3),
                   stats::Table::num(r.p99_opt, 3),
                   stats::Table::num(r.util, 4)});
    }
    std::printf("\n%s", csv.to_csv().c_str());
  }

  const stats::BenchReport report = workload::make_bench_report(
      "fig4",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"warmup_s", std::to_string(flags.get_int_or("warmup", 4))},
       {"cooldown_s", std::to_string(flags.get_int_or("cooldown", 2))},
       {"rps", flags.get_or("rps", "10,20,30,40,50")}},
      sweep);
  return workload::finish_harness(report, options);
}
