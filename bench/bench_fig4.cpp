// FIG4 — reproduces the paper's Figure 4: "Reduction in request latency
// from cross-layer optimization."
//
// Sweeps offered load (RPS per workload, default 10..50 as in the paper)
// and, for each level, runs the e-library mix twice — without and with
// cross-layer prioritization — reporting the latency-sensitive workload's
// p50 and p99, the same four series the figure plots.
//
// Flags:
//   --rps=10,20,30,40,50   load levels
//   --duration=15          measured seconds per run
//   --warmup=4 --cooldown=2
//   --seed=42
//   --csv                  also emit CSV for plotting

#include <cstdio>
#include <string>
#include <vector>

#include "stats/table.h"
#include "util/flags.h"
#include "util/strings.h"
#include "workload/elibrary_experiment.h"

using namespace meshnet;

namespace {

std::vector<double> parse_rps_list(const std::string& text) {
  std::vector<double> out;
  for (const auto part : util::split(text, ',')) {
    const auto v = util::parse_u64(util::trim(part));
    if (v) out.push_back(static_cast<double>(*v));
  }
  if (out.empty()) out = {10, 20, 30, 40, 50};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const std::vector<double> rps_levels =
      parse_rps_list(flags.get_or("rps", "10,20,30,40,50"));
  const auto duration = sim::seconds(flags.get_int_or("duration", 15));
  const auto warmup = sim::seconds(flags.get_int_or("warmup", 4));
  const auto cooldown = sim::seconds(flags.get_int_or("cooldown", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int_or("seed", 42));

  std::printf(
      "FIG4: HTTP request latency of the latency-sensitive workload vs "
      "offered RPS,\nwith and without cross-layer optimization "
      "(e-library app, 1 Gbps reviews->ratings bottleneck,\nLI responses "
      "~200x larger, uniform-random arrivals).\n\n");

  stats::Table table({"RPS", "p50 w/o (ms)", "p50 w/ (ms)", "p99 w/o (ms)",
                      "p99 w/ (ms)", "p50 gain", "p99 gain", "bneck util"});

  struct Row {
    double rps, p50_base, p50_opt, p99_base, p99_opt, util;
  };
  std::vector<Row> rows;

  for (const double rps : rps_levels) {
    Row row{};
    row.rps = rps;
    for (const bool cross_layer : {false, true}) {
      workload::ElibraryExperimentConfig config;
      config.ls_rps = rps;
      config.li_rps = rps;
      config.duration = duration;
      config.warmup = warmup;
      config.cooldown = cooldown;
      config.seed = seed;
      config.cross_layer = cross_layer;
      const auto result = workload::run_elibrary_experiment(config);
      if (cross_layer) {
        row.p50_opt = result.ls.p50_ms;
        row.p99_opt = result.ls.p99_ms;
      } else {
        row.p50_base = result.ls.p50_ms;
        row.p99_base = result.ls.p99_ms;
      }
      row.util = result.bottleneck_utilization;
      std::fprintf(stderr, "  [rps=%g %s] LS p50=%.1f p99=%.1f  LI p99=%.1f\n",
                   rps, cross_layer ? "w/ " : "w/o", result.ls.p50_ms,
                   result.ls.p99_ms, result.li.p99_ms);
    }
    rows.push_back(row);
    table.add_row({stats::Table::num(row.rps, 0),
                   stats::Table::num(row.p50_base, 1),
                   stats::Table::num(row.p50_opt, 1),
                   stats::Table::num(row.p99_base, 1),
                   stats::Table::num(row.p99_opt, 1),
                   stats::Table::num(row.p50_base / row.p50_opt, 2) + "x",
                   stats::Table::num(row.p99_base / row.p99_opt, 2) + "x",
                   stats::Table::num(row.util, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());

  // The paper's headline claim: ~1.5x improvement in p50 and p99 at load.
  const Row& top = rows.back();
  std::printf("at %.0f RPS: cross-layer optimization improves LS p50 %.2fx "
              "and p99 %.2fx (paper: ~1.5x)\n",
              top.rps, top.p50_base / top.p50_opt,
              top.p99_base / top.p99_opt);

  if (flags.get_bool_or("csv", false)) {
    stats::Table csv({"rps", "p50_wo_ms", "p50_w_ms", "p99_wo_ms",
                      "p99_w_ms", "util"});
    for (const Row& r : rows) {
      csv.add_row({stats::Table::num(r.rps, 0), stats::Table::num(r.p50_base, 3),
                   stats::Table::num(r.p50_opt, 3),
                   stats::Table::num(r.p99_base, 3),
                   stats::Table::num(r.p99_opt, 3),
                   stats::Table::num(r.util, 4)});
    }
    std::printf("\n%s", csv.to_csv().c_str());
  }
  return 0;
}
