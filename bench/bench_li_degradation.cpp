// TXT-LI — reproduces the paper's §4.3 text claim: "This improvement
// comes at the cost of degrading the performance of the latency-
// insensitive workloads (less than 5% increase in the p99 response
// latency)."
//
// Same experiment as FIG4, but the reported series is the latency-
// INSENSITIVE workload's p99 with and without the optimization, plus the
// relative degradation. Runs through the sweep harness (--threads).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "stats/table.h"
#include "workload/bench_harness.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "li_degradation", /*default_duration_s=*/15,
      /*default_seed=*/42, {"warmup"});
  const auto duration = sim::seconds(options.duration_s);
  const auto warmup =
      sim::seconds(options.flags.get_int_or("warmup", 4));
  const auto seed = options.seed;

  std::printf(
      "TXT-LI: latency-insensitive workload p99 with vs without cross-layer "
      "optimization\n(paper: < 5%% increase in p99).\n\n");

  const std::vector<double> rps_levels = {10.0, 20.0, 30.0, 40.0, 50.0};
  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::ElibraryExperimentResult> outcomes(
      rps_levels.size() * 2);
  for (std::size_t level = 0; level < rps_levels.size(); ++level) {
    const double rps = rps_levels[level];
    for (const bool cross_layer : {false, true}) {
      const std::size_t slot = level * 2 + (cross_layer ? 1 : 0);
      runner.add({{"rps", stats::Table::num(rps, 0)},
                  {"cross_layer", cross_layer ? "on" : "off"}},
                 [rps, cross_layer, duration, warmup, seed, slot, &outcomes] {
                   workload::ElibraryExperimentConfig config;
                   config.ls_rps = rps;
                   config.li_rps = rps;
                   config.duration = duration;
                   config.warmup = warmup;
                   config.seed = seed;
                   config.cross_layer = cross_layer;
                   outcomes[slot] = workload::run_elibrary_experiment(config);
                   return workload::elibrary_point_metrics(outcomes[slot]);
                 });
    }
  }
  const workload::SweepResult sweep = runner.run();

  stats::Table table({"RPS", "LI p99 w/o (ms)", "LI p99 w/ (ms)",
                      "delta", "LI p50 w/o (ms)", "LI p50 w/ (ms)",
                      "LS p99 gain"});

  double worst_delta = 0.0;
  for (std::size_t level = 0; level < rps_levels.size(); ++level) {
    const workload::ElibraryExperimentResult& base = outcomes[level * 2];
    const workload::ElibraryExperimentResult& opt = outcomes[level * 2 + 1];
    const double delta =
        base.li.p99_ms > 0 ? (opt.li.p99_ms - base.li.p99_ms) / base.li.p99_ms
                           : 0.0;
    worst_delta = std::max(worst_delta, delta);
    table.add_row({stats::Table::num(rps_levels[level], 0),
                   stats::Table::num(base.li.p99_ms, 1),
                   stats::Table::num(opt.li.p99_ms, 1),
                   stats::Table::num(delta * 100.0, 1) + "%",
                   stats::Table::num(base.li.p50_ms, 1),
                   stats::Table::num(opt.li.p50_ms, 1),
                   stats::Table::num(base.ls.p99_ms / opt.ls.p99_ms, 2) + "x"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("worst LI p99 degradation across loads: %.1f%% (paper: < 5%%)\n",
              worst_delta * 100.0);

  const stats::BenchReport report = workload::make_bench_report(
      "li_degradation",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"warmup_s",
        std::to_string(options.flags.get_int_or("warmup", 4))},
       {"rps", "10,20,30,40,50"}},
      sweep);
  return workload::finish_harness(report, options);
}
