// TXT-LI — reproduces the paper's §4.3 text claim: "This improvement
// comes at the cost of degrading the performance of the latency-
// insensitive workloads (less than 5% increase in the p99 response
// latency)."
//
// Same experiment as FIG4, but the reported series is the latency-
// INSENSITIVE workload's p99 with and without the optimization, plus the
// relative degradation.

#include <cstdio>
#include <vector>

#include "stats/table.h"
#include "util/flags.h"
#include "workload/elibrary_experiment.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const auto duration = sim::seconds(flags.get_int_or("duration", 15));
  const auto warmup = sim::seconds(flags.get_int_or("warmup", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int_or("seed", 42));

  std::printf(
      "TXT-LI: latency-insensitive workload p99 with vs without cross-layer "
      "optimization\n(paper: < 5%% increase in p99).\n\n");

  stats::Table table({"RPS", "LI p99 w/o (ms)", "LI p99 w/ (ms)",
                      "delta", "LI p50 w/o (ms)", "LI p50 w/ (ms)",
                      "LS p99 gain"});

  double worst_delta = 0.0;
  for (const double rps : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    workload::ElibraryExperimentResult base, opt;
    for (const bool cross_layer : {false, true}) {
      workload::ElibraryExperimentConfig config;
      config.ls_rps = rps;
      config.li_rps = rps;
      config.duration = duration;
      config.warmup = warmup;
      config.seed = seed;
      config.cross_layer = cross_layer;
      (cross_layer ? opt : base) = workload::run_elibrary_experiment(config);
    }
    const double delta =
        base.li.p99_ms > 0 ? (opt.li.p99_ms - base.li.p99_ms) / base.li.p99_ms
                           : 0.0;
    worst_delta = std::max(worst_delta, delta);
    table.add_row({stats::Table::num(rps, 0),
                   stats::Table::num(base.li.p99_ms, 1),
                   stats::Table::num(opt.li.p99_ms, 1),
                   stats::Table::num(delta * 100.0, 1) + "%",
                   stats::Table::num(base.li.p50_ms, 1),
                   stats::Table::num(opt.li.p50_ms, 1),
                   stats::Table::num(base.ls.p99_ms / opt.ls.p99_ms, 2) + "x"});
    std::fprintf(stderr, "  [rps=%g] done\n", rps);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("worst LI p99 degradation across loads: %.1f%% (paper: < 5%%)\n",
              worst_delta * 100.0);
  return 0;
}
