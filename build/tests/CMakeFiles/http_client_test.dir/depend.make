# Empty dependencies file for http_client_test.
# This may be replaced when dependencies are built.
