file(REMOVE_RECURSE
  "CMakeFiles/http_client_test.dir/http_client_test.cc.o"
  "CMakeFiles/http_client_test.dir/http_client_test.cc.o.d"
  "http_client_test"
  "http_client_test.pdb"
  "http_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
