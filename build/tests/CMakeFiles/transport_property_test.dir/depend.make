# Empty dependencies file for transport_property_test.
# This may be replaced when dependencies are built.
