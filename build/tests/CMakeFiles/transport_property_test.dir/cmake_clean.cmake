file(REMOVE_RECURSE
  "CMakeFiles/transport_property_test.dir/transport_property_test.cc.o"
  "CMakeFiles/transport_property_test.dir/transport_property_test.cc.o.d"
  "transport_property_test"
  "transport_property_test.pdb"
  "transport_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
