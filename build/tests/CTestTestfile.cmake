# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/qdisc_property_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/transport_property_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/http_client_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
