# Empty dependencies file for bench_li_degradation.
# This may be replaced when dependencies are built.
