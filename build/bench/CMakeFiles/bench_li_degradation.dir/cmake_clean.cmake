file(REMOVE_RECURSE
  "CMakeFiles/bench_li_degradation.dir/bench_li_degradation.cpp.o"
  "CMakeFiles/bench_li_degradation.dir/bench_li_degradation.cpp.o.d"
  "bench_li_degradation"
  "bench_li_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_li_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
