file(REMOVE_RECURSE
  "CMakeFiles/bench_scavenger.dir/bench_scavenger.cpp.o"
  "CMakeFiles/bench_scavenger.dir/bench_scavenger.cpp.o.d"
  "bench_scavenger"
  "bench_scavenger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scavenger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
