# Empty dependencies file for bench_scavenger.
# This may be replaced when dependencies are built.
