# Empty compiler generated dependencies file for bench_lb_policies.
# This may be replaced when dependencies are built.
