file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_policies.dir/bench_lb_policies.cpp.o"
  "CMakeFiles/bench_lb_policies.dir/bench_lb_policies.cpp.o.d"
  "bench_lb_policies"
  "bench_lb_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
