file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_priority.dir/bench_compute_priority.cpp.o"
  "CMakeFiles/bench_compute_priority.dir/bench_compute_priority.cpp.o.d"
  "bench_compute_priority"
  "bench_compute_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
