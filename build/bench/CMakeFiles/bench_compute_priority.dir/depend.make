# Empty dependencies file for bench_compute_priority.
# This may be replaced when dependencies are built.
