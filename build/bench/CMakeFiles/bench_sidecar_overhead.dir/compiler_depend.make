# Empty compiler generated dependencies file for bench_sidecar_overhead.
# This may be replaced when dependencies are built.
