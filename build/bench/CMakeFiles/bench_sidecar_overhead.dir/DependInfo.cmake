
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sidecar_overhead.cpp" "bench/CMakeFiles/bench_sidecar_overhead.dir/bench_sidecar_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_sidecar_overhead.dir/bench_sidecar_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/meshnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/meshnet_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/meshnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/meshnet_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/meshnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/meshnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/meshnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/meshnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/meshnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meshnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/meshnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
