file(REMOVE_RECURSE
  "CMakeFiles/bench_sidecar_overhead.dir/bench_sidecar_overhead.cpp.o"
  "CMakeFiles/bench_sidecar_overhead.dir/bench_sidecar_overhead.cpp.o.d"
  "bench_sidecar_overhead"
  "bench_sidecar_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sidecar_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
