file(REMOVE_RECURSE
  "libmeshnet_sim.a"
)
