file(REMOVE_RECURSE
  "CMakeFiles/meshnet_sim.dir/random.cc.o"
  "CMakeFiles/meshnet_sim.dir/random.cc.o.d"
  "CMakeFiles/meshnet_sim.dir/simulator.cc.o"
  "CMakeFiles/meshnet_sim.dir/simulator.cc.o.d"
  "libmeshnet_sim.a"
  "libmeshnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
