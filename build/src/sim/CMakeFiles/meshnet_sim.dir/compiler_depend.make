# Empty compiler generated dependencies file for meshnet_sim.
# This may be replaced when dependencies are built.
