# Empty compiler generated dependencies file for meshnet_http.
# This may be replaced when dependencies are built.
