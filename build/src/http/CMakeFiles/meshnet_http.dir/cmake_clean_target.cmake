file(REMOVE_RECURSE
  "libmeshnet_http.a"
)
