file(REMOVE_RECURSE
  "CMakeFiles/meshnet_http.dir/codec.cc.o"
  "CMakeFiles/meshnet_http.dir/codec.cc.o.d"
  "CMakeFiles/meshnet_http.dir/header_map.cc.o"
  "CMakeFiles/meshnet_http.dir/header_map.cc.o.d"
  "CMakeFiles/meshnet_http.dir/message.cc.o"
  "CMakeFiles/meshnet_http.dir/message.cc.o.d"
  "libmeshnet_http.a"
  "libmeshnet_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
