
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/codec.cc" "src/http/CMakeFiles/meshnet_http.dir/codec.cc.o" "gcc" "src/http/CMakeFiles/meshnet_http.dir/codec.cc.o.d"
  "/root/repo/src/http/header_map.cc" "src/http/CMakeFiles/meshnet_http.dir/header_map.cc.o" "gcc" "src/http/CMakeFiles/meshnet_http.dir/header_map.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/meshnet_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/meshnet_http.dir/message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/meshnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
