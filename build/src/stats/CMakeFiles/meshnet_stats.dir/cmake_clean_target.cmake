file(REMOVE_RECURSE
  "libmeshnet_stats.a"
)
