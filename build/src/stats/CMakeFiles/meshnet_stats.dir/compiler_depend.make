# Empty compiler generated dependencies file for meshnet_stats.
# This may be replaced when dependencies are built.
