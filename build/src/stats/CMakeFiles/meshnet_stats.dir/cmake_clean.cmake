file(REMOVE_RECURSE
  "CMakeFiles/meshnet_stats.dir/histogram.cc.o"
  "CMakeFiles/meshnet_stats.dir/histogram.cc.o.d"
  "CMakeFiles/meshnet_stats.dir/running_stats.cc.o"
  "CMakeFiles/meshnet_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/meshnet_stats.dir/table.cc.o"
  "CMakeFiles/meshnet_stats.dir/table.cc.o.d"
  "libmeshnet_stats.a"
  "libmeshnet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
