file(REMOVE_RECURSE
  "libmeshnet_transport.a"
)
