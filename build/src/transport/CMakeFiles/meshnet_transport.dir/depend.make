# Empty dependencies file for meshnet_transport.
# This may be replaced when dependencies are built.
