file(REMOVE_RECURSE
  "CMakeFiles/meshnet_transport.dir/congestion.cc.o"
  "CMakeFiles/meshnet_transport.dir/congestion.cc.o.d"
  "CMakeFiles/meshnet_transport.dir/connection.cc.o"
  "CMakeFiles/meshnet_transport.dir/connection.cc.o.d"
  "CMakeFiles/meshnet_transport.dir/transport_host.cc.o"
  "CMakeFiles/meshnet_transport.dir/transport_host.cc.o.d"
  "libmeshnet_transport.a"
  "libmeshnet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
