
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/congestion.cc" "src/transport/CMakeFiles/meshnet_transport.dir/congestion.cc.o" "gcc" "src/transport/CMakeFiles/meshnet_transport.dir/congestion.cc.o.d"
  "/root/repo/src/transport/connection.cc" "src/transport/CMakeFiles/meshnet_transport.dir/connection.cc.o" "gcc" "src/transport/CMakeFiles/meshnet_transport.dir/connection.cc.o.d"
  "/root/repo/src/transport/transport_host.cc" "src/transport/CMakeFiles/meshnet_transport.dir/transport_host.cc.o" "gcc" "src/transport/CMakeFiles/meshnet_transport.dir/transport_host.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/meshnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meshnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/meshnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
