# Empty compiler generated dependencies file for meshnet_net.
# This may be replaced when dependencies are built.
