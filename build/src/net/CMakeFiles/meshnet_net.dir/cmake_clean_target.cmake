file(REMOVE_RECURSE
  "libmeshnet_net.a"
)
