file(REMOVE_RECURSE
  "CMakeFiles/meshnet_net.dir/address.cc.o"
  "CMakeFiles/meshnet_net.dir/address.cc.o.d"
  "CMakeFiles/meshnet_net.dir/link.cc.o"
  "CMakeFiles/meshnet_net.dir/link.cc.o.d"
  "CMakeFiles/meshnet_net.dir/network.cc.o"
  "CMakeFiles/meshnet_net.dir/network.cc.o.d"
  "CMakeFiles/meshnet_net.dir/qdisc.cc.o"
  "CMakeFiles/meshnet_net.dir/qdisc.cc.o.d"
  "libmeshnet_net.a"
  "libmeshnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
