file(REMOVE_RECURSE
  "libmeshnet_mesh.a"
)
