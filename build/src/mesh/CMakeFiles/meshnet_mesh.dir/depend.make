# Empty dependencies file for meshnet_mesh.
# This may be replaced when dependencies are built.
