file(REMOVE_RECURSE
  "CMakeFiles/meshnet_mesh.dir/builtin_filters.cc.o"
  "CMakeFiles/meshnet_mesh.dir/builtin_filters.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/circuit_breaker.cc.o"
  "CMakeFiles/meshnet_mesh.dir/circuit_breaker.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/control_plane.cc.o"
  "CMakeFiles/meshnet_mesh.dir/control_plane.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/filter.cc.o"
  "CMakeFiles/meshnet_mesh.dir/filter.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/http_client.cc.o"
  "CMakeFiles/meshnet_mesh.dir/http_client.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/load_balancer.cc.o"
  "CMakeFiles/meshnet_mesh.dir/load_balancer.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/sidecar.cc.o"
  "CMakeFiles/meshnet_mesh.dir/sidecar.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/telemetry.cc.o"
  "CMakeFiles/meshnet_mesh.dir/telemetry.cc.o.d"
  "CMakeFiles/meshnet_mesh.dir/tracing.cc.o"
  "CMakeFiles/meshnet_mesh.dir/tracing.cc.o.d"
  "libmeshnet_mesh.a"
  "libmeshnet_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
