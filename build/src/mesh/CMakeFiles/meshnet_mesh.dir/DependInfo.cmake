
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/builtin_filters.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/builtin_filters.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/builtin_filters.cc.o.d"
  "/root/repo/src/mesh/circuit_breaker.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/circuit_breaker.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/circuit_breaker.cc.o.d"
  "/root/repo/src/mesh/control_plane.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/control_plane.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/control_plane.cc.o.d"
  "/root/repo/src/mesh/filter.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/filter.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/filter.cc.o.d"
  "/root/repo/src/mesh/http_client.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/http_client.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/http_client.cc.o.d"
  "/root/repo/src/mesh/load_balancer.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/load_balancer.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/load_balancer.cc.o.d"
  "/root/repo/src/mesh/sidecar.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/sidecar.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/sidecar.cc.o.d"
  "/root/repo/src/mesh/telemetry.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/telemetry.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/telemetry.cc.o.d"
  "/root/repo/src/mesh/tracing.cc" "src/mesh/CMakeFiles/meshnet_mesh.dir/tracing.cc.o" "gcc" "src/mesh/CMakeFiles/meshnet_mesh.dir/tracing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/meshnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/meshnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/meshnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/meshnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/meshnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meshnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/meshnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
