# Empty dependencies file for meshnet_workload.
# This may be replaced when dependencies are built.
