file(REMOVE_RECURSE
  "CMakeFiles/meshnet_workload.dir/elibrary_experiment.cc.o"
  "CMakeFiles/meshnet_workload.dir/elibrary_experiment.cc.o.d"
  "CMakeFiles/meshnet_workload.dir/generator.cc.o"
  "CMakeFiles/meshnet_workload.dir/generator.cc.o.d"
  "CMakeFiles/meshnet_workload.dir/recorder.cc.o"
  "CMakeFiles/meshnet_workload.dir/recorder.cc.o.d"
  "libmeshnet_workload.a"
  "libmeshnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
