file(REMOVE_RECURSE
  "libmeshnet_workload.a"
)
