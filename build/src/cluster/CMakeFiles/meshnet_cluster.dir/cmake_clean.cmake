file(REMOVE_RECURSE
  "CMakeFiles/meshnet_cluster.dir/cluster.cc.o"
  "CMakeFiles/meshnet_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/meshnet_cluster.dir/service_registry.cc.o"
  "CMakeFiles/meshnet_cluster.dir/service_registry.cc.o.d"
  "libmeshnet_cluster.a"
  "libmeshnet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
