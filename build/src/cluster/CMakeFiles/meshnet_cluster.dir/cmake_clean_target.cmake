file(REMOVE_RECURSE
  "libmeshnet_cluster.a"
)
