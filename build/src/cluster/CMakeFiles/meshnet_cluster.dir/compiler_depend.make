# Empty compiler generated dependencies file for meshnet_cluster.
# This may be replaced when dependencies are built.
