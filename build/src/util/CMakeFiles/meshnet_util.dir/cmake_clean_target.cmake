file(REMOVE_RECURSE
  "libmeshnet_util.a"
)
