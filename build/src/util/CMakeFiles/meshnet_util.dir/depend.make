# Empty dependencies file for meshnet_util.
# This may be replaced when dependencies are built.
