file(REMOVE_RECURSE
  "CMakeFiles/meshnet_util.dir/flags.cc.o"
  "CMakeFiles/meshnet_util.dir/flags.cc.o.d"
  "CMakeFiles/meshnet_util.dir/logging.cc.o"
  "CMakeFiles/meshnet_util.dir/logging.cc.o.d"
  "CMakeFiles/meshnet_util.dir/strings.cc.o"
  "CMakeFiles/meshnet_util.dir/strings.cc.o.d"
  "libmeshnet_util.a"
  "libmeshnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
