# Empty compiler generated dependencies file for meshnet_core.
# This may be replaced when dependencies are built.
