file(REMOVE_RECURSE
  "CMakeFiles/meshnet_core.dir/classifier.cc.o"
  "CMakeFiles/meshnet_core.dir/classifier.cc.o.d"
  "CMakeFiles/meshnet_core.dir/cross_layer.cc.o"
  "CMakeFiles/meshnet_core.dir/cross_layer.cc.o.d"
  "CMakeFiles/meshnet_core.dir/priority.cc.o"
  "CMakeFiles/meshnet_core.dir/priority.cc.o.d"
  "CMakeFiles/meshnet_core.dir/priority_router.cc.o"
  "CMakeFiles/meshnet_core.dir/priority_router.cc.o.d"
  "CMakeFiles/meshnet_core.dir/provenance.cc.o"
  "CMakeFiles/meshnet_core.dir/provenance.cc.o.d"
  "CMakeFiles/meshnet_core.dir/sdn_coordinator.cc.o"
  "CMakeFiles/meshnet_core.dir/sdn_coordinator.cc.o.d"
  "CMakeFiles/meshnet_core.dir/tc_manager.cc.o"
  "CMakeFiles/meshnet_core.dir/tc_manager.cc.o.d"
  "libmeshnet_core.a"
  "libmeshnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
