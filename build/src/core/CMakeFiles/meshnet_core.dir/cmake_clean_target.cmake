file(REMOVE_RECURSE
  "libmeshnet_core.a"
)
