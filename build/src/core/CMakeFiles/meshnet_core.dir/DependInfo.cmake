
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/meshnet_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/cross_layer.cc" "src/core/CMakeFiles/meshnet_core.dir/cross_layer.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/cross_layer.cc.o.d"
  "/root/repo/src/core/priority.cc" "src/core/CMakeFiles/meshnet_core.dir/priority.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/priority.cc.o.d"
  "/root/repo/src/core/priority_router.cc" "src/core/CMakeFiles/meshnet_core.dir/priority_router.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/priority_router.cc.o.d"
  "/root/repo/src/core/provenance.cc" "src/core/CMakeFiles/meshnet_core.dir/provenance.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/provenance.cc.o.d"
  "/root/repo/src/core/sdn_coordinator.cc" "src/core/CMakeFiles/meshnet_core.dir/sdn_coordinator.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/sdn_coordinator.cc.o.d"
  "/root/repo/src/core/tc_manager.cc" "src/core/CMakeFiles/meshnet_core.dir/tc_manager.cc.o" "gcc" "src/core/CMakeFiles/meshnet_core.dir/tc_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/meshnet_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/meshnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/meshnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meshnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/meshnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/meshnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/meshnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/meshnet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
