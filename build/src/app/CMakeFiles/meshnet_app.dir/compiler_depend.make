# Empty compiler generated dependencies file for meshnet_app.
# This may be replaced when dependencies are built.
