file(REMOVE_RECURSE
  "libmeshnet_app.a"
)
