file(REMOVE_RECURSE
  "CMakeFiles/meshnet_app.dir/elibrary.cc.o"
  "CMakeFiles/meshnet_app.dir/elibrary.cc.o.d"
  "CMakeFiles/meshnet_app.dir/http_server.cc.o"
  "CMakeFiles/meshnet_app.dir/http_server.cc.o.d"
  "CMakeFiles/meshnet_app.dir/microservice.cc.o"
  "CMakeFiles/meshnet_app.dir/microservice.cc.o.d"
  "libmeshnet_app.a"
  "libmeshnet_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshnet_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
