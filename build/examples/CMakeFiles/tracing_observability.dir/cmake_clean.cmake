file(REMOVE_RECURSE
  "CMakeFiles/tracing_observability.dir/tracing_observability.cpp.o"
  "CMakeFiles/tracing_observability.dir/tracing_observability.cpp.o.d"
  "tracing_observability"
  "tracing_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
