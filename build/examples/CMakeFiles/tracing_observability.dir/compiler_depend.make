# Empty compiler generated dependencies file for tracing_observability.
# This may be replaced when dependencies are built.
