file(REMOVE_RECURSE
  "CMakeFiles/elibrary_priority.dir/elibrary_priority.cpp.o"
  "CMakeFiles/elibrary_priority.dir/elibrary_priority.cpp.o.d"
  "elibrary_priority"
  "elibrary_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elibrary_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
