# Empty compiler generated dependencies file for elibrary_priority.
# This may be replaced when dependencies are built.
