# Empty dependencies file for resilience.
# This may be replaced when dependencies are built.
