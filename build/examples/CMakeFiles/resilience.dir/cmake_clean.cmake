file(REMOVE_RECURSE
  "CMakeFiles/resilience.dir/resilience.cpp.o"
  "CMakeFiles/resilience.dir/resilience.cpp.o.d"
  "resilience"
  "resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
