// Mesh resilience features (paper §2: "retrying requests and implementing
// a 'circuit breaker' pattern to avoid underperforming instances").
//
// A two-replica service where one replica starts failing mid-run. Shows:
//   phase 1  both replicas healthy - round robin spreads traffic;
//   phase 2  replica v2 starts returning 500s - retries mask the
//            failures, then the circuit breaker ejects v2 entirely;
//   phase 3  v2 recovers - the half-open probe re-admits it.
//
//   ./resilience

#include <cstdio>
#include <optional>

#include "app/microservice.h"
#include "mesh/control_plane.h"
#include "mesh/http_client.h"
#include "util/flags.h"

using namespace meshnet;

int main(int, char**) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& client_pod = cluster.add_pod("node-a", "client", "client", 0);
  cluster::Pod& v1 = cluster.add_pod("node-a", "server-v1", "server", 8080);
  cluster::Pod& v2 = cluster.add_pod("node-a", "server-v2", "server", 8080);

  mesh::MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.breaker.consecutive_failures = 3;
  policies.breaker.open_duration = sim::seconds(2);
  mesh::ControlPlane control_plane(sim, cluster, policies);
  control_plane.tracer().set_retention(0);
  mesh::Sidecar& client_sidecar = control_plane.inject_sidecar(client_pod, {});
  control_plane.inject_sidecar(v1, {});
  control_plane.inject_sidecar(v2, {});
  control_plane.start();

  bool v2_failing = false;
  app::Microservice app_v1(sim, v1, [](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.response_bytes = 32;
    return plan;
  });
  app::Microservice app_v2(sim, v2, [&](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.response_bytes = 32;
    if (v2_failing) plan.status = 500;
    return plan;
  });

  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{client_pod.ip(), 15001}, {});

  auto run_phase = [&](const char* label, int count) {
    int ok = 0, failed = 0;
    for (int i = 0; i < count; ++i) {
      http::HttpRequest request;
      request.path = "/work";
      request.headers.set(http::headers::kHost, "server");
      client.request(std::move(request),
                     [&](std::optional<http::HttpResponse> response,
                         const std::string&) {
                       if (response && response->ok()) {
                         ++ok;
                       } else {
                         ++failed;
                       }
                     });
      sim.run_until(sim.now() + sim::milliseconds(100));
    }
    const auto& breaker = client_sidecar.breaker_for("server", "server-v2");
    std::printf(
        "%-28s ok=%3d failed=%2d  v1 served=%3llu v2 served=%3llu  "
        "retries=%llu  breaker(v2)=%s\n",
        label, ok, failed,
        static_cast<unsigned long long>(app_v1.requests_served()),
        static_cast<unsigned long long>(app_v2.requests_served()),
        static_cast<unsigned long long>(
            client_sidecar.stats().upstream_retries),
        std::string(mesh::circuit_state_name(breaker.state())).c_str());
  };

  run_phase("phase 1: both healthy", 20);
  v2_failing = true;
  run_phase("phase 2: v2 returns 500s", 20);
  run_phase("phase 2b: breaker open", 20);
  v2_failing = false;
  sim.run_until(sim.now() + sim::seconds(3));  // past the open duration
  run_phase("phase 3: v2 recovered", 20);
  return 0;
}
