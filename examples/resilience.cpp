// Mesh resilience features (paper §2: "retrying requests and implementing
// a 'circuit breaker' pattern to avoid underperforming instances").
//
// A two-replica service where one replica starts failing mid-run. Shows:
//   phase 1  both replicas healthy - round robin spreads traffic;
//   phase 2  replica v2 starts returning 500s - retries mask the
//            failures, then the circuit breaker ejects v2 entirely;
//   phase 3  v2 recovers - the half-open probe re-admits it.
//
//   ./resilience

#include <cstdio>
#include <optional>

#include "app/mesh_builder.h"
#include "mesh/http_client.h"
#include "util/flags.h"

using namespace meshnet;

int main(int, char**) {
  sim::Simulator sim;

  // Pods, sidecars and policy come from a spec; "client" is a
  // sidecar-fronted pod with no app (we drive its sidecar directly).
  cluster::MeshSpec spec;
  spec.nodes = {"node-a"};
  spec.policies.retry.max_retries = 2;
  spec.policies.breaker.consecutive_failures = 3;
  spec.policies.breaker.open_duration = sim::seconds(2);
  cluster::ServiceSpec client_spec;
  client_spec.name = "client";
  client_spec.port = 0;  // not a routable endpoint
  cluster::ServiceSpec server;
  server.name = "server";
  server.replicas = 2;
  server.port = 8080;
  spec.services = {client_spec, server};

  auto mesh = cluster::MeshBuilder(sim).build(std::move(spec));
  mesh::ControlPlane& control_plane = mesh->control_plane();
  control_plane.tracer().set_retention(0);
  mesh::Sidecar& client_sidecar = *control_plane.sidecar_for("client-v1");
  cluster::Pod& client_pod = *mesh->pod("client-v1");

  // The server apps are hand-built: the two replicas run different code
  // (v2 can be told to fail), which a per-service spec handler cannot
  // express.
  bool v2_failing = false;
  app::Microservice app_v1(sim, *mesh->pod("server-v1"),
                           [](const http::HttpRequest&) {
                             app::HandlerResult plan;
                             plan.response_bytes = 32;
                             return plan;
                           });
  app::Microservice app_v2(sim, *mesh->pod("server-v2"),
                           [&](const http::HttpRequest&) {
                             app::HandlerResult plan;
                             plan.response_bytes = 32;
                             if (v2_failing) plan.status = 500;
                             return plan;
                           });

  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{client_pod.ip(), 15001}, {});

  auto run_phase = [&](const char* label, int count) {
    int ok = 0, failed = 0;
    for (int i = 0; i < count; ++i) {
      http::HttpRequest request;
      request.path = "/work";
      request.headers.set(http::headers::kHost, "server");
      client.request(std::move(request),
                     [&](std::optional<http::HttpResponse> response,
                         const std::string&) {
                       if (response && response->ok()) {
                         ++ok;
                       } else {
                         ++failed;
                       }
                     });
      sim.run_until(sim.now() + sim::milliseconds(100));
    }
    const auto& breaker = client_sidecar.breaker_for("server", "server-v2");
    std::printf(
        "%-28s ok=%3d failed=%2d  v1 served=%3llu v2 served=%3llu  "
        "retries=%llu  breaker(v2)=%s\n",
        label, ok, failed,
        static_cast<unsigned long long>(app_v1.requests_served()),
        static_cast<unsigned long long>(app_v2.requests_served()),
        static_cast<unsigned long long>(
            client_sidecar.stats().upstream_retries),
        std::string(mesh::circuit_state_name(breaker.state())).c_str());
  };

  run_phase("phase 1: both healthy", 20);
  v2_failing = true;
  run_phase("phase 2: v2 returns 500s", 20);
  run_phase("phase 2b: breaker open", 20);
  v2_failing = false;
  sim.run_until(sim.now() + sim::seconds(3));  // past the open duration
  run_phase("phase 3: v2 recovered", 20);
  return 0;
}
