// The paper's case study as a runnable demo: the e-library application
// serving a mix of latency-sensitive page loads and latency-insensitive
// analytics scans, first without and then with cross-layer
// prioritization, printing the before/after latency comparison plus the
// cross-layer machinery's own view (tc rules, provenance tables,
// classifier counters).
//
//   ./elibrary_priority [--rps=30] [--duration=10] [--seed=42]
//                       [--threads=N] [--json-out[=PATH]] [--baseline=P]
//
// The two arms (with/without cross-layer) are independent sweep points,
// so --threads=2 runs them in parallel with bit-identical output.

#include <cstdio>
#include <vector>

#include "core/cross_layer.h"
#include "stats/table.h"
#include "workload/bench_harness.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "elibrary_priority", /*default_duration_s=*/10,
      /*default_seed=*/42, {"rps"});
  const double rps = options.flags.get_double_or("rps", 30.0);
  const auto duration = sim::seconds(options.duration_s);
  const auto seed = options.seed;

  std::printf("e-library, %g RPS per workload, %lld s measured\n\n", rps,
              static_cast<long long>(options.duration_s));
  std::printf("topology (paper Fig. 3):\n"
              "  client -> [ingress gateway] -> frontend -> { details,\n"
              "             reviews-v1 (priority=high) | reviews-v2\n"
              "             (priority=low) } ; reviews -> ratings\n"
              "  all vNICs 15 Gbps, ratings vNIC 1 Gbps (bottleneck)\n\n");

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::ElibraryExperimentResult> results(2);
  for (const bool cross_layer : {false, true}) {
    const std::size_t slot = cross_layer ? 1 : 0;
    runner.add({{"cross_layer", cross_layer ? "on" : "off"}},
               [rps, duration, seed, cross_layer, slot, &results] {
                 workload::ElibraryExperimentConfig config;
                 config.ls_rps = rps;
                 config.li_rps = rps;
                 config.duration = duration;
                 config.seed = seed;
                 config.cross_layer = cross_layer;
                 results[slot] = workload::run_elibrary_experiment(config);
                 return workload::elibrary_point_metrics(results[slot]);
               });
  }
  const workload::SweepResult sweep = runner.run();
  for (const bool cross_layer : {false, true}) {
    std::printf("%s cross-layer optimization: done (%llu events)\n",
                cross_layer ? "with   " : "without",
                static_cast<unsigned long long>(
                    results[cross_layer ? 1 : 0].events_executed));
  }

  stats::Table table({"metric", "w/o cross-layer", "w/ cross-layer",
                      "change"});
  auto row = [&](const char* name, double base, double opt, bool ratio) {
    table.add_row({name, stats::Table::num(base, 1),
                   stats::Table::num(opt, 1),
                   ratio ? stats::Table::num(base / opt, 2) + "x better"
                         : stats::Table::num((opt - base) / base * 100.0, 1) +
                               "%"});
  };
  row("LS p50 (ms)", results[0].ls.p50_ms, results[1].ls.p50_ms, true);
  row("LS p99 (ms)", results[0].ls.p99_ms, results[1].ls.p99_ms, true);
  row("LI p50 (ms)", results[0].li.p50_ms, results[1].li.p50_ms, false);
  row("LI p99 (ms)", results[0].li.p99_ms, results[1].li.p99_ms, false);
  std::printf("\n%s\n", table.to_string().c_str());

  std::printf("bottleneck utilization: %.2f (w/o) vs %.2f (w/)\n",
              results[0].bottleneck_utilization,
              results[1].bottleneck_utilization);
  std::printf("priority bands at the bottleneck (w/ only): high %.1f MB, "
              "low %.1f MB\n\n",
              static_cast<double>(results[1].high_band_bytes) / 1e6,
              static_cast<double>(results[1].low_band_bytes) / 1e6);

  // Show the installed machinery on a fresh instance (the experiment
  // helper tears its instance down).
  sim::Simulator sim;
  app::Elibrary app(sim, {});
  core::CrossLayerController controller(
      app.control_plane(), app.cluster(),
      workload::ElibraryExperimentConfig::default_cross_layer_config());
  controller.install();
  std::printf("installed tc rules (`tc qdisc show` equivalent):\n%s\n",
              controller.tc().show().c_str());

  const stats::BenchReport report = workload::make_bench_report(
      "elibrary_priority",
      {{"seed", std::to_string(seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"rps", stats::Table::num(rps, 0)}},
      sweep);
  return workload::finish_harness(report, options);
}
