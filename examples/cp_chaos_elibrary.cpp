// CHAOS_CP e-library: control-plane outage under pod churn.
//
// Runs the LS/LI e-library workload twice:
//   arm 1  outage  — the control plane crashes for --outage-duration-s
//          while a churn storm alternately kills and restarts the two
//          reviews replicas; the data plane serves stale-while-revalidate
//          config until the control plane recovers and reconverges the
//          mesh with paced, jittered pushes;
//   arm 2  control — identical run with the control plane up throughout
//          (the goodput normalization baseline).
// Prints per-phase LS goodput for both arms, the during-outage goodput
// ratio, peak discovery staleness, reconvergence time and the push
// channel counters (attempts / acks / retries / noop-skips / rollbacks).
//
//   ./cp_chaos_elibrary [--seed=42] [--ls-rps=30] [--li-rps=10]
//                       [--duration=46] [--outage-duration-s=30]
//                       [--churn-period-s=4] [--threads=N]
//                       [--json-out[=PATH]] [--baseline=P]
//
// The two arms are independent sweep points (--threads=2 runs them in
// parallel, bit-identically).
//
// Acceptance (exit 1 on violation): during-outage LS goodput >= 0.9x the
// control arm, full reconvergence to the final epoch after recovery, and
// zero stale sidecars at the end of the run.

#include <cstdio>
#include <vector>

#include "workload/bench_harness.h"
#include "workload/cp_chaos_experiment.h"

using namespace meshnet;

int main(int argc, char** argv) {
  workload::CpChaosExperimentConfig config;
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "cp",
      /*default_duration_s=*/static_cast<std::int64_t>(
          sim::to_seconds(config.duration)),
      /*default_seed=*/config.seed,
      {"ls-rps", "li-rps", "outage-duration-s", "churn-period-s"});
  config.seed = options.seed;
  config.duration = sim::seconds(options.duration_s);
  config.ls_rps = options.flags.get_double_or("ls-rps", config.ls_rps);
  config.li_rps = options.flags.get_double_or("li-rps", config.li_rps);
  config.outage_duration = sim::seconds(options.flags.get_int_or(
      "outage-duration-s",
      static_cast<std::int64_t>(sim::to_seconds(config.outage_duration))));
  config.churn_period = sim::seconds(options.flags.get_int_or(
      "churn-period-s",
      static_cast<std::int64_t>(sim::to_seconds(config.churn_period))));

  std::printf(
      "CHAOS_CP e-library: %.0fs control-plane outage + reviews churn "
      "storm\n(period %.0fs) inside a %llds window, seed %llu\n\n",
      sim::to_seconds(config.outage_duration),
      sim::to_seconds(config.churn_period),
      static_cast<long long>(options.duration_s),
      static_cast<unsigned long long>(config.seed));

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::CpChaosExperimentResult> arms(2);
  for (const bool outage : {true, false}) {
    const std::size_t slot = outage ? 0 : 1;
    runner.add({{"outage", outage ? "on" : "off"}},
               [config, outage, slot, &arms] {
                 workload::CpChaosExperimentConfig arm_config = config;
                 arm_config.outage = outage;
                 arms[slot] = workload::run_cp_chaos_experiment(arm_config);
                 return workload::cp_point_metrics(arms[slot]);
               });
  }
  const workload::SweepResult sweep = runner.run();
  const workload::CpChaosExperimentResult& outage_arm = arms[0];
  const workload::CpChaosExperimentResult& control_arm = arms[1];

  std::fputs(
      workload::format_cp_chaos_comparison(outage_arm, control_arm).c_str(),
      stdout);

  std::printf("\nfault log (outage arm):\n");
  for (const faults::FaultLogEntry& entry : outage_arm.fault_log) {
    std::printf("  t=%8.3fs %-14s %-12s%s\n", sim::to_seconds(entry.at),
                std::string(faults::fault_action_name(entry.action)).c_str(),
                entry.target.c_str(), entry.applied ? "" : " (not applied)");
  }

  const double ratio = control_arm.during.goodput_rps > 0
                           ? outage_arm.during.goodput_rps /
                                 control_arm.during.goodput_rps
                           : 0.0;
  const bool goodput_ok = ratio >= 0.9;
  const bool reconverged =
      outage_arm.converged && outage_arm.stale_sidecars_at_end == 0;
  std::printf(
      "\nacceptance:\n"
      "  during-outage LS goodput ratio %.3f (goal >= 0.90)  %s\n"
      "  reconverged to epoch %llu, %llu stale sidecars      %s\n",
      ratio, goodput_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(outage_arm.final_epoch),
      static_cast<unsigned long long>(outage_arm.stale_sidecars_at_end),
      reconverged ? "PASS" : "FAIL");

  const stats::BenchReport report = workload::make_bench_report(
      "cp",
      {{"seed", std::to_string(config.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"ls_rps", std::to_string(config.ls_rps)},
       {"li_rps", std::to_string(config.li_rps)},
       {"outage_duration_s",
        std::to_string(static_cast<long long>(
            sim::to_seconds(config.outage_duration)))},
       {"churn_period_s",
        std::to_string(
            static_cast<long long>(sim::to_seconds(config.churn_period)))}},
      sweep);
  const int harness_rc = workload::finish_harness(report, options);
  if (harness_rc != 0) return harness_rc;
  return (goodput_ok && reconverged) ? 0 : 1;
}
