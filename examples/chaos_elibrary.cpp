// Chaos e-library: the resilience claim under fault injection.
//
// Runs the LS/LI e-library workload twice while a FaultPlan crashes the
// reviews-v1 replica for 10s and flaps the ratings bottleneck vNIC:
//   arm 1  resilient — active health checking, circuit breakers, per-try
//          timeouts and budgeted retries;
//   arm 2  baseline  — all of that off, the mesh as a dumb pipe.
// Prints LS goodput / success rate / p50 / p99 for the before / during /
// after phases of both arms, plus eviction/retry counters.
//
//   ./chaos_elibrary [--seed=42] [--ls-rps=30] [--li-rps=10]
//                    [--fault-duration-s=10] [--duration=24]
//                    [--threads=N] [--json-out[=PATH]] [--baseline=P]
//
// The two arms are independent sweep points (--threads=2 runs them in
// parallel, bit-identically).

#include <cstdio>
#include <vector>

#include "workload/bench_harness.h"
#include "workload/chaos_experiment.h"

using namespace meshnet;

namespace {

workload::PointMetrics chaos_point_metrics(
    const workload::ChaosExperimentResult& r) {
  workload::PointMetrics metrics;
  const auto add_phase = [&metrics](const std::string& prefix,
                                    const workload::PhaseSummary& phase) {
    metrics.scalars[prefix + "_goodput_rps"] = phase.goodput_rps;
    metrics.scalars[prefix + "_success_rate"] = phase.success_rate;
    metrics.scalars[prefix + "_p50_ms"] = phase.p50_ms;
    metrics.scalars[prefix + "_p99_ms"] = phase.p99_ms;
    metrics.counters[prefix + "_completed"] = phase.completed;
    metrics.counters[prefix + "_errors"] = phase.errors;
  };
  add_phase("before", r.before);
  add_phase("during", r.during);
  add_phase("after", r.after);
  metrics.counters["breaker_events"] = r.breaker_events;
  metrics.counters["health_evictions"] = r.health_evictions;
  metrics.counters["health_readmissions"] = r.health_readmissions;
  metrics.counters["upstream_retries"] = r.upstream_retries;
  metrics.counters["retries_denied_by_budget"] = r.retries_denied_by_budget;
  metrics.counters["fault_log_entries"] = r.fault_log.size();
  metrics.counters["mesh_events"] = r.mesh_events.size();
  metrics.counters["events"] = r.events_executed;
  metrics.snapshot = r.metrics;
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  workload::ChaosExperimentConfig config;
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "chaos_elibrary",
      /*default_duration_s=*/static_cast<std::int64_t>(
          sim::to_seconds(config.duration)),
      /*default_seed=*/config.seed, {"ls-rps", "li-rps", "fault-duration-s"});
  config.seed = options.seed;
  config.duration = sim::seconds(options.duration_s);
  config.ls_rps = options.flags.get_double_or("ls-rps", config.ls_rps);
  config.li_rps = options.flags.get_double_or("li-rps", config.li_rps);
  config.fault_duration =
      sim::seconds(options.flags.get_int_or("fault-duration-s", 10));

  std::printf(
      "chaos e-library: crash %s + flap %s for %.0fs, seed %llu\n\n",
      config.crash_target.c_str(), config.flap_target.c_str(),
      sim::to_seconds(config.fault_duration),
      static_cast<unsigned long long>(config.seed));

  workload::SweepRunner runner(workload::sweep_options(options));
  std::vector<workload::ChaosExperimentResult> arms(2);
  for (const bool resilience : {true, false}) {
    const std::size_t slot = resilience ? 0 : 1;
    runner.add({{"resilience", resilience ? "on" : "off"}},
               [config, resilience, slot, &arms] {
                 workload::ChaosExperimentConfig arm_config = config;
                 arm_config.resilience = resilience;
                 arms[slot] =
                     workload::run_chaos_elibrary_experiment(arm_config);
                 return chaos_point_metrics(arms[slot]);
               });
  }
  const workload::SweepResult sweep = runner.run();
  const workload::ChaosExperimentResult& resilient = arms[0];
  const workload::ChaosExperimentResult& baseline = arms[1];

  std::fputs(workload::format_chaos_comparison(resilient, baseline).c_str(),
             stdout);

  std::printf("\nfault log (resilient arm):\n");
  for (const faults::FaultLogEntry& entry : resilient.fault_log) {
    std::printf("  t=%8.3fs %-14s %-12s%s\n",
                sim::to_seconds(entry.at),
                std::string(faults::fault_action_name(entry.action)).c_str(),
                entry.target.c_str(), entry.applied ? "" : " (not applied)");
  }

  const stats::BenchReport report = workload::make_bench_report(
      "chaos_elibrary",
      {{"seed", std::to_string(config.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"ls_rps", std::to_string(config.ls_rps)},
       {"li_rps", std::to_string(config.li_rps)},
       {"fault_duration_s",
        std::to_string(static_cast<long long>(
            sim::to_seconds(config.fault_duration)))}},
      sweep);
  return workload::finish_harness(report, options);
}
