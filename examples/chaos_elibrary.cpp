// Chaos e-library: the resilience claim under fault injection.
//
// Runs the LS/LI e-library workload twice while a FaultPlan crashes the
// reviews-v1 replica for 10s and flaps the ratings bottleneck vNIC:
//   arm 1  resilient — active health checking, circuit breakers, per-try
//          timeouts and budgeted retries;
//   arm 2  baseline  — all of that off, the mesh as a dumb pipe.
// Prints LS goodput / success rate / p50 / p99 for the before / during /
// after phases of both arms, plus eviction/retry counters.
//
//   ./chaos_elibrary [--seed=42] [--ls-rps=30] [--li-rps=10]
//                    [--fault-duration-s=10]

#include <cstdio>

#include "util/flags.h"
#include "workload/chaos_experiment.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  workload::ChaosExperimentConfig config;
  config.seed = static_cast<std::uint64_t>(
      flags.get_int_or("seed", static_cast<std::int64_t>(config.seed)));
  config.ls_rps = flags.get_double_or("ls-rps", config.ls_rps);
  config.li_rps = flags.get_double_or("li-rps", config.li_rps);
  config.fault_duration =
      sim::seconds(flags.get_int_or("fault-duration-s", 10));

  std::printf(
      "chaos e-library: crash %s + flap %s for %.0fs, seed %llu\n\n",
      config.crash_target.c_str(), config.flap_target.c_str(),
      sim::to_seconds(config.fault_duration),
      static_cast<unsigned long long>(config.seed));

  config.resilience = true;
  const workload::ChaosExperimentResult resilient =
      workload::run_chaos_elibrary_experiment(config);
  config.resilience = false;
  const workload::ChaosExperimentResult baseline =
      workload::run_chaos_elibrary_experiment(config);

  std::fputs(workload::format_chaos_comparison(resilient, baseline).c_str(),
             stdout);

  std::printf("\nfault log (resilient arm):\n");
  for (const faults::FaultLogEntry& entry : resilient.fault_log) {
    std::printf("  t=%8.3fs %-14s %-12s%s\n",
                sim::to_seconds(entry.at),
                std::string(faults::fault_action_name(entry.action)).c_str(),
                entry.target.c_str(), entry.applied ? "" : " (not applied)");
  }
  return 0;
}
