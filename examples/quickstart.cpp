// Quickstart: build a two-service mesh, send one traced request through
// it, and print what the mesh observed.
//
//   client -> [gateway sidecar] -> frontend sidecar -> frontend app
//                                     '-> backend sidecar -> backend app
//
// Demonstrates the public API end to end: the declarative MeshSpec /
// MeshBuilder construction path, microservice handlers, an HTTP client,
// distributed tracing and telemetry.

#include <cstdio>

#include "app/mesh_builder.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  util::set_log_level(util::parse_log_level(flags.get_or("log", "warn")));

  sim::Simulator sim;

  // --- 1. The whole mesh as data -------------------------------------
  cluster::MeshSpec spec;
  spec.nodes = {"node-a"};
  spec.gateway.enabled = true;
  spec.gateway.pod_name = "gateway";
  spec.gateway.port = 80;

  cluster::ServiceSpec frontend;
  frontend.name = "frontend";
  frontend.calls = {"backend"};
  frontend.handler = [](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.processing_delay = sim::microseconds(200);
    plan.calls.push_back(app::SubCall{"backend", "/data"});
    plan.response_bytes = 256;
    return plan;
  };
  cluster::ServiceSpec backend;
  backend.name = "backend";
  backend.handler = [](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.processing_delay = sim::microseconds(100);
    plan.response_bytes = 1024;
    return plan;
  };
  spec.services = {frontend, backend};
  spec.external_pods.push_back(cluster::ExternalPodSpec{"client", "", {}});

  // --- 2. Build it: cluster, pods, sidecars, control plane, apps -----
  auto mesh = cluster::MeshBuilder(sim).build(std::move(spec));
  mesh::ControlPlane& control_plane = mesh->control_plane();

  // --- 3. A client outside the mesh ----------------------------------
  mesh::HttpClientPool client(sim, mesh->pod("client")->transport(),
                              mesh->gateway_address(), {}, "client");

  http::HttpRequest request;
  request.path = "/hello";
  request.headers.set(http::headers::kHost, "frontend");

  int status = 0;
  std::size_t body_bytes = 0;
  sim::Time done_at = 0;
  client.request(std::move(request),
                 [&](std::optional<http::HttpResponse> response,
                     const std::string& error) {
                   if (response) {
                     status = response->status;
                     body_bytes = response->body.size();
                   } else {
                     std::fprintf(stderr, "request failed: %s\n",
                                  error.c_str());
                   }
                   done_at = sim.now();
                 });

  // run_until rather than run(): the control plane re-schedules its
  // periodic discovery poll forever, so the event queue never drains.
  sim.run_until(sim::seconds(5));

  std::printf("response: HTTP %d, %zu body bytes, %.3f ms end-to-end\n",
              status, body_bytes, sim::to_milliseconds(done_at));

  // --- 4. What the mesh saw ------------------------------------------
  std::printf("\ntrace spans (%zu):\n",
              control_plane.tracer().span_count());
  for (const mesh::Span& span : control_plane.tracer().spans()) {
    std::printf("  [%-8s] %-22s %8.3f ms  trace=%s\n", span.service.c_str(),
                span.operation.c_str(),
                sim::to_milliseconds(span.duration()),
                span.trace_id.c_str());
  }

  std::printf("\ntelemetry edges:\n");
  for (const auto& [src, dst] : control_plane.telemetry().edges()) {
    const auto edge = control_plane.telemetry().edge(src, dst);
    if (!edge) continue;
    std::printf("  %-10s -> %-10s requests=%llu failures=%llu p50=%.3f ms\n",
                src.c_str(), dst.c_str(),
                static_cast<unsigned long long>(edge->requests),
                static_cast<unsigned long long>(edge->failures),
                sim::to_milliseconds(static_cast<sim::Duration>(
                    edge->latency.percentile(50))));
  }
  return status == 200 ? 0 : 1;
}
