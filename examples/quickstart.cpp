// Quickstart: build a two-service mesh, send one traced request through
// it, and print what the mesh observed.
//
//   client -> [gateway sidecar] -> frontend sidecar -> frontend app
//                                     '-> backend sidecar -> backend app
//
// Demonstrates the public API end to end: cluster construction, sidecar
// injection, microservice handlers, an HTTP client, distributed tracing
// and telemetry.

#include <cstdio>

#include "app/microservice.h"
#include "cluster/cluster.h"
#include "mesh/control_plane.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace meshnet;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  util::set_log_level(util::parse_log_level(flags.get_or("log", "warn")));

  sim::Simulator sim;

  // --- 1. A one-node cluster with three pods -------------------------
  cluster::Cluster cluster(sim);
  cluster.add_node("node-a");
  cluster::Pod& gateway_pod =
      cluster.add_pod("node-a", "gateway", "gateway", 0);
  cluster::Pod& frontend_pod =
      cluster.add_pod("node-a", "frontend-v1", "frontend", 9080);
  cluster::Pod& backend_pod =
      cluster.add_pod("node-a", "backend-v1", "backend", 9080);

  // --- 2. The mesh: control plane + sidecar injection ----------------
  mesh::ControlPlane control_plane(sim, cluster);
  mesh::SidecarInjectionOptions gw;
  gw.gateway_mode = true;
  gw.outbound_port = 80;
  control_plane.inject_sidecar(gateway_pod, gw);
  control_plane.inject_sidecar(frontend_pod, {});
  control_plane.inject_sidecar(backend_pod, {});
  control_plane.start();

  // --- 3. The application containers ---------------------------------
  app::Microservice frontend(
      sim, frontend_pod, [](const http::HttpRequest&) {
        app::HandlerResult plan;
        plan.processing_delay = sim::microseconds(200);
        plan.calls.push_back(app::SubCall{"backend", "/data"});
        plan.response_bytes = 256;
        return plan;
      });
  app::Microservice backend(sim, backend_pod, [](const http::HttpRequest&) {
    app::HandlerResult plan;
    plan.processing_delay = sim::microseconds(100);
    plan.response_bytes = 1024;
    return plan;
  });

  // --- 4. A client outside the mesh ----------------------------------
  cluster::Pod& client_pod = cluster.add_pod("node-a", "client", "", 0);
  mesh::HttpClientPool client(sim, client_pod.transport(),
                              net::SocketAddress{gateway_pod.ip(), 80}, {},
                              "client");

  http::HttpRequest request;
  request.path = "/hello";
  request.headers.set(http::headers::kHost, "frontend");

  int status = 0;
  std::size_t body_bytes = 0;
  sim::Time done_at = 0;
  client.request(std::move(request),
                 [&](std::optional<http::HttpResponse> response,
                     const std::string& error) {
                   if (response) {
                     status = response->status;
                     body_bytes = response->body.size();
                   } else {
                     std::fprintf(stderr, "request failed: %s\n",
                                  error.c_str());
                   }
                   done_at = sim.now();
                 });

  // run_until rather than run(): the control plane re-schedules its
  // periodic discovery poll forever, so the event queue never drains.
  sim.run_until(sim::seconds(5));

  std::printf("response: HTTP %d, %zu body bytes, %.3f ms end-to-end\n",
              status, body_bytes, sim::to_milliseconds(done_at));

  // --- 5. What the mesh saw ------------------------------------------
  std::printf("\ntrace spans (%zu):\n",
              control_plane.tracer().span_count());
  for (const mesh::Span& span : control_plane.tracer().spans()) {
    std::printf("  [%-8s] %-22s %8.3f ms  trace=%s\n", span.service.c_str(),
                span.operation.c_str(),
                sim::to_milliseconds(span.duration()),
                span.trace_id.c_str());
  }

  std::printf("\ntelemetry edges:\n");
  for (const auto& [src, dst] : control_plane.telemetry().edges()) {
    const auto edge = control_plane.telemetry().edge(src, dst);
    if (!edge) continue;
    std::printf("  %-10s -> %-10s requests=%llu failures=%llu p50=%.3f ms\n",
                src.c_str(), dst.c_str(),
                static_cast<unsigned long long>(edge->requests),
                static_cast<unsigned long long>(edge->failures),
                sim::to_milliseconds(static_cast<sim::Duration>(
                    edge->latency.percentile(50))));
  }
  return status == 200 ? 0 : 1;
}
