// Overload e-library: priority-aware admission control past the knee.
//
// Sweeps offered load from half capacity to 3x capacity on the
// compute-bound e-library tuning, with the admission subsystem on and
// off. LS load is fixed (10 rps); LI analytics traffic fills the rest.
// The claim under test: at 2x overload, admission keeps LS p99 within
// 25% of its uncontended (0.5x) value while >= 90% of the shedding
// falls on LI traffic.
//
//   ./overload_elibrary [--seed=42] [--capacity-rps=30] [--ls-rps=10]
//                       [--duration=10] [--threads=N]
//                       [--json-out[=PATH]] [--baseline=P]
//
// Every (load_factor, admission) pair is an independent sweep point;
// --threads parallelizes them bit-identically.

#include <cstdio>
#include <string>
#include <vector>

#include "workload/bench_harness.h"
#include "workload/overload_experiment.h"

using namespace meshnet;

namespace {

constexpr double kLoadFactors[] = {0.5, 1.0, 2.0, 3.0};

std::string format_factor(double factor) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f", factor);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  workload::OverloadExperimentConfig config;
  const workload::HarnessOptions options = workload::parse_harness_flags(
      argc, argv, "overload",
      /*default_duration_s=*/static_cast<std::int64_t>(
          sim::to_seconds(config.duration)),
      /*default_seed=*/config.seed, {"capacity-rps", "ls-rps"});
  config.seed = options.seed;
  config.duration = sim::seconds(options.duration_s);
  config.capacity_rps =
      options.flags.get_double_or("capacity-rps", config.capacity_rps);
  config.ls_rps = options.flags.get_double_or("ls-rps", config.ls_rps);

  std::printf(
      "overload e-library: capacity ~%.0f rps, LS fixed at %.0f rps,\n"
      "load factors 0.5x..3x, admission on/off, seed %llu\n\n",
      config.capacity_rps, config.ls_rps,
      static_cast<unsigned long long>(config.seed));

  workload::SweepRunner runner(workload::sweep_options(options));
  const std::size_t num_factors = std::size(kLoadFactors);
  std::vector<workload::OverloadExperimentResult> arms(2 * num_factors);
  for (std::size_t i = 0; i < num_factors; ++i) {
    for (const bool admission : {true, false}) {
      const std::size_t slot = 2 * i + (admission ? 0 : 1);
      runner.add({{"load", format_factor(kLoadFactors[i]) + "x"},
                  {"admission", admission ? "on" : "off"}},
                 [config, i, admission, slot, &arms] {
                   workload::OverloadExperimentConfig arm = config;
                   arm.load_factor = kLoadFactors[i];
                   arm.admission = admission;
                   arms[slot] = workload::run_overload_experiment(arm);
                   return workload::overload_point_metrics(arms[slot]);
                 });
    }
  }
  const workload::SweepResult sweep = runner.run();

  std::printf(
      "%-6s %-9s | %9s %7s %8s %8s | %9s %7s %8s | %7s %7s %8s\n", "load",
      "admission", "LS rps", "LS err", "LS p50", "LS p99", "LI rps", "LI err",
      "LI p99", "LS shed", "LI shed", "timeouts");
  for (std::size_t i = 0; i < num_factors; ++i) {
    for (const bool admission : {true, false}) {
      const workload::OverloadExperimentResult& r =
          arms[2 * i + (admission ? 0 : 1)];
      std::printf(
          "%-6s %-9s | %9.1f %7llu %8.1f %8.1f | %9.1f %7llu %8.1f | %7llu "
          "%7llu %8llu\n",
          (format_factor(kLoadFactors[i]) + "x").c_str(),
          admission ? "on" : "off", r.ls.achieved_rps,
          static_cast<unsigned long long>(r.ls.errors), r.ls.p50_ms,
          r.ls.p99_ms, r.li.achieved_rps,
          static_cast<unsigned long long>(r.li.errors), r.li.p99_ms,
          static_cast<unsigned long long>(r.ls_shed),
          static_cast<unsigned long long>(r.li_shed),
          static_cast<unsigned long long>(r.timeouts));
    }
  }

  // The acceptance comparison: 2x overload vs the uncontended 0.5x point,
  // both with admission on.
  const workload::OverloadExperimentResult& uncontended = arms[0];  // 0.5x on
  const workload::OverloadExperimentResult& overloaded = arms[4];   // 2.0x on
  const double p99_ratio = uncontended.ls.p99_ms > 0
                               ? overloaded.ls.p99_ms / uncontended.ls.p99_ms
                               : 0.0;
  const std::uint64_t total_shed =
      overloaded.ls_shed + overloaded.li_shed + overloaded.default_shed;
  const double li_shed_share =
      total_shed > 0 ? static_cast<double>(overloaded.li_shed) /
                           static_cast<double>(total_shed)
                     : 1.0;
  std::printf(
      "\nat 2x overload (admission on):\n"
      "  LS p99 %.1f ms vs %.1f ms uncontended  -> ratio %.2f (goal <= 1.25)\n"
      "  sheds: LS %llu / LI %llu / default %llu -> %.1f%% on LI (goal >= "
      "90%%)\n"
      "  by reason: queue-full %llu, deadline %llu, preempted %llu\n"
      "  retries suppressed by overload marker: %llu\n",
      overloaded.ls.p99_ms, uncontended.ls.p99_ms, p99_ratio,
      static_cast<unsigned long long>(overloaded.ls_shed),
      static_cast<unsigned long long>(overloaded.li_shed),
      static_cast<unsigned long long>(overloaded.default_shed),
      100.0 * li_shed_share,
      static_cast<unsigned long long>(overloaded.shed_queue_full),
      static_cast<unsigned long long>(overloaded.shed_deadline),
      static_cast<unsigned long long>(overloaded.shed_preempted),
      static_cast<unsigned long long>(
          overloaded.retries_suppressed_by_overload));

  const stats::BenchReport report = workload::make_bench_report(
      "overload",
      {{"seed", std::to_string(config.seed)},
       {"duration_s", std::to_string(options.duration_s)},
       {"capacity_rps", std::to_string(config.capacity_rps)},
       {"ls_rps", std::to_string(config.ls_rps)}},
      sweep);
  return workload::finish_harness(report, options);
}
