// "Better visibility" (paper §3.2): the mesh reconstructs the
// application's internal structure from purely passive observation.
//
// Sends a few requests through the e-library and prints (a) the
// distributed trace tree of one request, hop by hop with per-span
// latency, and (b) the service call graph aggregated by telemetry —
// without touching a line of application code.
//
//   ./tracing_observability [--requests=5]

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "app/elibrary.h"
#include "mesh/http_client.h"
#include "util/flags.h"

using namespace meshnet;

namespace {

void print_span_tree(const std::vector<const mesh::Span*>& spans,
                     const std::string& parent_id, int depth) {
  for (const mesh::Span* span : spans) {
    if (span->parent_span_id != parent_id) continue;
    std::printf("  %*s%-10s %-28s %8.3f ms%s\n", depth * 2, "",
                span->service.c_str(), span->operation.c_str(),
                sim::to_milliseconds(span->duration()),
                span->error ? "  [ERROR]" : "");
    print_span_tree(spans, span->span_id, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const int requests = static_cast<int>(flags.get_int_or("requests", 5));

  sim::Simulator sim;
  app::ElibraryOptions options;
  options.component_bytes = 4096;
  options.analytics_multiplier = 20;
  app::Elibrary app(sim, options);

  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), {});
  std::vector<std::string> failures;
  for (int i = 0; i < requests; ++i) {
    http::HttpRequest request;
    request.path = (i % 2 == 0 ? "/product/" : "/analytics/") +
                   std::to_string(i);
    request.headers.set(http::headers::kHost, "frontend");
    client.request(std::move(request),
                   [&](std::optional<http::HttpResponse> response,
                       const std::string& error) {
                     if (!response || !response->ok()) {
                       failures.push_back(error);
                     }
                   });
    sim.run_until(sim.now() + sim::seconds(5));
  }
  std::printf("sent %d requests, %zu failures\n\n", requests,
              failures.size());

  // (a) one full distributed trace.
  const mesh::Tracer& tracer = app.control_plane().tracer();
  if (!tracer.spans().empty()) {
    const std::string trace_id = tracer.spans().front().trace_id;
    const auto spans = tracer.trace(trace_id);
    std::printf("distributed trace %s (%zu spans):\n", trace_id.c_str(),
                spans.size());
    print_span_tree(spans, "", 0);
  }

  // (b) the service call graph, reconstructed from telemetry.
  std::printf("\nservice call graph (from sidecar telemetry):\n");
  const mesh::TelemetrySink& telemetry = app.control_plane().telemetry();
  for (const auto& [src, dst] : telemetry.edges()) {
    const auto edge = telemetry.edge(src, dst);
    if (!edge) continue;
    std::printf("  %-10s -> %-10s  %4llu requests  p50 %7.3f ms  "
                "p99 %7.3f ms  failures %llu\n",
                src.c_str(), dst.c_str(),
                static_cast<unsigned long long>(edge->requests),
                sim::to_milliseconds(
                    static_cast<sim::Duration>(edge->latency.percentile(50))),
                sim::to_milliseconds(
                    static_cast<sim::Duration>(edge->latency.percentile(99))),
                static_cast<unsigned long long>(edge->failures));
  }
  return failures.empty() ? 0 : 1;
}
