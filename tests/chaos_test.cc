// The chaos e-library experiment: determinism of the full run and the
// headline resilience claim — with health checking + retries + breaker
// the latency-sensitive workload rides through a reviews-replica crash,
// without them it visibly degrades.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "workload/chaos_experiment.h"
#include "workload/sweep_runner.h"

namespace meshnet::workload {
namespace {

ChaosExperimentConfig small_config() {
  ChaosExperimentConfig config;
  config.ls_rps = 20;
  config.li_rps = 5;
  config.warmup = sim::seconds(1);
  config.duration = sim::seconds(6);
  config.cooldown = sim::seconds(1);
  config.fault_start_offset = sim::seconds(1);
  config.fault_duration = sim::seconds(3);
  return config;
}

TEST(ChaosExperiment, DeterministicForSameSeed) {
  ChaosExperimentConfig config = small_config();
  const ChaosExperimentResult a = run_chaos_elibrary_experiment(config);
  const ChaosExperimentResult b = run_chaos_elibrary_experiment(config);

  // Same seed => identical simulation, event for event.
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
  for (std::size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_EQ(a.fault_log[i].at, b.fault_log[i].at);
    EXPECT_EQ(a.fault_log[i].action, b.fault_log[i].action);
    EXPECT_EQ(a.fault_log[i].target, b.fault_log[i].target);
  }
  ASSERT_EQ(a.mesh_events.size(), b.mesh_events.size());
  for (std::size_t i = 0; i < a.mesh_events.size(); ++i) {
    EXPECT_EQ(a.mesh_events[i].at, b.mesh_events[i].at);
    EXPECT_EQ(a.mesh_events[i].kind, b.mesh_events[i].kind);
    EXPECT_EQ(a.mesh_events[i].subject, b.mesh_events[i].subject);
    EXPECT_EQ(a.mesh_events[i].detail, b.mesh_events[i].detail);
  }
  EXPECT_EQ(a.ls.completed, b.ls.completed);
  EXPECT_EQ(a.ls.errors, b.ls.errors);
  EXPECT_DOUBLE_EQ(a.ls.p99_ms, b.ls.p99_ms);
  EXPECT_EQ(a.li.completed, b.li.completed);

  // A different seed actually changes arrivals (guards against the seed
  // being ignored somewhere).
  config.seed += 1;
  const ChaosExperimentResult c = run_chaos_elibrary_experiment(config);
  EXPECT_NE(a.events_executed, c.events_executed);
}

TEST(ChaosExperiment, ResilienceRidesThroughCrashBaselineDegrades) {
  ChaosExperimentConfig config;
  config.ls_rps = 30;
  config.li_rps = 10;
  config.warmup = sim::seconds(4);
  config.duration = sim::seconds(24);
  config.cooldown = sim::seconds(4);
  config.fault_start_offset = sim::seconds(6);
  config.fault_duration = sim::seconds(10);

  config.resilience = true;
  const ChaosExperimentResult resilient =
      run_chaos_elibrary_experiment(config);
  config.resilience = false;
  const ChaosExperimentResult baseline =
      run_chaos_elibrary_experiment(config);

  std::fputs(format_chaos_comparison(resilient, baseline).c_str(), stdout);

  // Sanity: the fault window saw real traffic in both arms.
  EXPECT_GT(resilient.during.scheduled, 100u);
  EXPECT_GT(baseline.during.scheduled, 100u);

  // Resilient arm: health checking evicted the crashed replica and
  // readmitted it after restart; LS success held through the fault.
  EXPECT_GE(resilient.health_evictions, 1u);
  EXPECT_GE(resilient.health_readmissions, 1u);
  EXPECT_GE(resilient.before.success_rate, 0.99);
  EXPECT_GE(resilient.during.success_rate, 0.99);
  EXPECT_GE(resilient.after.success_rate, 0.99);
  // p99 recovers once the fault window closes: "after" looks like
  // "before" (generous 3x bound — both should be a few ms).
  EXPECT_LT(resilient.after.p99_ms, 3.0 * resilient.before.p99_ms + 5.0);

  // Baseline arm: no detection, no retries — requests routed to the dead
  // replica hang to the deadline and fail, so success during the fault
  // drops measurably.
  EXPECT_EQ(baseline.health_evictions, 0u);
  EXPECT_LT(baseline.during.success_rate, 0.90);
  EXPECT_LT(baseline.during.success_rate,
            resilient.during.success_rate - 0.05);
  // And its p99 during the fault is dominated by the request deadline.
  EXPECT_GT(baseline.during.p99_ms, resilient.during.p99_ms);
}

// The chaos experiment through the sweep runner: both arms (resilient and
// baseline) fan across worker threads, and the entire result — per-phase
// metrics, fault log, mesh event log, event counts — must be bit-identical
// at every thread count. The fault/mesh logs are the strongest witnesses:
// a single reordered event anywhere in the simulation changes them.
TEST(ChaosExperiment, SweepBitIdenticalAcrossThreadCounts) {
  const auto run_sweep = [](int threads) {
    SweepOptions options;
    options.threads = threads;
    SweepRunner runner(options);
    auto results =
        std::make_shared<std::vector<ChaosExperimentResult>>(2);
    for (const bool resilience : {true, false}) {
      const std::size_t slot = resilience ? 0 : 1;
      runner.add({{"resilience", resilience ? "on" : "off"}},
                 [resilience, slot, results] {
                   ChaosExperimentConfig config = small_config();
                   config.resilience = resilience;
                   (*results)[slot] = run_chaos_elibrary_experiment(config);
                   const ChaosExperimentResult& r = (*results)[slot];
                   PointMetrics metrics;
                   metrics.scalars["during_goodput_rps"] =
                       r.during.goodput_rps;
                   metrics.scalars["during_p99_ms"] = r.during.p99_ms;
                   metrics.counters["events"] = r.events_executed;
                   metrics.counters["fault_log"] = r.fault_log.size();
                   metrics.counters["mesh_events"] = r.mesh_events.size();
                   return metrics;
                 });
    }
    const SweepResult sweep = runner.run();
    return std::make_pair(sweep, results);
  };

  const auto [serial_sweep, serial_results] = run_sweep(1);
  for (const int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto [parallel_sweep, parallel_results] = run_sweep(threads);

    ASSERT_EQ(parallel_sweep.points.size(), serial_sweep.points.size());
    for (std::size_t i = 0; i < serial_sweep.points.size(); ++i) {
      EXPECT_EQ(parallel_sweep.points[i].id, serial_sweep.points[i].id);
      EXPECT_EQ(parallel_sweep.points[i].metrics.counters,
                serial_sweep.points[i].metrics.counters);
      for (const auto& [name, value] :
           serial_sweep.points[i].metrics.scalars) {
        EXPECT_EQ(parallel_sweep.points[i].metrics.scalars.at(name), value)
            << name;
      }
    }

    // Event-for-event equality of both arms' determinism witnesses.
    for (std::size_t arm = 0; arm < 2; ++arm) {
      const ChaosExperimentResult& a = (*serial_results)[arm];
      const ChaosExperimentResult& b = (*parallel_results)[arm];
      EXPECT_EQ(a.events_executed, b.events_executed);
      ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
      for (std::size_t i = 0; i < a.fault_log.size(); ++i) {
        EXPECT_EQ(a.fault_log[i].at, b.fault_log[i].at);
        EXPECT_EQ(a.fault_log[i].action, b.fault_log[i].action);
        EXPECT_EQ(a.fault_log[i].target, b.fault_log[i].target);
      }
      ASSERT_EQ(a.mesh_events.size(), b.mesh_events.size());
      for (std::size_t i = 0; i < a.mesh_events.size(); ++i) {
        EXPECT_EQ(a.mesh_events[i].at, b.mesh_events[i].at);
        EXPECT_EQ(a.mesh_events[i].kind, b.mesh_events[i].kind);
        EXPECT_EQ(a.mesh_events[i].subject, b.mesh_events[i].subject);
        EXPECT_EQ(a.mesh_events[i].detail, b.mesh_events[i].detail);
      }
      EXPECT_EQ(a.ls.completed, b.ls.completed);
      EXPECT_EQ(a.ls.errors, b.ls.errors);
      EXPECT_DOUBLE_EQ(a.ls.p99_ms, b.ls.p99_ms);
    }
  }
}

}  // namespace
}  // namespace meshnet::workload
