// Tests for the load generators (wrk2 methodology) and the latency
// recorder.

#include <gtest/gtest.h>

#include <memory>

#include "app/http_server.h"
#include "cluster/cluster.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/recorder.h"

namespace meshnet::workload {
namespace {

TEST(LatencyRecorder, OnlyCountsInsideWindow) {
  LatencyRecorder recorder(sim::seconds(1), sim::seconds(2));
  recorder.record(sim::milliseconds(500), sim::milliseconds(600), true);
  recorder.record(sim::milliseconds(1500), sim::milliseconds(1600), true);
  recorder.record(sim::milliseconds(2500), sim::milliseconds(2600), true);
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(LatencyRecorder, WindowBoundariesHalfOpen) {
  LatencyRecorder recorder(sim::seconds(1), sim::seconds(2));
  recorder.record(sim::seconds(1), sim::seconds(1), true);   // inclusive
  recorder.record(sim::seconds(2), sim::seconds(2), true);   // exclusive
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(LatencyRecorder, ErrorsCountedSeparately) {
  LatencyRecorder recorder(0, sim::seconds(10));
  recorder.record(sim::seconds(1), sim::seconds(2), false);
  recorder.record(sim::seconds(1), sim::seconds(2), true);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_EQ(recorder.errors(), 1u);
}

TEST(LatencyRecorder, PercentilesInMilliseconds) {
  LatencyRecorder recorder(0, sim::seconds(10));
  for (int i = 1; i <= 100; ++i) {
    recorder.record(0, sim::milliseconds(i), true);
  }
  EXPECT_NEAR(recorder.p50_ms(), 50.0, 1.0);
  EXPECT_NEAR(recorder.p99_ms(), 99.0, 1.5);
  EXPECT_NEAR(recorder.mean_ms(), 50.5, 1.0);
  EXPECT_NEAR(recorder.max_ms(), 100.0, 1.0);
}

TEST(LatencyRecorder, ThroughputOverWindow) {
  LatencyRecorder recorder(0, sim::seconds(10));
  for (int i = 0; i < 500; ++i) recorder.record(sim::seconds(1), sim::seconds(1), true);
  EXPECT_DOUBLE_EQ(recorder.throughput_rps(), 50.0);
}

TEST(LatencyRecorder, NegativeLatencyClampsToZero) {
  LatencyRecorder recorder(0, sim::seconds(10));
  recorder.record(sim::seconds(5), sim::seconds(4), true);  // clock skew
  EXPECT_EQ(recorder.percentile_ms(50), 0.0);
}

TEST(Factory, SimpleGetFactoryShapesRequests) {
  auto factory = simple_get_factory("frontend", "/product", 10);
  const http::HttpRequest r0 = factory(0);
  EXPECT_EQ(r0.method, "GET");
  EXPECT_EQ(r0.path, "/product/0");
  EXPECT_EQ(r0.headers.get_or(http::headers::kHost, ""), "frontend");
  EXPECT_EQ(factory(13).path, "/product/3");  // modulo applied
}

// ------------------------------------------ generators over a real sim --

class GeneratorFixture : public ::testing::Test {
 protected:
  GeneratorFixture() : cluster(sim) {
    cluster.add_node("n1");
    server_pod = &cluster.add_pod("n1", "srv", "srv", 0);
    client_pod = &cluster.add_pod("n1", "cli", "", 0);
    server = std::make_unique<app::SimpleHttpServer>(
        sim, server_pod->transport(), 8080,
        [this](http::HttpRequest, app::SimpleHttpServer::Responder respond) {
          sim.schedule_after(sim::milliseconds(service_ms),
                             [respond = std::move(respond)] {
                               respond(http::HttpResponse{200});
                             });
        });
    mesh::HttpClientPool::Options options;
    options.max_connections = 256;
    pool = std::make_unique<mesh::HttpClientPool>(
        sim, client_pod->transport(),
        net::SocketAddress{server_pod->ip(), 8080}, options);
  }

  WorkloadSpec spec_for(double rps, ArrivalProcess arrival) {
    WorkloadSpec spec;
    spec.name = "test";
    spec.rps = rps;
    spec.arrival = arrival;
    spec.make_request = simple_get_factory("srv", "/x");
    spec.start = 0;
    spec.end = sim::seconds(20);
    spec.measure_start = sim::seconds(1);
    spec.measure_end = sim::seconds(19);
    return spec;
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Pod* server_pod;
  cluster::Pod* client_pod;
  std::unique_ptr<app::SimpleHttpServer> server;
  std::unique_ptr<mesh::HttpClientPool> pool;
  int service_ms = 1;
};

class ArrivalTest : public GeneratorFixture,
                    public ::testing::WithParamInterface<ArrivalProcess> {};

TEST_P(ArrivalTest, AchievesConfiguredRate) {
  OpenLoopGenerator gen(sim, *pool, spec_for(100, GetParam()), 42);
  gen.start();
  sim.run_until(sim::seconds(25));
  // 18 s measurement window at 100 rps: expect ~1800 completions.
  EXPECT_NEAR(static_cast<double>(gen.recorder().count()), 1800.0, 120.0);
  EXPECT_EQ(gen.failed(), 0u);
  EXPECT_EQ(gen.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Arrivals, ArrivalTest,
                         ::testing::Values(ArrivalProcess::kUniformRandom,
                                           ArrivalProcess::kPoisson,
                                           ArrivalProcess::kConstant));

TEST_F(GeneratorFixture, OpenLoopKeepsSendingWhileServerIsSlow) {
  service_ms = 500;  // each request takes 0.5 s; at 50 rps load piles up
  OpenLoopGenerator gen(sim, *pool, spec_for(50, ArrivalProcess::kConstant),
                        42);
  gen.start();
  sim.run_until(sim::seconds(3));
  // An open loop must have sent ~150 requests by t=3s regardless of
  // completions (closed loop would have stalled at the concurrency cap).
  EXPECT_GT(gen.sent(), 100u);
  EXPECT_GT(gen.outstanding(), 20u);
}

TEST_F(GeneratorFixture, LatencyChargedFromScheduledTime) {
  service_ms = 100;
  OpenLoopGenerator gen(sim, *pool, spec_for(20, ArrivalProcess::kConstant),
                        42);
  gen.start();
  sim.run_until(sim::seconds(25));
  // Every request takes >= 100 ms service time.
  EXPECT_GE(gen.recorder().p50_ms(), 100.0);
}

TEST(OpenLoopDeterminism, IdenticalSeedsIdenticalResults) {
  auto run = [] {
    sim::Simulator sim;
    cluster::Cluster cluster(sim);
    cluster.add_node("n1");
    cluster::Pod& server_pod = cluster.add_pod("n1", "srv", "srv", 0);
    cluster::Pod& client_pod = cluster.add_pod("n1", "cli", "", 0);
    app::SimpleHttpServer server(
        sim, server_pod.transport(), 8080,
        [](http::HttpRequest, app::SimpleHttpServer::Responder respond) {
          respond(http::HttpResponse{});
        });
    mesh::HttpClientPool pool(sim, client_pod.transport(),
                              net::SocketAddress{server_pod.ip(), 8080}, {});
    WorkloadSpec spec;
    spec.rps = 50;
    spec.arrival = ArrivalProcess::kUniformRandom;
    spec.make_request = simple_get_factory("srv", "/x");
    spec.end = sim::seconds(10);
    spec.measure_start = sim::seconds(1);
    spec.measure_end = sim::seconds(9);
    OpenLoopGenerator gen(sim, pool, spec, 7);
    gen.start();
    sim.run_until(sim::seconds(15));
    return std::make_pair(gen.recorder().count(), gen.recorder().p50_ms());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST_F(GeneratorFixture, ClosedLoopHoldsConcurrency) {
  service_ms = 100;
  WorkloadSpec spec = spec_for(0, ArrivalProcess::kConstant);
  ClosedLoopGenerator gen(sim, *pool, spec, 4);
  gen.start();
  sim.run_until(sim::seconds(20));
  // 4 concurrent clients, 100 ms service: ~40 rps for ~19 s window.
  EXPECT_NEAR(static_cast<double>(gen.completed()), 4.0 * 10.0 * 19.0,
              80.0);
  EXPECT_EQ(gen.failed(), 0u);
}

}  // namespace
}  // namespace meshnet::workload
