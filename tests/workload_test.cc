// Tests for the load generators (wrk2 methodology), the latency
// recorder, and the thread-pool sweep runner's determinism guarantee.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "app/http_server.h"
#include "cluster/cluster.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"
#include "workload/bench_harness.h"
#include "workload/generator.h"
#include "workload/recorder.h"
#include "workload/sweep_runner.h"

namespace meshnet::workload {
namespace {

TEST(LatencyRecorder, OnlyCountsInsideWindow) {
  LatencyRecorder recorder(sim::seconds(1), sim::seconds(2));
  recorder.record(sim::milliseconds(500), sim::milliseconds(600), true);
  recorder.record(sim::milliseconds(1500), sim::milliseconds(1600), true);
  recorder.record(sim::milliseconds(2500), sim::milliseconds(2600), true);
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(LatencyRecorder, WindowBoundariesHalfOpen) {
  LatencyRecorder recorder(sim::seconds(1), sim::seconds(2));
  recorder.record(sim::seconds(1), sim::seconds(1), true);   // inclusive
  recorder.record(sim::seconds(2), sim::seconds(2), true);   // exclusive
  EXPECT_EQ(recorder.count(), 1u);
}

TEST(LatencyRecorder, ErrorsCountedSeparately) {
  LatencyRecorder recorder(0, sim::seconds(10));
  recorder.record(sim::seconds(1), sim::seconds(2), false);
  recorder.record(sim::seconds(1), sim::seconds(2), true);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_EQ(recorder.errors(), 1u);
}

TEST(LatencyRecorder, PercentilesInMilliseconds) {
  LatencyRecorder recorder(0, sim::seconds(10));
  for (int i = 1; i <= 100; ++i) {
    recorder.record(0, sim::milliseconds(i), true);
  }
  EXPECT_NEAR(recorder.p50_ms(), 50.0, 1.0);
  EXPECT_NEAR(recorder.p99_ms(), 99.0, 1.5);
  EXPECT_NEAR(recorder.mean_ms(), 50.5, 1.0);
  EXPECT_NEAR(recorder.max_ms(), 100.0, 1.0);
}

TEST(LatencyRecorder, ThroughputOverWindow) {
  LatencyRecorder recorder(0, sim::seconds(10));
  for (int i = 0; i < 500; ++i) recorder.record(sim::seconds(1), sim::seconds(1), true);
  EXPECT_DOUBLE_EQ(recorder.throughput_rps(), 50.0);
}

TEST(LatencyRecorder, NegativeLatencyClampsToZero) {
  LatencyRecorder recorder(0, sim::seconds(10));
  recorder.record(sim::seconds(5), sim::seconds(4), true);  // clock skew
  EXPECT_EQ(recorder.percentile_ms(50), 0.0);
}

TEST(Factory, SimpleGetFactoryShapesRequests) {
  auto factory = simple_get_factory("frontend", "/product", 10);
  const http::HttpRequest r0 = factory(0);
  EXPECT_EQ(r0.method, "GET");
  EXPECT_EQ(r0.path, "/product/0");
  EXPECT_EQ(r0.headers.get_or(http::headers::kHost, ""), "frontend");
  EXPECT_EQ(factory(13).path, "/product/3");  // modulo applied
}

// ------------------------------------------ generators over a real sim --

class GeneratorFixture : public ::testing::Test {
 protected:
  GeneratorFixture() : cluster(sim) {
    cluster.add_node("n1");
    server_pod = &cluster.add_pod("n1", "srv", "srv", 0);
    client_pod = &cluster.add_pod("n1", "cli", "", 0);
    server = std::make_unique<app::SimpleHttpServer>(
        sim, server_pod->transport(), 8080,
        [this](http::HttpRequest, app::SimpleHttpServer::Responder respond) {
          sim.schedule_after(sim::milliseconds(service_ms),
                             [respond = std::move(respond)] {
                               respond(http::HttpResponse{200});
                             });
        });
    mesh::HttpClientPool::Options options;
    options.max_connections = 256;
    pool = std::make_unique<mesh::HttpClientPool>(
        sim, client_pod->transport(),
        net::SocketAddress{server_pod->ip(), 8080}, options);
  }

  WorkloadSpec spec_for(double rps, ArrivalProcess arrival) {
    WorkloadSpec spec;
    spec.name = "test";
    spec.rps = rps;
    spec.arrival = arrival;
    spec.make_request = simple_get_factory("srv", "/x");
    spec.start = 0;
    spec.end = sim::seconds(20);
    spec.measure_start = sim::seconds(1);
    spec.measure_end = sim::seconds(19);
    return spec;
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Pod* server_pod;
  cluster::Pod* client_pod;
  std::unique_ptr<app::SimpleHttpServer> server;
  std::unique_ptr<mesh::HttpClientPool> pool;
  int service_ms = 1;
};

class ArrivalTest : public GeneratorFixture,
                    public ::testing::WithParamInterface<ArrivalProcess> {};

TEST_P(ArrivalTest, AchievesConfiguredRate) {
  OpenLoopGenerator gen(sim, *pool, spec_for(100, GetParam()), 42);
  gen.start();
  sim.run_until(sim::seconds(25));
  // 18 s measurement window at 100 rps: expect ~1800 completions.
  EXPECT_NEAR(static_cast<double>(gen.recorder().count()), 1800.0, 120.0);
  EXPECT_EQ(gen.failed(), 0u);
  EXPECT_EQ(gen.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Arrivals, ArrivalTest,
                         ::testing::Values(ArrivalProcess::kUniformRandom,
                                           ArrivalProcess::kPoisson,
                                           ArrivalProcess::kConstant));

TEST_F(GeneratorFixture, OpenLoopKeepsSendingWhileServerIsSlow) {
  service_ms = 500;  // each request takes 0.5 s; at 50 rps load piles up
  OpenLoopGenerator gen(sim, *pool, spec_for(50, ArrivalProcess::kConstant),
                        42);
  gen.start();
  sim.run_until(sim::seconds(3));
  // An open loop must have sent ~150 requests by t=3s regardless of
  // completions (closed loop would have stalled at the concurrency cap).
  EXPECT_GT(gen.sent(), 100u);
  EXPECT_GT(gen.outstanding(), 20u);
}

TEST_F(GeneratorFixture, LatencyChargedFromScheduledTime) {
  service_ms = 100;
  OpenLoopGenerator gen(sim, *pool, spec_for(20, ArrivalProcess::kConstant),
                        42);
  gen.start();
  sim.run_until(sim::seconds(25));
  // Every request takes >= 100 ms service time.
  EXPECT_GE(gen.recorder().p50_ms(), 100.0);
}

TEST(OpenLoopDeterminism, IdenticalSeedsIdenticalResults) {
  auto run = [] {
    sim::Simulator sim;
    cluster::Cluster cluster(sim);
    cluster.add_node("n1");
    cluster::Pod& server_pod = cluster.add_pod("n1", "srv", "srv", 0);
    cluster::Pod& client_pod = cluster.add_pod("n1", "cli", "", 0);
    app::SimpleHttpServer server(
        sim, server_pod.transport(), 8080,
        [](http::HttpRequest, app::SimpleHttpServer::Responder respond) {
          respond(http::HttpResponse{});
        });
    mesh::HttpClientPool pool(sim, client_pod.transport(),
                              net::SocketAddress{server_pod.ip(), 8080}, {});
    WorkloadSpec spec;
    spec.rps = 50;
    spec.arrival = ArrivalProcess::kUniformRandom;
    spec.make_request = simple_get_factory("srv", "/x");
    spec.end = sim::seconds(10);
    spec.measure_start = sim::seconds(1);
    spec.measure_end = sim::seconds(9);
    OpenLoopGenerator gen(sim, pool, spec, 7);
    gen.start();
    sim.run_until(sim::seconds(15));
    return std::make_pair(gen.recorder().count(), gen.recorder().p50_ms());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST_F(GeneratorFixture, ClosedLoopHoldsConcurrency) {
  service_ms = 100;
  WorkloadSpec spec = spec_for(0, ArrivalProcess::kConstant);
  ClosedLoopGenerator gen(sim, *pool, spec, 4);
  gen.start();
  sim.run_until(sim::seconds(20));
  // 4 concurrent clients, 100 ms service: ~40 rps for ~19 s window.
  EXPECT_NEAR(static_cast<double>(gen.completed()), 4.0 * 10.0 * 19.0,
              80.0);
  EXPECT_EQ(gen.failed(), 0u);
}

// ---------------------------------------------------------------------------
// Sweep runner: the golden determinism guarantee. The FIG4 experiment at
// 40 RPS must produce bit-identical metrics — every scalar, counter and
// histogram bucket — no matter how many worker threads fan the points out.

SweepResult run_fig4_sweep(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const bool cross_layer : {false, true}) {
    runner.add({{"rps", "40"}, {"cross_layer", cross_layer ? "on" : "off"}},
               [cross_layer] {
                 ElibraryExperimentConfig config;
                 config.ls_rps = 40;
                 config.li_rps = 40;
                 config.warmup = sim::seconds(1);
                 config.duration = sim::seconds(3);
                 config.cooldown = sim::seconds(1);
                 config.seed = 42;
                 config.cross_layer = cross_layer;
                 return elibrary_point_metrics(
                     run_elibrary_experiment(config));
               });
  }
  return runner.run();
}

void expect_identical_sweeps(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + a.points[i].id);
    EXPECT_EQ(a.points[i].id, b.points[i].id);
    EXPECT_EQ(a.points[i].params, b.points[i].params);
    // Scalars must be bit-identical, not approximately equal: every point
    // computes its metrics on one thread from its own simulator, so there
    // is no legitimate source of divergence.
    ASSERT_EQ(a.points[i].metrics.scalars.size(),
              b.points[i].metrics.scalars.size());
    for (const auto& [name, value] : a.points[i].metrics.scalars) {
      ASSERT_TRUE(b.points[i].metrics.scalars.count(name)) << name;
      EXPECT_EQ(value, b.points[i].metrics.scalars.at(name)) << name;
    }
    EXPECT_EQ(a.points[i].metrics.counters, b.points[i].metrics.counters);
    ASSERT_EQ(a.points[i].metrics.histograms.size(),
              b.points[i].metrics.histograms.size());
    for (const auto& [name, histogram] : a.points[i].metrics.histograms) {
      ASSERT_TRUE(b.points[i].metrics.histograms.count(name)) << name;
      EXPECT_EQ(histogram, b.points[i].metrics.histograms.at(name)) << name;
    }
  }
  // Cross-point aggregates merge in input order, so they are bit-identical
  // too — including every histogram bucket.
  EXPECT_EQ(a.merged_counters, b.merged_counters);
  ASSERT_EQ(a.merged_histograms.size(), b.merged_histograms.size());
  for (const auto& [name, histogram] : a.merged_histograms) {
    ASSERT_TRUE(b.merged_histograms.count(name)) << name;
    EXPECT_EQ(histogram, b.merged_histograms.at(name)) << name;
  }
  // The unified meshnet-metrics-v1 snapshots: per point and merged,
  // series-for-series including every histogram bucket.
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].metrics.snapshot, b.points[i].metrics.snapshot)
        << "snapshot of point " << a.points[i].id;
  }
  EXPECT_EQ(a.merged_snapshot, b.merged_snapshot);
}

TEST(SweepRunnerDeterminism, Fig4At40RpsBitIdenticalAcrossThreadCounts) {
  const SweepResult serial = run_fig4_sweep(1);
  ASSERT_EQ(serial.points.size(), 2u);
  ASSERT_GT(serial.points[0].metrics.counters.at("ls_completed"), 0u);

  // One snapshot carries all four telemetry surfaces for the run: edge
  // metrics, span statistics, mesh events and engine counters.
  const obs::MetricsSnapshot& merged = serial.merged_snapshot;
  ASSERT_FALSE(merged.empty());
  const obs::SeriesSnapshot* edge_requests = merged.find(
      "mesh_requests_total",
      {{"source", "gateway"}, {"upstream", "frontend"}});
  ASSERT_NE(edge_requests, nullptr);
  EXPECT_GT(edge_requests->counter, 0u);
  const obs::SeriesSnapshot* spans =
      merged.find("spans_total", {{"service", "gateway"}});
  ASSERT_NE(spans, nullptr);
  EXPECT_GT(spans->counter, 0u);  // recorded even at retention 0
  EXPECT_GT(merged.find("engine_scheduled")->counter, 0u);
  // Event series are eagerly interned: present (zero) even though a
  // healthy Fig.4 run trips no breakers.
  const obs::SeriesSnapshot* breaker_events =
      merged.find("mesh_events_total", {{"kind", "breaker"}});
  ASSERT_NE(breaker_events, nullptr);
  EXPECT_EQ(breaker_events->counter, 0u);

  for (const int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult parallel = run_fig4_sweep(threads);
    EXPECT_EQ(parallel.threads_used, threads);
    expect_identical_sweeps(serial, parallel);
  }
}

// The OVERLOAD experiment joins the determinism suite: a short 2x-knee
// sweep (admission on and off) must be bit-identical — every scalar,
// counter, histogram bucket and snapshot series — at any thread count.

SweepResult run_overload_sweep(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const bool admission : {true, false}) {
    runner.add({{"load", "2.0x"}, {"admission", admission ? "on" : "off"}},
               [admission] {
                 OverloadExperimentConfig config;
                 config.load_factor = 2.0;
                 config.admission = admission;
                 config.warmup = sim::seconds(1);
                 config.duration = sim::seconds(3);
                 config.cooldown = sim::seconds(1);
                 config.seed = 42;
                 return overload_point_metrics(
                     run_overload_experiment(config));
               });
  }
  return runner.run();
}

TEST(OverloadDeterminism, TwoXKneeBitIdenticalAcrossThreadCounts) {
  const SweepResult serial = run_overload_sweep(1);
  ASSERT_EQ(serial.points.size(), 2u);
  // The admission-on arm actually exercises the subsystem under test:
  // LS completes, the shedding lands on LI, and the admission_* series
  // reach the unified snapshot.
  const PointMetrics& on = serial.points[0].metrics;
  EXPECT_GT(on.counters.at("ls_completed"), 0u);
  EXPECT_GT(on.counters.at("li_shed"), 0u);
  EXPECT_EQ(on.counters.at("ls_shed"), 0u);
  ASSERT_FALSE(on.snapshot.empty());
  const obs::SeriesSnapshot* shed = on.snapshot.find(
      "admission_shed_total",
      {{"service", "frontend"},
       {"class", "scavenger"},
       {"reason", "queue-full"}});
  ASSERT_NE(shed, nullptr);
  EXPECT_GT(shed->counter, 0u);

  for (const int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult parallel = run_overload_sweep(threads);
    EXPECT_EQ(parallel.threads_used, threads);
    expect_identical_sweeps(serial, parallel);
  }
}

// The CHAOS_CP experiment joins the determinism suite: a shortened CP
// outage + churn storm (both arms) must be bit-identical — every scalar,
// counter, histogram bucket and snapshot series — at any thread count.

SweepResult run_cp_chaos_sweep(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const bool outage : {true, false}) {
    runner.add({{"outage", outage ? "on" : "off"}}, [outage] {
      CpChaosExperimentConfig config;
      config.ls_rps = 15.0;
      config.li_rps = 5.0;
      config.warmup = sim::seconds(1);
      config.duration = sim::seconds(10);
      config.cooldown = sim::seconds(1);
      config.outage = outage;
      config.outage_offset = sim::seconds(1);
      config.outage_duration = sim::seconds(6);
      config.churn_period = sim::seconds(3);
      config.seed = 42;
      return cp_point_metrics(run_cp_chaos_experiment(config));
    });
  }
  return runner.run();
}

TEST(CpChaosDeterminism, OutageStormBitIdenticalAcrossThreadCounts) {
  const SweepResult serial = run_cp_chaos_sweep(1);
  ASSERT_EQ(serial.points.size(), 2u);
  // The outage arm actually exercises the failure machinery: pushes flow,
  // the mesh ends converged with no stale sidecars, the outage leaves a
  // real staleness footprint, and churn drives real faults.
  const PointMetrics& outage = serial.points[0].metrics;
  EXPECT_GT(outage.counters.at("push_attempts"), 0u);
  EXPECT_EQ(outage.counters.at("converged"), 1u);
  EXPECT_EQ(outage.counters.at("stale_sidecars_at_end"), 0u);
  EXPECT_GT(outage.counters.at("faults_executed"), 2u);
  EXPECT_GT(outage.scalars.at("max_staleness_ms"), 1000.0);
  EXPECT_GT(outage.counters.at("during_completed"), 0u);
  ASSERT_FALSE(outage.snapshot.empty());
  const obs::SeriesSnapshot* crashes =
      outage.snapshot.find("cp_crashes_total");
  ASSERT_NE(crashes, nullptr);
  EXPECT_EQ(crashes->counter, 1u);
  // The control arm never crashes the control plane.
  const PointMetrics& control = serial.points[1].metrics;
  EXPECT_EQ(control.snapshot.find("cp_crashes_total")->counter, 0u);
  EXPECT_EQ(control.counters.at("converged"), 1u);

  for (const int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult parallel = run_cp_chaos_sweep(threads);
    EXPECT_EQ(parallel.threads_used, threads);
    expect_identical_sweeps(serial, parallel);
  }
}

// The MTLS experiment joins the determinism suite: a shortened
// plaintext-vs-storm pair must be bit-identical — every scalar, counter,
// histogram bucket and snapshot series — at any thread count. The storm
// arm exercises the whole TLS surface: full handshakes, resumption,
// connection resets and the shared per-sidecar crypto clock.

SweepResult run_mtls_sweep(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const bool mtls : {true, false}) {
    runner.add({{"mtls", mtls ? "on" : "off"}}, [mtls] {
      MtlsExperimentConfig config;
      config.ls_rps = 15.0;
      config.li_rps = 5.0;
      config.warmup = sim::seconds(1);
      config.duration = sim::seconds(10);
      config.cooldown = sim::seconds(1);
      config.mtls = mtls;
      config.storm = mtls;  // plaintext control stays calm
      config.storm_offset = sim::seconds(5);
      config.seed = 42;
      return mtls_point_metrics(run_mtls_experiment(config));
    });
  }
  return runner.run();
}

TEST(MtlsDeterminism, HandshakeStormBitIdenticalAcrossThreadCounts) {
  const SweepResult serial = run_mtls_sweep(1);
  ASSERT_EQ(serial.points.size(), 2u);
  // The mTLS arm actually exercises the subsystem under test: traffic
  // completes, handshakes happen (full at startup, resumed after the
  // storm's reconnect wave), tickets flow, and the tls_* series reach
  // the unified snapshot.
  const PointMetrics& mtls = serial.points[0].metrics;
  EXPECT_GT(mtls.counters.at("ls_completed"), 0u);
  EXPECT_GT(mtls.counters.at("tls_handshakes_full"), 0u);
  EXPECT_GT(mtls.counters.at("tls_handshakes_resumed"), 0u);
  EXPECT_GT(mtls.counters.at("tls_tickets_issued"), 0u);
  EXPECT_GT(mtls.counters.at("tls_records_encrypted"), 0u);
  EXPECT_GT(mtls.counters.at("faults_executed"), 0u);
  ASSERT_FALSE(mtls.snapshot.empty());
  const obs::SeriesSnapshot* full =
      mtls.snapshot.find("tls_handshakes_full_total");
  ASSERT_NE(full, nullptr);
  EXPECT_GT(full->counter, 0u);
  // The plaintext control never touches the TLS layer.
  const PointMetrics& plain = serial.points[1].metrics;
  EXPECT_EQ(plain.counters.at("tls_handshakes_full"), 0u);
  EXPECT_EQ(plain.counters.at("tls_records_encrypted"), 0u);
  EXPECT_GT(plain.counters.at("ls_completed"), 0u);

  for (const int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult parallel = run_mtls_sweep(threads);
    EXPECT_EQ(parallel.threads_used, threads);
    expect_identical_sweeps(serial, parallel);
  }
}

TEST(SweepRunner, ResultsArriveInInputOrderAndReportIsStable) {
  SweepOptions options;
  options.threads = 4;
  SweepRunner runner(options);
  constexpr int kPoints = 12;
  for (int i = 0; i < kPoints; ++i) {
    runner.add({{"i", std::to_string(i)}}, [i] {
      // Finish out of submission order on purpose.
      std::this_thread::sleep_for(
          std::chrono::milliseconds((kPoints - i) % 5));
      PointMetrics metrics;
      metrics.scalars["value"] = static_cast<double>(i);
      metrics.counters["one"] = 1;
      return metrics;
    });
  }
  const SweepResult result = runner.run();
  ASSERT_EQ(result.points.size(), static_cast<std::size_t>(kPoints));
  for (int i = 0; i < kPoints; ++i) {
    EXPECT_EQ(result.points[static_cast<std::size_t>(i)].id,
              "i=" + std::to_string(i));
    EXPECT_EQ(result.points[static_cast<std::size_t>(i)].metrics.scalars
                  .at("value"),
              static_cast<double>(i));
  }
  EXPECT_EQ(result.merged_counters.at("one"),
            static_cast<std::uint64_t>(kPoints));

  const stats::BenchReport report =
      make_bench_report("order", {{"seed", "1"}}, result);
  EXPECT_EQ(report.points.size(), static_cast<std::size_t>(kPoints));
  EXPECT_EQ(report.points[3].id, "i=3");
}

TEST(SweepRunner, PointExceptionPropagates) {
  SweepRunner runner;
  runner.add({{"boom", "1"}},
             []() -> PointMetrics { throw std::runtime_error("sweep boom"); });
  EXPECT_THROW(runner.run(), std::runtime_error);
}

// The wall-clock acceptance claim (>=3x at --threads=8) only makes sense
// with real cores; on small CI machines this skips rather than flakes.
// Determinism — the part that can regress silently — is asserted above on
// every machine.
TEST(SweepRunnerSpeedup, ParallelSweepBeatsSerial) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  const auto build = [](SweepRunner& runner) {
    for (int i = 0; i < 8; ++i) {
      runner.add({{"i", std::to_string(i)}}, [i] {
        ElibraryExperimentConfig config;
        config.ls_rps = 30;
        config.li_rps = 30;
        config.warmup = sim::seconds(1);
        config.duration = sim::seconds(2);
        config.seed = 42 + static_cast<std::uint64_t>(i);
        return elibrary_point_metrics(run_elibrary_experiment(config));
      });
    }
  };
  SweepOptions serial_options;
  serial_options.threads = 1;
  SweepRunner serial(serial_options);
  build(serial);
  const double serial_ms = serial.run().wall_ms;

  SweepOptions parallel_options;
  parallel_options.threads = 8;
  SweepRunner parallel(parallel_options);
  build(parallel);
  const double parallel_ms = parallel.run().wall_ms;

  // Conservative bound (acceptance asks 3x on 8 cores; 2x keeps 4-core CI
  // machines green while still failing on any serialization regression).
  EXPECT_LT(parallel_ms * 2.0, serial_ms)
      << "serial " << serial_ms << " ms vs parallel " << parallel_ms
      << " ms";
}

}  // namespace
}  // namespace meshnet::workload
