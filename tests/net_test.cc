// Tests for addressing, qdiscs, links and the routed fabric.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/address.h"
#include "net/link.h"
#include "net/network.h"
#include "net/packet.h"
#include "net/qdisc.h"
#include "sim/simulator.h"

namespace meshnet::net {
namespace {

Packet make_packet(std::uint32_t payload_bytes, Dscp dscp = Dscp::kDefault,
                   IpAddress dst = make_ip(10, 0, 0, 2)) {
  Packet p;
  p.flow = FlowKey{make_ip(10, 0, 0, 1), 1000, dst, 2000};
  p.dscp = dscp;
  if (payload_bytes > 0) {
    p.payload = Payload::filled(payload_bytes, 'x');
  }
  return p;
}

TEST(Address, IpFormatting) {
  EXPECT_EQ(ip_to_string(make_ip(10, 244, 0, 2)), "10.244.0.2");
  EXPECT_EQ(ip_to_string(0), "0.0.0.0");
  EXPECT_EQ(ip_to_string(0xffffffff), "255.255.255.255");
}

TEST(Address, ParseRoundTrip) {
  const IpAddress ip = make_ip(192, 168, 1, 77);
  EXPECT_EQ(parse_ip(ip_to_string(ip)), ip);
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_EQ(parse_ip(""), kNoAddress);
  EXPECT_EQ(parse_ip("10.0.0"), kNoAddress);
  EXPECT_EQ(parse_ip("10.0.0.256"), kNoAddress);
  EXPECT_EQ(parse_ip("a.b.c.d"), kNoAddress);
}

TEST(Address, FlowKeyReversed) {
  const FlowKey key{1, 2, 3, 4};
  const FlowKey rev = key.reversed();
  EXPECT_EQ(rev.src_ip, 3u);
  EXPECT_EQ(rev.src_port, 4);
  EXPECT_EQ(rev.dst_ip, 1u);
  EXPECT_EQ(rev.dst_port, 2);
  EXPECT_EQ(rev.reversed(), key);
}

TEST(Address, FlowKeyHashDiffers) {
  FlowKeyHash hash;
  const FlowKey a{1, 2, 3, 4};
  const FlowKey b{1, 2, 3, 5};
  EXPECT_NE(hash(a), hash(b));
  EXPECT_EQ(hash(a), hash(FlowKey{1, 2, 3, 4}));
}

// ---- Pooled payload buffers -------------------------------------------

TEST(Payload, CopySliceAndViews) {
  const std::string data = "0123456789abcdef";
  Payload whole = Payload::copy_of(data);
  EXPECT_EQ(whole.view(), data);
  EXPECT_EQ(whole.size(), data.size());
  EXPECT_FALSE(whole.empty());

  Payload mid = whole.slice(4, 6);
  EXPECT_EQ(mid.view(), "456789");
  // Slices share the block: same underlying bytes.
  EXPECT_EQ(mid.data(), whole.data() + 4);

  // The slice keeps the block alive after the parent dies.
  whole.reset();
  EXPECT_TRUE(whole.empty());
  EXPECT_EQ(mid.view(), "456789");

  Payload copy = mid;          // copy shares
  Payload moved = std::move(mid);
  EXPECT_EQ(copy.view(), "456789");
  EXPECT_EQ(moved.view(), "456789");
  EXPECT_TRUE(mid.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(Payload, EmptyAndFilled) {
  Payload empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.view(), "");
  EXPECT_TRUE(Payload::copy_of("").empty());

  Payload filled = Payload::filled(1000, 'x');
  EXPECT_EQ(filled.size(), 1000u);
  EXPECT_EQ(filled.view().front(), 'x');
  EXPECT_EQ(filled.view().back(), 'x');
}

TEST(Payload, PoolReusesBlocks) {
  payload_pool_trim();
  const PayloadPoolStats before = payload_pool_stats();
  { Payload p = Payload::filled(1400, 'x'); }
  { Payload p = Payload::filled(1400, 'y'); }  // same size class: reuse
  const PayloadPoolStats after = payload_pool_stats();
  EXPECT_EQ(after.pool_misses - before.pool_misses, 1u);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 1u);
  EXPECT_EQ(after.blocks_cached, 1u);
  payload_pool_trim();
  EXPECT_EQ(payload_pool_stats().blocks_cached, 0u);
  EXPECT_EQ(payload_pool_stats().bytes_cached, 0u);
}

TEST(Payload, OversizedBlocksBypassThePool) {
  payload_pool_trim();
  const PayloadPoolStats before = payload_pool_stats();
  { Payload p = Payload::filled(256 * 1024, 'z'); }
  const PayloadPoolStats after = payload_pool_stats();
  EXPECT_EQ(after.unpooled - before.unpooled, 1u);
  EXPECT_EQ(after.blocks_cached, 0u);  // not cached on release
}

TEST(Packet, SizeAccounting) {
  Packet p = make_packet(100);
  EXPECT_EQ(p.payload_size(), 100u);
  EXPECT_EQ(p.size_bytes(), 140u);  // 40B header
  Packet ack = make_packet(0);
  EXPECT_EQ(ack.payload_size(), 0u);
  EXPECT_EQ(ack.size_bytes(), 40u);
}

TEST(FifoQdisc, FifoOrder) {
  FifoQdisc q(1 << 20);
  for (int i = 1; i <= 3; ++i) q.enqueue(make_packet(100 * i), 0);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 100u);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 200u);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 300u);
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(FifoQdisc, DropsWhenFull) {
  FifoQdisc q(300);
  EXPECT_TRUE(q.enqueue(make_packet(200), 0));   // 240 bytes
  EXPECT_FALSE(q.enqueue(make_packet(200), 0));  // would exceed 300
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.backlog_packets(), 1u);
}

TEST(FifoQdisc, AlwaysAcceptsIntoEmptyQueue) {
  FifoQdisc q(10);  // limit below even one packet
  EXPECT_TRUE(q.enqueue(make_packet(1000), 0));
  EXPECT_EQ(q.backlog_packets(), 1u);
}

TEST(FifoQdisc, StatsTrackBytes) {
  FifoQdisc q(1 << 20);
  q.enqueue(make_packet(100), 0);
  q.enqueue(make_packet(50), 0);
  EXPECT_EQ(q.stats().enqueued_packets, 2u);
  EXPECT_EQ(q.stats().enqueued_bytes, 230u);
  EXPECT_EQ(q.stats().max_backlog_bytes, 230u);
  q.dequeue(0);
  EXPECT_EQ(q.stats().dequeued_packets, 1u);
  EXPECT_EQ(q.backlog_bytes(), 90u);
}

TEST(FifoQdisc, NextReady) {
  FifoQdisc q(1 << 20);
  EXPECT_FALSE(q.next_ready(5).has_value());
  q.enqueue(make_packet(10), 5);
  EXPECT_EQ(q.next_ready(5).value(), 5);
}

TEST(StrictPrioQdisc, HighBandAlwaysFirst) {
  StrictPrioQdisc q(2, classify_by_dscp());
  q.enqueue(make_packet(100, Dscp::kScavenger), 0);
  q.enqueue(make_packet(200, Dscp::kExpedited), 0);
  q.enqueue(make_packet(300, Dscp::kScavenger), 0);
  q.enqueue(make_packet(400, Dscp::kExpedited), 0);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 200u);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 400u);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 100u);
  EXPECT_EQ(q.dequeue(0)->payload_size(), 300u);
}

TEST(StrictPrioQdisc, PerBandLimits) {
  StrictPrioQdisc q(2, classify_by_dscp(), 300);
  EXPECT_TRUE(q.enqueue(make_packet(200, Dscp::kExpedited), 0));
  EXPECT_FALSE(q.enqueue(make_packet(200, Dscp::kExpedited), 0));
  // The low band has its own budget.
  EXPECT_TRUE(q.enqueue(make_packet(200, Dscp::kScavenger), 0));
  EXPECT_EQ(q.band_drops(0), 1u);
  EXPECT_EQ(q.band_drops(1), 0u);
}

TEST(StrictPrioQdisc, ClassifierClamping) {
  StrictPrioQdisc q(2, classify_all_to(99));  // out of range -> last band
  EXPECT_TRUE(q.enqueue(make_packet(10), 0));
  EXPECT_EQ(q.band_backlog_packets(1), 1u);
  StrictPrioQdisc q2(2, classify_all_to(-5));  // negative -> band 0
  EXPECT_TRUE(q2.enqueue(make_packet(10), 0));
  EXPECT_EQ(q2.band_backlog_packets(0), 1u);
}

TEST(WeightedPrioQdisc, EmptyDequeue) {
  WeightedPrioQdisc q({0.95, 0.05}, classify_by_dscp());
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(WeightedPrioQdisc, SharesApproximateConfiguration) {
  // Keep both bands saturated and measure the byte split.
  WeightedPrioQdisc q({0.95, 0.05}, classify_by_dscp(), 1 << 30);
  auto refill = [&] {
    while (q.band_backlog_packets(0) < 50) {
      q.enqueue(make_packet(1400, Dscp::kExpedited), 0);
    }
    while (q.band_backlog_packets(1) < 50) {
      q.enqueue(make_packet(1400, Dscp::kScavenger), 0);
    }
  };
  for (int i = 0; i < 4000; ++i) {
    refill();
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  const double high = static_cast<double>(q.band_dequeued_bytes(0));
  const double low = static_cast<double>(q.band_dequeued_bytes(1));
  EXPECT_NEAR(high / (high + low), 0.95, 0.02);
}

TEST(WeightedPrioQdisc, IdleHighBandYieldsFully) {
  WeightedPrioQdisc q({0.95, 0.05}, classify_by_dscp(), 1 << 30);
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(1000, Dscp::kScavenger), 0);
  }
  // With no high traffic, every dequeue serves the low band immediately.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_EQ(q.band_dequeued_bytes(1), 100u * 1040u);
}

TEST(WeightedPrioQdisc, HighPacketJumpsLowBacklog) {
  WeightedPrioQdisc q({0.95, 0.05}, classify_by_dscp(), 1 << 30);
  for (int i = 0; i < 50; ++i) {
    q.enqueue(make_packet(1400, Dscp::kScavenger), 0);
  }
  q.enqueue(make_packet(100, Dscp::kExpedited), 0);
  // The next few dequeues must include the high packet almost instantly
  // (DRR may emit at most one low packet first from residual deficit).
  bool high_seen = false;
  for (int i = 0; i < 2 && !high_seen; ++i) {
    const auto p = q.dequeue(0);
    ASSERT_TRUE(p.has_value());
    high_seen = p->dscp == Dscp::kExpedited;
  }
  EXPECT_TRUE(high_seen);
}

TEST(WeightedPrioQdisc, DropsPerBand) {
  WeightedPrioQdisc q({0.5, 0.5}, classify_by_dscp(), 300);
  EXPECT_TRUE(q.enqueue(make_packet(200, Dscp::kExpedited), 0));
  EXPECT_FALSE(q.enqueue(make_packet(200, Dscp::kExpedited), 0));
  EXPECT_TRUE(q.enqueue(make_packet(200, Dscp::kScavenger), 0));
  EXPECT_EQ(q.band_drops(0), 1u);
  EXPECT_EQ(q.band_drops(1), 0u);
}

TEST(TokenBucketQdisc, ShapesToRate) {
  // 8 Mbps = 1 byte/us. A 1000-byte packet needs 1040 us of tokens.
  TokenBucketQdisc q(8e6, 100, 1 << 20);  // tiny burst
  q.enqueue(make_packet(1000), 0);
  EXPECT_FALSE(q.dequeue(0).has_value());  // not enough tokens yet
  const auto ready = q.next_ready(0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_GT(*ready, 0);
  EXPECT_TRUE(q.dequeue(*ready).has_value());
}

TEST(TokenBucketQdisc, BurstAllowsImmediateDequeue) {
  TokenBucketQdisc q(8e6, 10'000, 1 << 20);
  q.enqueue(make_packet(1000), 0);
  EXPECT_TRUE(q.dequeue(0).has_value());
}

TEST(TokenBucketQdisc, TokensCapAtBurst) {
  TokenBucketQdisc q(8e9, 5000, 1 << 20);
  EXPECT_NEAR(q.tokens_at(sim::seconds(100)), 5000.0, 1e-6);
}

TEST(Classifiers, ByDstIp) {
  const IpAddress high = make_ip(10, 244, 0, 7);
  auto c = classify_by_dst_ip(high);
  EXPECT_EQ(c(make_packet(1, Dscp::kDefault, high)), 0);
  EXPECT_EQ(c(make_packet(1, Dscp::kDefault, make_ip(10, 244, 0, 8))), 1);
}

TEST(Classifiers, ByDscp) {
  auto c = classify_by_dscp();
  EXPECT_EQ(c(make_packet(1, Dscp::kExpedited)), 0);
  EXPECT_EQ(c(make_packet(1, Dscp::kScavenger)), 1);
  EXPECT_EQ(c(make_packet(1, Dscp::kDefault)), 1);
}

// ---------------------------------------------------------------- Link --

TEST(Link, SerializationAndPropagationDelay) {
  sim::Simulator sim;
  // 1250-byte payload + 40B header = 1290 bytes at 1 Gbps = 10.32 us,
  // plus 5 us propagation.
  Link link(sim, "l", 1e9, sim::microseconds(5),
            std::make_unique<FifoQdisc>());
  sim::Time delivered_at = -1;
  link.set_sink([&](Packet) { delivered_at = sim.now(); });
  link.send(make_packet(1250));
  sim.run();
  EXPECT_EQ(delivered_at, sim::transmission_time(1290, 1e9) +
                              sim::microseconds(5));
}

TEST(Link, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  Link link(sim, "l", 1e9, 0, std::make_unique<FifoQdisc>());
  std::vector<sim::Time> deliveries;
  link.set_sink([&](Packet) { deliveries.push_back(sim.now()); });
  link.send(make_packet(1210));  // 1250B -> 10 us
  link.send(make_packet(1210));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[1] - deliveries[0], sim::microseconds(10));
}

TEST(Link, UtilizationAndStats) {
  sim::Simulator sim;
  Link link(sim, "l", 1e9, 0, std::make_unique<FifoQdisc>());
  link.set_sink([](Packet) {});
  link.send(make_packet(1210));
  sim.run();
  EXPECT_EQ(link.stats().delivered_packets, 1u);
  EXPECT_EQ(link.stats().delivered_bytes, 1250u);
  EXPECT_GT(link.utilization(sim.now()), 0.99);
}

TEST(Link, QdiscReplaceDropsBacklog) {
  sim::Simulator sim;
  Link link(sim, "l", 1e3, 0, std::make_unique<FifoQdisc>());  // slow
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  for (int i = 0; i < 5; ++i) link.send(make_packet(100));
  link.set_qdisc(std::make_unique<FifoQdisc>());
  sim.run();
  EXPECT_EQ(delivered, 1);  // only the packet already on the wire
}

TEST(Link, ShapedQdiscRetries) {
  sim::Simulator sim;
  // Link is fast, but the token bucket inside only allows ~1 packet per
  // 100 us; the link must keep polling next_ready.
  Link link(sim, "l", 1e12, 0,
            std::make_unique<TokenBucketQdisc>(8e7, 1100, 1 << 20));
  std::vector<sim::Time> deliveries;
  link.set_sink([&](Packet) { deliveries.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) link.send(make_packet(960));  // 1000B each
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  // 8e7 bps = 10 bytes/us -> 1000 bytes = 100 us between packets.
  EXPECT_NEAR(static_cast<double>(deliveries[2] - deliveries[1]),
              static_cast<double>(sim::microseconds(100)), 2000.0);
}

// -------------------------------------------------------------- Network --

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Network net{sim};
};

TEST_F(NetworkTest, DeliversAcrossOneLink) {
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.add_duplex_link(a, b, 1e9, sim::microseconds(1));
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), b);
  int got = 0;
  dst.set_handler([&](Packet) { ++got; });
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, MultiHopRouting) {
  // a - m1 - m2 - b line topology.
  const auto a = net.add_location("a");
  const auto m1 = net.add_location("m1");
  const auto m2 = net.add_location("m2");
  const auto b = net.add_location("b");
  net.add_duplex_link(a, m1, 1e9, 1000);
  net.add_duplex_link(m1, m2, 1e9, 1000);
  net.add_duplex_link(m2, b, 1e9, 1000);
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), b);
  sim::Time arrival = -1;
  dst.set_handler([&](Packet) { arrival = sim.now(); });
  net.send(make_packet(100));
  sim.run();
  ASSERT_GE(arrival, 0);
  // Three hops of propagation plus three serializations.
  EXPECT_GE(arrival, 3000);
}

TEST_F(NetworkTest, ShortestPathPreferred) {
  // Direct link a-b plus a detour a-c-b: traffic must use the direct one.
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  const auto c = net.add_location("c");
  auto [direct, _] = net.add_duplex_link(a, b, 1e9, 1000, "direct");
  net.add_duplex_link(a, c, 1e9, 1000);
  net.add_duplex_link(c, b, 1e9, 1000);
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), b);
  dst.set_handler([](Packet) {});
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(direct->stats().delivered_packets, 1u);
}

TEST_F(NetworkTest, LoopbackForSameLocation) {
  const auto a = net.add_location("a");
  net.set_loopback_delay(sim::microseconds(3));
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), a);
  sim::Time arrival = -1;
  dst.set_handler([&](Packet) { arrival = sim.now(); });
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(arrival, sim::microseconds(3));
}

TEST_F(NetworkTest, UnroutableCountsAndDrops) {
  const auto a = net.add_location("a");
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  net.send(make_packet(100));  // dst 10.0.0.2 unknown
  sim.run();
  EXPECT_EQ(net.unroutable_drops(), 1u);
}

TEST_F(NetworkTest, PartitionedFabricCounts) {
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");  // no link between them
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), b);
  int got = 0;
  dst.set_handler([&](Packet) { ++got; });
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.unroutable_drops(), 1u);
}

TEST_F(NetworkTest, FindLinkByName) {
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.add_link(a, b, 1e9, 0, nullptr, "my-link");
  EXPECT_NE(net.find_link("my-link"), nullptr);
  EXPECT_EQ(net.find_link("nope"), nullptr);
  EXPECT_EQ(net.links().size(), 1u);
}

TEST_F(NetworkTest, TopologyChangeRecomputesRoutes) {
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.attach_interface(make_ip(10, 0, 0, 1), a);
  Interface& dst = net.attach_interface(make_ip(10, 0, 0, 2), b);
  int got = 0;
  dst.set_handler([&](Packet) { ++got; });
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(got, 0);  // no route yet
  net.add_duplex_link(a, b, 1e9, 0);
  net.send(make_packet(100));
  sim.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace meshnet::net
