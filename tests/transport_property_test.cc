// Property-style parameterized transport tests: every byte arrives
// exactly once, in order, across a sweep of adverse path conditions
// (tiny queues forcing loss, long delays, small MSS, both congestion
// controllers), and concurrent flows all complete.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.h"
#include "net/qdisc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace meshnet::transport {
namespace {

// (queue_bytes, delay_us, mss, use_ledbat)
using PathParam = std::tuple<std::uint64_t, int, std::uint32_t, bool>;

class PathSweepTest : public ::testing::TestWithParam<PathParam> {};

std::string patterned(std::size_t n, std::uint64_t seed) {
  std::string out(n, '\0');
  sim::RngStream rng(seed, "payload");
  for (std::size_t i = 0; i < n; i += 64) {
    const std::uint64_t v = rng.next_u64();
    for (std::size_t j = i; j < std::min(i + 64, n); ++j) {
      out[j] = static_cast<char>((v >> ((j % 8) * 8)) ^ j);
    }
  }
  return out;
}

TEST_P(PathSweepTest, ExactlyOnceInOrderDelivery) {
  const auto [queue_bytes, delay_us, mss, ledbat] = GetParam();
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.add_link(a, b, 1e8, sim::microseconds(delay_us),
               std::make_unique<net::FifoQdisc>(queue_bytes), "fwd");
  net.add_link(b, a, 1e8, sim::microseconds(delay_us),
               std::make_unique<net::FifoQdisc>(queue_bytes), "rev");
  const auto ip_a = net::make_ip(10, 0, 0, 1);
  const auto ip_b = net::make_ip(10, 0, 0, 2);
  net.attach_interface(ip_a, a);
  net.attach_interface(ip_b, b);
  TransportHost host_a(sim, net, ip_a);
  TransportHost host_b(sim, net, ip_b);

  std::string received;
  host_b.listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });

  ConnectionOptions options;
  options.mss = mss;
  options.cc = ledbat ? CcAlgorithm::kLedbat : CcAlgorithm::kReno;
  Connection& client = host_a.connect({ip_b, 80}, options);
  const std::string sent = patterned(400'000, queue_bytes ^ mss);
  client.send(sent);
  sim.run_until(sim::seconds(120));
  ASSERT_EQ(received.size(), sent.size())
      << "queue=" << queue_bytes << " delay=" << delay_us << " mss=" << mss
      << " cc=" << (ledbat ? "ledbat" : "reno");
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, PathSweepTest,
    ::testing::Values(
        PathParam{3'000, 100, 1000, false},     // heavy loss, Reno
        PathParam{3'000, 100, 1000, true},      // heavy loss, LEDBAT
        PathParam{6'000, 5'000, 1460, false},   // loss + long RTT
        PathParam{64'000, 100, 536, false},     // tiny MSS
        PathParam{1'000'000, 10'000, 8960, false},  // clean fat path
        PathParam{1'000'000, 10'000, 8960, true},
        PathParam{4'500, 1'000, 9000, false},   // queue < one segment pair
        PathParam{20'000, 50, 100, true}));     // many tiny segments

TEST(ConcurrentFlows, AllCompleteOverSharedBottleneck) {
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.add_link(a, b, 1e8, sim::microseconds(500),
               std::make_unique<net::FifoQdisc>(30'000), "fwd");
  net.add_link(b, a, 1e8, sim::microseconds(500),
               std::make_unique<net::FifoQdisc>(30'000), "rev");
  const auto ip_a = net::make_ip(10, 0, 0, 1);
  const auto ip_b = net::make_ip(10, 0, 0, 2);
  net.attach_interface(ip_a, a);
  net.attach_interface(ip_b, b);
  TransportHost host_a(sim, net, ip_a);
  TransportHost host_b(sim, net, ip_b);

  constexpr int kFlows = 8;
  constexpr std::size_t kPerFlow = 200'000;
  std::vector<std::uint64_t> received(kFlows, 0);
  int next_flow = 0;
  host_b.listen(80, [&](Connection& c) {
    const int idx = next_flow++;
    c.set_on_data([&received, idx](std::string_view d) {
      received[static_cast<std::size_t>(idx)] += d.size();
    });
  });
  for (int i = 0; i < kFlows; ++i) {
    ConnectionOptions options;
    options.mss = 1460;
    // Mix of controllers sharing the link.
    options.cc = i % 2 ? CcAlgorithm::kLedbat : CcAlgorithm::kReno;
    host_a.connect({ip_b, 80}, options).send(std::string(kPerFlow, 'a' + i));
  }
  sim.run_until(sim::seconds(120));
  for (int i = 0; i < kFlows; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], kPerFlow)
        << "flow " << i;
  }
  // The shared path saw real loss (otherwise this test proves little).
  EXPECT_GT(host_a.stats().retransmits, 0u);
}

TEST(ConcurrentFlows, LedbatYieldsToReno) {
  // One Reno and one LEDBAT bulk flow share a bottleneck: after
  // convergence the Reno flow should hold clearly more than half the
  // goodput (the scavenger property at transport level).
  sim::Simulator sim;
  net::Network net(sim);
  const auto a = net.add_location("a");
  const auto b = net.add_location("b");
  net.add_link(a, b, 1e8, sim::microseconds(500),
               std::make_unique<net::FifoQdisc>(500'000), "fwd");
  net.add_link(b, a, 1e8, sim::microseconds(500),
               std::make_unique<net::FifoQdisc>(500'000), "rev");
  const auto ip_a = net::make_ip(10, 0, 0, 1);
  const auto ip_b = net::make_ip(10, 0, 0, 2);
  net.attach_interface(ip_a, a);
  net.attach_interface(ip_b, b);
  TransportHost host_a(sim, net, ip_a);
  TransportHost host_b(sim, net, ip_b);

  std::uint64_t received_reno = 0, received_ledbat = 0;
  int accepted = 0;
  host_b.listen(80, [&](Connection& c) {
    auto* counter = accepted++ == 0 ? &received_reno : &received_ledbat;
    c.set_on_data([counter](std::string_view d) { *counter += d.size(); });
  });

  ConnectionOptions reno;
  reno.mss = 1460;
  Connection& reno_conn = host_a.connect({ip_b, 80}, reno);
  ConnectionOptions ledbat;
  ledbat.mss = 1460;
  ledbat.cc = CcAlgorithm::kLedbat;
  Connection& ledbat_conn = host_a.connect({ip_b, 80}, ledbat);

  // Keep both flows backlogged.
  const std::string chunk(1 << 18, 'x');
  std::function<void()> top_up = [&] {
    if (reno_conn.send_backlog() < (1u << 20)) reno_conn.send(chunk);
    if (ledbat_conn.send_backlog() < (1u << 20)) ledbat_conn.send(chunk);
    sim.schedule_after(sim::milliseconds(20), top_up);
  };
  sim.schedule_after(0, top_up);
  sim.run_until(sim::seconds(30));

  const double total =
      static_cast<double>(received_reno + received_ledbat);
  ASSERT_GT(total, 0.0);
  EXPECT_GT(static_cast<double>(received_reno) / total, 0.7)
      << "reno=" << received_reno << " ledbat=" << received_ledbat;
}

}  // namespace
}  // namespace meshnet::transport
