// Tests for the discrete-event engine and the named PRNG streams.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(9)), 9.0);
}

TEST(Time, FromSecondsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_seconds(0.0), 0);
}

TEST(Time, TransmissionTime) {
  // 1250 bytes at 1 Gbps = 10 us.
  EXPECT_EQ(transmission_time(1250, 1e9), microseconds(10));
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(transmission_time(1, 8.0), seconds(1));
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimestampRunsInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  Time observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { observed = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(observed, 100);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  bool ran = false;
  sim.schedule_after(-5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
  EXPECT_FALSE(sim.cancel(9999));  // never scheduled
}

TEST(Simulator, CancelAfterExecutionIsHarmless) {
  Simulator sim;
  const EventId id = sim.schedule_at(1, [] {});
  sim.run();
  // The event already ran; cancelling is a no-op that must not corrupt
  // later events with a recycled id check.
  sim.cancel(id);
  bool ran = false;
  sim.schedule_at(2, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Time> fired;
  for (Time t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(55);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 55);
  sim.run_until(200);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // run() resumes where it left off.
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_after(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  const EventId id = sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(RngStream, DeterministicForSameSeedAndName) {
  RngStream a(42, "stream");
  RngStream b(42, "stream");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, DifferentNamesAreIndependent) {
  RngStream a(42, "alpha");
  RngStream b(42, "beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngStream, DifferentSeedsAreIndependent) {
  RngStream a(1, "s");
  RngStream b(2, "s");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngStream, UniformIsInUnitInterval) {
  RngStream rng(7, "u");
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngStream, UniformRangeRespectsBounds) {
  RngStream rng(7, "u2");
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngStream, UniformIntInclusiveBounds) {
  RngStream rng(7, "ui");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values occur
}

TEST(RngStream, ExponentialMeanIsApproximatelyCorrect) {
  RngStream rng(7, "exp");
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(RngStream, BernoulliFrequency) {
  RngStream rng(7, "bern");
  int heads = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.02);
}

// Determinism property across the whole engine: two identical runs yield
// identical event interleavings.
TEST(Simulator, EndToEndDeterminism) {
  auto run = [] {
    Simulator sim;
    RngStream rng(99, "drive");
    std::vector<Time> trace;
    std::function<void()> step = [&] {
      trace.push_back(sim.now());
      if (trace.size() < 500) {
        sim.schedule_after(static_cast<Duration>(rng.uniform_int(1, 1000)),
                           step);
      }
    };
    sim.schedule_after(0, step);
    sim.run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// ---- Hot-path internals: wheel geometry, slot reuse, compaction --------

// Events exactly at wheel level boundaries (64 ticks, 64*64 ticks) and
// beyond the wheel must still fire in time order with same-time FIFO.
TEST(Simulator, WheelLevelBoundariesPreserveOrder) {
  constexpr Duration kTick = 8192;  // 2^13 ns level-0 tick
  Simulator sim;
  std::vector<int> order;
  const Duration delays[] = {
      kTick * 64 - 1,       // last level-0 tick
      kTick * 64,           // first level-1 bucket unit
      kTick * 64 + 1,       // same tick as above, later seq
      kTick * 64 * 64 - 1,  // last level-1 unit
      kTick * 64 * 64,      // first level-2 unit
      kTick * 64 * 64 * 64,  // beyond the wheel: heap
      kTick * 64 * 64 * 64 - 1,  // last level-2 unit
  };
  // Schedule in scrambled order; the expected firing order is by delay.
  const int scramble[] = {5, 2, 0, 6, 4, 1, 3};
  for (const int i : scramble) {
    sim.schedule_after(delays[i], [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 6, 5}));
}

// Same absolute time, scheduled from different structures (wheel via a
// short delay, then merged while the tick drains): FIFO by seq.
TEST(Simulator, SameTimestampFifoAcrossWheelAndReschedule) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(1000, [&] {
    order.push_back(0);
    // now == 1000; these land at the same time as each other and as the
    // event below that was scheduled earlier.
    sim.schedule_after(0, [&] { order.push_back(2); });
    sim.schedule_after(0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1000, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Cancelling most of a large far-future batch triggers lazy compaction
// (visible in loop_stats) and pending_events stays truthful.
TEST(Simulator, CancelledFarTimersAreCompacted) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(sim.schedule_after(seconds(100) + i, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 2000u);
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.pending_events(), 1000u);
  for (std::size_t i = 1; i < ids.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_GE(sim.loop_stats().heap_compactions, 1u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, LoopStatsCountersAreConsistent) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_after(1000 + i, [] {}));  // wheel
  }
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule_after(seconds(10) + i, [] {}));  // heap
  }
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  sim.run();
  const LoopStats& stats = sim.loop_stats();
  EXPECT_EQ(stats.scheduled, 110u);
  EXPECT_EQ(stats.cancelled, 20u);
  EXPECT_EQ(stats.executed, 90u);
  EXPECT_EQ(stats.executed + stats.cancelled, stats.scheduled);
  EXPECT_EQ(stats.wheel_pushes + stats.heap_pushes + stats.due_merges, 110u);
  EXPECT_GE(stats.max_queue_depth, 110u);
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t bucket : stats.depth_histogram) {
    histogram_total += bucket;
  }
  EXPECT_EQ(histogram_total, stats.executed);
}

// Small lambdas must use the inline buffer (no heap allocation); only
// oversized captures fall back to the heap, and the profiler sees it.
TEST(Simulator, InlineTasksAvoidHeapAllocation) {
  Simulator sim;
  int counter = 0;
  sim.schedule_after(1, [&counter] { ++counter; });
  EXPECT_EQ(sim.loop_stats().task_heap_allocs, 0u);
  struct Big {
    char bytes[128];
  } big{};
  sim.schedule_after(2, [&counter, big] { counter += big.bytes[0] ? 2 : 1; });
  EXPECT_EQ(sim.loop_stats().task_heap_allocs, 1u);
  sim.run();
  EXPECT_EQ(counter, 2);
}

TEST(InlineTask, InvokesAndReleasesCaptures) {
  auto shared = std::make_shared<int>(7);
  EXPECT_EQ(shared.use_count(), 1);
  {
    InlineTask task([shared] { (void)*shared; });
    EXPECT_EQ(shared.use_count(), 2);
    task();
    EXPECT_EQ(shared.use_count(), 2);  // invoke does not destroy captures
    task.reset();
    EXPECT_EQ(shared.use_count(), 1);
  }
  // Move transfers ownership (inline relocate).
  int runs = 0;
  InlineTask a([&runs] { ++runs; });
  InlineTask b = std::move(a);
  b();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) moved-from is empty
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace meshnet::sim
