// Tests for the bench report pipeline: JSON schema emission, file
// round-trip, and the baseline comparator that gates regressions.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/metric_registry.h"
#include "stats/bench_report.h"

namespace meshnet::stats {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.experiment = "fig4";
  report.config = {{"seed", "42"}, {"duration_s", "15"}};
  report.threads = 4;
  report.wall_ms = 1234.5;

  BenchPoint point;
  point.id = "rps=40/cross_layer=on";
  point.params = {{"rps", "40"}, {"cross_layer", "on"}};
  point.scalars = {{"ls_p50_ms", 9.5}, {"ls_p99_ms", 12.25}};
  point.counters = {{"ls_completed", 1200}, {"events", 987654}};
  LogHistogram latency;
  for (std::uint64_t v = 1; v <= 100; ++v) latency.record(v * 1000);
  point.histograms = {{"ls_latency_ns", latency}};
  point.wall_ms = 300.0;
  report.points.push_back(point);
  return report;
}

TEST(BenchReport, JsonSchemaShape) {
  const util::Json doc = sample_report().to_json();
  EXPECT_EQ(doc.find("schema")->string_or(""), "meshnet-bench-v1");
  EXPECT_EQ(doc.find("experiment")->string_or(""), "fig4");
  EXPECT_EQ(doc.find("config")->find("seed")->string_or(""), "42");
  EXPECT_EQ(doc.find("threads")->number_or(0), 4);

  const auto& points = doc.find("points")->items();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].find("id")->string_or(""), "rps=40/cross_layer=on");
  EXPECT_EQ(points[0].find("params")->find("rps")->string_or(""), "40");
  EXPECT_EQ(points[0].find("metrics")->find("ls_p99_ms")->number_or(0),
            12.25);
  EXPECT_EQ(points[0].find("counters")->find("events")->number_or(0),
            987654);
  const util::Json* histogram =
      points[0].find("histograms")->find("ls_latency_ns");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->number_or(0), 100);
  EXPECT_GT(histogram->find("p99")->number_or(0), 0);
}

TEST(BenchReport, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "bench_report_rt.json";
  const BenchReport report = sample_report();
  ASSERT_EQ(report.write_file(path), "");
  std::string error;
  const auto loaded = load_report(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->dump(), report.to_json().dump());
  std::remove(path.c_str());
}

TEST(BenchReport, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_report("/nonexistent/nope.json", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(BenchReport, WriteToBadPathFails) {
  EXPECT_NE(sample_report().write_file("/nonexistent/dir/x.json"), "");
}

TEST(BenchCompare, IdenticalReportsPass) {
  const util::Json doc = sample_report().to_json();
  const CompareOutcome outcome = compare_reports(doc, doc);
  EXPECT_TRUE(outcome.ok) << (outcome.failures.empty()
                                  ? ""
                                  : outcome.failures[0]);
  // 2 scalars + 2 counters + 7 histogram fields.
  EXPECT_EQ(outcome.compared, 11u);
}

TEST(BenchCompare, WallClockAndThreadsNeverCompared) {
  BenchReport current = sample_report();
  current.threads = 64;
  current.wall_ms = 1.0;
  current.points[0].wall_ms = 9999.0;
  const CompareOutcome outcome =
      compare_reports(sample_report().to_json(), current.to_json());
  EXPECT_TRUE(outcome.ok);
}

TEST(BenchCompare, MetricDriftOutsideToleranceFails) {
  BenchReport current = sample_report();
  current.points[0].scalars["ls_p99_ms"] = 13.0;  // ~6% off
  const CompareOutcome outcome =
      compare_reports(sample_report().to_json(), current.to_json());
  EXPECT_FALSE(outcome.ok);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_NE(outcome.failures[0].find("ls_p99_ms"), std::string::npos);
}

TEST(BenchCompare, PerMetricToleranceOverrides) {
  BenchReport current = sample_report();
  current.points[0].scalars["ls_p99_ms"] = 13.0;
  CompareOptions options;
  options.metric_tolerance["ls_p99_ms"] = 0.10;  // allow 10% on this one
  EXPECT_TRUE(compare_reports(sample_report().to_json(), current.to_json(),
                              options)
                  .ok);
  options.metric_tolerance["ls_p99_ms"] = 0.01;
  EXPECT_FALSE(compare_reports(sample_report().to_json(), current.to_json(),
                               options)
                   .ok);
}

TEST(BenchCompare, MissingPointFails) {
  BenchReport current = sample_report();
  current.points[0].id = "rps=50/cross_layer=on";
  const CompareOutcome outcome =
      compare_reports(sample_report().to_json(), current.to_json());
  EXPECT_FALSE(outcome.ok);
  ASSERT_FALSE(outcome.failures.empty());
  EXPECT_NE(outcome.failures[0].find("missing point"), std::string::npos);
}

TEST(BenchCompare, ExtraCurrentMetricsAreIgnored) {
  // Adding metrics after a baseline was captured must not break it.
  BenchReport current = sample_report();
  current.points[0].scalars["brand_new_metric"] = 7.0;
  current.points[0].counters["brand_new_counter"] = 3;
  EXPECT_TRUE(
      compare_reports(sample_report().to_json(), current.to_json()).ok);
}

TEST(BenchCompare, MissingBaselineMetricFails) {
  BenchReport baseline = sample_report();
  baseline.points[0].scalars["retired_metric"] = 1.0;
  const CompareOutcome outcome =
      compare_reports(baseline.to_json(), sample_report().to_json());
  EXPECT_FALSE(outcome.ok);
  ASSERT_FALSE(outcome.failures.empty());
  EXPECT_NE(outcome.failures[0].find("retired_metric"), std::string::npos);
}

TEST(BenchCompare, ExperimentMismatchFails) {
  BenchReport current = sample_report();
  current.experiment = "li_degradation";
  const CompareOutcome outcome =
      compare_reports(sample_report().to_json(), current.to_json());
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failures[0].find("experiment mismatch"),
            std::string::npos);
}

// --------------------------------- the unified "metrics" block --------

BenchReport report_with_metrics(std::uint64_t requests) {
  BenchReport report = sample_report();
  obs::MetricRegistry registry;
  registry.counter("mesh_requests_total").inc(requests);
  registry.gauge("engine_max_queue_depth").set(17.0);
  registry.histogram("span_duration_ns", {{"service", "gateway"}})
      .record(5000);
  report.metrics = registry.snapshot().to_json();
  return report;
}

TEST(BenchReport, MetricsBlockRoundTrips) {
  const BenchReport report = report_with_metrics(12);
  const util::Json doc = report.to_json();
  const util::Json* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("schema")->string_or(""), "meshnet-metrics-v1");
  const util::Json* series = metrics->find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("mesh_requests_total")->find("value")->number_or(0),
            12.0);
  // A report without a snapshot emits no "metrics" key at all.
  EXPECT_EQ(sample_report().to_json().find("metrics"), nullptr);
}

TEST(BenchCompare, MetricsBlockGatesExactly) {
  const util::Json baseline = report_with_metrics(12).to_json();
  EXPECT_TRUE(compare_reports(baseline, baseline).ok);
  // A single counter drifting by one fails the gate.
  const util::Json drifted = report_with_metrics(13).to_json();
  const CompareOutcome outcome = compare_reports(baseline, drifted);
  EXPECT_FALSE(outcome.ok);
  ASSERT_FALSE(outcome.failures.empty());
  EXPECT_NE(outcome.failures[0].find("metrics.series.mesh_requests_total"),
            std::string::npos);
}

TEST(BenchCompare, BaselineMetricsBlockRequiredInCurrent) {
  const util::Json baseline = report_with_metrics(12).to_json();
  const CompareOutcome outcome =
      compare_reports(baseline, sample_report().to_json());
  EXPECT_FALSE(outcome.ok);
  ASSERT_FALSE(outcome.failures.empty());
  EXPECT_NE(outcome.failures[0].find("missing top-level 'metrics'"),
            std::string::npos);
  // The converse is fine: a current with metrics passes a pre-metrics
  // baseline untouched (fields only in current are ignored).
  EXPECT_TRUE(
      compare_reports(sample_report().to_json(), baseline).ok);
}

TEST(BenchCompare, ConfigMismatchFails) {
  BenchReport current = sample_report();
  current.config[0].second = "43";  // different seed
  const CompareOutcome outcome =
      compare_reports(sample_report().to_json(), current.to_json());
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.failures[0].find("config mismatch"), std::string::npos);
}

}  // namespace
}  // namespace meshnet::stats
