#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/access_log.h"
#include "obs/event.h"
#include "obs/metric_registry.h"
#include "obs/span_exporter.h"
#include "util/json.h"

namespace meshnet::obs {
namespace {

// ------------------------------------------------------ interning --

TEST(MetricRegistry, InterningReturnsStableCells) {
  MetricRegistry registry;
  Counter& a = registry.counter("requests", {{"edge", "x"}});
  Counter& b = registry.counter("requests", {{"edge", "x"}});
  EXPECT_EQ(&a, &b);  // same identity -> same cell
  EXPECT_EQ(registry.series_count(), 1u);

  Counter& c = registry.counter("requests", {{"edge", "y"}});
  EXPECT_NE(&a, &c);  // different labels -> different series
  Counter& d = registry.counter("requests");
  EXPECT_NE(&a, &d);  // unlabeled is its own series
  EXPECT_EQ(registry.series_count(), 3u);

  a.inc(2);
  b.inc();
  EXPECT_EQ(a.value(), 3u);  // both handles hit the same cell
}

TEST(MetricRegistry, LabelOrderIsPartOfIdentity) {
  MetricRegistry registry;
  Counter& ab = registry.counter("m", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_NE(&ab, &ba);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricRegistry, FindDoesNotCreate) {
  MetricRegistry registry;
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.series_count(), 0u);
  registry.counter("present").inc();
  ASSERT_NE(registry.find_counter("present"), nullptr);
  EXPECT_EQ(registry.find_counter("present")->value(), 1u);
  // Kind-mismatched lookups return null rather than a wrong cell.
  EXPECT_EQ(registry.find_gauge("present"), nullptr);
}

// ------------------------------------------------------- snapshot --

TEST(MetricRegistry, SnapshotIsSortedByNameThenLabels) {
  MetricRegistry registry;
  registry.counter("zebra").inc();
  registry.counter("alpha", {{"k", "2"}}).inc();
  registry.counter("alpha", {{"k", "1"}}).inc();
  registry.gauge("middle").set(1.5);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.series.size(), 4u);
  EXPECT_EQ(snap.series[0].key(), "alpha{k=1}");
  EXPECT_EQ(snap.series[1].key(), "alpha{k=2}");
  EXPECT_EQ(snap.series[2].key(), "middle");
  EXPECT_EQ(snap.series[3].key(), "zebra");
}

TEST(MetricRegistry, SnapshotFindMatchesNameAndLabels) {
  MetricRegistry registry;
  registry.counter("hits", {{"edge", "x"}}).inc(7);
  const MetricsSnapshot snap = registry.snapshot();
  const SeriesSnapshot* series = snap.find("hits", {{"edge", "x"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, MetricKind::kCounter);
  EXPECT_EQ(series->counter, 7u);
  EXPECT_EQ(snap.find("hits"), nullptr);  // labels are part of identity
  EXPECT_EQ(snap.find("miss", {{"edge", "x"}}), nullptr);
}

TEST(MetricsSnapshot, MergeSumsCountersMaxesGaugesMergesHistograms) {
  MetricRegistry r1;
  r1.counter("c").inc(3);
  r1.gauge("g").set(5.0);
  r1.histogram("h").record(100);
  r1.counter("only_r1").inc();

  MetricRegistry r2;
  r2.counter("c").inc(4);
  r2.gauge("g").set(2.0);
  r2.histogram("h").record(200);
  r2.counter("only_r2").inc(9);

  MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());

  EXPECT_EQ(merged.find("c")->counter, 7u);
  EXPECT_EQ(merged.find("g")->gauge, 5.0);  // max, not sum
  EXPECT_EQ(merged.find("h")->histogram.count(), 2u);
  EXPECT_EQ(merged.find("only_r1")->counter, 1u);
  EXPECT_EQ(merged.find("only_r2")->counter, 9u);
  // The union stays sorted: c, g, h, only_r1, only_r2.
  ASSERT_EQ(merged.series.size(), 5u);
  EXPECT_EQ(merged.series[0].name, "c");
  EXPECT_EQ(merged.series[4].name, "only_r2");
}

TEST(MetricsSnapshot, MergeIsOrderIndependent) {
  MetricRegistry r1;
  r1.counter("c").inc(3);
  r1.gauge("g").set(1.0);
  r1.histogram("h").record(50);
  MetricRegistry r2;
  r2.counter("c").inc(4);
  r2.gauge("g").set(9.0);
  r2.histogram("h").record(5000);

  MetricsSnapshot forward = r1.snapshot();
  forward.merge(r2.snapshot());
  MetricsSnapshot backward = r2.snapshot();
  backward.merge(r1.snapshot());
  EXPECT_EQ(forward, backward);
}

TEST(MetricRegistry, RegistryMergeFoldsValuesIntoCells) {
  MetricRegistry base;
  Counter& cached = base.counter("c");
  cached.inc(1);

  MetricRegistry other;
  other.counter("c").inc(10);
  other.gauge("g").set(3.0);
  other.histogram("h").record(42);

  base.merge(other);
  EXPECT_EQ(cached.value(), 11u);  // cached handle still valid
  ASSERT_NE(base.find_gauge("g"), nullptr);
  EXPECT_EQ(base.find_gauge("g")->value(), 3.0);
  ASSERT_NE(base.find_histogram("h"), nullptr);
  EXPECT_EQ(base.find_histogram("h")->data().count(), 1u);
}

TEST(MetricRegistry, ResetValuesKeepsSeriesInterned) {
  MetricRegistry registry;
  Counter& cell = registry.counter("c");
  cell.inc(5);
  registry.reset_values();
  EXPECT_EQ(cell.value(), 0u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsSnapshot, ToJsonEmitsSchemaAndTypedSeries) {
  MetricRegistry registry;
  registry.counter("c", {{"k", "v"}}).inc(3);
  registry.gauge("g").set(1.25);
  registry.histogram("h").record(1000);

  const util::Json doc = registry.snapshot().to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->string_or(""), "meshnet-metrics-v1");
  const util::Json* series = doc.find("series");
  ASSERT_NE(series, nullptr);

  const util::Json* counter = series->find("c{k=v}");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->find("kind")->string_or(""), "counter");
  EXPECT_EQ(counter->find("value")->number_or(0), 3.0);

  const util::Json* gauge = series->find("g");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->find("kind")->string_or(""), "gauge");
  EXPECT_EQ(gauge->find("value")->number_or(0), 1.25);

  const util::Json* histogram = series->find("h");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("kind")->string_or(""), "histogram");
  EXPECT_EQ(histogram->find("count")->number_or(0), 1.0);
  ASSERT_NE(histogram->find("p99"), nullptr);
}

// ----------------------------------------------------- event kinds --

TEST(EventKind, RoundTripsThroughStrings) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const auto parsed = event_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(event_kind_from_string("braker").has_value());  // the typo
  EXPECT_FALSE(event_kind_from_string("").has_value());
}

// ------------------------------------------------------ access log --

TEST(AccessLog, DisabledByDefaultAndFree) {
  MetricRegistry registry;
  AccessLog log(&registry);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.record({}));
  EXPECT_EQ(log.seen(), 0u);  // off means record() doesn't even count
  EXPECT_EQ(registry.find_counter("access_log_seen_total")->value(), 0u);
}

TEST(AccessLog, EveryNthSamplingIsDeterministic) {
  MetricRegistry registry;
  AccessLog log(&registry);
  log.set_sample_every(3);
  std::vector<int> kept;
  for (int i = 1; i <= 10; ++i) {
    AccessLogRecord record;
    record.status = i;
    if (log.record(std::move(record))) kept.push_back(i);
  }
  // The 1st, 4th, 7th, 10th records seen are kept, always.
  EXPECT_EQ(kept, (std::vector<int>{1, 4, 7, 10}));
  EXPECT_EQ(log.seen(), 10u);
  EXPECT_EQ(log.sampled(), 4u);
  ASSERT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.records()[1].status, 4);
  EXPECT_EQ(registry.find_counter("access_log_seen_total")->value(), 10u);
  EXPECT_EQ(registry.find_counter("access_log_records_total")->value(), 4u);
}

TEST(AccessLog, SampleEveryOneKeepsAll) {
  AccessLog log;
  log.set_sample_every(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(log.record({}));
  EXPECT_EQ(log.sampled(), 5u);
}

// ---------------------------------------------------- span exporter --

SpanRecord make_span(const std::string& service, sim::Time start,
                     sim::Time end, bool error = false) {
  SpanRecord span;
  span.trace_id = "t";
  span.span_id = "s";
  span.service = service;
  span.operation = "op";
  span.start = start;
  span.end = end;
  span.error = error;
  return span;
}

TEST(SpanExporter, RecordsMetricsEvenAtRetentionZero) {
  MetricRegistry registry;
  SpanExporter exporter(&registry);
  exporter.set_retention(0);  // the bench setting
  exporter.export_span(make_span("svc", 0, 100));
  exporter.export_span(make_span("svc", 0, 300, /*error=*/true));

  EXPECT_EQ(exporter.span_count(), 0u);  // nothing retained...
  EXPECT_EQ(exporter.exported_total(), 2u);
  const Labels labels = {{"service", "svc"}};
  // ...but the snapshot still carries the span statistics.
  EXPECT_EQ(registry.find_counter("spans_total", labels)->value(), 2u);
  EXPECT_EQ(registry.find_counter("span_errors_total", labels)->value(), 1u);
  EXPECT_EQ(registry.find_histogram("span_duration_ns", labels)
                ->data()
                .count(),
            2u);
}

TEST(SpanExporter, RetentionBoundsStorage) {
  SpanExporter exporter;
  exporter.set_retention(2);
  exporter.export_span(make_span("a", 0, 1));
  exporter.export_span(make_span("b", 0, 2));
  exporter.export_span(make_span("c", 0, 3));
  ASSERT_EQ(exporter.span_count(), 2u);
  // The most recent spans survive.
  EXPECT_EQ(exporter.spans()[0].service, "b");
  EXPECT_EQ(exporter.spans()[1].service, "c");
  EXPECT_EQ(exporter.exported_total(), 3u);
}

TEST(SpanExporter, SinksSeeEverySpan) {
  SpanExporter exporter;
  exporter.set_retention(0);
  int seen = 0;
  exporter.add_sink([&](const SpanRecord& span) {
    ++seen;
    EXPECT_EQ(span.service, "svc");
  });
  exporter.export_span(make_span("svc", 0, 1));
  exporter.export_span(make_span("svc", 1, 2));
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace meshnet::obs
