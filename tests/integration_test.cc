// Full-stack integration tests: the paper's mechanism end to end on the
// real e-library topology, plus shape checks for the headline result.
// These use shortened runs; the bench binaries do the full-length sweeps.

#include <gtest/gtest.h>

#include <memory>

#include "app/elibrary.h"
#include "core/cross_layer.h"
#include "net/qdisc.h"
#include "workload/elibrary_experiment.h"
#include "workload/generator.h"

namespace meshnet {
namespace {

workload::ElibraryExperimentConfig quick_config(double rps,
                                                bool cross_layer) {
  workload::ElibraryExperimentConfig config;
  config.ls_rps = rps;
  config.li_rps = rps;
  config.warmup = sim::seconds(2);
  config.duration = sim::seconds(6);
  config.cooldown = sim::seconds(1);
  config.cross_layer = cross_layer;
  return config;
}

TEST(Integration, BaselineServesBothWorkloads) {
  const auto result = workload::run_elibrary_experiment(quick_config(20, false));
  EXPECT_GT(result.ls.completed, 80u);
  EXPECT_GT(result.li.completed, 80u);
  EXPECT_EQ(result.ls.errors, 0u);
  EXPECT_EQ(result.li.errors, 0u);
  EXPECT_GT(result.bottleneck_utilization, 0.1);
}

TEST(Integration, CrossLayerImprovesLsTailUnderLoad) {
  const auto base = workload::run_elibrary_experiment(quick_config(40, false));
  const auto opt = workload::run_elibrary_experiment(quick_config(40, true));
  // The paper's headline: prioritization improves the LS workload's
  // latency, clearly at the tail.
  EXPECT_LT(opt.ls.p99_ms, base.ls.p99_ms * 0.8)
      << "base p99=" << base.ls.p99_ms << " opt p99=" << opt.ls.p99_ms;
  EXPECT_LE(opt.ls.p50_ms, base.ls.p50_ms * 1.05);
}

TEST(Integration, LiDegradationIsBounded) {
  const auto base = workload::run_elibrary_experiment(quick_config(40, false));
  const auto opt = workload::run_elibrary_experiment(quick_config(40, true));
  // Paper: < 5% LI p99 degradation. Allow slack for short-run noise.
  EXPECT_LT(opt.li.p99_ms, base.li.p99_ms * 1.15)
      << "base=" << base.li.p99_ms << " opt=" << opt.li.p99_ms;
  EXPECT_GT(opt.li.completed, 0.9 * static_cast<double>(base.li.completed));
}

TEST(Integration, PriorityBandsCarryTraffic) {
  const auto result = workload::run_elibrary_experiment(quick_config(30, true));
  // With cross-layer on, both bands of the bottleneck's weighted qdisc
  // must have moved bytes: high (LS responses to reviews-1) and low
  // (LI responses to reviews-2).
  EXPECT_GT(result.high_band_bytes, 0u);
  EXPECT_GT(result.low_band_bytes, 0u);
  // The analytics bytes dominate by construction (~200x larger bodies).
  EXPECT_GT(result.low_band_bytes, 10 * result.high_band_bytes);
}

TEST(Integration, ProvenancePropagatesThroughTheTree) {
  sim::Simulator sim;
  app::ElibraryOptions options;
  options.component_bytes = 1024;
  options.analytics_multiplier = 4;
  options.service_time = sim::microseconds(100);
  app::Elibrary app(sim, options);

  core::CrossLayerConfig config =
      workload::ElibraryExperimentConfig::default_cross_layer_config();
  core::CrossLayerController controller(app.control_plane(), app.cluster(),
                                        config);
  controller.install();

  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), {});
  auto send = [&](const std::string& path) {
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, "frontend");
    bool done = false;
    client.request(std::move(request),
                   [&](std::optional<http::HttpResponse> response,
                       const std::string&) {
                     ASSERT_TRUE(response.has_value());
                     EXPECT_EQ(response->status, 200);
                     done = true;
                   });
    sim.run_until(sim.now() + sim::seconds(10));
    EXPECT_TRUE(done);
  };

  send("/analytics/1");  // low priority
  send("/product/1");    // high priority

  // The reviews sidecars' provenance machinery must have been exercised:
  // the frontend propagates the header (paper front-end behaviour), and
  // reviews' outbound lookups stamp the ratings sub-requests.
  auto table_v1 = controller.provenance_table("reviews-v1");
  auto table_v2 = controller.provenance_table("reviews-v2");
  ASSERT_NE(table_v1, nullptr);
  ASSERT_NE(table_v2, nullptr);
  EXPECT_GT(table_v1->hits() + table_v2->hits(), 0u);

  // Priority routing sent the analytics request to reviews-v2 (low) and
  // the product request to reviews-v1 (high).
  const auto& telemetry = app.control_plane().telemetry();
  const auto frontend_reviews = telemetry.edge("frontend", "reviews");
  ASSERT_TRUE(frontend_reviews.has_value());
  EXPECT_EQ(frontend_reviews->requests, 2u);
}

TEST(Integration, PriorityRoutingSeparatesReplicas) {
  sim::Simulator sim;
  app::ElibraryOptions options;
  options.component_bytes = 512;
  options.analytics_multiplier = 2;
  options.service_time = sim::microseconds(50);
  app::Elibrary app(sim, options);
  core::CrossLayerController controller(
      app.control_plane(), app.cluster(),
      workload::ElibraryExperimentConfig::default_cross_layer_config());
  controller.install();

  // reviews-v1 handles high, reviews-v2 low: check via each sidecar's
  // inbound request counters.
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), {});
  auto send = [&](const std::string& path) {
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, "frontend");
    client.request(std::move(request),
                   [](std::optional<http::HttpResponse>, const std::string&) {});
    sim.run_until(sim.now() + sim::seconds(5));
  };
  for (int i = 0; i < 4; ++i) send("/product/" + std::to_string(i));
  for (int i = 0; i < 3; ++i) send("/analytics/" + std::to_string(i));

  const auto* v1 = app.control_plane().sidecar_for("reviews-v1");
  const auto* v2 = app.control_plane().sidecar_for("reviews-v2");
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v1->stats().inbound_requests, 4u);
  EXPECT_EQ(v2->stats().inbound_requests, 3u);
}

TEST(Integration, BaselineMixesReplicas) {
  sim::Simulator sim;
  app::ElibraryOptions options;
  options.component_bytes = 512;
  options.analytics_multiplier = 2;
  options.service_time = sim::microseconds(50);
  app::Elibrary app(sim, options);  // no cross-layer

  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), {});
  for (int i = 0; i < 8; ++i) {
    http::HttpRequest request;
    request.path = "/product/" + std::to_string(i);
    request.headers.set(http::headers::kHost, "frontend");
    client.request(std::move(request),
                   [](std::optional<http::HttpResponse>, const std::string&) {});
    sim.run_until(sim.now() + sim::seconds(5));
  }
  const auto* v1 = app.control_plane().sidecar_for("reviews-v1");
  const auto* v2 = app.control_plane().sidecar_for("reviews-v2");
  // Round-robin: both replicas serve.
  EXPECT_GT(v1->stats().inbound_requests, 0u);
  EXPECT_GT(v2->stats().inbound_requests, 0u);
}

TEST(Integration, ScavengerTransportAloneProtectsLs) {
  // End-host-only deployment: no TC qdiscs, no priority routing; the low
  // class just rides LEDBAT. LS tail must still improve vs baseline.
  auto base_config = quick_config(40, false);
  auto scav_config = quick_config(40, true);
  scav_config.cross_layer_config.tc_priority = false;
  scav_config.cross_layer_config.priority_routing = false;
  scav_config.cross_layer_config.scavenger_transport = true;
  const auto base = workload::run_elibrary_experiment(base_config);
  const auto scav = workload::run_elibrary_experiment(scav_config);
  EXPECT_LT(scav.ls.p99_ms, base.ls.p99_ms)
      << "base=" << base.ls.p99_ms << " scav=" << scav.ls.p99_ms;
}

TEST(Integration, SdnOutOfBandProtectsLsWithoutMarksOrTcRules) {
  // Optimization (d), out-of-band flavour: no DSCP marks, no TC rules,
  // no replica subsets — the bottleneck scheduler asks the SDN
  // coordinator, which learned flow priorities from sidecar
  // advertisements.
  auto base = quick_config(40, false);
  auto sdn = quick_config(40, true);
  sdn.sdn_out_of_band = true;
  sdn.cross_layer_config.tc_priority = false;
  sdn.cross_layer_config.dscp_tagging = false;
  sdn.cross_layer_config.priority_routing = false;
  const auto base_result = workload::run_elibrary_experiment(base);
  const auto sdn_result = workload::run_elibrary_experiment(sdn);
  EXPECT_LT(sdn_result.ls.p99_ms, base_result.ls.p99_ms)
      << "base=" << base_result.ls.p99_ms << " sdn=" << sdn_result.ls.p99_ms;
  // The programmed qdisc moved traffic through both bands.
  EXPECT_GT(sdn_result.high_band_bytes, 0u);
  EXPECT_GT(sdn_result.low_band_bytes, 0u);
}

TEST(Integration, ComputePriorityQueuingProtectsLsAtCpuBottleneck) {
  // §5 extension: with few workers per service, priority admission
  // queuing lowers LS tail latency even before any network effect.
  auto fifo_config = quick_config(30, true);
  fifo_config.app.app_max_concurrency = 2;
  fifo_config.app.app_priority_scheduling = false;
  auto prio_config = fifo_config;
  prio_config.app.app_priority_scheduling = true;
  const auto fifo = workload::run_elibrary_experiment(fifo_config);
  const auto prio = workload::run_elibrary_experiment(prio_config);
  EXPECT_LE(prio.ls.p99_ms, fifo.ls.p99_ms * 1.02)
      << "fifo=" << fifo.ls.p99_ms << " prio=" << prio.ls.p99_ms;
  EXPECT_GT(prio.ls.completed, 0u);
  EXPECT_GT(prio.li.completed, 0u);
}

TEST(Integration, DeterministicResults) {
  const auto a = workload::run_elibrary_experiment(quick_config(20, true));
  const auto b = workload::run_elibrary_experiment(quick_config(20, true));
  EXPECT_EQ(a.ls.completed, b.ls.completed);
  EXPECT_DOUBLE_EQ(a.ls.p99_ms, b.ls.p99_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Integration, SeedChangesArrivalsButNotShape) {
  auto config = quick_config(30, true);
  const auto a = workload::run_elibrary_experiment(config);
  config.seed = 1234;
  const auto b = workload::run_elibrary_experiment(config);
  EXPECT_NE(a.events_executed, b.events_executed);
  // Different draws, same regime: completions within 25%.
  EXPECT_NEAR(static_cast<double>(a.ls.completed),
              static_cast<double>(b.ls.completed),
              0.25 * static_cast<double>(a.ls.completed));
}

}  // namespace
}  // namespace meshnet
