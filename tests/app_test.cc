// Tests for the application runtime (HTTP server, microservice fan-out)
// and the e-library application.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>

#include "app/elibrary.h"
#include "app/http_server.h"
#include "app/microservice.h"
#include "mesh/control_plane.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"

namespace meshnet::app {
namespace {

// ----------------------------------------------------- SimpleHttpServer --

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() : cluster(sim) {
    cluster.add_node("n1");
    server_pod = &cluster.add_pod("n1", "srv", "srv", 0);
    client_pod = &cluster.add_pod("n1", "cli", "", 0);
  }

  std::optional<http::HttpResponse> get(mesh::HttpClientPool& pool,
                                        const std::string& path) {
    http::HttpRequest request;
    request.path = path;
    std::optional<http::HttpResponse> out;
    pool.request(std::move(request),
                 [&](std::optional<http::HttpResponse> response,
                     const std::string&) { out = std::move(response); });
    sim.run_until(sim.now() + sim::seconds(5));
    return out;
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Pod* server_pod;
  cluster::Pod* client_pod;
};

TEST_F(ServerFixture, ServesSynchronousHandler) {
  SimpleHttpServer server(sim, server_pod->transport(), 8080,
                          [](http::HttpRequest request,
                             SimpleHttpServer::Responder respond) {
                            http::HttpResponse response;
                            response.body = "echo:" + request.path;
                            respond(std::move(response));
                          });
  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {server_pod->ip(), 8080}, {});
  const auto response = get(pool, "/abc");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "echo:/abc");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(ServerFixture, ServesDeferredResponses) {
  SimpleHttpServer server(
      sim, server_pod->transport(), 8080,
      [this](http::HttpRequest, SimpleHttpServer::Responder respond) {
        sim.schedule_after(sim::milliseconds(20),
                           [respond = std::move(respond)] {
                             respond(http::HttpResponse{204});
                           });
      });
  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {server_pod->ip(), 8080}, {});
  const auto response = get(pool, "/later");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 204);
}

TEST_F(ServerFixture, HandlesConcurrentConnections) {
  int served = 0;
  SimpleHttpServer server(
      sim, server_pod->transport(), 8080,
      [&](http::HttpRequest, SimpleHttpServer::Responder respond) {
        ++served;
        respond(http::HttpResponse{200});
      });
  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {server_pod->ip(), 8080}, {});
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    http::HttpRequest request;
    request.path = "/" + std::to_string(i);
    pool.request(std::move(request),
                 [&](std::optional<http::HttpResponse>, const std::string&) {
                   ++done;
                 });
  }
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(done, 20);
  EXPECT_EQ(served, 20);
}

// --------------------------------------------------------- Microservice --

class MicroFixture : public ::testing::Test {
 protected:
  MicroFixture() : cluster(sim), control_plane(sim, cluster) {
    cluster.add_node("n1");
    front = &cluster.add_pod("n1", "front-v1", "front", 8080);
    back = &cluster.add_pod("n1", "back-v1", "back", 8080);
    control_plane.inject_sidecar(*front, {});
    control_plane.inject_sidecar(*back, {});
    control_plane.start();
    client_pod = &cluster.add_pod("n1", "cli", "", 0);
  }

  std::optional<http::HttpResponse> call_front(
      const std::string& path,
      std::function<void(http::HttpRequest&)> mutate = nullptr) {
    // Talk to the front service the meshed way: through its inbound
    // sidecar port (we are "another sidecar" for this purpose).
    mesh::HttpClientPool pool(sim, client_pod->transport(),
                              {front->ip(), 15006}, {});
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, "front");
    if (mutate) mutate(request);
    std::optional<http::HttpResponse> out;
    pool.request(std::move(request),
                 [&](std::optional<http::HttpResponse> response,
                     const std::string&) { out = std::move(response); });
    sim.run_until(sim.now() + sim::seconds(10));
    return out;
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  mesh::ControlPlane control_plane;
  cluster::Pod* front;
  cluster::Pod* back;
  cluster::Pod* client_pod;
};

TEST_F(MicroFixture, LeafServiceResponds) {
  Microservice app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.response_bytes = 100;
    return plan;
  });
  const auto response = call_front("/leaf");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body.size(), 100u);
  EXPECT_EQ(response->headers.get_or("x-app", ""), "front");
}

TEST_F(MicroFixture, FanOutAggregatesSubResponses) {
  Microservice front_app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.response_bytes = 10;
    plan.calls = {SubCall{"back", "/b1"}, SubCall{"back", "/b2"}};
    return plan;
  });
  Microservice back_app(sim, *back, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.response_bytes = 50;
    return plan;
  });
  const auto response = call_front("/agg");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body.size(), 110u);  // 10 + 2*50
  EXPECT_EQ(front_app.sub_requests_sent(), 2u);
  EXPECT_EQ(back_app.requests_served(), 2u);
}

TEST_F(MicroFixture, AggregationCanBeDisabled) {
  Microservice front_app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.response_bytes = 10;
    plan.aggregate_sub_bodies = false;
    plan.calls = {SubCall{"back", "/b"}};
    return plan;
  });
  Microservice back_app(sim, *back, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.response_bytes = 50;
    return plan;
  });
  const auto response = call_front("/no-agg");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body.size(), 10u);
}

TEST_F(MicroFixture, SubErrorBecomes502) {
  Microservice front_app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.calls = {SubCall{"back", "/b"}};
    return plan;
  });
  Microservice back_app(sim, *back, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.status = 500;
    return plan;
  });
  const auto response = call_front("/bad-dep");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 502);
}

TEST_F(MicroFixture, SubErrorToleratedWhenConfigured) {
  MicroserviceOptions options;
  options.fail_on_sub_error = false;
  Microservice front_app(
      sim, *front,
      [](const http::HttpRequest&) {
        HandlerResult plan;
        plan.response_bytes = 33;
        plan.calls = {SubCall{"back", "/b"}};
        return plan;
      },
      options);
  Microservice back_app(sim, *back, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.status = 500;
    return plan;
  });
  const auto response = call_front("/tolerant");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body.size(), 33u);
}

TEST_F(MicroFixture, PropagatesRequestIdNotPriority) {
  std::string seen_id, seen_priority = "unset";
  Microservice front_app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.calls = {SubCall{"back", "/b"}};
    return plan;
  });
  Microservice back_app(sim, *back, [&](const http::HttpRequest& request) {
    seen_id = request.request_id();
    seen_priority =
        request.headers.get_or(http::headers::kMeshPriority, "absent");
    return HandlerResult{};
  });
  call_front("/prop", [](http::HttpRequest& request) {
    request.set_request_id("req-propagate-me");
    request.headers.set(http::headers::kMeshPriority, "high");
  });
  EXPECT_EQ(seen_id, "req-propagate-me");
  // The unmodified app does NOT copy the priority header; only the
  // provenance filter does (not installed in this fixture).
  EXPECT_EQ(seen_priority, "absent");
}

TEST_F(MicroFixture, FrontendModePropagatesPriority) {
  MicroserviceOptions options;
  options.propagate_priority_header = true;  // paper's front-end behaviour
  Microservice front_app(
      sim, *front,
      [](const http::HttpRequest&) {
        HandlerResult plan;
        plan.calls = {SubCall{"back", "/b"}};
        return plan;
      },
      options);
  std::string seen_priority;
  Microservice back_app(sim, *back, [&](const http::HttpRequest& request) {
    seen_priority = request.headers.get_or(http::headers::kMeshPriority, "");
    return HandlerResult{};
  });
  call_front("/prio", [](http::HttpRequest& request) {
    request.headers.set(http::headers::kMeshPriority, "low");
  });
  EXPECT_EQ(seen_priority, "low");
}

TEST_F(MicroFixture, ProcessingDelayIsApplied) {
  Microservice app(sim, *front, [](const http::HttpRequest&) {
    HandlerResult plan;
    plan.processing_delay = sim::milliseconds(40);
    return plan;
  });
  const sim::Time start = sim.now();
  call_front("/slow");
  EXPECT_GE(sim.now() - start, sim::milliseconds(40));
}

TEST_F(MicroFixture, ConcurrencyLimitSerializesWork) {
  MicroserviceOptions options;
  options.max_concurrency = 1;
  int peak = 0;
  std::unique_ptr<Microservice> app;
  app = std::make_unique<Microservice>(
      sim, *front,
      [&](const http::HttpRequest&) {
        peak = std::max(peak, app ? app->in_service() : 0);
        HandlerResult plan;
        plan.processing_delay = sim::milliseconds(30);
        return plan;
      },
      options);

  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {front->ip(), 15006}, {});
  int done = 0;
  const sim::Time start = sim.now();
  sim::Time last_done = 0;
  for (int i = 0; i < 3; ++i) {
    http::HttpRequest request;
    request.path = "/serial";
    request.headers.set(http::headers::kHost, "front");
    pool.request(std::move(request),
                 [&](std::optional<http::HttpResponse>, const std::string&) {
                   ++done;
                   last_done = sim.now();
                 });
  }
  sim.run_until(sim.now() + sim::seconds(10));
  EXPECT_EQ(done, 3);
  EXPECT_LE(peak, 1);
  // Three 30 ms jobs through one worker take >= 90 ms.
  EXPECT_GE(last_done - start, sim::milliseconds(90));
  EXPECT_GE(app->max_admission_queue_seen(), 1u);
}

TEST_F(MicroFixture, PrioritySchedulingReordersAdmissionQueue) {
  MicroserviceOptions options;
  options.max_concurrency = 1;
  options.priority_scheduling = true;
  std::vector<std::string> completion_order;
  Microservice app(
      sim, *front,
      [](const http::HttpRequest&) {
        HandlerResult plan;
        plan.processing_delay = sim::milliseconds(20);
        return plan;
      },
      options);

  mesh::HttpClientPool::Options pool_options;
  pool_options.max_connections = 16;
  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {front->ip(), 15006}, pool_options);
  auto send = [&](const std::string& name, const std::string& priority) {
    http::HttpRequest request;
    request.path = "/" + name;
    request.headers.set(http::headers::kHost, "front");
    if (!priority.empty()) {
      request.headers.set(http::headers::kMeshPriority, priority);
    }
    pool.request(std::move(request),
                 [&completion_order, name](std::optional<http::HttpResponse>,
                                           const std::string&) {
                   completion_order.push_back(name);
                 });
  };
  // Occupy the worker, queue two lows, then a high: the high must be
  // served before the queued lows.
  send("first", "low");
  sim.run_until(sim.now() + sim::milliseconds(5));
  send("low-1", "low");
  send("low-2", "low");
  sim.run_until(sim.now() + sim::milliseconds(2));
  send("high-1", "high");
  sim.run_until(sim.now() + sim::seconds(5));
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], "first");
  EXPECT_EQ(completion_order[1], "high-1");
}

TEST_F(MicroFixture, FifoAdmissionWithoutPriorityScheduling) {
  MicroserviceOptions options;
  options.max_concurrency = 1;
  options.priority_scheduling = false;
  std::vector<std::string> completion_order;
  Microservice app(
      sim, *front,
      [](const http::HttpRequest&) {
        HandlerResult plan;
        plan.processing_delay = sim::milliseconds(20);
        return plan;
      },
      options);
  mesh::HttpClientPool::Options pool_options;
  pool_options.max_connections = 16;
  mesh::HttpClientPool pool(sim, client_pod->transport(),
                            {front->ip(), 15006}, pool_options);
  auto send = [&](const std::string& name, const std::string& priority) {
    http::HttpRequest request;
    request.path = "/" + name;
    request.headers.set(http::headers::kHost, "front");
    request.headers.set(http::headers::kMeshPriority, priority);
    pool.request(std::move(request),
                 [&completion_order, name](std::optional<http::HttpResponse>,
                                           const std::string&) {
                   completion_order.push_back(name);
                 });
  };
  send("first", "low");
  sim.run_until(sim.now() + sim::milliseconds(5));
  send("low-1", "low");
  sim.run_until(sim.now() + sim::milliseconds(2));
  send("high-1", "high");
  sim.run_until(sim.now() + sim::seconds(5));
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[1], "low-1");  // FIFO: no reordering
}

// ------------------------------------------------------------ Elibrary --

class ElibraryFixture : public ::testing::Test {
 protected:
  ElibraryFixture() {
    // Small payloads keep tests fast.
    options.component_bytes = 1024;
    options.analytics_multiplier = 10;
    options.service_time = sim::microseconds(100);
    app = std::make_unique<Elibrary>(sim, options);
  }

  std::optional<http::HttpResponse> get(const std::string& path) {
    mesh::HttpClientPool pool(sim, app->client_pod().transport(),
                              app->gateway_address(), {});
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, "frontend");
    std::optional<http::HttpResponse> out;
    pool.request(std::move(request),
                 [&](std::optional<http::HttpResponse> response,
                     const std::string&) { out = std::move(response); });
    sim.run_until(sim.now() + sim::seconds(10));
    return out;
  }

  sim::Simulator sim;
  ElibraryOptions options;
  std::unique_ptr<Elibrary> app;
};

TEST_F(ElibraryFixture, TopologyMatchesFig3) {
  for (const std::string name :
       {"istio-ingressgateway", "frontend-v1", "details-v1", "reviews-v1",
        "reviews-v2", "ratings-v1", "external-client"}) {
    EXPECT_NE(app->pod(name), nullptr) << name;
  }
  const auto* reviews = app->cluster().registry().find("reviews");
  ASSERT_NE(reviews, nullptr);
  ASSERT_EQ(reviews->endpoints.size(), 2u);
  EXPECT_EQ(reviews->endpoints[0].label_or("priority", ""), "high");
  EXPECT_EQ(reviews->endpoints[1].label_or("priority", ""), "low");
}

TEST_F(ElibraryFixture, BottleneckIsRatingsVnic) {
  EXPECT_DOUBLE_EQ(app->bottleneck_link().rate_bps(), 1e9);
  EXPECT_DOUBLE_EQ(app->pod("frontend-v1")->egress_link().rate_bps(), 15e9);
}

TEST_F(ElibraryFixture, LsRequestReturnsExpectedBytes) {
  const auto response = get("/product/1");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body.size(), app->expected_ls_body_bytes());
}

TEST_F(ElibraryFixture, LiRequestReturnsBulkBytes) {
  const auto response = get("/analytics/7");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body.size(), app->expected_li_body_bytes());
  // With multiplier M, LI/LS = (1.75 + M) / 2.75; M=10 gives ~4.3x.
  EXPECT_GT(app->expected_li_body_bytes(),
            4 * app->expected_ls_body_bytes());
}

TEST_F(ElibraryFixture, RequestTraversesWholeTree) {
  get("/product/1");
  const auto& telemetry = app->control_plane().telemetry();
  EXPECT_TRUE(telemetry.edge("gateway", "frontend").has_value());
  EXPECT_TRUE(telemetry.edge("frontend", "details").has_value());
  EXPECT_TRUE(telemetry.edge("frontend", "reviews").has_value());
  EXPECT_TRUE(telemetry.edge("reviews", "ratings").has_value());
}

TEST_F(ElibraryFixture, TraceCoversAllHops) {
  get("/product/2");
  const auto& spans = app->control_plane().tracer().spans();
  ASSERT_FALSE(spans.empty());
  // All spans of this request share one trace id.
  const std::string trace_id = spans.front().trace_id;
  const auto trace = app->control_plane().tracer().trace(trace_id);
  // gateway out, frontend in/out/out, details in, reviews in/out,
  // ratings in = 8 spans.
  EXPECT_EQ(trace.size(), 8u);
}

}  // namespace
}  // namespace meshnet::app
