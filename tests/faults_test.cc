// Tests for the fault-injection layer: FaultPlan expansion, the
// ChaosController's link/pod actions against a live cluster, determinism
// of the fault log, and the request-level fault filter's statistical
// behaviour.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "faults/chaos.h"
#include "mesh/fault_filter.h"
#include "mesh/filter.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace meshnet::faults {
namespace {

// ----------------------------------------------------- FaultPlan ------

TEST(FaultPlan, FlapExpandsIntoDownUpPairs) {
  FaultPlan plan;
  plan.flap(sim::seconds(1), sim::seconds(5), "pod-a", sim::seconds(2),
            sim::milliseconds(40));
  // Cycles start at 1s and 3s (5s is not < 5s): two down/up pairs.
  const auto& entries = plan.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].action, FaultAction::kLinkDown);
  EXPECT_EQ(entries[0].at, sim::seconds(1));
  EXPECT_EQ(entries[1].action, FaultAction::kLinkUp);
  EXPECT_EQ(entries[1].at, sim::seconds(1) + sim::milliseconds(40));
  EXPECT_EQ(entries[2].action, FaultAction::kLinkDown);
  EXPECT_EQ(entries[2].at, sim::seconds(3));
  EXPECT_EQ(entries[3].action, FaultAction::kLinkUp);
  EXPECT_EQ(entries[3].at, sim::seconds(3) + sim::milliseconds(40));
}

TEST(FaultPlan, PacketLossSetsAndClears) {
  FaultPlan plan;
  plan.packet_loss(sim::seconds(2), sim::seconds(4), "pod-b", 0.25);
  const auto& entries = plan.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].action, FaultAction::kLinkLoss);
  EXPECT_DOUBLE_EQ(entries[0].value, 0.25);
  EXPECT_EQ(entries[1].at, sim::seconds(4));
  EXPECT_DOUBLE_EQ(entries[1].value, 0.0);
}

// ----------------------------------------------- ChaosController ------

class ChaosFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster_->add_node("n1");
    a_ = &cluster_->add_pod("n1", "pod-a", "svc-a", 80);
    b_ = &cluster_->add_pod("n1", "pod-b", "svc-b", 80);
    controller_ = std::make_unique<ChaosController>(sim_, *cluster_, 7);
  }

  /// Opens a connection a->b, counting bytes b receives.
  void wire_traffic() {
    b_->transport().listen(80, [this](transport::Connection& conn) {
      conn.set_on_data(
          [this](std::string_view data) { received_ += data.size(); });
    });
    sender_ = &a_->transport().connect({b_->ip(), 80});
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::Pod* a_ = nullptr;
  cluster::Pod* b_ = nullptr;
  std::unique_ptr<ChaosController> controller_;
  transport::Connection* sender_ = nullptr;
  std::size_t received_ = 0;
};

TEST_F(ChaosFixture, LinkDownBlackholesAndRecoveryRedelivers) {
  wire_traffic();
  sender_->send(std::string(1000, 'x'));
  sim_.run_until(sim_.now() + sim::seconds(1));
  ASSERT_EQ(received_, 1000u);

  ASSERT_TRUE(controller_->set_link_up("pod-b", false));
  EXPECT_FALSE(b_->ingress_link().is_up());
  sender_->send(std::string(500, 'y'));
  sim_.run_until(sim_.now() + sim::seconds(1));
  EXPECT_EQ(received_, 1000u);  // blackholed
  EXPECT_GT(b_->ingress_link().stats().down_drops +
                b_->egress_link().stats().down_drops,
            0u);

  // Back up: transport retransmission delivers the lost segment.
  ASSERT_TRUE(controller_->set_link_up("pod-b", true));
  sim_.run_until(sim_.now() + sim::seconds(10));
  EXPECT_EQ(received_, 1500u);
}

TEST_F(ChaosFixture, PacketLossDropsButTransportRecovers) {
  wire_traffic();
  ASSERT_TRUE(controller_->set_link_loss("pod-b", 0.3));
  for (int i = 0; i < 20; ++i) {
    sender_->send(std::string(2000, 'z'));
    sim_.run_until(sim_.now() + sim::milliseconds(200));
  }
  sim_.run_until(sim_.now() + sim::seconds(20));
  // Reliability survives the loss; the link counted real drops.
  EXPECT_EQ(received_, 40000u);
  EXPECT_GT(b_->ingress_link().stats().loss_drops +
                b_->egress_link().stats().loss_drops,
            0u);

  // Clearing the loss stops the bleeding.
  ASSERT_TRUE(controller_->set_link_loss("pod-b", 0.0));
  const auto drops_after_clear = b_->ingress_link().stats().loss_drops +
                                 b_->egress_link().stats().loss_drops;
  sender_->send(std::string(2000, 'w'));
  sim_.run_until(sim_.now() + sim::seconds(5));
  EXPECT_EQ(received_, 42000u);
  EXPECT_EQ(b_->ingress_link().stats().loss_drops +
                b_->egress_link().stats().loss_drops,
            drops_after_clear);
}

TEST_F(ChaosFixture, CrashKeepsRegistryDeregisterRemovesRestartRejoins) {
  ASSERT_TRUE(controller_->crash_pod("pod-b"));
  EXPECT_FALSE(b_->running());
  EXPECT_FALSE(b_->egress_link().is_up());
  // Crash models silent failure: discovery still lists the endpoint.
  ASSERT_NE(cluster_->registry().find("svc-b"), nullptr);
  EXPECT_EQ(cluster_->registry().find("svc-b")->endpoints.size(), 1u);

  // The slow path (node controller) removes it explicitly.
  ASSERT_TRUE(controller_->deregister_pod("pod-b"));
  EXPECT_TRUE(cluster_->registry().find("svc-b")->endpoints.empty());

  // Restart rejoins with the original port and labels.
  ASSERT_TRUE(controller_->restart_pod("pod-b"));
  EXPECT_TRUE(b_->running());
  EXPECT_TRUE(b_->egress_link().is_up());
  ASSERT_EQ(cluster_->registry().find("svc-b")->endpoints.size(), 1u);
  EXPECT_EQ(cluster_->registry().find("svc-b")->endpoints[0].port, 80);
}

TEST_F(ChaosFixture, CrashAndRestartAreIdempotent) {
  EXPECT_TRUE(controller_->crash_pod("pod-a"));
  EXPECT_FALSE(controller_->crash_pod("pod-a"));   // already down
  EXPECT_TRUE(controller_->restart_pod("pod-a"));
  EXPECT_FALSE(controller_->restart_pod("pod-a"));  // already up
  EXPECT_FALSE(controller_->crash_pod("ghost"));
  ASSERT_EQ(controller_->log().size(), 5u);
  EXPECT_TRUE(controller_->log()[0].applied);
  EXPECT_FALSE(controller_->log()[1].applied);
  EXPECT_FALSE(controller_->log()[4].applied);
}

TEST_F(ChaosFixture, DegradeMultipliesComputeAndRestores) {
  ASSERT_TRUE(controller_->degrade_pod("pod-a", 4.0));
  EXPECT_DOUBLE_EQ(a_->compute_multiplier(), 4.0);
  ASSERT_TRUE(controller_->degrade_pod("pod-a", 1.0));
  EXPECT_DOUBLE_EQ(a_->compute_multiplier(), 1.0);
}

TEST_F(ChaosFixture, ScheduledPlanExecutesAtPlannedTimesAndHookFires) {
  FaultPlan plan;
  plan.crash(sim::seconds(2), "pod-b").restart(sim::seconds(4), "pod-b");
  std::vector<sim::Time> hook_times;
  controller_->set_fault_hook([&](const FaultLogEntry& entry) {
    hook_times.push_back(entry.at);
  });
  controller_->schedule(plan);
  sim_.run_until(sim::seconds(3));
  EXPECT_FALSE(b_->running());
  sim_.run_until(sim::seconds(5));
  EXPECT_TRUE(b_->running());
  ASSERT_EQ(hook_times.size(), 2u);
  EXPECT_EQ(hook_times[0], sim::seconds(2));
  EXPECT_EQ(hook_times[1], sim::seconds(4));
}

TEST(ChaosDeterminism, SameSeedSamePlanSameLog) {
  auto run_once = [] {
    sim::Simulator sim;
    cluster::Cluster cluster(sim);
    cluster.add_node("n1");
    cluster.add_pod("n1", "pod-a", "svc", 80);
    ChaosController controller(sim, cluster, 99);
    FaultPlan plan;
    plan.crash(sim::seconds(1), "pod-a")
        .restart(sim::seconds(2), "pod-a")
        .packet_loss(sim::seconds(3), sim::seconds(4), "pod-a", 0.1);
    controller.schedule(plan);
    sim.run_until(sim::seconds(5));
    return controller.log();
  };
  const auto log_a = run_once();
  const auto log_b = run_once();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].at, log_b[i].at);
    EXPECT_EQ(log_a[i].action, log_b[i].action);
    EXPECT_EQ(log_a[i].target, log_b[i].target);
    EXPECT_EQ(log_a[i].applied, log_b[i].applied);
  }
}

// ---------------------------------------------- fault filter ----------

mesh::RequestContext make_ctx(const std::string& path) {
  mesh::RequestContext ctx;
  ctx.request.method = "GET";
  ctx.request.path = path;
  return ctx;
}

TEST(FaultFilter, AbortFractionWithinStatisticalTolerance) {
  mesh::FaultFilterConfig config;
  config.abort_fraction = 0.25;
  config.abort_status = 418;
  config.seed = 5;
  mesh::FaultInjectionFilter filter(config);
  const int n = 4000;
  int aborted = 0;
  for (int i = 0; i < n; ++i) {
    mesh::RequestContext ctx = make_ctx("/x");
    if (filter.on_request(ctx) == mesh::FilterStatus::kStopIteration) {
      ASSERT_TRUE(ctx.local_response.has_value());
      EXPECT_EQ(ctx.local_response->status, 418);
      ++aborted;
    }
  }
  EXPECT_EQ(filter.aborts_injected(), static_cast<std::uint64_t>(aborted));
  const double fraction = static_cast<double>(aborted) / n;
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(FaultFilter, DelayFractionAndFixedAmount) {
  mesh::FaultFilterConfig config;
  config.delay_fraction = 0.5;
  config.delay = sim::milliseconds(7);
  config.seed = 6;
  mesh::FaultInjectionFilter filter(config);
  const int n = 4000;
  int delayed = 0;
  for (int i = 0; i < n; ++i) {
    mesh::RequestContext ctx = make_ctx("/x");
    EXPECT_EQ(filter.on_request(ctx), mesh::FilterStatus::kContinue);
    if (ctx.injected_delay > 0) {
      EXPECT_EQ(ctx.injected_delay, sim::milliseconds(7));
      ++delayed;
    }
  }
  const double fraction = static_cast<double>(delayed) / n;
  EXPECT_NEAR(fraction, 0.5, 0.03);
  EXPECT_EQ(filter.delays_injected(), static_cast<std::uint64_t>(delayed));
}

TEST(FaultFilter, ExponentialJitterAddsVariableDelay) {
  mesh::FaultFilterConfig config;
  config.delay_fraction = 1.0;
  config.delay = sim::milliseconds(2);
  config.delay_jitter_mean = sim::milliseconds(5);
  config.seed = 7;
  mesh::FaultInjectionFilter filter(config);
  double total_ms = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    mesh::RequestContext ctx = make_ctx("/x");
    filter.on_request(ctx);
    EXPECT_GE(ctx.injected_delay, sim::milliseconds(2));
    total_ms += sim::to_milliseconds(ctx.injected_delay);
  }
  // Mean ~= fixed 2ms + exponential mean 5ms.
  EXPECT_NEAR(total_ms / n, 7.0, 0.7);
}

TEST(FaultFilter, PathPrefixScopesFaults) {
  mesh::FaultFilterConfig config;
  config.abort_fraction = 1.0;
  config.path_prefix = "/product";
  config.seed = 8;
  mesh::FaultInjectionFilter filter(config);
  mesh::RequestContext miss = make_ctx("/analytics/1");
  EXPECT_EQ(filter.on_request(miss), mesh::FilterStatus::kContinue);
  EXPECT_EQ(filter.requests_seen(), 0u);
  mesh::RequestContext hit = make_ctx("/product/1");
  EXPECT_EQ(filter.on_request(hit), mesh::FilterStatus::kStopIteration);
  EXPECT_EQ(filter.aborts_injected(), 1u);
}

TEST(FaultFilter, SameSeedSameDecisionSequence) {
  mesh::FaultFilterConfig config;
  config.abort_fraction = 0.4;
  config.seed = 11;
  mesh::FaultInjectionFilter f1(config);
  mesh::FaultInjectionFilter f2(config);
  for (int i = 0; i < 500; ++i) {
    mesh::RequestContext c1 = make_ctx("/x");
    mesh::RequestContext c2 = make_ctx("/x");
    EXPECT_EQ(f1.on_request(c1) == mesh::FilterStatus::kStopIteration,
              f2.on_request(c2) == mesh::FilterStatus::kStopIteration);
  }
}

}  // namespace
}  // namespace meshnet::faults
