// Tests for the simulated TLS session layer (DESIGN.md §14): record
// codec round-trips and fuzzing, handshake state-machine legality under
// random chunking and delays, ticket resumption, session-cache bounds,
// cert expiry/rotation edges, and rotation under a lossy push channel.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "mesh/control_plane.h"
#include "mesh/sidecar.h"
#include "mesh/tls_session.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace meshnet::mesh {
namespace {

using State = TlsChannel::State;

// ------------------------------------------------------- record codec --

TEST(TlsCodec, RecordRoundTrip) {
  const std::string wire = encode_tls_record(TlsRecordType::kAppData, "hello");
  TlsRecordParser parser(16 * 1024);
  std::vector<std::pair<TlsRecordType, std::string>> records;
  parser.set_on_record([&](TlsRecordType type, std::string_view body) {
    records.emplace_back(type, std::string(body));
  });
  EXPECT_TRUE(parser.feed(wire));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, TlsRecordType::kAppData);
  EXPECT_EQ(records[0].second, "hello");
}

TEST(TlsCodec, UnknownTypeIsStickyError) {
  TlsRecordParser parser(16 * 1024);
  std::string bad = encode_tls_record(TlsRecordType::kAppData, "x");
  bad[0] = 0x42;  // not a known content type
  EXPECT_FALSE(parser.feed(bad));
  EXPECT_TRUE(parser.has_error());
  // Sticky: valid bytes after the error still fail.
  EXPECT_FALSE(parser.feed(encode_tls_record(TlsRecordType::kAppData, "y")));
  parser.reset();
  EXPECT_TRUE(parser.feed(encode_tls_record(TlsRecordType::kAppData, "y")));
}

TEST(TlsCodec, OversizedRecordIsError) {
  TlsRecordParser parser(/*max_body_bytes=*/8);
  EXPECT_FALSE(
      parser.feed(encode_tls_record(TlsRecordType::kAppData, "123456789")));
  EXPECT_EQ(parser.error(), "oversized record");
}

TEST(TlsCodec, HellosAndTicketsRoundTrip) {
  TlsClientHello ch;
  ch.cert_serial = 7;
  ch.cert_expires_at = sim::seconds(90);
  ch.ticket = "some-ticket-bytes";
  const auto ch2 = decode_client_hello(encode_client_hello(ch));
  ASSERT_TRUE(ch2.has_value());
  EXPECT_EQ(ch2->cert_serial, 7u);
  EXPECT_EQ(ch2->cert_expires_at, sim::seconds(90));
  EXPECT_EQ(ch2->ticket, ch.ticket);

  TlsServerHello sh;
  sh.cert_serial = 9;
  sh.cert_expires_at = sim::seconds(120);
  sh.resumed = true;
  sh.ticket = "fresh";
  const auto sh2 = decode_server_hello(encode_server_hello(sh));
  ASSERT_TRUE(sh2.has_value());
  EXPECT_EQ(sh2->cert_serial, 9u);
  EXPECT_TRUE(sh2->resumed);
  EXPECT_EQ(sh2->ticket, "fresh");

  TlsSessionTicket ticket;
  ticket.cert_serial = 3;
  ticket.issued_at = sim::seconds(5);
  ticket.nonce = 77;
  const std::string encoded = encode_session_ticket(ticket);
  EXPECT_EQ(encoded.size(), 24u);
  const auto ticket2 = decode_session_ticket(encoded);
  ASSERT_TRUE(ticket2.has_value());
  EXPECT_EQ(ticket2->cert_serial, 3u);
  EXPECT_EQ(ticket2->issued_at, sim::seconds(5));
  EXPECT_EQ(ticket2->nonce, 77u);

  // Strict decode: trailing bytes and truncation are malformations.
  EXPECT_FALSE(decode_client_hello(encode_client_hello(ch) + "x").has_value());
  EXPECT_FALSE(decode_server_hello("short").has_value());
  EXPECT_FALSE(decode_session_ticket(encoded + encoded).has_value());
  EXPECT_FALSE(decode_session_ticket(encoded.substr(0, 23)).has_value());
}

// ------------------------------------------------------- channel pair --

/// A client/server channel pair joined by an in-sim pipe. The pipe can
/// chunk bytes randomly and add per-delivery delay, but always preserves
/// byte order per direction (it is a stream, like the transport).
struct ChannelPair {
  ChannelPair(sim::Simulator& sim, const TlsParams* client_params,
              const TlsParams* server_params, const Certificate* client_cert,
              const Certificate* server_cert, TlsRuntime* client_rt,
              TlsRuntime* server_rt, sim::RngStream* rng = nullptr)
      : sim_(sim), rng_(rng) {
    client = std::make_shared<TlsChannel>(sim, TlsChannel::Role::kClient,
                                          client_params, client_cert,
                                          client_rt, "10.0.0.2:15001");
    server = std::make_shared<TlsChannel>(sim, TlsChannel::Role::kServer,
                                          server_params, server_cert,
                                          server_rt, "");
    client->set_send_wire(
        [this](std::string bytes) { deliver(server, &to_server_, bytes); });
    server->set_send_wire(
        [this](std::string bytes) { deliver(client, &to_client_, bytes); });
  }

  void start() {
    server->start();
    client->start();
  }

  /// Streams `bytes` to `dst` in random chunks with random (order-
  /// preserving) delays when an RNG is wired; immediately otherwise.
  void deliver(std::shared_ptr<TlsChannel> dst, sim::Time* clock,
               const std::string& bytes) {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      std::size_t n = bytes.size() - offset;
      sim::Duration delay = 0;
      if (rng_ != nullptr) {
        n = std::min<std::size_t>(n, rng_->uniform_int(1, 64));
        delay = static_cast<sim::Duration>(
            rng_->uniform_int(0, 200) * sim::microseconds(1));
      }
      const std::string chunk = bytes.substr(offset, n);
      offset += n;
      *clock = std::max(*clock, sim_.now() + delay);
      sim_.schedule_at(*clock, [dst, chunk] { dst->on_wire_data(chunk); });
    }
  }

  sim::Simulator& sim_;
  sim::RngStream* rng_;
  /// Per-direction delivery clocks keep the stream in order.
  sim::Time to_server_ = 0;
  sim::Time to_client_ = 0;
  std::shared_ptr<TlsChannel> client;
  std::shared_ptr<TlsChannel> server;
};

Certificate make_cert(std::uint64_t serial, sim::Time issued_at,
                      sim::Time expires_at) {
  Certificate cert;
  cert.serial = serial;
  cert.spiffe_id = "spiffe://cluster.local/ns/default/sa/test";
  cert.issued_at = issued_at;
  cert.expires_at = expires_at;
  return cert;
}

/// Allowed successor states per role. The no-skip property: every
/// observed transition must be in this relation — e.g. a server must
/// never jump from kWaitClientHello to kEstablished on a full handshake
/// without passing kWaitFinished.
bool legal_transition(TlsChannel::Role role, State from, State to,
                      bool resumed) {
  switch (from) {
    case State::kIdle:
      return role == TlsChannel::Role::kClient &&
             to == State::kWaitServerHello;
    case State::kWaitServerHello:
      return to == State::kEstablished || to == State::kFailed;
    case State::kWaitClientHello:
      if (to == State::kWaitFinished || to == State::kFailed) return true;
      // The one legal shortcut: an accepted ticket establishes the
      // server on the ClientHello.
      return to == State::kEstablished && resumed;
    case State::kWaitFinished:
      return to == State::kEstablished || to == State::kFailed;
    case State::kEstablished:
      return to == State::kFailed;
    case State::kFailed:
      return false;
  }
  return false;
}

void observe_transitions(TlsChannel& channel, std::vector<State>* out) {
  channel.set_state_observer([out](State next) { out->push_back(next); });
}

void expect_legal_sequence(TlsChannel::Role role, State initial,
                           const std::vector<State>& seen,
                           const TlsChannel& channel) {
  State from = initial;
  for (const State to : seen) {
    EXPECT_TRUE(legal_transition(role, from, to, channel.resumed()))
        << "illegal transition " << tls_state_name(from) << " -> "
        << tls_state_name(to);
    from = to;
  }
}

// --------------------------------------------------- handshake states --

TEST(TlsHandshake, FullHandshakeNeverSkipsStatesUnderRandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Simulator sim;
    sim::RngStream rng(seed, "tls-interleave");
    TlsParams params;
    params.enabled = true;
    const Certificate cert = make_cert(1, 0, sim::seconds(3600));
    TlsRuntime client_rt(nullptr, 16);
    TlsRuntime server_rt(nullptr, 16);
    ChannelPair pair(sim, &params, &params, &cert, &cert, &client_rt,
                     &server_rt, &rng);
    std::vector<State> client_states;
    std::vector<State> server_states;
    observe_transitions(*pair.client, &client_states);
    observe_transitions(*pair.server, &server_states);
    std::string received;
    pair.server->set_on_plaintext(
        [&](std::string_view data) { received.append(data); });
    pair.start();
    pair.client->send_app_data("GET / HTTP/1.1\r\n\r\n");
    sim.run_until(sim::seconds(10));

    ASSERT_TRUE(pair.client->established());
    ASSERT_TRUE(pair.server->established());
    EXPECT_FALSE(pair.client->resumed());
    // A full handshake walks every state, in order, no skips.
    expect_legal_sequence(TlsChannel::Role::kClient, State::kIdle,
                          client_states, *pair.client);
    expect_legal_sequence(TlsChannel::Role::kServer, State::kWaitClientHello,
                          server_states, *pair.server);
    ASSERT_EQ(server_states.size(), 2u);
    EXPECT_EQ(server_states[0], State::kWaitFinished);
    EXPECT_EQ(server_states[1], State::kEstablished);
    // Buffered app data flushed after establishment, intact and in order.
    EXPECT_EQ(received, "GET / HTTP/1.1\r\n\r\n");
    if (::testing::Test::HasNonfatalFailure()) return;
  }
}

TEST(TlsHandshake, TicketResumptionRoundTrip) {
  sim::Simulator sim;
  TlsParams params;
  params.enabled = true;
  const Certificate cert = make_cert(1, 0, sim::seconds(3600));
  TlsRuntime client_rt(nullptr, 16);
  TlsRuntime server_rt(nullptr, 16);

  // First connection: full handshake, ticket lands in the client cache.
  ChannelPair first(sim, &params, &params, &cert, &cert, &client_rt,
                    &server_rt);
  first.start();
  sim.run_until(sim::seconds(1));
  ASSERT_TRUE(first.client->established());
  EXPECT_FALSE(first.client->resumed());
  EXPECT_EQ(server_rt.metrics().handshakes_full->value(), 1u);
  EXPECT_GE(server_rt.metrics().tickets_issued->value(), 1u);
  ASSERT_TRUE(client_rt.session_cache().contains("10.0.0.2:15001"));

  // Second connection to the same peer: resumed, with 0-RTT early data
  // delivered to the server before its ServerHello round trip completes.
  ChannelPair second(sim, &params, &params, &cert, &cert, &client_rt,
                     &server_rt);
  std::vector<State> server_states;
  observe_transitions(*second.server, &server_states);
  std::string received;
  second.server->set_on_plaintext(
      [&](std::string_view data) { received.append(data); });
  second.start();
  second.client->send_app_data("early");
  sim.run_until(sim::seconds(2));
  ASSERT_TRUE(second.client->established());
  ASSERT_TRUE(second.server->established());
  EXPECT_TRUE(second.client->resumed());
  EXPECT_TRUE(second.server->resumed());
  EXPECT_EQ(server_rt.metrics().handshakes_resumed->value(), 1u);
  EXPECT_EQ(server_rt.metrics().handshakes_full->value(), 1u);
  EXPECT_EQ(received, "early");
  // Resumed server shortcut is the only shortcut taken.
  expect_legal_sequence(TlsChannel::Role::kServer, State::kWaitClientHello,
                        server_states, *second.server);
}

TEST(TlsHandshake, ResumptionOffMeansEveryHandshakeIsFull) {
  sim::Simulator sim;
  TlsParams params;
  params.enabled = true;
  params.session_resumption = false;
  const Certificate cert = make_cert(1, 0, sim::seconds(3600));
  TlsRuntime client_rt(nullptr, 16);
  TlsRuntime server_rt(nullptr, 16);
  for (int i = 0; i < 2; ++i) {
    ChannelPair pair(sim, &params, &params, &cert, &cert, &client_rt,
                     &server_rt);
    pair.start();
    sim.run_until(sim.now() + sim::seconds(1));
    ASSERT_TRUE(pair.client->established());
    EXPECT_FALSE(pair.client->resumed());
  }
  EXPECT_EQ(server_rt.metrics().handshakes_full->value(), 2u);
  EXPECT_EQ(server_rt.metrics().handshakes_resumed->value(), 0u);
  EXPECT_EQ(server_rt.metrics().tickets_issued->value(), 0u);
  EXPECT_FALSE(client_rt.session_cache().contains("10.0.0.2:15001"));
}

TEST(TlsHandshake, TimeoutFailsCleanlyWithoutPeer) {
  sim::Simulator sim;
  TlsParams params;
  params.enabled = true;
  params.handshake_timeout = sim::milliseconds(100);
  const Certificate cert = make_cert(1, 0, sim::seconds(3600));
  TlsRuntime rt(nullptr, 16);
  auto client = std::make_shared<TlsChannel>(
      sim, TlsChannel::Role::kClient, &params, &cert, &rt, "peer:1");
  client->set_send_wire([](std::string) {});  // wire goes nowhere
  std::string error;
  client->set_on_error([&](const std::string& reason) { error = reason; });
  client->start();
  sim.run_until(sim::seconds(1));
  EXPECT_TRUE(client->failed());
  EXPECT_EQ(error, "tls handshake timeout");
  EXPECT_EQ(rt.metrics().handshake_failures->value(), 1u);
}

// ----------------------------------------------------- session cache --

TEST(TlsSessionCacheTest, EvictionBoundsAndLruOrder) {
  obs::MetricRegistry registry;
  obs::Counter& evictions = registry.counter("evictions");
  TlsSessionCache cache(4, &evictions);
  for (int i = 0; i < 10; ++i) {
    cache.put("peer-" + std::to_string(i), "ticket-" + std::to_string(i));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(evictions.value(), 6u);
  // The survivors are the four most recently inserted.
  EXPECT_EQ(cache.get("peer-9"), "ticket-9");
  EXPECT_EQ(cache.get("peer-6"), "ticket-6");
  EXPECT_EQ(cache.get("peer-0"), "");

  // get() refreshes recency: peer-6 was just touched, so the next two
  // inserts evict peer-7 and peer-8, not peer-6.
  cache.put("peer-a", "ta");
  cache.put("peer-b", "tb");
  EXPECT_TRUE(cache.contains("peer-6"));
  EXPECT_FALSE(cache.contains("peer-7"));
  EXPECT_FALSE(cache.contains("peer-8"));

  // Shrinking the bound in place (a config push retune) evicts LRU-first.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("peer-b"));

  // put() on an existing key refreshes, never grows.
  cache.put("peer-b", "tb2");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("peer-b"), "tb2");

  // Capacity 0 stores nothing (resumption effectively off).
  cache.set_capacity(0);
  cache.put("peer-z", "tz");
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------ cert expiry edges --

TEST(TlsCertificate, ExpiredServerCertFailsHandshakeCleanly) {
  sim::Simulator sim;
  TlsParams params;
  params.enabled = true;
  const Certificate client_cert = make_cert(1, 0, sim::seconds(3600));
  const Certificate expired = make_cert(2, 0, sim::milliseconds(10));
  TlsRuntime client_rt(nullptr, 16);
  TlsRuntime server_rt(nullptr, 16);
  sim.run_until(sim::seconds(1));  // past the server cert's expiry
  ChannelPair pair(sim, &params, &params, &client_cert, &expired, &client_rt,
                   &server_rt);
  std::string client_error;
  pair.client->set_on_error(
      [&](const std::string& reason) { client_error = reason; });
  pair.start();
  sim.run_until(sim::seconds(10));
  EXPECT_TRUE(pair.server->failed());
  EXPECT_TRUE(pair.client->failed());
  // The alert reached the client: it failed on the peer's alert, not on
  // its own timeout.
  EXPECT_EQ(client_error, "tls alert from peer: server certificate invalid");
  EXPECT_GE(server_rt.metrics().alerts_sent->value(), 1u);
}

TEST(TlsCertificate, EstablishedSessionSurvivesRotationMidRequest) {
  // Real TLS does not rekey an established session on cert rotation; the
  // edge this pins: a request in flight exactly when the rotation push
  // lands keeps flowing, while the *next* handshake sees the new serial.
  sim::Simulator sim;
  TlsParams params;
  params.enabled = true;
  Certificate server_cert = make_cert(1, 0, sim::seconds(10));
  const Certificate client_cert = make_cert(7, 0, sim::seconds(3600));
  TlsRuntime client_rt(nullptr, 16);
  TlsRuntime server_rt(nullptr, 16);
  ChannelPair pair(sim, &params, &params, &client_cert, &server_cert,
                   &client_rt, &server_rt);
  std::string received;
  pair.server->set_on_plaintext(
      [&](std::string_view data) { received.append(data); });
  pair.start();
  sim.run_until(sim::seconds(1));
  ASSERT_TRUE(pair.client->established());

  // Rotation lands through the stable cert pointer, mid-"request".
  pair.client->send_app_data("part-1|");
  server_cert = make_cert(2, sim.now(), sim.now() + sim::seconds(10));
  pair.client->send_app_data("part-2");
  sim.run_until(sim::seconds(2));
  EXPECT_TRUE(pair.client->established());
  EXPECT_EQ(received, "part-1|part-2");

  // The cached ticket is bound to serial 1; the next handshake offers it,
  // gets rejected, and falls back to a full handshake — establishment
  // still succeeds, just without the shortcut.
  ASSERT_TRUE(client_rt.session_cache().contains("10.0.0.2:15001"));
  ChannelPair next(sim, &params, &params, &client_cert, &server_cert,
                   &client_rt, &server_rt);
  std::string early;
  next.server->set_on_plaintext(
      [&](std::string_view data) { early.append(data); });
  next.start();
  // 0-RTT data rides the rejected ticket; it must be delivered after the
  // full handshake completes instead of being lost or replayed early.
  next.client->send_app_data("early-after-rotation");
  sim.run_until(sim::seconds(4));
  ASSERT_TRUE(next.client->established());
  EXPECT_FALSE(next.client->resumed());
  EXPECT_EQ(server_rt.metrics().resumptions_rejected->value(), 1u);
  EXPECT_EQ(early, "early-after-rotation");
}

// ------------------------------------------------------- codec fuzz --

/// Random wire streams against a server channel: malformed hellos,
/// truncated records, duplicated/oversized tickets, alerts, raw noise.
/// The property: the channel always reaches a terminal state (established
/// or failed-with-reason) by the handshake deadline — clean error, never
/// a crash or a hang.
TEST(TlsCodecFuzz, MalformedHandshakeStreamsFailCleanlyNeverHang) {
  const Certificate good = make_cert(3, 0, sim::seconds(3600));
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Simulator sim;
    sim::RngStream rng(seed, "tls-fuzz");
    TlsParams params;
    params.enabled = true;
    params.handshake_timeout = sim::milliseconds(500);
    TlsRuntime rt(nullptr, 16);
    auto server = std::make_shared<TlsChannel>(
        sim, TlsChannel::Role::kServer, &params, &good, &rt, "");
    server->set_send_wire([](std::string) {});
    server->set_on_plaintext([](std::string_view) {});
    server->start();

    std::string wire;
    const std::uint64_t pieces = rng.uniform_int(1, 6);
    for (std::uint64_t p = 0; p < pieces; ++p) {
      switch (rng.uniform_int(0, 6)) {
        case 0: {  // well-formed ClientHello, possibly with a bad ticket
          TlsClientHello hello;
          hello.cert_serial = rng.uniform_int(0, 3);
          hello.cert_expires_at =
              static_cast<sim::Time>(rng.uniform_int(0, 2)) *
              sim::seconds(3600);
          const std::uint64_t kind = rng.uniform_int(0, 3);
          if (kind == 1) {  // duplicated ticket (48 bytes: decode fails)
            TlsSessionTicket t;
            t.cert_serial = 3;
            t.nonce = rng.next_u64();
            const std::string one = encode_session_ticket(t);
            hello.ticket = one + one;
          } else if (kind == 2) {  // truncated ticket
            TlsSessionTicket t;
            t.cert_serial = 3;
            hello.ticket = encode_session_ticket(t).substr(
                0, rng.uniform_int(1, 23));
          } else if (kind == 3) {  // random garbage ticket
            hello.ticket = std::string(rng.uniform_int(1, 40), 'x');
          }
          wire += encode_tls_record(TlsRecordType::kClientHello,
                                    encode_client_hello(hello));
          break;
        }
        case 1:  // truncated ClientHello body
          wire += encode_tls_record(
              TlsRecordType::kClientHello,
              std::string(rng.uniform_int(0, 17), '\x01'));
          break;
        case 2:  // Finished out of nowhere
          wire += encode_tls_record(TlsRecordType::kFinished, {});
          break;
        case 3:  // app data before the handshake
          wire += encode_tls_record(TlsRecordType::kAppData, "sneaky");
          break;
        case 4:  // alert
          wire += encode_tls_record(TlsRecordType::kAlert, "boom");
          break;
        case 5: {  // raw noise (usually an unknown record type)
          std::string noise(rng.uniform_int(1, 64), '\0');
          for (char& c : noise) {
            c = static_cast<char>(rng.uniform_int(0, 255));
          }
          wire += noise;
          break;
        }
        default: {  // header promising more bytes than ever arrive
          std::string header;
          header.push_back('\x17');
          header.push_back('\x00');
          header.push_back('\x20');
          header.push_back('\x00');
          wire += header + std::string(rng.uniform_int(0, 30), 'z');
          break;
        }
      }
    }
    // Random chunking, with a chance of truncating the tail entirely.
    const std::size_t keep = static_cast<std::size_t>(
        rng.uniform_int(0, wire.size()));
    std::size_t offset = 0;
    while (offset < keep) {
      const std::size_t n = std::min<std::size_t>(
          rng.uniform_int(1, 48), keep - offset);
      const std::string chunk = wire.substr(offset, n);
      offset += n;
      sim.schedule_after(
          static_cast<sim::Duration>(rng.uniform_int(0, 100)) *
              sim::microseconds(1),
          [server, chunk] { server->on_wire_data(chunk); });
    }
    sim.run_until(sim::seconds(2));
    // Terminal, always: established (a lucky valid stream) or failed
    // with a reason — the handshake timer guarantees no hang.
    ASSERT_TRUE(server->established() || server->failed());
    if (server->failed()) {
      EXPECT_FALSE(server->error().empty());
    }
    if (::testing::Test::HasNonfatalFailure()) return;
  }
}

// ----------------------------------- rotation under a lossy push channel --

std::uint64_t cp_counter(const ControlPlane& cp, std::string_view name) {
  const obs::Counter* c = cp.metrics().find_counter(name);
  return c == nullptr ? 0 : c->value();
}

TEST(TlsRotationPush, RotatedCertReachesSidecarOnlyAfterPushHeals) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_node("n1");
  cluster::Pod& server_pod = cluster.add_pod("n1", "server-v1", "server", 8080);
  MeshPolicies policies;
  policies.tls.enabled = true;
  policies.certificate_lifetime = sim::seconds(2);
  policies.cp.cert_refresh_ahead = 0.25;
  policies.cp.ack_timeout = sim::milliseconds(20);
  policies.cp.retry_backoff_base = sim::milliseconds(10);
  policies.cp.retry_backoff_max = sim::milliseconds(40);
  ControlPlane cp(sim, cluster, policies);
  Sidecar& sidecar = cp.inject_sidecar(server_pod, {});
  cp.start();
  sim.run_until(sim::milliseconds(100));
  const std::uint64_t initial_serial = sidecar.config().identity_cert.serial;
  ASSERT_NE(initial_serial, 0u);
  EXPECT_TRUE(sidecar.config().tls.enabled);

  // Sever the push channel, then run past the rotation point: the CP
  // rotates, the sidecar keeps serving with the old (still valid) cert.
  cp.set_push_loss(1.0);
  sim.run_until(sim::milliseconds(1900));
  EXPECT_GE(cp_counter(cp, "cp_cert_rotations_total"), 1u);
  const Certificate* rotated = cp.certificate("server");
  ASSERT_NE(rotated, nullptr);
  EXPECT_NE(rotated->serial, initial_serial);
  EXPECT_EQ(sidecar.config().identity_cert.serial, initial_serial);
  EXPECT_TRUE(
      sidecar.config().identity_cert.valid_at(sim.now()));  // not yet expired
  EXPECT_FALSE(cp.converged());

  // Heal the channel: the ack/retry loop converges and the sidecar's
  // identity catches up to the CP's current cert without a fresh
  // operator push.
  cp.set_push_loss(0.0);
  sim.run_until(sim.now() + sim::seconds(1));
  EXPECT_TRUE(cp.converged());
  EXPECT_EQ(sidecar.config().identity_cert.serial,
            cp.certificate("server")->serial);
  EXPECT_TRUE(sidecar.config().identity_cert.valid_at(sim.now()));
}

}  // namespace
}  // namespace meshnet::mesh
