// Tests for the sharded parallel engine (sim/parallel.h): the SPSC
// mailbox ring, the shared worker budget, the cross-shard safety guard,
// the barrier-epoch protocol's ordering rules, and the two determinism
// properties the design stands on — thread-count invariance for a fixed
// shard count, and shard-count invariance of the PARSIM workload surface
// against a single-shard reference (ParsimShardInvariance/*, labelled
// slow in tests/CMakeLists.txt together with ParsimThreadDeterminism).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/topology_gen.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sim/spsc_ring.h"
#include "util/thread_pool.h"
#include "workload/bench_harness.h"
#include "workload/parsim_experiment.h"

namespace meshnet {
namespace {

// ---------------------------------------------------------------- SpscRing

TEST(SpscRing, PushPopFifoOrder) {
  sim::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));  // full
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  sim::SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v)) << i;
  }
  int v = 8;
  EXPECT_FALSE(ring.try_push(v));
}

TEST(SpscRing, InterleavedWrapAround) {
  sim::SpscRing<int> ring(2);
  for (int round = 0; round < 100; ++round) {
    int v = round;
    ASSERT_TRUE(ring.try_push(v));
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

// ------------------------------------------------------------ WorkerBudget

TEST(WorkerBudget, AcquireClampsToRemainingCapacity) {
  util::WorkerBudget& budget = util::WorkerBudget::global();
  const int saved_limit = budget.limit();
  const int base = budget.in_use();
  budget.set_limit(base + 4);

  const int first = budget.acquire(3, 0);
  EXPECT_EQ(first, 3);
  const int second = budget.acquire(3, 0);
  EXPECT_EQ(second, 1);  // only one slot left
  const int third = budget.acquire(3, 0);
  EXPECT_EQ(third, 0);  // exhausted; degrade to sequential
  const int forced = budget.acquire(3, 2);
  EXPECT_EQ(forced, 2);  // minimum wins over the cap (top-level pools)

  budget.release(first);
  budget.release(second);
  budget.release(third);
  budget.release(forced);
  EXPECT_EQ(budget.in_use(), base);
  budget.set_limit(saved_limit);
}

TEST(WorkerBudget, EngineUnderPoolDoesNotOversubscribe) {
  util::WorkerBudget& budget = util::WorkerBudget::global();
  const int saved_limit = budget.limit();
  const int base = budget.in_use();
  budget.set_limit(base + 4);
  {
    // A sweep pool takes its workers unclamped...
    util::ThreadPool pool(3);
    // ...so a nested engine asking for 8 shards' worth of extras only
    // gets what is left (1), plus the calling thread.
    sim::ParallelEngineOptions options;
    options.shards = 8;
    options.threads = 8;
    sim::ParallelEngine engine(options);
    EXPECT_EQ(engine.executor_count(), 2);

    // A second nested engine finds the budget exhausted and degrades to
    // the calling thread alone — still correct, never oversubscribed.
    sim::ParallelEngine sequential(options);
    EXPECT_EQ(sequential.executor_count(), 1);
  }
  EXPECT_EQ(budget.in_use(), base);
  budget.set_limit(saved_limit);
}

// ------------------------------------------------- Simulator shard guard

TEST(ShardGuard, ForeignScheduleThrows) {
  sim::Simulator mine;
  sim::Simulator other;
  {
    sim::Simulator::ShardGuard guard(&mine);
    EXPECT_NO_THROW(mine.schedule_at(10, [] {}));
    EXPECT_THROW(other.schedule_at(10, [] {}), std::logic_error);
  }
  // Guard released: direct scheduling is legal again (single-shard use).
  EXPECT_NO_THROW(other.schedule_at(10, [] {}));
}

TEST(ShardGuard, EngineCatchesCrossShardScheduling) {
  sim::ParallelEngineOptions options;
  options.shards = 2;
  options.lookahead = 10;
  sim::ParallelEngine engine(options);
  sim::Simulator& foreign = engine.shard(1);
  engine.shard(0).schedule_at(5, [&foreign] {
    foreign.schedule_at(100, [] {});  // partitioning bug: must throw
  });
  EXPECT_THROW(engine.run_until(1000), std::logic_error);
}

TEST(Simulator, NextEventTimeObservesWithoutAdvancing) {
  sim::Simulator sim;
  EXPECT_EQ(sim.next_event_time(), sim::Simulator::kNoEventTime);
  sim.schedule_at(42, [] {});
  EXPECT_EQ(sim.next_event_time(), 42);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
  sim.run();
  EXPECT_EQ(sim.next_event_time(), sim::Simulator::kNoEventTime);
}

// ---------------------------------------------------------- ParallelEngine

TEST(ParallelEngine, PingPongCrossesShardsAtExactTimes) {
  sim::ParallelEngineOptions options;
  options.shards = 2;
  options.lookahead = 10;
  sim::ParallelEngine engine(options);

  std::vector<std::pair<int, sim::Time>> fired;  // (shard, when)
  struct Hop {
    sim::ParallelEngine* engine;
    std::vector<std::pair<int, sim::Time>>* fired;
    int rounds_left;
    void run(int shard) const {
      sim::Simulator& sim = engine->shard(shard);
      fired->emplace_back(shard, sim.now());
      if (rounds_left == 0) return;
      const Hop next{engine, fired, rounds_left - 1};
      const int dst = 1 - shard;
      engine->post(shard, dst, sim.now() + engine->lookahead(),
                   [next, dst] { next.run(dst); });
    }
  };
  const Hop first{&engine, &fired, 4};
  engine.shard(0).schedule_at(5, [first] { first.run(0); });
  engine.run_until(1000);

  const std::vector<std::pair<int, sim::Time>> expected = {
      {0, 5}, {1, 15}, {0, 25}, {1, 35}, {0, 45}};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(engine.stats().messages, 4u);
  EXPECT_EQ(engine.events_executed(), 5u);
  EXPECT_EQ(engine.shard(0).now(), 1000);
  EXPECT_EQ(engine.shard(1).now(), 1000);
}

TEST(ParallelEngine, PostInsideLookaheadWindowThrows) {
  sim::ParallelEngineOptions options;
  options.shards = 2;
  options.lookahead = 10;
  sim::ParallelEngine engine(options);
  engine.shard(0).schedule_at(5, [&engine] {
    engine.post(0, 1, engine.shard(0).now() + 5, [] {});  // 5 < lookahead
  });
  EXPECT_THROW(engine.run_until(1000), std::logic_error);
}

TEST(ParallelEngine, SameTimeDeliveriesFollowCanonicalOrder) {
  // Shards 1 and 2 both post to shard 0 for the same delivery time; the
  // barrier must inject them in (time, src shard, seq) order no matter
  // which shard's epoch ran first.
  sim::ParallelEngineOptions options;
  options.shards = 3;
  options.lookahead = 10;
  sim::ParallelEngine engine(options);

  std::vector<int> order;
  for (const int src : {2, 1}) {  // post from the higher shard first
    engine.shard(src).schedule_at(5, [&engine, &order, src] {
      engine.post(src, 0, 15, [&order, src] { order.push_back(src); });
      engine.post(src, 0, 15,
                  [&order, src] { order.push_back(src + 10); });
    });
  }
  engine.run_until(100);
  const std::vector<int> expected = {1, 11, 2, 12};  // src asc, seq asc
  EXPECT_EQ(order, expected);
}

TEST(ParallelEngine, MailboxOverflowSpillsWithoutReordering) {
  sim::ParallelEngineOptions options;
  options.shards = 2;
  options.lookahead = 10;
  options.mailbox_capacity = 2;
  sim::ParallelEngine engine(options);

  std::vector<int> order;
  engine.shard(0).schedule_at(1, [&engine, &order] {
    for (int i = 0; i < 8; ++i) {
      engine.post(0, 1, 11, [&order, i] { order.push_back(i); });
    }
  });
  engine.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_GT(engine.stats().mailbox_overflows, 0u);
  EXPECT_EQ(engine.stats().messages, 8u);
}

TEST(ParallelEngine, MergedLoopStatsSumShards) {
  sim::ParallelEngineOptions options;
  options.shards = 2;
  options.lookahead = 10;
  sim::ParallelEngine engine(options);
  engine.shard(0).schedule_at(1, [] {});
  engine.shard(0).schedule_at(2, [] {});
  engine.shard(1).schedule_at(3, [] {});
  engine.run_until(10);
  const sim::LoopStats merged = engine.merged_loop_stats();
  EXPECT_EQ(merged.scheduled, 3u);
  EXPECT_EQ(merged.executed, 3u);
}

// ------------------------------------------- determinism property tests

using PointKey = std::map<std::string, std::uint64_t>;

// Strips the engine surface (epochs, loop stats, events, partition shape)
// from a point: what remains must be invariant across shard counts.
workload::PointMetrics workload_surface(workload::PointMetrics metrics) {
  for (auto it = metrics.counters.begin(); it != metrics.counters.end();) {
    if (it->first == "events" || it->first.rfind("engine_", 0) == 0) {
      it = metrics.counters.erase(it);
    } else {
      ++it;
    }
  }
  return metrics;
}

void expect_same_workload_surface(const workload::PointMetrics& a,
                                  const workload::PointMetrics& b,
                                  const std::string& what) {
  EXPECT_EQ(a.scalars, b.scalars) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
  EXPECT_TRUE(a.histograms == b.histograms) << what;
  EXPECT_TRUE(a.snapshot == b.snapshot) << what;
}

// Fixed shard count, varying worker threads: EVERYTHING must match, the
// engine surface included. respect_worker_budget is off so real threads
// spawn even on single-core hosts.
TEST(ParsimThreadDeterminism, BitIdenticalAcrossThreadCounts) {
  workload::ParsimConfig config;
  config.shards = 8;
  config.respect_worker_budget = false;
  config.duration = sim::milliseconds(500);

  config.threads = 1;
  const workload::PointMetrics reference =
      workload::parsim_point_metrics(workload::run_parsim_experiment(config));
  ASSERT_GT(reference.counters.at("leaf_completions"), 0u);

  for (const int threads : {2, 4, 8}) {
    config.threads = threads;
    const workload::PointMetrics point = workload::parsim_point_metrics(
        workload::run_parsim_experiment(config));
    const std::string what = "threads=" + std::to_string(threads);
    EXPECT_EQ(point.scalars, reference.scalars) << what;
    EXPECT_EQ(point.counters, reference.counters) << what;
    EXPECT_TRUE(point.histograms == reference.histograms) << what;
    EXPECT_TRUE(point.snapshot == reference.snapshot) << what;
  }
}

// Random layered fan-out topologies: the workload surface of a sharded
// run must equal the single-shard reference exactly (satellite of the
// conservative-lookahead design: partitioning may change synchronization
// granularity, never simulation semantics).
TEST(ParsimShardInvariance, RandomTopologiesMatchSingleShardReference) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    std::mt19937_64 shape(seed);
    cluster::FanoutSpec spec;
    const int layers = 3 + static_cast<int>(shape() % 2);  // 3 or 4
    for (int layer = 0; layer < layers; ++layer) {
      spec.layer_widths.push_back(2 + static_cast<int>(shape() % 11));
    }
    spec.fanout = 2 + static_cast<int>(shape() % 2);
    spec.min_edge_latency = sim::milliseconds(1 + shape() % 2);
    spec.max_edge_latency =
        spec.min_edge_latency + sim::milliseconds(1 + shape() % 3);

    workload::ParsimConfig config;
    config.topology = spec;
    config.seed = seed;
    config.duration = sim::milliseconds(300);
    config.root_rps = 150.0;
    config.respect_worker_budget = false;

    config.shards = 1;
    config.threads = 1;
    const workload::PointMetrics reference = workload_surface(
        workload::parsim_point_metrics(workload::run_parsim_experiment(config)));
    ASSERT_GT(reference.counters.at("leaf_completions"), 0u)
        << "seed=" << seed;

    for (const int shards : {2, 4, 8}) {
      config.shards = shards;
      config.threads = std::min(shards, 4);
      const workload::PointMetrics point =
          workload_surface(workload::parsim_point_metrics(
              workload::run_parsim_experiment(config)));
      expect_same_workload_surface(point, reference,
                                   "seed=" + std::to_string(seed) +
                                       " shards=" + std::to_string(shards));
    }
  }
}

}  // namespace
}  // namespace meshnet
