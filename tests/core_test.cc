// Tests for the cross-layer prioritization machinery: priority parsing,
// ingress classification, provenance propagation, priority routing, TC
// management, SDN coordination and the controller that wires them up.

#include <gtest/gtest.h>

#include <memory>

#include "core/classifier.h"
#include "core/cross_layer.h"
#include "core/priority.h"
#include "core/priority_router.h"
#include "core/provenance.h"
#include "core/sdn_coordinator.h"
#include "core/tc_manager.h"
#include "mesh/control_plane.h"
#include "sim/simulator.h"

namespace meshnet::core {
namespace {

using mesh::FilterDirection;
using mesh::FilterStatus;
using mesh::RequestContext;
using mesh::TrafficClass;

// ----------------------------------------------------------- priority --

TEST(Priority, ParseValues) {
  EXPECT_EQ(parse_priority("high"), TrafficClass::kLatencySensitive);
  EXPECT_EQ(parse_priority("low"), TrafficClass::kScavenger);
  EXPECT_FALSE(parse_priority("medium").has_value());
  EXPECT_FALSE(parse_priority("").has_value());
}

TEST(Priority, HeaderValueRoundTrip) {
  EXPECT_EQ(priority_header_value(TrafficClass::kLatencySensitive), "high");
  EXPECT_EQ(priority_header_value(TrafficClass::kScavenger), "low");
  EXPECT_EQ(priority_header_value(TrafficClass::kDefault), "");
}

TEST(Priority, RequestAccessors) {
  http::HttpRequest request;
  EXPECT_FALSE(request_priority(request).has_value());
  set_request_priority(request, TrafficClass::kScavenger);
  EXPECT_EQ(request_priority(request), TrafficClass::kScavenger);
  set_request_priority(request, TrafficClass::kDefault);  // removes
  EXPECT_FALSE(request.headers.has(http::headers::kMeshPriority));
}

// ---------------------------------------------------------- classifier --

RequestContext make_ctx(const std::string& path,
                        FilterDirection direction = FilterDirection::kOutbound,
                        const std::string& host = "frontend") {
  RequestContext ctx;
  ctx.direction = direction;
  ctx.request.path = path;
  ctx.request.headers.set(http::headers::kHost, host);
  return ctx;
}

ClassifierConfig product_analytics_rules() {
  ClassifierConfig config;
  config.rules = {
      {"/product", "", "", "", TrafficClass::kLatencySensitive},
      {"/analytics", "", "", "", TrafficClass::kScavenger},
  };
  config.default_class = TrafficClass::kLatencySensitive;
  return config;
}

TEST(Classifier, PathPrefixRules) {
  IngressClassifierFilter filter(product_analytics_rules());
  RequestContext high = make_ctx("/product/1");
  filter.on_request(high);
  EXPECT_EQ(high.traffic_class, TrafficClass::kLatencySensitive);
  EXPECT_EQ(high.request.headers.get_or(http::headers::kMeshPriority, ""),
            "high");
  RequestContext low = make_ctx("/analytics/scan");
  filter.on_request(low);
  EXPECT_EQ(low.traffic_class, TrafficClass::kScavenger);
  EXPECT_EQ(low.request.headers.get_or(http::headers::kMeshPriority, ""),
            "low");
  EXPECT_EQ(filter.classified_high(), 1u);
  EXPECT_EQ(filter.classified_low(), 1u);
}

TEST(Classifier, DefaultClassApplies) {
  IngressClassifierFilter filter(product_analytics_rules());
  RequestContext other = make_ctx("/misc");
  filter.on_request(other);
  EXPECT_EQ(other.traffic_class, TrafficClass::kLatencySensitive);
}

TEST(Classifier, FirstMatchingRuleWins) {
  ClassifierConfig config;
  config.rules = {
      {"/a/b", "", "", "", TrafficClass::kScavenger},
      {"/a", "", "", "", TrafficClass::kLatencySensitive},
  };
  IngressClassifierFilter filter(config);
  RequestContext ctx = make_ctx("/a/b/c");
  filter.on_request(ctx);
  EXPECT_EQ(ctx.traffic_class, TrafficClass::kScavenger);
}

TEST(Classifier, HostRule) {
  ClassifierConfig config;
  config.rules = {{"", "batch.svc", "", "", TrafficClass::kScavenger}};
  config.default_class = TrafficClass::kLatencySensitive;
  IngressClassifierFilter filter(config);
  RequestContext batch = make_ctx("/x", FilterDirection::kOutbound,
                                  "batch.svc");
  filter.on_request(batch);
  EXPECT_EQ(batch.traffic_class, TrafficClass::kScavenger);
  RequestContext ui = make_ctx("/x", FilterDirection::kOutbound, "ui.svc");
  filter.on_request(ui);
  EXPECT_EQ(ui.traffic_class, TrafficClass::kLatencySensitive);
}

TEST(Classifier, HeaderRule) {
  ClassifierConfig config;
  config.rules = {
      {"", "", "x-batch-job", "", TrafficClass::kScavenger},
      {"", "", "x-tier", "gold", TrafficClass::kLatencySensitive},
  };
  config.default_class = TrafficClass::kLatencySensitive;
  IngressClassifierFilter filter(config);
  RequestContext ctx = make_ctx("/");
  ctx.request.headers.set("x-batch-job", "nightly");
  filter.on_request(ctx);
  EXPECT_EQ(ctx.traffic_class, TrafficClass::kScavenger);

  RequestContext gold = make_ctx("/");
  gold.request.headers.set("x-tier", "gold");
  filter.on_request(gold);
  EXPECT_EQ(gold.traffic_class, TrafficClass::kLatencySensitive);

  RequestContext silver = make_ctx("/");
  silver.request.headers.set("x-tier", "silver");
  filter.on_request(silver);  // value mismatch: falls to default
  EXPECT_EQ(silver.traffic_class, TrafficClass::kLatencySensitive);
}

TEST(Classifier, RespectsExistingHeaderByDefault) {
  IngressClassifierFilter filter(product_analytics_rules());
  RequestContext ctx = make_ctx("/product/1");  // rule says high...
  ctx.request.headers.set(http::headers::kMeshPriority, "low");  // app says low
  filter.on_request(ctx);
  EXPECT_EQ(ctx.traffic_class, TrafficClass::kScavenger);
}

TEST(Classifier, CanOverrideExistingHeader) {
  ClassifierConfig config = product_analytics_rules();
  config.respect_existing_header = false;
  IngressClassifierFilter filter(config);
  RequestContext ctx = make_ctx("/product/1");
  ctx.request.headers.set(http::headers::kMeshPriority, "low");
  filter.on_request(ctx);
  EXPECT_EQ(ctx.traffic_class, TrafficClass::kLatencySensitive);
}

// ---------------------------------------------------------- provenance --

TEST(ProvenanceTable, RecordAndLookup) {
  sim::Simulator sim;
  ProvenanceTable table(sim);
  table.record("req-1", TrafficClass::kScavenger);
  EXPECT_EQ(table.lookup("req-1"), TrafficClass::kScavenger);
  EXPECT_FALSE(table.lookup("req-2").has_value());
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.misses(), 1u);
}

TEST(ProvenanceTable, EmptyIdIgnored) {
  sim::Simulator sim;
  ProvenanceTable table(sim);
  table.record("", TrafficClass::kScavenger);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup("").has_value());
}

TEST(ProvenanceTable, EntriesExpireAfterTtl) {
  sim::Simulator sim;
  ProvenanceTable table(sim, sim::seconds(1));
  table.record("req-1", TrafficClass::kLatencySensitive);
  sim.run_until(sim::milliseconds(500));
  EXPECT_TRUE(table.lookup("req-1").has_value());
  sim.run_until(sim::seconds(2));
  EXPECT_FALSE(table.lookup("req-1").has_value());
}

TEST(ProvenanceTable, SweepEvictsExpired) {
  sim::Simulator sim;
  ProvenanceTable table(sim, sim::seconds(1));
  for (int i = 0; i < 100; ++i) {
    table.record("req-" + std::to_string(i), TrafficClass::kScavenger);
  }
  sim.run_until(sim::seconds(3));
  // Recording anything triggers the amortized sweep.
  table.record("fresh", TrafficClass::kScavenger);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ProvenanceFilter, InboundRecordsOutboundStamps) {
  sim::Simulator sim;
  auto table = std::make_shared<ProvenanceTable>(sim);
  ProvenanceFilter filter(table);

  // Inbound request with priority: recorded.
  RequestContext inbound = make_ctx("/api", FilterDirection::kInbound);
  inbound.request.set_request_id("req-42");
  inbound.request.headers.set(http::headers::kMeshPriority, "low");
  filter.on_request(inbound);
  EXPECT_EQ(inbound.traffic_class, TrafficClass::kScavenger);

  // Outbound sub-request, same id, no priority header (unmodified app):
  // the filter must stamp the inherited priority.
  RequestContext outbound = make_ctx("/sub", FilterDirection::kOutbound);
  outbound.request.set_request_id("req-42");
  filter.on_request(outbound);
  EXPECT_EQ(outbound.traffic_class, TrafficClass::kScavenger);
  EXPECT_EQ(outbound.request.headers.get_or(http::headers::kMeshPriority, ""),
            "low");
}

TEST(ProvenanceFilter, OutboundWithUnknownIdStaysDefault) {
  sim::Simulator sim;
  auto table = std::make_shared<ProvenanceTable>(sim);
  ProvenanceFilter filter(table);
  RequestContext outbound = make_ctx("/sub", FilterDirection::kOutbound);
  outbound.request.set_request_id("req-unknown");
  filter.on_request(outbound);
  EXPECT_EQ(outbound.traffic_class, TrafficClass::kDefault);
  EXPECT_FALSE(outbound.request.headers.has(http::headers::kMeshPriority));
}

TEST(ProvenanceFilter, OutboundExplicitPriorityWarmsTable) {
  sim::Simulator sim;
  auto table = std::make_shared<ProvenanceTable>(sim);
  ProvenanceFilter filter(table);
  RequestContext outbound = make_ctx("/sub", FilterDirection::kOutbound);
  outbound.request.set_request_id("req-7");
  outbound.request.headers.set(http::headers::kMeshPriority, "high");
  filter.on_request(outbound);
  EXPECT_EQ(table->lookup("req-7"), TrafficClass::kLatencySensitive);
}

TEST(ProvenanceFilter, ResponseCarriesPriorityHeader) {
  sim::Simulator sim;
  auto table = std::make_shared<ProvenanceTable>(sim);
  ProvenanceFilter filter(table);
  RequestContext ctx = make_ctx("/x", FilterDirection::kInbound);
  ctx.request.set_request_id("req-9");
  ctx.request.headers.set(http::headers::kMeshPriority, "high");
  filter.on_request(ctx);
  http::HttpResponse response;
  filter.on_response(ctx, response);
  EXPECT_EQ(response.headers.get_or(http::headers::kMeshPriority, ""),
            "high");
}

// ------------------------------------------------------ priority router --

TEST(PriorityRouter, MapsClassesToSubsets) {
  PriorityRouterFilter filter;
  RequestContext high = make_ctx("/x");
  high.traffic_class = TrafficClass::kLatencySensitive;
  filter.on_request(high);
  EXPECT_EQ(high.subset.at("priority"), "high");
  RequestContext low = make_ctx("/x");
  low.traffic_class = TrafficClass::kScavenger;
  filter.on_request(low);
  EXPECT_EQ(low.subset.at("priority"), "low");
  EXPECT_EQ(filter.routed_high(), 1u);
  EXPECT_EQ(filter.routed_low(), 1u);
}

TEST(PriorityRouter, DefaultClassUnconstrained) {
  PriorityRouterFilter filter;
  RequestContext ctx = make_ctx("/x");
  filter.on_request(ctx);
  EXPECT_TRUE(ctx.subset.empty());
}

TEST(PriorityRouter, InboundUntouched) {
  PriorityRouterFilter filter;
  RequestContext ctx = make_ctx("/x", FilterDirection::kInbound);
  ctx.traffic_class = TrafficClass::kLatencySensitive;
  filter.on_request(ctx);
  EXPECT_TRUE(ctx.subset.empty());
}

TEST(PriorityRouter, ClusterScoping) {
  PriorityRouterFilter filter({"reviews"});
  RequestContext reviews = make_ctx("/x", FilterDirection::kOutbound,
                                    "reviews");
  reviews.traffic_class = TrafficClass::kLatencySensitive;
  filter.on_request(reviews);
  EXPECT_FALSE(reviews.subset.empty());
  RequestContext details = make_ctx("/x", FilterDirection::kOutbound,
                                    "details");
  details.traffic_class = TrafficClass::kLatencySensitive;
  filter.on_request(details);
  EXPECT_TRUE(details.subset.empty());
}

// ------------------------------------------------------------ TC manager --

class TcFixture : public ::testing::Test {
 protected:
  TcFixture() : cluster(sim) {
    cluster.add_node("n1");
    high_pod = &cluster.add_pod("n1", "high-pod", "svc", 80);
    low_pod = &cluster.add_pod("n1", "low-pod", "svc", 80);
  }
  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Pod* high_pod;
  cluster::Pod* low_pod;
};

TEST_F(TcFixture, InstallReplacesQdisc) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.high_priority_ips = {high_pod->ip()};
  EXPECT_TRUE(tc.install(rule));
  EXPECT_NE(dynamic_cast<net::WeightedPrioQdisc*>(&low_pod->egress_link().qdisc()),
            nullptr);
  EXPECT_EQ(tc.rules().size(), 1u);
}

TEST_F(TcFixture, StrictVariant) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.strict = true;
  rule.match = TcMatch::kDscp;
  EXPECT_TRUE(tc.install(rule));
  EXPECT_NE(dynamic_cast<net::StrictPrioQdisc*>(&low_pod->egress_link().qdisc()),
            nullptr);
}

TEST_F(TcFixture, UnknownPodFails) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "ghost";
  EXPECT_FALSE(tc.install(rule));
  EXPECT_FALSE(tc.clear("ghost"));
}

TEST_F(TcFixture, ClearRestoresFifo) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.match = TcMatch::kDscp;
  tc.install(rule);
  EXPECT_TRUE(tc.clear("low-pod"));
  EXPECT_NE(dynamic_cast<net::FifoQdisc*>(&low_pod->egress_link().qdisc()),
            nullptr);
  EXPECT_TRUE(tc.rules().empty());
}

TEST_F(TcFixture, InstallOnAllPodsAndClearAll) {
  TcManager tc(cluster);
  TcRule rule;
  rule.match = TcMatch::kDscp;
  tc.install_on_all_pods(rule);
  EXPECT_EQ(tc.rules().size(), cluster.pods().size());
  tc.clear_all();
  EXPECT_TRUE(tc.rules().empty());
}

TEST_F(TcFixture, ReinstallReplacesInventoryEntry) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.match = TcMatch::kDscp;
  tc.install(rule);
  rule.high_share = 0.8;
  tc.install(rule);
  ASSERT_EQ(tc.rules().size(), 1u);
  EXPECT_DOUBLE_EQ(tc.rules()[0].high_share, 0.8);
}

TEST_F(TcFixture, DstIpClassifierPrioritizes) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.high_priority_ips = {high_pod->ip()};
  tc.install(rule);
  auto* qdisc = dynamic_cast<net::WeightedPrioQdisc*>(
      &low_pod->egress_link().qdisc());
  ASSERT_NE(qdisc, nullptr);
  net::Packet to_high;
  to_high.flow.dst_ip = high_pod->ip();
  net::Packet to_low;
  to_low.flow.dst_ip = low_pod->ip();
  qdisc->enqueue(to_low, 0);
  qdisc->enqueue(to_high, 0);
  EXPECT_EQ(qdisc->band_backlog_packets(0), 1u);
  EXPECT_EQ(qdisc->band_backlog_packets(1), 1u);
}

TEST_F(TcFixture, ShowRendersRules) {
  TcManager tc(cluster);
  TcRule rule;
  rule.pod_name = "low-pod";
  rule.high_priority_ips = {high_pod->ip()};
  tc.install(rule);
  const std::string out = tc.show();
  EXPECT_NE(out.find("low-pod"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
  EXPECT_NE(out.find(net::ip_to_string(high_pod->ip())), std::string::npos);
}

// -------------------------------------------------------- SDN coordinator --

TEST(SdnCoordinator, AdvertiseAndClassify) {
  SdnCoordinator sdn;
  const net::FlowKey flow{1, 100, 2, 200};
  EXPECT_EQ(sdn.classify(flow), TrafficClass::kDefault);
  sdn.advertise(flow, TrafficClass::kLatencySensitive);
  EXPECT_EQ(sdn.classify(flow), TrafficClass::kLatencySensitive);
  // The reverse direction inherits the class (responses!).
  EXPECT_EQ(sdn.classify(flow.reversed()), TrafficClass::kLatencySensitive);
  EXPECT_EQ(sdn.advertised_flows(), 1u);
}

TEST(SdnCoordinator, WithdrawRemoves) {
  SdnCoordinator sdn;
  const net::FlowKey flow{1, 100, 2, 200};
  sdn.advertise(flow, TrafficClass::kScavenger);
  sdn.withdraw(flow);
  EXPECT_EQ(sdn.classify(flow), TrafficClass::kDefault);
}

TEST(SdnCoordinator, ProgramLinkUsesFlowTable) {
  sim::Simulator sim;
  net::Link link(sim, "fabric", 1e9, 0, std::make_unique<net::FifoQdisc>());
  SdnCoordinator sdn;
  sdn.program_link(link);
  auto* qdisc = dynamic_cast<net::WeightedPrioQdisc*>(&link.qdisc());
  ASSERT_NE(qdisc, nullptr);
  const net::FlowKey ls_flow{1, 10, 2, 20};
  sdn.advertise(ls_flow, TrafficClass::kLatencySensitive);
  net::Packet ls;
  ls.flow = ls_flow;
  net::Packet other;
  other.flow = net::FlowKey{3, 30, 4, 40};
  qdisc->enqueue(ls, 0);
  qdisc->enqueue(other, 0);
  EXPECT_EQ(qdisc->band_backlog_packets(0), 1u);
  EXPECT_EQ(qdisc->band_backlog_packets(1), 1u);
}

// ----------------------------------------------- cross-layer controller --

class CrossLayerFixture : public ::testing::Test {
 protected:
  CrossLayerFixture() : cluster(sim), control_plane(sim, cluster) {
    cluster.add_node("n1");
    gateway = &cluster.add_pod("n1", "gw", "gateway", 0);
    cluster::PodOptions high;
    high.labels = {{"priority", "high"}};
    rep_high = &cluster.add_pod("n1", "svc-high", "svc", 8080, high);
    cluster::PodOptions low;
    low.labels = {{"priority", "low"}};
    rep_low = &cluster.add_pod("n1", "svc-low", "svc", 8080, low);
    mesh::SidecarInjectionOptions gw_options;
    gw_options.gateway_mode = true;
    gw_options.outbound_port = 80;
    control_plane.inject_sidecar(*gateway, gw_options);
    control_plane.inject_sidecar(*rep_high, {});
    control_plane.inject_sidecar(*rep_low, {});
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  mesh::ControlPlane control_plane;
  cluster::Pod* gateway;
  cluster::Pod* rep_high;
  cluster::Pod* rep_low;
};

TEST_F(CrossLayerFixture, CollectsHighPriorityPodIps) {
  CrossLayerController controller(control_plane, cluster, {});
  const auto ips = controller.high_priority_pod_ips();
  ASSERT_EQ(ips.size(), 1u);
  EXPECT_EQ(ips[0], rep_high->ip());
}

TEST_F(CrossLayerFixture, InstallAddsFiltersEverywhere) {
  CrossLayerController controller(control_plane, cluster, {});
  controller.install();
  // Gateway outbound: tracing, identity, classifier, provenance, router.
  const auto gw_names =
      control_plane.sidecar_for("gw")->outbound_filters().filter_names();
  EXPECT_NE(std::find(gw_names.begin(), gw_names.end(), "ingress-classifier"),
            gw_names.end());
  EXPECT_NE(std::find(gw_names.begin(), gw_names.end(), "provenance"),
            gw_names.end());
  EXPECT_NE(std::find(gw_names.begin(), gw_names.end(), "priority-router"),
            gw_names.end());
  // App sidecar inbound gets provenance but NOT the ingress classifier.
  const auto in_names =
      control_plane.sidecar_for("svc-high")->inbound_filters().filter_names();
  EXPECT_NE(std::find(in_names.begin(), in_names.end(), "provenance"),
            in_names.end());
  EXPECT_EQ(std::find(in_names.begin(), in_names.end(), "ingress-classifier"),
            in_names.end());
}

TEST_F(CrossLayerFixture, InstallSetsClassPoliciesAndTcRules) {
  CrossLayerConfig config;
  config.scavenger_transport = true;
  CrossLayerController controller(control_plane, cluster, config);
  controller.install();
  const auto& policies = control_plane.policies().class_policies;
  ASSERT_TRUE(policies.count(TrafficClass::kLatencySensitive));
  ASSERT_TRUE(policies.count(TrafficClass::kScavenger));
  EXPECT_EQ(policies.at(TrafficClass::kLatencySensitive).dscp,
            net::Dscp::kExpedited);
  EXPECT_EQ(policies.at(TrafficClass::kScavenger).cc,
            transport::CcAlgorithm::kLedbat);
  EXPECT_EQ(controller.tc().rules().size(), cluster.pods().size());
}

TEST_F(CrossLayerFixture, DscpTaggingCanBeDisabled) {
  CrossLayerConfig config;
  config.dscp_tagging = false;
  CrossLayerController controller(control_plane, cluster, config);
  controller.install();
  const auto& policies = control_plane.policies().class_policies;
  EXPECT_EQ(policies.at(TrafficClass::kLatencySensitive).dscp,
            net::Dscp::kDefault);
}

TEST_F(CrossLayerFixture, TcPriorityCanBeDisabled) {
  CrossLayerConfig config;
  config.tc_priority = false;
  CrossLayerController controller(control_plane, cluster, config);
  controller.install();
  EXPECT_TRUE(controller.tc().rules().empty());
}

TEST_F(CrossLayerFixture, UninstallRestoresDefaults) {
  CrossLayerController controller(control_plane, cluster, {});
  controller.install();
  controller.uninstall();
  EXPECT_TRUE(controller.tc().rules().empty());
  EXPECT_TRUE(control_plane.policies().class_policies.empty());
  EXPECT_NE(dynamic_cast<net::FifoQdisc*>(&rep_low->egress_link().qdisc()),
            nullptr);
}

TEST_F(CrossLayerFixture, ProvenanceTablesExposedPerPod) {
  CrossLayerController controller(control_plane, cluster, {});
  controller.install();
  EXPECT_NE(controller.provenance_table("svc-high"), nullptr);
  EXPECT_NE(controller.provenance_table("gw"), nullptr);
  EXPECT_EQ(controller.provenance_table("ghost"), nullptr);
}

TEST_F(CrossLayerFixture, InstallIsIdempotent) {
  CrossLayerController controller(control_plane, cluster, {});
  controller.install();
  const auto count =
      control_plane.sidecar_for("gw")->outbound_filters().size();
  controller.install();
  EXPECT_EQ(control_plane.sidecar_for("gw")->outbound_filters().size(),
            count);
}

}  // namespace
}  // namespace meshnet::core
