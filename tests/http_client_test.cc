// Tests for the HTTP client connection pool: reuse, growth, queueing,
// cancellation and failure handling.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>

#include "app/http_server.h"
#include "cluster/cluster.h"
#include "mesh/http_client.h"
#include "sim/simulator.h"

namespace meshnet::mesh {
namespace {

class PoolFixture : public ::testing::Test {
 protected:
  PoolFixture() : cluster(sim) {
    cluster.add_node("n1");
    server_pod = &cluster.add_pod("n1", "srv", "srv", 0);
    client_pod = &cluster.add_pod("n1", "cli", "", 0);
    server = std::make_unique<app::SimpleHttpServer>(
        sim, server_pod->transport(), 8080,
        [this](http::HttpRequest request,
               app::SimpleHttpServer::Responder respond) {
          if (hold_responses) {
            held.emplace_back(std::move(respond));
          } else {
            http::HttpResponse response;
            response.body = "ok:" + request.path;
            respond(std::move(response));
          }
        });
  }

  std::unique_ptr<HttpClientPool> make_pool(std::size_t max_connections) {
    HttpClientPool::Options options;
    options.max_connections = max_connections;
    return std::make_unique<HttpClientPool>(
        sim, client_pod->transport(),
        net::SocketAddress{server_pod->ip(), 8080}, options);
  }

  void release_all() {
    while (!held.empty()) {
      auto respond = std::move(held.front());
      held.pop_front();
      respond(http::HttpResponse{});
    }
  }

  void settle(sim::Duration d = sim::seconds(2)) {
    sim.run_until(sim.now() + d);
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Pod* server_pod;
  cluster::Pod* client_pod;
  std::unique_ptr<app::SimpleHttpServer> server;
  bool hold_responses = false;
  std::deque<app::SimpleHttpServer::Responder> held;
};

TEST_F(PoolFixture, SequentialRequestsReuseOneConnection) {
  auto pool = make_pool(8);
  for (int i = 0; i < 5; ++i) {
    bool done = false;
    http::HttpRequest request;
    request.path = "/" + std::to_string(i);
    pool->request(std::move(request),
                  [&](std::optional<http::HttpResponse> response,
                      const std::string&) {
                    EXPECT_TRUE(response.has_value());
                    done = true;
                  });
    settle();
    EXPECT_TRUE(done);
  }
  EXPECT_EQ(pool->connections_created(), 1u);
  EXPECT_EQ(pool->idle_connections(), 1u);
}

TEST_F(PoolFixture, ConcurrentRequestsGrowThePool) {
  hold_responses = true;
  auto pool = make_pool(8);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    pool->request(http::HttpRequest{},
                  [&](std::optional<http::HttpResponse>, const std::string&) {
                    ++done;
                  });
  }
  settle();
  EXPECT_EQ(pool->connections_created(), 4u);
  EXPECT_EQ(pool->active_requests(), 4u);
  hold_responses = false;
  release_all();
  settle();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(pool->active_requests(), 0u);
}

TEST_F(PoolFixture, QueueBeyondMaxConnections) {
  hold_responses = true;
  auto pool = make_pool(2);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    pool->request(http::HttpRequest{},
                  [&](std::optional<http::HttpResponse>, const std::string&) {
                    ++done;
                  });
  }
  settle();
  EXPECT_EQ(pool->connections_created(), 2u);
  EXPECT_EQ(pool->queued_requests(), 3u);
  // Responses drain the queue through the same two connections.
  hold_responses = false;
  for (int round = 0; round < 5; ++round) {
    release_all();
    settle();
  }
  EXPECT_EQ(done, 5);
  EXPECT_EQ(pool->queued_requests(), 0u);
  EXPECT_EQ(pool->connections_created(), 2u);
}

TEST_F(PoolFixture, CancelQueuedRequestNeverFires) {
  hold_responses = true;
  auto pool = make_pool(1);
  bool first_done = false, second_done = false;
  pool->request(http::HttpRequest{},
                [&](std::optional<http::HttpResponse>, const std::string&) {
                  first_done = true;
                });
  const auto id = pool->request(
      http::HttpRequest{},
      [&](std::optional<http::HttpResponse>, const std::string&) {
        second_done = true;
      });
  settle();
  EXPECT_TRUE(pool->cancel(id));
  hold_responses = false;
  release_all();
  settle();
  EXPECT_TRUE(first_done);
  EXPECT_FALSE(second_done);
  EXPECT_FALSE(pool->cancel(id));  // already gone
}

TEST_F(PoolFixture, CancelInFlightAbortsConnection) {
  hold_responses = true;
  auto pool = make_pool(4);
  bool fired = false;
  const auto id = pool->request(
      http::HttpRequest{},
      [&](std::optional<http::HttpResponse>, const std::string&) {
        fired = true;
      });
  settle();
  EXPECT_EQ(pool->active_requests(), 1u);
  EXPECT_TRUE(pool->cancel(id));
  EXPECT_EQ(pool->active_requests(), 0u);
  // Even if the server answers later, the handler must not fire.
  hold_responses = false;
  release_all();
  settle();
  EXPECT_FALSE(fired);
}

TEST_F(PoolFixture, ServerResetFailsInFlightRequest) {
  hold_responses = true;
  auto pool = make_pool(4);
  std::optional<http::HttpResponse> result;
  std::string error;
  bool fired = false;
  pool->request(http::HttpRequest{},
                [&](std::optional<http::HttpResponse> response,
                    const std::string& e) {
                  result = std::move(response);
                  error = e;
                  fired = true;
                });
  settle();
  // Tear down every server-side connection.
  hold_responses = false;
  // Abort from the server side by destroying the listener's transport
  // state: abort all connections on the server host.
  // (simplest: server pod's TransportHost knows its connections only
  // internally; emulate by aborting via RST from a fresh server.)
  // Instead: drop the server and let the client RTO fail the connection.
  server.reset();
  // The held responder is gone; the client's request hangs. Abort the
  // client side explicitly through cancel to exercise the path:
  settle(sim::seconds(1));
  EXPECT_FALSE(fired);  // still pending (no timeout at pool level)
  EXPECT_EQ(pool->active_requests(), 1u);
}

TEST_F(PoolFixture, ConnectionRefusedYieldsTransportError) {
  // Nobody listens on this port: SYN gets RST, handler must fail.
  HttpClientPool pool(sim, client_pod->transport(),
                      net::SocketAddress{server_pod->ip(), 4242}, {});
  bool fired = false;
  std::optional<http::HttpResponse> result;
  pool.request(http::HttpRequest{},
               [&](std::optional<http::HttpResponse> response,
                   const std::string& error) {
                 result = std::move(response);
                 EXPECT_FALSE(error.empty());
                 fired = true;
               });
  settle();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(pool.transport_failures(), 1u);
}

TEST_F(PoolFixture, ConnectionCreatedHookFires) {
  HttpClientPool::Options options;
  options.max_connections = 4;
  int hook_calls = 0;
  options.on_connection_created = [&](transport::Connection& conn) {
    ++hook_calls;
    EXPECT_TRUE(conn.is_client());
  };
  HttpClientPool pool(sim, client_pod->transport(),
                      net::SocketAddress{server_pod->ip(), 8080}, options);
  pool.request(http::HttpRequest{},
               [](std::optional<http::HttpResponse>, const std::string&) {});
  settle();
  EXPECT_EQ(hook_calls, 1);
}

TEST_F(PoolFixture, DestructorAbortsLiveConnections) {
  hold_responses = true;
  {
    auto pool = make_pool(4);
    pool->request(http::HttpRequest{}, [](std::optional<http::HttpResponse>,
                                          const std::string&) {
      FAIL() << "handler fired after pool destruction";
    });
    settle();
  }  // pool destroyed with one request in flight
  hold_responses = false;
  release_all();
  settle();  // must not crash or fire the handler
  EXPECT_EQ(client_pod->transport().connection_count(), 0u);
}

}  // namespace
}  // namespace meshnet::mesh
