// Tests for the HDR-style histogram, running stats and table printer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/table.h"

namespace meshnet::stats {
namespace {

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h(7);
  for (std::uint64_t v = 0; v < 128; ++v) h.record(v);
  // Every value below 2^7 sits in its own bucket: percentiles are exact.
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(100), 127u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 127u);
  EXPECT_EQ(h.count(), 128u);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.record(42);
  EXPECT_EQ(h.percentile(0), 42u);
  EXPECT_EQ(h.percentile(50), 42u);
  EXPECT_EQ(h.percentile(100), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LogHistogram, MeanAndStddevMatchNaive) {
  LogHistogram h;
  std::vector<double> values;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() % 100000;
    h.record(v);
    values.push_back(static_cast<double>(v));
  }
  double sum = 0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - mean) * (v - mean);
  const double stddev = std::sqrt(sq / (static_cast<double>(values.size()) - 1));
  EXPECT_NEAR(h.mean(), mean, 1e-6);
  EXPECT_NEAR(h.stddev(), stddev, 1e-6);
}

TEST(LogHistogram, RecordNWeightsCounts) {
  LogHistogram h;
  h.record_n(10, 99);
  h.record_n(1000000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 10u);
  EXPECT_GT(h.percentile(100), 900000u);
}

TEST(LogHistogram, RecordZeroCountIsNoop) {
  LogHistogram h;
  h.record_n(5, 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(LogHistogram, PercentileClampsToObservedRange) {
  LogHistogram h;
  h.record(1'000'003);
  EXPECT_EQ(h.percentile(0), 1'000'003u);
  EXPECT_EQ(h.percentile(100), 1'000'003u);
}

TEST(LogHistogram, CdfMonotone) {
  LogHistogram h;
  std::mt19937_64 rng(2);
  for (int i = 0; i < 5000; ++i) h.record(rng() % 1000000);
  double prev = 0.0;
  for (std::uint64_t v = 0; v < 1000000; v += 50000) {
    const double c = h.cdf(v);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(1000000), 1.0, 1e-9);
}

TEST(LogHistogram, MergeEqualsCombinedRecording) {
  LogHistogram a, b, combined;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

TEST(LogHistogram, MergeAcrossPrecisionsReRecords) {
  LogHistogram fine(10), coarse(5);
  for (int i = 0; i < 100; ++i) coarse.record(1000 + static_cast<std::uint64_t>(i));
  fine.merge(coarse);
  EXPECT_EQ(fine.count(), 100u);
}

TEST(LogHistogram, ResetClearsEverything) {
  LogHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(LogHistogram, PrecisionBitsClamped) {
  EXPECT_EQ(LogHistogram(0).precision_bits(), 3);
  EXPECT_EQ(LogHistogram(99).precision_bits(), 14);
  EXPECT_EQ(LogHistogram(7).precision_bits(), 7);
}

// Property: relative error of any percentile is bounded by 2^-k, across
// several magnitudes and distributions.
class HistogramErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramErrorTest, RelativeErrorBound) {
  const int k = GetParam();
  LogHistogram h(k);
  std::vector<std::uint64_t> values;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    // log-uniform over [1, 2^40]
    const double exponent = std::uniform_real_distribution<>(0, 40)(rng);
    values.push_back(static_cast<std::uint64_t>(std::pow(2.0, exponent)));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  const double bound = std::pow(2.0, -k) + 1e-12;
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const std::uint64_t exact = values[std::max<std::size_t>(rank, 1) - 1];
    const std::uint64_t approx = h.percentile(p);
    const double rel_err =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        std::max<double>(1.0, static_cast<double>(exact));
    EXPECT_LE(rel_err, bound) << "p=" << p << " k=" << k
                              << " exact=" << exact << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Precision, HistogramErrorTest,
                         ::testing::Values(5, 7, 9, 11));

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  RunningStats s;
  std::vector<double> values = {3.5, -2.0, 7.25, 0.0, 13.0, -8.5, 4.0};
  double sum = 0;
  for (double v : values) {
    s.record(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), sq / (static_cast<double>(values.size()) - 1),
              1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -8.5);
  EXPECT_DOUBLE_EQ(s.max(), 13.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  std::mt19937_64 rng(4);
  std::normal_distribution<double> dist(10.0, 3.0);
  for (int i = 0; i < 500; ++i) {
    const double v = dist(rng);
    (i < 200 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.record(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Table, AlignsColumnsAndUnderlines) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // All lines (header, underline, rows) end in newline.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

// ---------------------------------------------------------------------------
// Sharded-merge properties. The sweep runner's determinism guarantee rests
// on these: merging K per-point recorders must equal one recorder fed the
// concatenated samples, for ANY split of the samples into shards.

TEST(LogHistogram, ShardedMergeEqualsCombined_RandomSplits) {
  std::mt19937_64 rng(0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    const int shards = 1 + static_cast<int>(rng() % 8);
    // Spread values across both the exact (< 2^k) and bucketed ranges of
    // the histogram. Cap at 2^20 so the sum of squares stays within the
    // double-exact integer range: equality below is bit-exact, and summing
    // inexact squares in shard order vs sample order would differ in the
    // last ulp without any merge bug.
    std::vector<std::uint64_t> samples(500 + rng() % 1500);
    for (auto& v : samples) v = rng() % (1ULL << (8 + rng() % 13));

    LogHistogram combined;
    std::vector<LogHistogram> parts(static_cast<std::size_t>(shards));
    for (const std::uint64_t v : samples) {
      combined.record(v);
      parts[rng() % static_cast<std::uint64_t>(shards)].record(v);
    }
    LogHistogram merged;
    for (const LogHistogram& part : parts) merged.merge(part);

    // Bit-exact equivalence, not just "close": operator== compares every
    // bucket plus min/max/sum/sum_sq.
    EXPECT_EQ(merged, combined) << "trial=" << trial << " shards=" << shards;
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_EQ(merged.percentile(p), combined.percentile(p))
          << "trial=" << trial << " p=" << p;
    }
    EXPECT_DOUBLE_EQ(merged.mean(), combined.mean());
  }
}

TEST(LogHistogram, ShardedMergeOrderInvariant) {
  // Merging the same shards in a different order must give the same
  // histogram (counts are integers, sums are exact for these values), so
  // the sweep runner's fixed input-order merge is deterministic.
  std::mt19937_64 rng(77);
  std::vector<LogHistogram> parts(5);
  for (int i = 0; i < 2000; ++i) {
    parts[rng() % parts.size()].record(rng() % 1000000);
  }
  LogHistogram forward, backward;
  for (std::size_t i = 0; i < parts.size(); ++i) forward.merge(parts[i]);
  for (std::size_t i = parts.size(); i-- > 0;) backward.merge(parts[i]);
  EXPECT_EQ(forward, backward);
}

TEST(RunningStats, ShardedMergeEqualsCombined_RandomSplits) {
  std::mt19937_64 rng(0xbeef);
  std::lognormal_distribution<double> dist(2.0, 1.5);
  for (int trial = 0; trial < 20; ++trial) {
    const int shards = 1 + static_cast<int>(rng() % 8);
    RunningStats combined;
    std::vector<RunningStats> parts(static_cast<std::size_t>(shards));
    const int n = 200 + static_cast<int>(rng() % 800);
    for (int i = 0; i < n; ++i) {
      const double v = dist(rng);
      combined.record(v);
      parts[rng() % static_cast<std::uint64_t>(shards)].record(v);
    }
    RunningStats merged;
    for (const RunningStats& part : parts) merged.merge(part);

    EXPECT_EQ(merged.count(), combined.count());
    EXPECT_DOUBLE_EQ(merged.min(), combined.min());
    EXPECT_DOUBLE_EQ(merged.max(), combined.max());
    // Welford merge reassociates the sums, so exactness is only up to
    // floating-point; the tolerance is tight enough to catch logic bugs.
    EXPECT_NEAR(merged.mean(), combined.mean(),
                1e-9 * std::abs(combined.mean()));
    EXPECT_NEAR(merged.variance(), combined.variance(),
                1e-6 * std::max(1.0, combined.variance()));
  }
}

TEST(LogHistogram, EqualityDetectsDifferences) {
  LogHistogram a, b;
  a.record(100);
  b.record(100);
  EXPECT_EQ(a, b);
  b.record(100);
  EXPECT_NE(a, b);

  LogHistogram c(7), d(6);  // same data, different precision
  c.record(1 << 20);
  d.record(1 << 20);
  EXPECT_NE(c, d);
}

}  // namespace
}  // namespace meshnet::stats
