// Tests for the HTTP message model and wire codec.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/codec.h"
#include "http/header_map.h"
#include "http/message.h"
#include "sim/random.h"

namespace meshnet::http {
namespace {

TEST(HeaderMap, SetAndGet) {
  HeaderMap map;
  map.set("Host", "frontend");
  EXPECT_EQ(map.get("host").value_or(""), "frontend");
  EXPECT_EQ(map.get("HOST").value_or(""), "frontend");
  EXPECT_FALSE(map.get("missing").has_value());
}

TEST(HeaderMap, NamesStoredLowercase) {
  HeaderMap map;
  map.set("X-Request-ID", "abc");
  EXPECT_EQ(map.entries()[0].first, "x-request-id");
}

TEST(HeaderMap, SetReplacesAllValues) {
  HeaderMap map;
  map.add("k", "1");
  map.add("k", "2");
  map.set("K", "3");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.get("k").value_or(""), "3");
}

TEST(HeaderMap, AddKeepsDuplicates) {
  HeaderMap map;
  map.add("accept", "a");
  map.add("accept", "b");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.get("accept").value_or(""), "a");  // first wins
}

TEST(HeaderMap, RemoveReturnsCount) {
  HeaderMap map;
  map.add("x", "1");
  map.add("x", "2");
  map.add("y", "3");
  EXPECT_EQ(map.remove("X"), 2u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.remove("x"), 0u);
}

TEST(HeaderMap, GetOrFallback) {
  HeaderMap map;
  EXPECT_EQ(map.get_or("a", "dflt"), "dflt");
  map.set("a", "v");
  EXPECT_EQ(map.get_or("a", "dflt"), "v");
}

TEST(HeaderMap, PreservesInsertionOrder) {
  HeaderMap map;
  map.add("c", "3");
  map.add("a", "1");
  map.add("b", "2");
  EXPECT_EQ(map.entries()[0].first, "c");
  EXPECT_EQ(map.entries()[1].first, "a");
  EXPECT_EQ(map.entries()[2].first, "b");
}

// ---- Interned well-known names ----------------------------------------

TEST(HeaderIntern, WellKnownNamesRoundTrip) {
  using headers::Id;
  const std::pair<std::string_view, Id> cases[] = {
      {headers::kContentLength, Id::kContentLength},
      {headers::kHost, Id::kHost},
      {headers::kRequestId, Id::kRequestId},
      {headers::kMeshPriority, Id::kMeshPriority},
      {headers::kTraceId, Id::kTraceId},
      {headers::kSpanId, Id::kSpanId},
      {headers::kParentSpanId, Id::kParentSpanId},
      {headers::kRetryAttempt, Id::kRetryAttempt},
      {headers::kMeshSource, Id::kMeshSource},
  };
  for (const auto& [name, id] : cases) {
    EXPECT_EQ(headers::intern(name), id) << name;
    EXPECT_EQ(headers::name_of(id), name);
  }
}

TEST(HeaderIntern, CaseInsensitiveAndUnknown) {
  EXPECT_EQ(headers::intern("Content-Length"), headers::Id::kContentLength);
  EXPECT_EQ(headers::intern("X-MESH-PRIORITY"), headers::Id::kMeshPriority);
  EXPECT_EQ(headers::intern("x-app"), headers::Id::kUnknown);
  EXPECT_EQ(headers::intern(""), headers::Id::kUnknown);
  // Same length as a well-known name but different bytes.
  EXPECT_EQ(headers::intern("content-lengtX"), headers::Id::kUnknown);
}

TEST(HeaderIntern, IdAndStringAccessorsAgree) {
  HeaderMap map;
  map.set("X-Mesh-Priority", "high");   // string set, mixed case
  map.set(headers::Id::kHost, "reviews");
  map.add("x-app", "frontend");

  EXPECT_EQ(map.get(headers::Id::kMeshPriority).value_or(""), "high");
  EXPECT_EQ(map.get("x-mesh-priority").value_or(""), "high");
  EXPECT_EQ(map.get(headers::Id::kHost).value_or(""), "reviews");
  EXPECT_EQ(map.get("Host").value_or(""), "reviews");
  EXPECT_TRUE(map.has(headers::Id::kMeshPriority));
  EXPECT_FALSE(map.has(headers::Id::kRetryAttempt));

  // id_at mirrors entries() order; unknown names intern to kUnknown.
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.id_at(0), headers::Id::kMeshPriority);
  EXPECT_EQ(map.id_at(1), headers::Id::kHost);
  EXPECT_EQ(map.id_at(2), headers::Id::kUnknown);

  // Id-keyed set overwrites the string-keyed entry and vice versa.
  map.set(headers::Id::kMeshPriority, "low");
  EXPECT_EQ(map.get("x-mesh-priority").value_or(""), "low");
  map.set("host", "ratings");
  EXPECT_EQ(map.get(headers::Id::kHost).value_or(""), "ratings");

  EXPECT_EQ(map.remove(headers::Id::kHost), 1u);
  EXPECT_FALSE(map.has("host"));
}

TEST(HeaderIntern, SerializedNamesAreCanonicalLowercase) {
  HttpRequest request;
  request.headers.set("X-Mesh-Priority", "high");
  request.headers.set(headers::Id::kHost, "reviews");
  const std::string wire = serialize_request(request);
  EXPECT_NE(wire.find("x-mesh-priority: high"), std::string::npos);
  EXPECT_NE(wire.find("host: reviews"), std::string::npos);
}

TEST(Message, RequestIdAccessors) {
  HttpRequest req;
  EXPECT_EQ(req.request_id(), "");
  req.set_request_id("req-1");
  EXPECT_EQ(req.request_id(), "req-1");
  EXPECT_EQ(req.headers.get_or(headers::kRequestId, ""), "req-1");
}

TEST(Message, GenerateRequestIdIsUnique) {
  reset_request_id_counter();
  const std::string a = generate_request_id();
  const std::string b = generate_request_id();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("req-", 0), 0u);
}

TEST(Message, ResetRequestIdCounterRepeats) {
  reset_request_id_counter();
  const std::string a = generate_request_id();
  reset_request_id_counter();
  EXPECT_EQ(generate_request_id(), a);
}

TEST(Message, StatusText) {
  EXPECT_EQ(status_text(200), "OK");
  EXPECT_EQ(status_text(503), "Service Unavailable");
  EXPECT_EQ(status_text(418), "Unknown");
  EXPECT_TRUE(HttpResponse{204}.ok());
  EXPECT_FALSE(HttpResponse{500}.ok());
}

TEST(Codec, SerializeRequestBasics) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/submit";
  req.headers.set("host", "svc");
  req.body = "hello";
  const std::string wire = serialize_request(req);
  EXPECT_EQ(wire.rfind("POST /submit HTTP/1.1\r\n", 0), 0u);
  EXPECT_NE(wire.find("host: svc\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(Codec, SerializeResponseBasics) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "nope";
  const std::string wire = serialize_response(resp);
  EXPECT_EQ(wire.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(wire.find("content-length: 4\r\n"), std::string::npos);
}

TEST(Codec, ContentLengthAlwaysAccurate) {
  HttpRequest req;
  req.headers.set("content-length", "999");  // stale; must be replaced
  req.body = "abc";
  const std::string wire = serialize_request(req);
  EXPECT_NE(wire.find("content-length: 3\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

HttpRequest parse_one_request(const std::string& wire) {
  HttpParser parser(ParserKind::kRequest);
  HttpRequest out;
  parser.set_on_request([&](HttpRequest r) { out = std::move(r); });
  EXPECT_TRUE(parser.feed(wire));
  EXPECT_EQ(parser.messages_parsed(), 1u);
  return out;
}

TEST(Codec, RequestRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.path = "/product/7";
  req.headers.set("host", "frontend");
  req.headers.set("x-mesh-priority", "high");
  req.body = "payload-bytes";
  const HttpRequest parsed = parse_one_request(serialize_request(req));
  EXPECT_EQ(parsed.method, "GET");
  EXPECT_EQ(parsed.path, "/product/7");
  EXPECT_EQ(parsed.headers.get_or("host", ""), "frontend");
  EXPECT_EQ(parsed.headers.get_or("x-mesh-priority", ""), "high");
  EXPECT_EQ(parsed.body, "payload-bytes");
}

TEST(Codec, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 503;
  resp.headers.set("x-served-by", "sidecar");
  resp.body = std::string(10000, 'z');
  HttpParser parser(ParserKind::kResponse);
  HttpResponse out;
  parser.set_on_response([&](HttpResponse r) { out = std::move(r); });
  EXPECT_TRUE(parser.feed(serialize_response(resp)));
  EXPECT_EQ(out.status, 503);
  EXPECT_EQ(out.headers.get_or("x-served-by", ""), "sidecar");
  EXPECT_EQ(out.body, resp.body);
}

TEST(Codec, EmptyBodyRoundTrip) {
  HttpRequest req;
  const HttpRequest parsed = parse_one_request(serialize_request(req));
  EXPECT_EQ(parsed.body, "");
}

// Property: parsing is chunking-invariant — any split of the wire bytes
// produces the same messages.
class ChunkedFeedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkedFeedTest, ByteChunksParseIdentically) {
  const std::size_t chunk = GetParam();
  HttpRequest req;
  req.method = "PUT";
  req.path = "/a/b";
  req.headers.set("host", "x");
  req.body = std::string(777, 'q');
  const std::string wire = serialize_request(req);

  HttpParser parser(ParserKind::kRequest);
  std::vector<HttpRequest> messages;
  parser.set_on_request([&](HttpRequest r) { messages.push_back(std::move(r)); });
  for (std::size_t i = 0; i < wire.size(); i += chunk) {
    ASSERT_TRUE(parser.feed(std::string_view(wire).substr(
        i, std::min(chunk, wire.size() - i))));
  }
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].body, req.body);
  EXPECT_EQ(messages[0].path, "/a/b");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkedFeedTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024, 10000));

TEST(Codec, PipelinedMessagesInOneChunk) {
  HttpRequest a, b;
  a.path = "/first";
  a.body = "AAA";
  b.path = "/second";
  b.body = "BBBBBB";
  const std::string wire = serialize_request(a) + serialize_request(b);
  HttpParser parser(ParserKind::kRequest);
  std::vector<HttpRequest> messages;
  parser.set_on_request([&](HttpRequest r) { messages.push_back(std::move(r)); });
  ASSERT_TRUE(parser.feed(wire));
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].path, "/first");
  EXPECT_EQ(messages[0].body, "AAA");
  EXPECT_EQ(messages[1].path, "/second");
  EXPECT_EQ(messages[1].body, "BBBBBB");
}

TEST(Codec, ManyPipelinedMessages) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    HttpRequest r;
    r.path = "/n/" + std::to_string(i);
    r.body = std::string(static_cast<std::size_t>(i), 'x');
    wire += serialize_request(r);
  }
  HttpParser parser(ParserKind::kRequest);
  int count = 0;
  parser.set_on_request([&](HttpRequest) { ++count; });
  ASSERT_TRUE(parser.feed(wire));
  EXPECT_EQ(count, 50);
}

TEST(Codec, BadStartLineSetsError) {
  HttpParser parser(ParserKind::kRequest);
  EXPECT_FALSE(parser.feed("NOT-HTTP\r\n\r\n"));
  EXPECT_TRUE(parser.has_error());
  EXPECT_EQ(parser.error(), ParserError::kBadStartLine);
}

TEST(Codec, BadResponseStatusSetsError) {
  HttpParser parser(ParserKind::kResponse);
  EXPECT_FALSE(parser.feed("HTTP/1.1 9999 Weird\r\n\r\n"));
  EXPECT_EQ(parser.error(), ParserError::kBadStartLine);
}

TEST(Codec, HeaderWithoutColonSetsError) {
  HttpParser parser(ParserKind::kRequest);
  EXPECT_FALSE(parser.feed("GET / HTTP/1.1\r\nbad header line\r\n\r\n"));
  EXPECT_EQ(parser.error(), ParserError::kBadHeader);
}

TEST(Codec, BadContentLengthSetsError) {
  HttpParser parser(ParserKind::kRequest);
  EXPECT_FALSE(
      parser.feed("GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"));
  EXPECT_EQ(parser.error(), ParserError::kBadContentLength);
}

TEST(Codec, OversizedHeadSetsError) {
  HttpParser parser(ParserKind::kRequest);
  std::string huge = "GET / HTTP/1.1\r\n";
  huge.append(HttpParser::kMaxHeadBytes + 1024, 'h');  // no terminator
  EXPECT_FALSE(parser.feed(huge));
  EXPECT_EQ(parser.error(), ParserError::kHeadTooLarge);
}

TEST(Codec, ErrorStateIgnoresFurtherInput) {
  HttpParser parser(ParserKind::kRequest);
  EXPECT_FALSE(parser.feed("garbage\r\n\r\n"));
  EXPECT_FALSE(parser.feed("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(parser.messages_parsed(), 0u);
}

TEST(Codec, ResetRecoversFromError) {
  HttpParser parser(ParserKind::kRequest);
  int count = 0;
  parser.set_on_request([&](HttpRequest) { ++count; });
  EXPECT_FALSE(parser.feed("garbage\r\n\r\n"));
  parser.reset();
  EXPECT_FALSE(parser.has_error());
  EXPECT_TRUE(parser.feed("GET / HTTP/1.1\r\ncontent-length: 0\r\n\r\n"));
  EXPECT_EQ(count, 1);
}

TEST(Codec, HeaderValuesAreTrimmed) {
  HttpParser parser(ParserKind::kRequest);
  HttpRequest out;
  parser.set_on_request([&](HttpRequest r) { out = std::move(r); });
  ASSERT_TRUE(parser.feed("GET / HTTP/1.1\r\nhost:   spaced   \r\n\r\n"));
  EXPECT_EQ(out.headers.get_or("host", ""), "spaced");
}

TEST(Codec, LargeBinaryBodySurvives) {
  HttpResponse resp;
  resp.body.resize(2 * 1024 * 1024);
  for (std::size_t i = 0; i < resp.body.size(); ++i) {
    resp.body[i] = static_cast<char>(i * 31 + 7);
  }
  HttpParser parser(ParserKind::kResponse);
  HttpResponse out;
  parser.set_on_response([&](HttpResponse r) { out = std::move(r); });
  ASSERT_TRUE(parser.feed(serialize_response(resp)));
  EXPECT_EQ(out.body, resp.body);
}

// ----- Randomized round-trip fuzz: decode(encode(m)) == m for arbitrary
// messages, under arbitrary wire chunking and pipelining. -----

// Random trimmed header value: the parser strips surrounding whitespace,
// so values are generated with none (interior spaces are fair game).
std::string random_header_value(sim::RngStream& rng) {
  const std::size_t len = rng.uniform_int(0, 24);
  std::string value(len, '?');
  for (std::size_t i = 0; i < len; ++i) {
    const bool interior = i != 0 && i + 1 != len;
    // Printable ASCII minus CR/LF; spaces only in the interior.
    do {
      value[i] = static_cast<char>(rng.uniform_int(interior ? 0x20 : 0x21,
                                                   0x7e));
    } while (value[i] == ' ' && !interior);
  }
  return value;
}

// Random header name: lowercase (the parser canonicalizes to lowercase,
// so generating lowercase keeps equality exact), never content-length
// (the serializer owns that one).
std::string random_header_name(sim::RngStream& rng) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-";
  std::string name;
  do {
    const std::size_t len = rng.uniform_int(1, 16);
    name.assign(len, '?');
    for (std::size_t i = 0; i < len; ++i) {
      name[i] = kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 2)];
    }
  } while (name == headers::kContentLength);
  return name;
}

void fill_random_headers(HeaderMap& map, sim::RngStream& rng) {
  static constexpr headers::Id kWellKnown[] = {
      headers::Id::kHost,        headers::Id::kRequestId,
      headers::Id::kMeshPriority, headers::Id::kTraceId,
      headers::Id::kSpanId,      headers::Id::kParentSpanId,
      headers::Id::kRetryAttempt, headers::Id::kMeshSource,
      headers::Id::kDeadlineMs,  headers::Id::kShedReason,
  };
  const std::size_t count = rng.uniform_int(0, 8);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.bernoulli(0.5)) {
      // Interned fast path — including duplicates via add().
      const headers::Id id =
          kWellKnown[rng.uniform_int(0, std::size(kWellKnown) - 1)];
      map.add(headers::name_of(id), random_header_value(rng));
    } else {
      map.add(random_header_name(rng), random_header_value(rng));
    }
  }
}

// Body size classes: empty / tiny / medium / bulk, arbitrary bytes.
std::string random_body(sim::RngStream& rng) {
  std::size_t size = 0;
  switch (rng.uniform_int(0, 3)) {
    case 0:
      size = 0;
      break;
    case 1:
      size = rng.uniform_int(1, 8);
      break;
    case 2:
      size = rng.uniform_int(100, 1000);
      break;
    default:
      size = rng.uniform_int(20000, 60000);
      break;
  }
  std::string body(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    body[i] = static_cast<char>(rng.uniform_int(0, 255));
  }
  return body;
}

HttpRequest random_request(sim::RngStream& rng) {
  static constexpr std::string_view kMethods[] = {"GET", "POST", "PUT",
                                                  "DELETE", "PATCH"};
  HttpRequest req;
  req.method = kMethods[rng.uniform_int(0, std::size(kMethods) - 1)];
  req.path = "/";
  for (std::uint64_t seg = rng.uniform_int(0, 3); seg > 0; --seg) {
    if (req.path.back() != '/') req.path += '/';
    for (std::uint64_t i = rng.uniform_int(1, 8); i > 0; --i) {
      req.path += static_cast<char>('a' + rng.uniform_int(0, 25));
    }
  }
  fill_random_headers(req.headers, rng);
  req.body = random_body(rng);
  return req;
}

HttpResponse random_response(sim::RngStream& rng) {
  HttpResponse resp;
  resp.status = static_cast<int>(rng.uniform_int(100, 599));
  fill_random_headers(resp.headers, rng);
  resp.body = random_body(rng);
  return resp;
}

// Feeds `wire` to the parser in random-size chunks.
template <typename Parser>
void feed_in_random_chunks(Parser& parser, const std::string& wire,
                           sim::RngStream& rng) {
  std::size_t offset = 0;
  while (offset < wire.size()) {
    // Mix single bytes, small slivers, and big gulps so chunk edges land
    // in every parser state (start line, header line, CRLF, body).
    std::size_t chunk = 0;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        chunk = 1;
        break;
      case 1:
        chunk = rng.uniform_int(2, 40);
        break;
      default:
        chunk = rng.uniform_int(41, 30000);
        break;
    }
    chunk = std::min(chunk, wire.size() - offset);
    ASSERT_TRUE(parser.feed(std::string_view(wire).substr(offset, chunk)));
    offset += chunk;
  }
}

// The serializer owns content-length (rewrites it from the body), so the
// round-trip comparison normalizes it away on both sides.
HeaderMap without_content_length(const HeaderMap& map) {
  HeaderMap out = map;
  out.remove(headers::Id::kContentLength);
  return out;
}

TEST(CodecFuzz, RandomRequestsRoundTripUnderRandomChunking) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::RngStream rng(seed, "http-fuzz-request");
    std::vector<HttpRequest> originals;
    std::string wire;
    for (std::uint64_t i = rng.uniform_int(1, 3); i > 0; --i) {
      originals.push_back(random_request(rng));
      wire += serialize_request(originals.back());
    }
    HttpParser parser(ParserKind::kRequest);
    std::vector<HttpRequest> parsed;
    parser.set_on_request(
        [&](HttpRequest r) { parsed.push_back(std::move(r)); });
    feed_in_random_chunks(parser, wire, rng);
    ASSERT_EQ(parsed.size(), originals.size());
    EXPECT_EQ(parser.buffered_bytes(), 0u);
    for (std::size_t i = 0; i < originals.size(); ++i) {
      EXPECT_EQ(parsed[i].method, originals[i].method);
      EXPECT_EQ(parsed[i].path, originals[i].path);
      EXPECT_EQ(parsed[i].body, originals[i].body);
      EXPECT_EQ(without_content_length(parsed[i].headers),
                without_content_length(originals[i].headers));
    }
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
}

TEST(CodecFuzz, RandomResponsesRoundTripUnderRandomChunking) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::RngStream rng(seed, "http-fuzz-response");
    std::vector<HttpResponse> originals;
    std::string wire;
    for (std::uint64_t i = rng.uniform_int(1, 3); i > 0; --i) {
      originals.push_back(random_response(rng));
      wire += serialize_response(originals.back());
    }
    HttpParser parser(ParserKind::kResponse);
    std::vector<HttpResponse> parsed;
    parser.set_on_response(
        [&](HttpResponse r) { parsed.push_back(std::move(r)); });
    feed_in_random_chunks(parser, wire, rng);
    ASSERT_EQ(parsed.size(), originals.size());
    EXPECT_EQ(parser.buffered_bytes(), 0u);
    for (std::size_t i = 0; i < originals.size(); ++i) {
      EXPECT_EQ(parsed[i].status, originals[i].status);
      EXPECT_EQ(parsed[i].body, originals[i].body);
      EXPECT_EQ(without_content_length(parsed[i].headers),
                without_content_length(originals[i].headers));
    }
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace meshnet::http
