// Tests for the mesh data plane (sidecar, pools, balancers, breakers) and
// control plane (config push, discovery, certificates, telemetry).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "app/microservice.h"
#include "mesh/builtin_filters.h"
#include "mesh/circuit_breaker.h"
#include "mesh/control_plane.h"
#include "mesh/filter.h"
#include "mesh/http_client.h"
#include "mesh/load_balancer.h"
#include "mesh/sidecar.h"
#include "mesh/telemetry.h"
#include "mesh/tracing.h"
#include "sim/simulator.h"

namespace meshnet::mesh {
namespace {

// ---------------------------------------------------------- tracing --

TEST(Tracing, RootSpanGetsFreshTraceId) {
  Tracer tracer;
  const Span span = tracer.start_span("svc", "op", TraceContext{}, 100);
  EXPECT_FALSE(span.trace_id.empty());
  EXPECT_TRUE(span.parent_span_id.empty());
  EXPECT_EQ(span.start, 100);
}

TEST(Tracing, ChildInheritsTraceId) {
  Tracer tracer;
  const Span parent = tracer.start_span("a", "op", TraceContext{}, 0);
  TraceContext ctx{parent.trace_id, parent.span_id};
  const Span child = tracer.start_span("b", "op", ctx, 1);
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
  EXPECT_NE(child.span_id, parent.span_id);
}

TEST(Tracing, ContextHeaderRoundTrip) {
  TraceContext ctx{"trace-1", "span-9"};
  http::HeaderMap headers;
  ctx.inject(headers, "span-8");
  const TraceContext out = TraceContext::extract(headers);
  EXPECT_EQ(out.trace_id, "trace-1");
  EXPECT_EQ(out.span_id, "span-9");
  EXPECT_EQ(headers.get_or(http::headers::kParentSpanId, ""), "span-8");
}

TEST(Tracing, FinishRecordsAndFiltersByTrace) {
  Tracer tracer;
  Span a = tracer.start_span("s", "op-a", TraceContext{}, 0);
  const std::string trace_id = a.trace_id;
  Span b = tracer.start_span("s", "op-b",
                             TraceContext{a.trace_id, a.span_id}, 5);
  tracer.finish_span(std::move(b), 10);
  tracer.finish_span(std::move(a), 20);
  Span other = tracer.start_span("s", "op-c", TraceContext{}, 0);
  tracer.finish_span(std::move(other), 1);
  EXPECT_EQ(tracer.span_count(), 3u);
  const auto spans = tracer.trace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->operation, "op-a");  // sorted by start
  EXPECT_EQ(spans[1]->operation, "op-b");
}

TEST(Tracing, RetentionBoundsMemory) {
  Tracer tracer;
  tracer.set_retention(10);
  for (int i = 0; i < 50; ++i) {
    tracer.finish_span(tracer.start_span("s", "op", TraceContext{}, i), i);
  }
  EXPECT_EQ(tracer.span_count(), 10u);
  tracer.set_retention(0);
  tracer.finish_span(tracer.start_span("s", "op", TraceContext{}, 0), 0);
  EXPECT_EQ(tracer.span_count(), 10u);  // collection disabled
}

// ------------------------------------------------------ filter chain --

class RecordingFilter : public HttpFilter {
 public:
  RecordingFilter(std::string tag, std::vector<std::string>* log,
                  FilterStatus status = FilterStatus::kContinue)
      : tag_(std::move(tag)), log_(log), status_(status) {}
  std::string name() const override { return tag_; }
  FilterStatus on_request(RequestContext&) override {
    log_->push_back("req:" + tag_);
    return status_;
  }
  void on_response(RequestContext&, http::HttpResponse&) override {
    log_->push_back("resp:" + tag_);
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
  FilterStatus status_;
};

TEST(FilterChain, RequestOrderAndResponseReversed) {
  std::vector<std::string> log;
  FilterChain chain;
  chain.append(std::make_shared<RecordingFilter>("a", &log));
  chain.append(std::make_shared<RecordingFilter>("b", &log));
  RequestContext ctx;
  EXPECT_EQ(chain.run_request(ctx), ChainResult::kContinue);
  http::HttpResponse response;
  chain.run_response(ctx, response);
  EXPECT_EQ(log, (std::vector<std::string>{"req:a", "req:b", "resp:b",
                                           "resp:a"}));
}

TEST(FilterChain, StopIterationShortCircuits) {
  std::vector<std::string> log;
  FilterChain chain;
  chain.append(std::make_shared<RecordingFilter>(
      "gate", &log, FilterStatus::kStopIteration));
  chain.append(std::make_shared<RecordingFilter>("never", &log));
  RequestContext ctx;
  EXPECT_EQ(chain.run_request(ctx), ChainResult::kStopped);
  EXPECT_EQ(log, std::vector<std::string>{"req:gate"});
}

TEST(FilterChain, Names) {
  FilterChain chain;
  std::vector<std::string> log;
  chain.append(std::make_shared<RecordingFilter>("x", &log));
  EXPECT_EQ(chain.filter_names(), std::vector<std::string>{"x"});
  EXPECT_EQ(chain.size(), 1u);
}

TEST(TrafficClassNames, AllNamed) {
  EXPECT_EQ(traffic_class_name(TrafficClass::kDefault), "default");
  EXPECT_EQ(traffic_class_name(TrafficClass::kLatencySensitive),
            "latency-sensitive");
  EXPECT_EQ(traffic_class_name(TrafficClass::kScavenger), "scavenger");
}

// ---------------------------------------------------- load balancers --

std::vector<cluster::Endpoint> three_endpoints() {
  return {{"p1", 1, 80, {{"weight", "1"}}},
          {"p2", 2, 80, {{"weight", "2"}}},
          {"p3", 3, 80, {{"weight", "7"}}}};
}

std::vector<const cluster::Endpoint*> pointers(
    const std::vector<cluster::Endpoint>& endpoints) {
  std::vector<const cluster::Endpoint*> out;
  for (const auto& ep : endpoints) out.push_back(&ep);
  return out;
}

TEST(LoadBalancer, RoundRobinCycles) {
  const auto endpoints = three_endpoints();
  RoundRobinBalancer lb;
  LbContext ctx;
  const auto c = pointers(endpoints);
  EXPECT_EQ(lb.pick(c, ctx)->pod_name, "p1");
  EXPECT_EQ(lb.pick(c, ctx)->pod_name, "p2");
  EXPECT_EQ(lb.pick(c, ctx)->pod_name, "p3");
  EXPECT_EQ(lb.pick(c, ctx)->pod_name, "p1");
}

TEST(LoadBalancer, EmptyCandidatesYieldNull) {
  RoundRobinBalancer rr;
  RandomBalancer random(1);
  LeastRequestBalancer least(1);
  WeightedRoundRobinBalancer wrr;
  LbContext ctx;
  const std::vector<const cluster::Endpoint*> empty;
  EXPECT_EQ(rr.pick(empty, ctx), nullptr);
  EXPECT_EQ(random.pick(empty, ctx), nullptr);
  EXPECT_EQ(least.pick(empty, ctx), nullptr);
  EXPECT_EQ(wrr.pick(empty, ctx), nullptr);
}

TEST(LoadBalancer, RandomCoversAllEndpoints) {
  const auto endpoints = three_endpoints();
  RandomBalancer lb(7);
  LbContext ctx;
  const auto c = pointers(endpoints);
  std::map<std::string, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[lb.pick(c, ctx)->pod_name];
  for (const auto& [name, count] : counts) {
    EXPECT_NEAR(count, 1000, 150) << name;
  }
}

TEST(LoadBalancer, LeastRequestPrefersIdle) {
  const auto endpoints = three_endpoints();
  LeastRequestBalancer lb(7);
  LbContext ctx;
  ctx.active_requests = [](const cluster::Endpoint& ep) -> std::uint64_t {
    return ep.pod_name == "p2" ? 0 : 100;  // p2 is idle
  };
  const auto c = pointers(endpoints);
  int p2 = 0;
  for (int i = 0; i < 1000; ++i) {
    if (lb.pick(c, ctx)->pod_name == "p2") ++p2;
  }
  // Power-of-two-choices picks the idle endpoint whenever sampled (~2/3
  // of rounds with 3 candidates).
  EXPECT_GT(p2, 500);
}

TEST(LoadBalancer, WeightedRoundRobinMatchesWeights) {
  const auto endpoints = three_endpoints();  // weights 1,2,7
  WeightedRoundRobinBalancer lb;
  LbContext ctx;
  const auto c = pointers(endpoints);
  std::map<std::string, int> counts;
  for (int i = 0; i < 1000; ++i) ++counts[lb.pick(c, ctx)->pod_name];
  EXPECT_EQ(counts["p1"], 100);
  EXPECT_EQ(counts["p2"], 200);
  EXPECT_EQ(counts["p3"], 700);
}

TEST(LoadBalancer, WrrSmoothness) {
  // With weights 1:1, WRR must alternate, never burst.
  std::vector<cluster::Endpoint> endpoints = {{"a", 1, 80, {}},
                                              {"b", 2, 80, {}}};
  WeightedRoundRobinBalancer lb;
  LbContext ctx;
  const auto c = pointers(endpoints);
  std::string last;
  for (int i = 0; i < 10; ++i) {
    const std::string now = lb.pick(c, ctx)->pod_name;
    if (!last.empty()) EXPECT_NE(now, last);
    last = now;
  }
}

TEST(LoadBalancer, FactoryNames) {
  EXPECT_EQ(make_balancer(LbPolicy::kRoundRobin, 1)->name(), "round-robin");
  EXPECT_EQ(make_balancer(LbPolicy::kRandom, 1)->name(), "random");
  EXPECT_EQ(make_balancer(LbPolicy::kLeastRequest, 1)->name(),
            "least-request");
  EXPECT_EQ(make_balancer(LbPolicy::kWeightedRoundRobin, 1)->name(),
            "weighted-round-robin");
  EXPECT_EQ(lb_policy_name(LbPolicy::kLeastRequest), "least-request");
}

// --------------------------------------------------- circuit breaker --

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker cb({3, sim::milliseconds(100), 1});
  EXPECT_TRUE(cb.allow_request(0));
  cb.on_failure(0);
  cb.on_failure(0);
  EXPECT_EQ(cb.state(), CircuitState::kClosed);
  cb.on_failure(0);
  EXPECT_EQ(cb.state(), CircuitState::kOpen);
  EXPECT_FALSE(cb.allow_request(1));
  EXPECT_EQ(cb.times_opened(), 1u);
}

TEST(CircuitBreaker, SuccessResetsFailureCount) {
  CircuitBreaker cb({3, sim::milliseconds(100), 1});
  cb.on_failure(0);
  cb.on_failure(0);
  cb.on_success(0);
  cb.on_failure(0);
  cb.on_failure(0);
  EXPECT_EQ(cb.state(), CircuitState::kClosed);
}

TEST(CircuitBreaker, HalfOpenAdmitsLimitedProbes) {
  CircuitBreaker cb({1, sim::milliseconds(100), 2});
  cb.on_failure(0);
  EXPECT_EQ(cb.state(), CircuitState::kOpen);
  EXPECT_FALSE(cb.allow_request(50));
  EXPECT_TRUE(cb.allow_request(sim::milliseconds(100)));  // probe 1
  EXPECT_EQ(cb.state(), CircuitState::kHalfOpen);
  EXPECT_TRUE(cb.allow_request(sim::milliseconds(100)));  // probe 2
  EXPECT_FALSE(cb.allow_request(sim::milliseconds(100)));
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker cb({1, sim::milliseconds(100), 1});
  cb.on_failure(0);
  EXPECT_TRUE(cb.allow_request(sim::milliseconds(200)));
  cb.on_success(sim::milliseconds(201));
  EXPECT_EQ(cb.state(), CircuitState::kClosed);
  EXPECT_TRUE(cb.allow_request(sim::milliseconds(202)));
}

TEST(CircuitBreaker, ProbeFailureReopens) {
  CircuitBreaker cb({1, sim::milliseconds(100), 1});
  cb.on_failure(0);
  EXPECT_TRUE(cb.allow_request(sim::milliseconds(200)));
  cb.on_failure(sim::milliseconds(201));
  EXPECT_EQ(cb.state(), CircuitState::kOpen);
  EXPECT_FALSE(cb.allow_request(sim::milliseconds(250)));
  EXPECT_EQ(cb.times_opened(), 2u);
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
  CircuitBreaker cb({0, sim::milliseconds(100), 1});
  for (int i = 0; i < 100; ++i) cb.on_failure(i);
  EXPECT_TRUE(cb.allow_request(1000));
  EXPECT_EQ(cb.state(), CircuitState::kClosed);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_EQ(circuit_state_name(CircuitState::kClosed), "closed");
  EXPECT_EQ(circuit_state_name(CircuitState::kOpen), "open");
  EXPECT_EQ(circuit_state_name(CircuitState::kHalfOpen), "half-open");
}

// -------------------------------------------------------- telemetry --

TEST(Telemetry, AggregatesPerEdge) {
  TelemetrySink sink;
  sink.record_request({"a", "b", 200, sim::milliseconds(5), 0});
  sink.record_request({"a", "b", 503, sim::milliseconds(9), 2});
  sink.record_request({"a", "c", 200, sim::milliseconds(1), 0});
  const auto ab = sink.edge("a", "b");
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(ab->requests, 2u);
  EXPECT_EQ(ab->failures, 1u);
  EXPECT_EQ(ab->retries, 2u);
  EXPECT_EQ(ab->latency.count(), 2u);
  EXPECT_EQ(sink.total_requests(), 3u);
  EXPECT_EQ(sink.total_failures(), 1u);
  EXPECT_EQ(sink.edges().size(), 2u);
  EXPECT_FALSE(sink.edge("x", "y").has_value());
}

TEST(Telemetry, TransportErrorsCountAsFailures) {
  TelemetrySink sink;
  sink.record_request({"a", "b", 0, 0, 0});  // status 0 = no response
  EXPECT_EQ(sink.edge("a", "b")->failures, 1u);
}

TEST(Telemetry, Clear) {
  TelemetrySink sink;
  sink.record_request({"a", "b", 200, 1, 0});
  sink.clear();
  EXPECT_EQ(sink.total_requests(), 0u);
  EXPECT_TRUE(sink.edges().empty());
}

TEST(Telemetry, LatencyLabelledByPriorityClass) {
  TelemetrySink sink;
  RequestSample sample{"a", "b", 200, sim::milliseconds(2), 0,
                       TrafficClass::kLatencySensitive};
  sink.record_request(sample);
  sample.priority = TrafficClass::kScavenger;
  sink.record_request(sample);
  // The per-class series are distinct; edge() merges them back.
  const obs::MetricsSnapshot snap = sink.registry().snapshot();
  EXPECT_NE(snap.find("mesh_request_latency_ns",
                      {{"source", "a"},
                       {"upstream", "b"},
                       {"class", "latency-sensitive"}}),
            nullptr);
  EXPECT_NE(snap.find("mesh_request_latency_ns",
                      {{"source", "a"},
                       {"upstream", "b"},
                       {"class", "scavenger"}}),
            nullptr);
  EXPECT_EQ(sink.edge("a", "b")->latency.count(), 2u);
}

// ---------------------------------------------- meshed test fixture --

class MeshFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    http::reset_request_id_counter();
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster_->add_node("n1");
  }

  /// Builds client pod (meshed), N server replicas, control plane, apps.
  void build(int replicas = 1, MeshPolicies policies = {},
             std::function<app::HandlerResult(const http::HttpRequest&,
                                              int replica)>
                 behavior = nullptr) {
    client_pod_ = &cluster_->add_pod("n1", "client", "client", 0);
    for (int i = 1; i <= replicas; ++i) {
      server_pods_.push_back(&cluster_->add_pod(
          "n1", "server-v" + std::to_string(i), "server", 8080));
    }
    control_plane_ =
        std::make_unique<ControlPlane>(sim_, *cluster_, std::move(policies));
    client_sidecar_ = &control_plane_->inject_sidecar(*client_pod_, {});
    for (auto* pod : server_pods_) {
      server_sidecars_.push_back(&control_plane_->inject_sidecar(*pod, {}));
    }
    control_plane_->start();
    for (std::size_t i = 0; i < server_pods_.size(); ++i) {
      const int replica = static_cast<int>(i) + 1;
      apps_.push_back(std::make_unique<app::Microservice>(
          sim_, *server_pods_[i],
          [behavior, replica](const http::HttpRequest& request) {
            if (behavior) return behavior(request, replica);
            app::HandlerResult plan;
            plan.response_bytes = 64;
            return plan;
          }));
    }
    HttpClientPool::Options options;
    options.max_connections = 64;
    client_ = std::make_unique<HttpClientPool>(
        sim_, client_pod_->transport(),
        net::SocketAddress{client_pod_->ip(), 15001}, options);
  }

  /// Sends one GET via the mesh and runs until it completes.
  std::optional<http::HttpResponse> get(const std::string& host,
                                        const std::string& path,
                                        sim::Duration timeout = sim::seconds(20)) {
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, host);
    std::optional<http::HttpResponse> result;
    bool done = false;
    client_->request(std::move(request),
                     [&](std::optional<http::HttpResponse> response,
                         const std::string&) {
                       result = std::move(response);
                       done = true;
                     });
    const sim::Time deadline = sim_.now() + timeout;
    while (!done && sim_.now() < deadline) {
      sim_.run_until(sim_.now() + sim::milliseconds(10));
    }
    return result;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<ControlPlane> control_plane_;
  cluster::Pod* client_pod_ = nullptr;
  std::vector<cluster::Pod*> server_pods_;
  Sidecar* client_sidecar_ = nullptr;
  std::vector<Sidecar*> server_sidecars_;
  std::vector<std::unique_ptr<app::Microservice>> apps_;
  std::unique_ptr<HttpClientPool> client_;
};

TEST_F(MeshFixture, EndToEndRequestThroughMesh) {
  build();
  const auto response = get("server", "/hello");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body.size(), 64u);
  EXPECT_EQ(client_sidecar_->stats().outbound_requests, 1u);
  EXPECT_EQ(server_sidecars_[0]->stats().inbound_requests, 1u);
}

TEST_F(MeshFixture, UnknownHostGets404) {
  build();
  const auto response = get("ghost-service", "/x");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

TEST_F(MeshFixture, TracingProducesLinkedSpans) {
  build();
  ASSERT_TRUE(get("server", "/traced").has_value());
  const auto& spans = control_plane_->tracer().spans();
  ASSERT_EQ(spans.size(), 2u);  // client outbound + server inbound
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST_F(MeshFixture, RequestIdAssignedWhenMissing) {
  build(1, {}, [](const http::HttpRequest& request, int) {
    app::HandlerResult plan;
    plan.response_bytes = request.request_id().empty() ? 1 : 2;
    return plan;
  });
  const auto response = get("server", "/id");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body.size(), 2u);  // app saw a request id
}

TEST_F(MeshFixture, TelemetryRecordsEdge) {
  build();
  get("server", "/a");
  get("server", "/b");
  const auto edge = control_plane_->telemetry().edge("client", "server");
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->requests, 2u);
  EXPECT_EQ(edge->failures, 0u);
}

TEST_F(MeshFixture, NoRouteResponseStillClosesSpan) {
  build();
  const auto response = get("nowhere", "/lost");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
  // The 404 short-circuits before any upstream attempt, but the outbound
  // span must still be finished — it used to leak (never exported).
  const auto& spans = control_plane_->tracer().spans();
  ASSERT_FALSE(spans.empty());
  bool found = false;
  for (const Span& span : spans) {
    if (span.service != "client") continue;
    found = true;
    EXPECT_GE(span.end, span.start);
    EXPECT_FALSE(span.error);  // 404 is a routing miss, not a mesh error
  }
  EXPECT_TRUE(found);
}

TEST_F(MeshFixture, DeadlineAbandonedRequestClosesSpanAsError) {
  MeshPolicies policies;
  policies.request_timeout = sim::milliseconds(200);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(5);  // far past the deadline
    return plan;
  });
  const auto response = get("server", "/slow");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 504);
  // The armed-deadline path must export the outbound span, flagged as an
  // error, with a duration pinned to the deadline (not the handler's 5s).
  bool found = false;
  for (const Span& span : control_plane_->tracer().spans()) {
    if (span.service != "client" || !span.error) continue;
    found = true;
    EXPECT_GE(span.duration(), sim::milliseconds(200));
    EXPECT_LT(span.duration(), sim::seconds(1));
  }
  EXPECT_TRUE(found);
}

TEST_F(MeshFixture, MtlsRequestSucceedsAndChargesCrypto) {
  MeshPolicies policies;
  policies.tls.enabled = true;
  build(1, policies);
  const auto response = get("server", "/secure");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  // Exactly one client->server hop handshakes, full (no prior ticket),
  // and both directions' app records pay AEAD.
  const obs::Counter* full =
      control_plane_->metrics().find_counter("tls_handshakes_full_total");
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->value(), 1u);
  const obs::Counter* enc =
      control_plane_->metrics().find_counter("tls_records_encrypted_total");
  ASSERT_NE(enc, nullptr);
  EXPECT_GE(enc->value(), 2u);
}

TEST_F(MeshFixture, HandshakeFailureClosesClientSpanAsError) {
  // Certs expire with rotation disabled, so every handshake attempt dies
  // before a single HTTP byte flows. The regression this pins: a request
  // that fails *during the handshake* must still open and close a client
  // span — as an error, through the finish_outbound funnel — instead of
  // leaking because no response parser ever ran.
  MeshPolicies policies;
  policies.tls.enabled = true;
  policies.certificate_lifetime = sim::seconds(1);
  policies.cp.cert_refresh_ahead = 0.0;  // no rotation: certs just lapse
  policies.tls.handshake_timeout = sim::milliseconds(200);
  build(1, policies);
  sim_.run_until(sim::seconds(2));  // past every cert's expiry
  const auto response = get("server", "/mtls");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_NE(response->body.find("tls handshake failed"), std::string::npos);
  // The handshake actually failed (and was counted), and the client span
  // was exported with an end time and the error flag.
  const obs::Counter* failures = control_plane_->metrics().find_counter(
      "tls_handshake_failures_total");
  ASSERT_NE(failures, nullptr);
  EXPECT_GE(failures->value(), 1u);
  bool found = false;
  for (const Span& span : control_plane_->tracer().spans()) {
    if (span.service != "client") continue;
    found = true;
    EXPECT_GE(span.end, span.start);
    EXPECT_TRUE(span.error);
  }
  EXPECT_TRUE(found);
}

TEST_F(MeshFixture, AccessLogCapturesProxiedRequests) {
  MeshPolicies policies;
  policies.access_log_sample_every = 1;  // keep everything
  build(1, policies);
  ASSERT_TRUE(get("server", "/a").has_value());
  ASSERT_TRUE(get("nowhere", "/missing").has_value());

  const obs::AccessLog& log =
      control_plane_->telemetry().access_log();
  ASSERT_GE(log.sampled(), 2u);
  bool saw_ok = false;
  bool saw_miss = false;
  for (const obs::AccessLogRecord& record : log.records()) {
    if (record.route == "/a" && record.status == 200) {
      saw_ok = true;
      EXPECT_EQ(record.source, "client");
      EXPECT_EQ(record.upstream_cluster, "server");
      EXPECT_EQ(record.upstream_endpoint, "server-v1");
      EXPECT_GT(record.latency, 0);
      EXPECT_GT(record.deadline_slack, 0);  // finished well before 15s
    }
    if (record.route == "/missing" && record.status == 404) {
      saw_miss = true;
      EXPECT_TRUE(record.upstream_cluster.empty());
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_miss);
}

TEST_F(MeshFixture, AuthorizationDeniesUnlistedSource) {
  MeshPolicies policies;
  policies.authorization["server"] = {"someone-else"};
  build(1, policies);
  const auto response = get("server", "/secret");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 403);
}

TEST_F(MeshFixture, AuthorizationAllowsListedSource) {
  MeshPolicies policies;
  policies.authorization["server"] = {"client"};
  build(1, policies);
  const auto response = get("server", "/ok");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
}

TEST_F(MeshFixture, RetryRecoversFrom5xx) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  int failures_left = 1;
  build(1, policies, [&failures_left](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    if (failures_left > 0) {
      --failures_left;
      plan.status = 503;
    }
    plan.response_bytes = 8;
    return plan;
  });
  const auto response = get("server", "/flaky");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 1u);
}

TEST_F(MeshFixture, RetriesExhaustTo5xx) {
  MeshPolicies policies;
  policies.retry.max_retries = 1;
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.status = 500;
    return plan;
  });
  const auto response = get("server", "/always-bad");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 500);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 1u);
  EXPECT_GE(client_sidecar_->stats().upstream_failures, 1u);
}

TEST_F(MeshFixture, PerTryTimeoutProduces504) {
  MeshPolicies policies;
  policies.retry.max_retries = 0;
  policies.retry.per_try_timeout = sim::milliseconds(50);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(30);  // never answers in time
    return plan;
  });
  const auto response = get("server", "/slow", sim::seconds(40));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);  // upstream failed: per-try timeout
}

TEST_F(MeshFixture, CircuitBreakerOpensOnRepeatedFailure) {
  MeshPolicies policies;
  policies.retry.max_retries = 0;
  policies.breaker.consecutive_failures = 3;
  policies.breaker.open_duration = sim::seconds(60);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.status = 500;
    return plan;
  });
  for (int i = 0; i < 3; ++i) get("server", "/bad");
  EXPECT_EQ(client_sidecar_->breaker_for("server", "server-v1").state(),
            CircuitState::kOpen);
  // With the only endpoint ejected, requests fail fast with 503.
  const auto response = get("server", "/next");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
}

TEST_F(MeshFixture, RoundRobinSpreadsAcrossReplicas) {
  build(2, {}, [](const http::HttpRequest&, int replica) {
    app::HandlerResult plan;
    plan.response_bytes = static_cast<std::size_t>(replica);
    return plan;
  });
  std::map<std::size_t, int> seen;
  for (int i = 0; i < 10; ++i) {
    const auto response = get("server", "/lb");
    ASSERT_TRUE(response.has_value());
    ++seen[response->body.size()];
  }
  EXPECT_EQ(seen[1], 5);
  EXPECT_EQ(seen[2], 5);
}

TEST_F(MeshFixture, SubsetRoutingSelectsLabelledReplica) {
  build(2);
  // Relabel endpoints: v1 high, v2 low, then re-push.
  auto& registry = cluster_->registry();
  registry.add_endpoint("server", {"server-v1", server_pods_[0]->ip(), 8080,
                                   {{"priority", "high"}}});
  registry.add_endpoint("server", {"server-v2", server_pods_[1]->ip(), 8080,
                                   {{"priority", "low"}}});
  control_plane_->push_config();
  // A filter that pins every request to the high subset.
  class PinFilter : public HttpFilter {
   public:
    std::string name() const override { return "pin"; }
    FilterStatus on_request(RequestContext& ctx) override {
      ctx.subset["priority"] = "high";
      return FilterStatus::kContinue;
    }
  };
  client_sidecar_->outbound_filters().append(std::make_shared<PinFilter>());
  for (int i = 0; i < 6; ++i) get("server", "/pinned");
  EXPECT_EQ(apps_[0]->requests_served(), 6u);
  EXPECT_EQ(apps_[1]->requests_served(), 0u);
}

TEST_F(MeshFixture, SubsetFallbackUsesAllEndpointsWhenNoMatch) {
  build(1);
  class PinFilter : public HttpFilter {
   public:
    std::string name() const override { return "pin"; }
    FilterStatus on_request(RequestContext& ctx) override {
      ctx.subset["priority"] = "nonexistent";
      return FilterStatus::kContinue;
    }
  };
  client_sidecar_->outbound_filters().append(std::make_shared<PinFilter>());
  const auto response = get("server", "/fallback");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
}

TEST_F(MeshFixture, RouteTableAliasesHost) {
  build();
  MeshPolicies& policies = control_plane_->policies();
  (void)policies;
  // Host "www.example.com" routes to cluster "server" via explicit route.
  SidecarConfig config = client_sidecar_->config();
  config.routes["www.example.com"] = "server";
  client_sidecar_->apply_config(config);
  const auto response = get("www.example.com", "/aliased");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
}

TEST_F(MeshFixture, ConfigPushPropagatesNewEndpoints) {
  build(1);
  // A new replica appears in the registry; the poller pushes it.
  cluster::Pod& new_pod = cluster_->add_pod("n1", "server-v9", "server", 8080);
  control_plane_->inject_sidecar(new_pod, {});
  apps_.push_back(std::make_unique<app::Microservice>(
      sim_, new_pod, [](const http::HttpRequest&) {
        app::HandlerResult plan;
        plan.response_bytes = 9;
        return plan;
      }));
  sim_.run_until(sim_.now() + sim::seconds(1));  // let the poll fire
  const auto spec =
      client_sidecar_->config().clusters.find("server")->second;
  EXPECT_EQ(spec.endpoints.size(), 2u);
}

TEST_F(MeshFixture, CertificatesAreIssuedAndValid) {
  build();
  const Certificate cert = control_plane_->issue_certificate("server");
  EXPECT_NE(cert.spiffe_id.find("server"), std::string::npos);
  EXPECT_TRUE(cert.valid_at(sim_.now()));
  EXPECT_FALSE(cert.valid_at(cert.expires_at));
  const Certificate cert2 = control_plane_->issue_certificate("server");
  EXPECT_GT(cert2.serial, cert.serial);
}

TEST_F(MeshFixture, SidecarForLookup) {
  build();
  EXPECT_EQ(control_plane_->sidecar_for("client"), client_sidecar_);
  EXPECT_EQ(control_plane_->sidecar_for("ghost"), nullptr);
}

TEST_F(MeshFixture, PoolReusesConnections) {
  build();
  for (int i = 0; i < 5; ++i) get("server", "/reuse");
  // The client app pool holds one connection to the sidecar, the sidecar
  // one upstream connection: far fewer than one per request.
  EXPECT_LE(client_pod_->transport().stats().connections_opened, 3u);
}

TEST_F(MeshFixture, ActiveRequestTrackingReturnsToZero) {
  build();
  get("server", "/done");
  EXPECT_EQ(client_sidecar_->active_requests_to("server-v1"), 0u);
}

// ------------------------------------------ breaker edge cases --------

TEST(CircuitBreakerEdge, ZeroThresholdDisablesBreaker) {
  CircuitBreaker breaker{CircuitBreakerConfig{0, sim::milliseconds(100), 1}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.allow_request(i));
    breaker.on_failure(i);
  }
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerEdge, HalfOpenAdmitsConfiguredConcurrentProbes) {
  CircuitBreaker breaker{CircuitBreakerConfig{2, sim::milliseconds(100), 2}};
  breaker.on_failure(0);
  breaker.on_failure(1);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);
  const sim::Time after = 1 + sim::milliseconds(100);
  // Cooldown elapsed: exactly half_open_probes concurrent probes admitted.
  EXPECT_TRUE(breaker.allow_request(after));
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  EXPECT_TRUE(breaker.allow_request(after));
  EXPECT_FALSE(breaker.allow_request(after));  // probe cap
  // One probe succeeding closes the circuit and resets probe accounting.
  breaker.on_success(after + 1);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_TRUE(breaker.allow_request(after + 2));
}

TEST(CircuitBreakerEdge, ProbeFailureReopensFromHalfOpen) {
  CircuitBreaker breaker{CircuitBreakerConfig{1, sim::milliseconds(50), 1}};
  breaker.on_failure(0);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);
  const sim::Time probe_at = sim::milliseconds(50);
  EXPECT_TRUE(breaker.allow_request(probe_at));
  ASSERT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.on_failure(probe_at + 1);
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The fresh open period starts at the probe failure, not the original
  // trip: still open just before the new cooldown expires.
  EXPECT_FALSE(breaker.allow_request(probe_at + sim::milliseconds(50)));
  EXPECT_TRUE(breaker.allow_request(probe_at + 1 + sim::milliseconds(50)));
}

TEST(CircuitBreakerEdge, TransitionHookSeesAllFourTransitions) {
  CircuitBreaker breaker{CircuitBreakerConfig{1, sim::milliseconds(10), 1}};
  std::vector<std::pair<CircuitState, CircuitState>> transitions;
  breaker.set_transition_hook(
      [&](CircuitState from, CircuitState to, sim::Time) {
        transitions.emplace_back(from, to);
      });
  breaker.on_failure(0);                              // closed -> open
  breaker.allow_request(sim::milliseconds(10));       // open -> half-open
  breaker.on_failure(sim::milliseconds(11));          // half-open -> open
  breaker.allow_request(sim::milliseconds(25));       // open -> half-open
  breaker.on_success(sim::milliseconds(26));          // half-open -> closed
  const std::vector<std::pair<CircuitState, CircuitState>> expected{
      {CircuitState::kClosed, CircuitState::kOpen},
      {CircuitState::kOpen, CircuitState::kHalfOpen},
      {CircuitState::kHalfOpen, CircuitState::kOpen},
      {CircuitState::kOpen, CircuitState::kHalfOpen},
      {CircuitState::kHalfOpen, CircuitState::kClosed},
  };
  EXPECT_EQ(transitions, expected);
}

// ------------------------------------------------- retry backoff ------

TEST(RetryBackoff, LinearWhenJitterDisabled) {
  RetryPolicy policy;
  policy.backoff_base = sim::milliseconds(2);
  policy.backoff_max = sim::milliseconds(5);
  policy.backoff_jitter = false;
  sim::RngStream rng(1, "test");
  EXPECT_EQ(next_retry_backoff(policy, 1, 0, rng), sim::milliseconds(2));
  EXPECT_EQ(next_retry_backoff(policy, 2, 0, rng), sim::milliseconds(4));
  // Linear growth clamps at the cap.
  EXPECT_EQ(next_retry_backoff(policy, 3, 0, rng), sim::milliseconds(5));
}

TEST(RetryBackoff, DecorrelatedJitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.backoff_base = sim::milliseconds(2);
  policy.backoff_max = sim::milliseconds(250);
  policy.backoff_jitter = true;
  sim::RngStream rng(7, "test");
  sim::Duration prev = 0;
  for (int i = 1; i <= 500; ++i) {
    const sim::Duration sleep = next_retry_backoff(policy, i, prev, rng);
    EXPECT_GE(sleep, policy.backoff_base);
    EXPECT_LE(sleep, policy.backoff_max);
    // Decorrelated jitter's upper envelope: 3x the previous sleep (with
    // prev floored at base), before the cap.
    const sim::Duration envelope =
        std::min<sim::Duration>(policy.backoff_max,
                                3 * std::max(prev, policy.backoff_base));
    EXPECT_LE(sleep, envelope);
    prev = sleep;
  }
}

TEST(RetryBackoff, DeterministicForSameSeed) {
  RetryPolicy policy;
  sim::RngStream rng_a(13, "same");
  sim::RngStream rng_b(13, "same");
  sim::Duration prev_a = 0;
  sim::Duration prev_b = 0;
  for (int i = 1; i <= 50; ++i) {
    prev_a = next_retry_backoff(policy, i, prev_a, rng_a);
    prev_b = next_retry_backoff(policy, i, prev_b, rng_b);
    EXPECT_EQ(prev_a, prev_b);
  }
}

// --------------------------------------------------- retry paths ------

TEST_F(MeshFixture, No5xxRetryWhenOnlyResetRetriesEnabled) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.retry.retry_on_5xx = false;
  policies.retry.retry_on_reset = true;
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.status = 503;
    return plan;
  });
  const auto response = get("server", "/bad");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 0u);
}

TEST_F(MeshFixture, NoResetRetryWhenOnly5xxRetriesEnabled) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.retry.retry_on_5xx = true;
  policies.retry.retry_on_reset = false;
  policies.retry.per_try_timeout = sim::milliseconds(50);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(30);  // forces a per-try timeout
    return plan;
  });
  const auto response = get("server", "/hang");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 0u);
  EXPECT_EQ(client_sidecar_->stats().timeouts, 1u);
}

TEST_F(MeshFixture, PerTryTimeoutFiresOnEveryAttempt) {
  MeshPolicies policies;
  policies.retry.max_retries = 1;
  policies.retry.per_try_timeout = sim::milliseconds(50);
  policies.retry.backoff_jitter = false;
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(30);
    return plan;
  });
  const auto response = get("server", "/hang-twice", sim::seconds(10));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 1u);
  EXPECT_EQ(client_sidecar_->stats().timeouts, 2u);  // original + retry
}

TEST_F(MeshFixture, RetryBudgetDeniesWhenFloorIsZero) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.retry.retry_budget = 0.5;
  policies.retry.retry_budget_min_concurrency = 0;
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.status = 503;
    return plan;
  });
  // A lone failing request has zero other in-flight traffic, so the
  // budget (0.5 x 0, floor 0) admits no retry at all.
  const auto response = get("server", "/budgeted");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 0u);
  EXPECT_GE(client_sidecar_->stats().retries_denied_by_budget, 1u);
}

TEST_F(MeshFixture, RetryBudgetFloorAdmitsRetries) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.retry.retry_budget = 0.5;
  policies.retry.retry_budget_min_concurrency = 3;
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.status = 503;
    return plan;
  });
  const auto response = get("server", "/budgeted");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 503);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 2u);
  EXPECT_EQ(client_sidecar_->stats().retries_denied_by_budget, 0u);
}

// ---------------------------------------------- health checking -------

TEST_F(MeshFixture, HealthProbesAnsweredBySidecarNotApp) {
  MeshPolicies policies;
  policies.health_check.enabled = true;
  policies.health_check.interval = sim::milliseconds(100);
  policies.health_check.timeout = sim::milliseconds(80);
  std::uint64_t app_saw_probe_path = 0;
  build(1, policies,
        [&](const http::HttpRequest& request, int) {
          if (request.path == std::string(kHealthCheckPath)) {
            ++app_saw_probe_path;
          }
          app::HandlerResult plan;
          plan.response_bytes = 4;
          return plan;
        });
  sim_.run_until(sim_.now() + sim::seconds(2));
  EXPECT_GT(server_sidecars_[0]->stats().health_probes_answered, 0u);
  EXPECT_EQ(app_saw_probe_path, 0u);
  ASSERT_NE(client_sidecar_->health_checker(), nullptr);
  EXPECT_GT(client_sidecar_->health_checker()->stats().probes_sent, 0u);
  EXPECT_EQ(client_sidecar_->health_checker()->stats().evictions, 0u);
  EXPECT_TRUE(client_sidecar_->health_checker()->healthy("server",
                                                         "server-v1"));
}

TEST_F(MeshFixture, HealthCheckerEvictsCrashedPodAndReadmitsOnRestart) {
  MeshPolicies policies;
  policies.health_check.enabled = true;
  policies.health_check.interval = sim::milliseconds(100);
  policies.health_check.timeout = sim::milliseconds(80);
  policies.health_check.unhealthy_threshold = 2;
  policies.health_check.healthy_threshold = 2;
  policies.retry.max_retries = 1;
  policies.retry.per_try_timeout = sim::milliseconds(200);
  build(2, policies);
  ASSERT_TRUE(get("server", "/warm").has_value());

  ASSERT_TRUE(cluster_->crash_pod("server-v1"));
  sim_.run_until(sim_.now() + sim::seconds(2));
  EXPECT_FALSE(
      client_sidecar_->health_checker()->healthy("server", "server-v1"));
  EXPECT_GE(client_sidecar_->health_checker()->stats().evictions, 1u);
  // With v1 evicted, traffic flows to v2 only — no failures, no hangs.
  const std::uint64_t served_before = apps_[1]->requests_served();
  for (int i = 0; i < 4; ++i) {
    const auto response = get("server", "/during-crash");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(apps_[1]->requests_served(), served_before + 4);

  ASSERT_TRUE(cluster_->restart_pod("server-v1"));
  sim_.run_until(sim_.now() + sim::seconds(2));
  EXPECT_TRUE(
      client_sidecar_->health_checker()->healthy("server", "server-v1"));
  EXPECT_GE(client_sidecar_->health_checker()->stats().readmissions, 1u);
  // Telemetry carries the eviction/readmission transitions.
  EXPECT_GE(control_plane_->telemetry().event_count(obs::EventKind::kHealth),
            2u);
}

// ------------------------------------- admission / overload control --

/// MeshFixture plus concurrent (non-blocking) request issue, so tests
/// can hold the server's admission slot busy while more arrivals land.
class AdmissionFixture : public MeshFixture {
 protected:
  struct Pending {
    std::optional<http::HttpResponse> response;
    bool done = false;
  };

  /// Admission config with the adaptive limit pinned (min == max), so
  /// the test controls exactly how many requests fit.
  static AdmissionConfig pinned_admission(std::uint32_t limit,
                                          std::size_t queue_capacity) {
    AdmissionConfig admission;
    admission.enabled = true;
    admission.queue_capacity = queue_capacity;
    admission.limit.initial_limit = limit;
    admission.limit.min_limit = limit;
    admission.limit.max_limit = limit;
    return admission;
  }

  void send(const std::string& host, const std::string& path, Pending* out,
            const std::string& priority = "") {
    http::HttpRequest request;
    request.path = path;
    request.headers.set(http::headers::kHost, host);
    if (!priority.empty()) {
      request.headers.set(http::headers::kMeshPriority, priority);
    }
    client_->request(std::move(request),
                     [out](std::optional<http::HttpResponse> response,
                           const std::string&) {
                       out->response = std::move(response);
                       out->done = true;
                     });
  }

  void run_for(sim::Duration duration) {
    sim_.run_until(sim_.now() + duration);
  }

  static bool is_shed_503(const Pending& pending) {
    return pending.done && pending.response.has_value() &&
           pending.response->status == 503 &&
           pending.response->headers.has(http::headers::Id::kShedReason);
  }
};

TEST_F(AdmissionFixture, ShedRespondsWith503AndMarkerHeader) {
  MeshPolicies policies;
  policies.admission = pinned_admission(1, 0);
  int invocations = 0;
  build(1, policies, [&invocations](const http::HttpRequest&, int) {
    ++invocations;
    app::HandlerResult plan;
    plan.processing_delay = sim::milliseconds(100);
    plan.response_bytes = 8;
    return plan;
  });

  Pending first;
  Pending second;
  send("server", "/a", &first);
  send("server", "/b", &second);
  run_for(sim::seconds(1));

  ASSERT_TRUE(first.done);
  ASSERT_TRUE(second.done);
  // One slot, no queue: the earlier arrival is served, the other is shed
  // with the marked 503 and never reaches the app.
  ASSERT_TRUE(first.response.has_value());
  EXPECT_EQ(first.response->status, 200);
  EXPECT_TRUE(is_shed_503(second));
  EXPECT_EQ(second.response->headers.get_or(http::headers::Id::kShedReason,
                                            ""),
            "queue-full");
  EXPECT_EQ(invocations, 1);

  const AdmissionController* admission =
      server_sidecars_[0]->admission_controller();
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->counters().accepted, 1u);
  EXPECT_EQ(admission->counters().completed, 1u);
  EXPECT_EQ(admission->counters().shed_queue_full, 1u);
}

TEST_F(AdmissionFixture, RetryStormSuppressedWhenUpstreamSheds) {
  MeshPolicies policies;
  policies.retry.max_retries = 3;  // would amplify 4x if sheds were retried
  policies.admission = pinned_admission(1, 0);
  int invocations = 0;
  build(1, policies, [&invocations](const http::HttpRequest&, int) {
    ++invocations;
    app::HandlerResult plan;
    plan.processing_delay = sim::milliseconds(200);
    plan.response_bytes = 8;
    return plan;
  });

  std::vector<Pending> pending(4);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    send("server", "/r" + std::to_string(i), &pending[i]);
  }
  run_for(sim::seconds(2));

  // A shed 503 is retryable by status but marked as overload, and
  // retry_on_overloaded defaults off — so the three sheds produce zero
  // upstream retries (no retry storm) and exactly one app attempt.
  int served = 0;
  int shed = 0;
  for (const Pending& p : pending) {
    ASSERT_TRUE(p.done);
    ASSERT_TRUE(p.response.has_value());
    if (p.response->status == 200) ++served;
    if (is_shed_503(p)) ++shed;
  }
  EXPECT_EQ(served, 1);
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(client_sidecar_->stats().upstream_retries, 0u);
  EXPECT_EQ(client_sidecar_->stats().retries_suppressed_by_overload, 3u);
}

TEST_F(AdmissionFixture, OptInRetriesReenterAdmissionAndStayBounded) {
  MeshPolicies policies;
  policies.retry.max_retries = 2;
  policies.retry.retry_on_overloaded = true;  // the amplifying opt-in
  policies.retry.backoff_jitter = false;
  policies.retry.backoff_base = sim::milliseconds(10);
  policies.admission = pinned_admission(1, 0);
  int invocations = 0;
  build(1, policies, [&invocations](const http::HttpRequest&, int) {
    ++invocations;
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(1);  // slot busy through all retries
    plan.response_bytes = 8;
    return plan;
  });

  std::vector<Pending> pending(3);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    send("server", "/o" + std::to_string(i), &pending[i]);
  }
  run_for(sim::seconds(3));

  // Even with retries opted in, each retry re-enters admission and is
  // shed there: attempts are bounded by max_retries and the app still
  // sees exactly one request — never a storm.
  int served = 0;
  int shed = 0;
  for (const Pending& p : pending) {
    ASSERT_TRUE(p.done);
    ASSERT_TRUE(p.response.has_value());
    if (p.response->status == 200) ++served;
    if (is_shed_503(p)) ++shed;
  }
  EXPECT_EQ(served, 1);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(invocations, 1);
  EXPECT_GE(client_sidecar_->stats().upstream_retries, 1u);
  EXPECT_LE(client_sidecar_->stats().upstream_retries,
            2u * static_cast<std::uint64_t>(policies.retry.max_retries));
}

TEST_F(AdmissionFixture, ShedStormDoesNotTripCircuitBreaker) {
  MeshPolicies policies;
  policies.breaker.consecutive_failures = 3;
  policies.admission = pinned_admission(1, 0);
  int invocations = 0;
  build(1, policies, [&invocations](const http::HttpRequest&, int) {
    ++invocations;
    app::HandlerResult plan;
    plan.processing_delay = sim::milliseconds(500);
    plan.response_bytes = 8;
    return plan;
  });

  // Well past the breaker threshold in sheds while the slot is held.
  Pending holder;
  send("server", "/hold", &holder);
  std::vector<Pending> storm(6);
  for (std::size_t i = 0; i < storm.size(); ++i) {
    run_for(sim::milliseconds(10));
    send("server", "/s" + std::to_string(i), &storm[i]);
  }
  run_for(sim::seconds(1));
  for (const Pending& p : storm) EXPECT_TRUE(is_shed_503(p));

  // Sheds are deliberate backpressure from a live endpoint, not endpoint
  // failure: the breaker must still be closed, so the next request (sent
  // after the holder freed the slot) flows straight through.
  Pending after;
  send("server", "/after", &after);
  run_for(sim::seconds(1));
  ASSERT_TRUE(after.done);
  ASSERT_TRUE(after.response.has_value());
  EXPECT_EQ(after.response->status, 200);
  EXPECT_EQ(invocations, 2);
}

TEST_F(AdmissionFixture, QueueDispatchesHighPriorityFirst) {
  MeshPolicies policies;
  policies.admission = pinned_admission(1, 4);
  std::vector<std::string> order;
  build(1, policies, [&order](const http::HttpRequest& request, int) {
    order.push_back(request.path);
    app::HandlerResult plan;
    plan.processing_delay = sim::milliseconds(100);
    plan.response_bytes = 8;
    return plan;
  });

  Pending holder;
  Pending low;
  Pending high;
  send("server", "/hold", &holder);
  run_for(sim::milliseconds(10));
  send("server", "/low", &low, "low");      // queued first...
  run_for(sim::milliseconds(10));
  send("server", "/high", &high, "high");   // ...but dispatched second
  run_for(sim::seconds(1));

  ASSERT_TRUE(holder.done && low.done && high.done);
  EXPECT_EQ(holder.response->status, 200);
  EXPECT_EQ(low.response->status, 200);
  EXPECT_EQ(high.response->status, 200);
  // High priority jumps the scavenger in the queue despite arriving later.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "/hold");
  EXPECT_EQ(order[1], "/high");
  EXPECT_EQ(order[2], "/low");
}

TEST_F(AdmissionFixture, HighPriorityArrivalPreemptsQueuedScavenger) {
  MeshPolicies policies;
  // Queue budget of one: the high-priority arrival finds it full and must
  // preempt the queued scavenger outright.
  policies.admission = pinned_admission(1, 1);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::milliseconds(100);
    plan.response_bytes = 8;
    return plan;
  });

  Pending holder;
  Pending low;
  Pending high;
  send("server", "/hold", &holder);
  run_for(sim::milliseconds(10));
  send("server", "/low", &low, "low");
  run_for(sim::milliseconds(10));
  send("server", "/high", &high, "high");
  run_for(sim::seconds(1));

  ASSERT_TRUE(holder.done && low.done && high.done);
  EXPECT_EQ(holder.response->status, 200);
  EXPECT_EQ(high.response->status, 200);
  EXPECT_TRUE(is_shed_503(low));
  EXPECT_EQ(low.response->headers.get_or(http::headers::Id::kShedReason, ""),
            "preempted");
  const AdmissionController* admission =
      server_sidecars_[0]->admission_controller();
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->counters().shed_preempted, 1u);
}

TEST_F(AdmissionFixture, DeadlineAbandonedSpanStillClosesUnderOverload) {
  MeshPolicies policies;
  policies.request_timeout = sim::milliseconds(200);
  policies.admission = pinned_admission(1, 4);
  build(1, policies, [](const http::HttpRequest&, int) {
    app::HandlerResult plan;
    plan.processing_delay = sim::seconds(5);  // far past every deadline
    plan.response_bytes = 8;
    return plan;
  });

  Pending first;
  Pending queued;
  send("server", "/slow", &first);
  run_for(sim::milliseconds(10));
  send("server", "/queued", &queued);
  run_for(sim::seconds(6));  // past the handler, so the queue drains too

  // Both requests hit the client-side deadline; the PR-4 abandoned-span
  // path must export error spans pinned to the deadline even when the
  // request died queued behind an admission slot.
  ASSERT_TRUE(first.done && queued.done);
  EXPECT_EQ(first.response->status, 504);
  EXPECT_EQ(queued.response->status, 504);
  int error_spans = 0;
  for (const Span& span : control_plane_->tracer().spans()) {
    if (span.service != "client" || !span.error) continue;
    ++error_spans;
    EXPECT_GE(span.duration(), sim::milliseconds(200));
    EXPECT_LT(span.duration(), sim::seconds(1));
  }
  EXPECT_EQ(error_spans, 2);

  // The queued request's deadline passed before a slot freed: admission
  // sheds it at dequeue instead of wasting the slot on a dead request.
  const AdmissionController* admission =
      server_sidecars_[0]->admission_controller();
  ASSERT_NE(admission, nullptr);
  EXPECT_GE(admission->counters().shed_deadline, 1u);
  EXPECT_EQ(admission->counters().accepted, 1u);
}

}  // namespace
}  // namespace meshnet::mesh
