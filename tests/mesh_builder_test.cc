// Tests for the declarative construction path (cluster::MeshSpec /
// MeshBuilder, app/mesh_spec.h), the topology-generator adapter,
// deterministic endpoint subsetting and the delta push channel's
// equivalence with full snapshots under loss.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/mesh_builder.h"
#include "cluster/topology_gen.h"
#include "mesh/sidecar.h"
#include "mesh/subset.h"
#include "sim/simulator.h"

using namespace meshnet;

namespace {

cluster::MeshSpec two_service_spec() {
  cluster::MeshSpec spec;
  spec.nodes = {"node-a"};
  cluster::ServiceSpec a;
  a.name = "a";
  a.calls = {"b"};
  cluster::ServiceSpec b;
  b.name = "b";
  b.replicas = 2;
  spec.services = {a, b};
  return spec;
}

}  // namespace

TEST(MeshSpecValidation, AcceptsWellFormedSpec) {
  EXPECT_EQ(cluster::validate_mesh_spec(two_service_spec()), "");
}

TEST(MeshSpecValidation, RejectsDuplicateService) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services.push_back(spec.services[0]);
  EXPECT_NE(cluster::validate_mesh_spec(spec).find("duplicate service"),
            std::string::npos);
}

TEST(MeshSpecValidation, RejectsDanglingCall) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services[1].calls = {"nonexistent"};
  EXPECT_NE(cluster::validate_mesh_spec(spec).find("unknown service"),
            std::string::npos);
}

TEST(MeshSpecValidation, RejectsZeroReplicas) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services[0].replicas = 0;
  EXPECT_NE(cluster::validate_mesh_spec(spec).find("zero replicas"),
            std::string::npos);
}

TEST(MeshSpecValidation, RejectsReplicaOptionsMismatch) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services[1].replica_options.resize(1);  // replicas = 2
  EXPECT_NE(cluster::validate_mesh_spec(spec), "");
}

TEST(MeshSpecValidation, RejectsUnknownNode) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services[0].node = "node-that-does-not-exist";
  EXPECT_NE(cluster::validate_mesh_spec(spec).find("unknown node"),
            std::string::npos);
}

TEST(MeshBuilder, RefusesInvalidSpecAndReportsError) {
  cluster::MeshSpec spec = two_service_spec();
  spec.services[0].calls = {"ghost"};
  sim::Simulator sim;
  std::string error;
  EXPECT_EQ(cluster::MeshBuilder(sim).build(std::move(spec), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(MeshBuilder, BuildsPodsSidecarsAndRegistryEntries) {
  sim::Simulator sim;
  auto mesh = cluster::MeshBuilder(sim).build(two_service_spec());
  ASSERT_NE(mesh, nullptr);
  EXPECT_NE(mesh->pod("a-v1"), nullptr);
  EXPECT_NE(mesh->pod("b-v1"), nullptr);
  EXPECT_NE(mesh->pod("b-v2"), nullptr);
  EXPECT_NE(mesh->control_plane().sidecar_for("b-v2"), nullptr);
  const cluster::ServiceInfo* info =
      mesh->cluster().registry().find("b");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->endpoints.size(), 2u);
}

// Two builds of the same spec must be bit-identical meshes: same pod
// IPs, same certificate serials, same config fingerprints. This is the
// property the fixed construction order exists for.
TEST(MeshBuilder, RebuildIsBitIdentical) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  auto mesh_a = cluster::MeshBuilder(sim_a).build(two_service_spec());
  auto mesh_b = cluster::MeshBuilder(sim_b).build(two_service_spec());
  ASSERT_NE(mesh_a, nullptr);
  ASSERT_NE(mesh_b, nullptr);
  for (const std::string pod : {"a-v1", "b-v1", "b-v2"}) {
    ASSERT_NE(mesh_a->pod(pod), nullptr);
    EXPECT_EQ(mesh_a->pod(pod)->ip(), mesh_b->pod(pod)->ip()) << pod;
    const mesh::Sidecar* sc_a = mesh_a->control_plane().sidecar_for(pod);
    const mesh::Sidecar* sc_b = mesh_b->control_plane().sidecar_for(pod);
    ASSERT_NE(sc_a, nullptr);
    ASSERT_NE(sc_b, nullptr);
    EXPECT_EQ(sc_a->config().identity_cert.serial,
              sc_b->config().identity_cert.serial)
        << pod;
    EXPECT_EQ(mesh::hash_sidecar_config(sc_a->config()),
              mesh::hash_sidecar_config(sc_b->config()))
        << pod;
  }
}

TEST(TopologyAdapter, RoundTripsGeneratedDag) {
  cluster::FanoutSpec fanout;
  fanout.layer_widths = {2, 3, 4};
  fanout.fanout = 2;
  const cluster::GenTopology topology =
      cluster::generate_layered_fanout(fanout, 7);
  const cluster::MeshSpec spec = cluster::mesh_spec_from_topology(topology);

  EXPECT_EQ(cluster::validate_mesh_spec(spec), "");
  ASSERT_EQ(spec.services.size(), topology.services.size());

  // Every DAG edge appears exactly once as a declared call.
  cluster::TopologyMeshOptions options;
  for (const cluster::GenService& service : topology.services) {
    const cluster::ServiceSpec& svc =
        spec.services[static_cast<std::size_t>(service.id)];
    EXPECT_EQ(svc.name, cluster::topology_service_name(options, service.id));
    std::set<std::string> expected;
    for (const int edge : service.out_edges) {
      expected.insert(cluster::topology_service_name(
          options, topology.edges[static_cast<std::size_t>(edge)].to));
    }
    EXPECT_EQ(std::set<std::string>(svc.calls.begin(), svc.calls.end()),
              expected)
        << svc.name;
  }

  sim::Simulator sim;
  auto mesh = cluster::MeshBuilder(sim).build(spec);
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->control_plane().sidecars().size(),
            topology.services.size());
}

TEST(EndpointSubsets, DeterministicAndOrderInvariant) {
  std::vector<cluster::Endpoint> endpoints(10);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    endpoints[i].pod_name = "s-v" + std::to_string(i + 1);
  }
  std::vector<std::string> subscribers;
  for (int i = 0; i < 7; ++i) subscribers.push_back("sub-" + std::to_string(i));

  const auto once =
      mesh::compute_endpoint_subsets("s", endpoints, subscribers, 3);
  const auto again =
      mesh::compute_endpoint_subsets("s", endpoints, subscribers, 3);
  EXPECT_EQ(once, again);

  std::vector<std::string> reversed(subscribers.rbegin(), subscribers.rend());
  EXPECT_EQ(mesh::compute_endpoint_subsets("s", endpoints, reversed, 3),
            once);
}

TEST(EndpointSubsets, EverySubscriberBoundedAndEveryEndpointCovered) {
  std::vector<cluster::Endpoint> endpoints(16);
  std::vector<std::string> subscribers;
  for (int i = 0; i < 9; ++i) subscribers.push_back("sub-" + std::to_string(i));

  const auto subsets =
      mesh::compute_endpoint_subsets("cluster", endpoints, subscribers, 4);
  ASSERT_EQ(subsets.size(), subscribers.size());
  std::set<std::size_t> covered;
  for (const auto& [name, subset] : subsets) {
    EXPECT_GE(subset.size(), 4u) << name;
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end())) << name;
    EXPECT_EQ(std::set<std::size_t>(subset.begin(), subset.end()).size(),
              subset.size())
        << name;  // no duplicate indices
    covered.insert(subset.begin(), subset.end());
  }
  EXPECT_EQ(covered.size(), endpoints.size());  // coverage repair
}

// In a built mesh with subsetting on, every caller tracks a bounded
// endpoint table, yet the union of all callers' tables still reaches
// every replica.
TEST(EndpointSubsets, BoundsBuiltSidecarTablesWithFullCoverage) {
  cluster::MeshSpec spec;
  spec.nodes = {"node-a"};
  cluster::ServiceSpec server;
  server.name = "server";
  server.replicas = 6;
  spec.services.push_back(server);
  for (const char* name : {"caller-a", "caller-b", "caller-c"}) {
    cluster::ServiceSpec caller;
    caller.name = name;
    caller.calls = {"server"};
    spec.services.push_back(caller);
  }
  spec.policies.subset.enabled = true;
  spec.policies.subset.subset_size = 2;

  sim::Simulator sim;
  auto mesh = cluster::MeshBuilder(sim).build(std::move(spec));
  ASSERT_NE(mesh, nullptr);

  std::set<std::string> seen;
  for (const char* pod : {"caller-a-v1", "caller-b-v1", "caller-c-v1"}) {
    const mesh::Sidecar* sidecar = mesh->control_plane().sidecar_for(pod);
    ASSERT_NE(sidecar, nullptr);
    const auto it = sidecar->config().clusters.find("server");
    ASSERT_NE(it, sidecar->config().clusters.end());
    EXPECT_LT(it->second.endpoints.size(), 6u) << pod;  // bounded
    for (const cluster::Endpoint& endpoint : it->second.endpoints) {
      seen.insert(endpoint.pod_name);
    }
  }
  // The server replicas subscribe too (no scopes), so mesh-wide coverage
  // is guaranteed; the three callers alone already see several distinct
  // replicas.
  EXPECT_GE(seen.size(), 2u);

  // Mesh-wide union over every subscriber covers all six replicas.
  std::set<std::string> mesh_wide;
  for (const auto& sidecar : mesh->control_plane().sidecars()) {
    const auto it = sidecar->config().clusters.find("server");
    if (it == sidecar->config().clusters.end()) continue;
    for (const cluster::Endpoint& endpoint : it->second.endpoints) {
      mesh_wide.insert(endpoint.pod_name);
    }
  }
  EXPECT_EQ(mesh_wide.size(), 6u);
}

// Delta pushes and full-snapshot pushes must land every sidecar on the
// same config through the same epochs, even across a lossy channel and
// endpoint churn. Two identical meshes, one per transport: the RNG
// draw sequence is transport-independent (byte accounting draws
// nothing), so the loss pattern is identical and the end states must
// fingerprint identically.
TEST(DeltaPush, EquivalentToFullSnapshotsUnderLossyChurn) {
  const auto make_spec = [](bool delta) {
    cluster::MeshSpec spec = two_service_spec();
    spec.poll_interval = sim::milliseconds(50);
    spec.policies.cp.push_latency_base = sim::milliseconds(1);
    spec.policies.cp.push_latency_jitter = sim::milliseconds(2);
    spec.policies.cp.push_loss = 0.25;
    spec.policies.cp.ack_timeout = sim::milliseconds(50);
    spec.policies.cp.retry_backoff_base = sim::milliseconds(10);
    spec.policies.cp.delta_push = delta;
    return spec;
  };

  sim::Simulator sim_delta;
  sim::Simulator sim_full;
  auto mesh_delta = cluster::MeshBuilder(sim_delta).build(make_spec(true));
  auto mesh_full = cluster::MeshBuilder(sim_full).build(make_spec(false));
  ASSERT_NE(mesh_delta, nullptr);
  ASSERT_NE(mesh_full, nullptr);

  const auto churn = [](cluster::BuiltMesh& mesh, sim::Simulator& sim) {
    sim.run_until(sim::milliseconds(300));
    mesh.cluster().deregister_pod("b-v2");
    sim.run_until(sim::milliseconds(900));
    mesh.cluster().restart_pod("b-v2");
    sim.run_until(sim::seconds(2));
  };
  churn(*mesh_delta, sim_delta);
  churn(*mesh_full, sim_full);

  mesh::ControlPlane& cp_delta = mesh_delta->control_plane();
  mesh::ControlPlane& cp_full = mesh_full->control_plane();
  EXPECT_TRUE(cp_delta.converged());
  EXPECT_TRUE(cp_full.converged());
  EXPECT_EQ(cp_delta.epoch(), cp_full.epoch());
  for (const std::string pod : {"a-v1", "b-v1", "b-v2"}) {
    const mesh::Sidecar* sc_delta = cp_delta.sidecar_for(pod);
    const mesh::Sidecar* sc_full = cp_full.sidecar_for(pod);
    ASSERT_NE(sc_delta, nullptr);
    ASSERT_NE(sc_full, nullptr);
    EXPECT_EQ(mesh::hash_sidecar_config(sc_delta->config()),
              mesh::hash_sidecar_config(sc_full->config()))
        << pod;
    EXPECT_EQ(sc_delta->config().epoch, sc_full->config().epoch) << pod;
  }

  // The delta mesh really used the incremental channel, and spent far
  // fewer wire bytes doing the same convergence.
  const auto bytes_delta = cp_delta.push_channel_bytes();
  const auto bytes_full = cp_full.push_channel_bytes();
  EXPECT_GT(bytes_delta.delta_pushes, 0u);
  EXPECT_EQ(bytes_full.delta_pushes, 0u);
  EXPECT_LT(bytes_delta.delta_bytes + bytes_delta.full_bytes,
            bytes_full.full_bytes);
}
