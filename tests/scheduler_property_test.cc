// Property tests for the event scheduler: the heap + timer-wheel + due-run
// split must execute events in exactly the order the old single
// priority-queue implementation did — (when, seq) lexicographic, i.e.
// time-ordered with same-timestamp FIFO — and cancel() must behave like
// removal from that queue. The reference model is a plain vector sorted
// with std::stable_sort, which is trivially correct.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A delay from the distributions that stress the wheel geometry: zero
/// (same-timestamp FIFO), sub-tick, exact tick multiples, level
/// boundaries, and beyond-wheel far timers that land in the heap.
Duration interesting_delay(std::uint64_t r) {
  constexpr Duration kTick = 8192;  // level-0 tick (2^13 ns)
  switch (r % 10) {
    case 0:
      return 0;
    case 1:
      return 1 + static_cast<Duration>((r >> 8) % 100);  // sub-tick
    case 2:
      return kTick * static_cast<Duration>(1 + ((r >> 8) % 4));
    case 3:
      return kTick * 64 - 1;  // just inside level 0's window
    case 4:
      return kTick * 64 + static_cast<Duration>((r >> 8) % 3);  // level 1
    case 5:
      return kTick * 64 * 64 + static_cast<Duration>((r >> 8) % 1000);
    case 6:
      return kTick * 64 * 64 * 64 +  // beyond the wheel: heap
             static_cast<Duration>((r >> 8) % 1000000);
    case 7:
      return seconds(3) + static_cast<Duration>((r >> 8) % 1000000);
    default:
      return 1 + static_cast<Duration>((r >> 8) % 2000000);  // <= 2 ms
  }
}

// ---- Offline model: schedule everything up front, cancel a subset -----

struct ModelEvent {
  Time when;
  int token;  // scheduling order == seq order
};

TEST(SchedulerProperty, MatchesStableSortModelOfflineMix) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::uint64_t rng = seed * 0x100000001b3ULL;
    Simulator sim;
    std::vector<EventId> ids;
    std::vector<ModelEvent> model;
    std::vector<int> fired;
    constexpr int kEvents = 600;
    for (int token = 0; token < kEvents; ++token) {
      const Duration delay = interesting_delay(splitmix64(rng));
      model.push_back(ModelEvent{delay, token});
      ids.push_back(
          sim.schedule_after(delay, [&fired, token] { fired.push_back(token); }));
    }
    // Cancel ~1/3, chosen by hash.
    std::vector<char> cancelled(kEvents, 0);
    for (int token = 0; token < kEvents; ++token) {
      if (splitmix64(rng) % 3 == 0) {
        EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(token)]));
        cancelled[static_cast<std::size_t>(token)] = 1;
      }
    }
    sim.run();

    std::vector<ModelEvent> expected;
    for (const ModelEvent& e : model) {
      if (!cancelled[static_cast<std::size_t>(e.token)]) expected.push_back(e);
    }
    // stable_sort by time alone: ties keep scheduling (seq) order, which
    // is exactly the contract the simulator documents.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const ModelEvent& a, const ModelEvent& b) {
                       return a.when < b.when;
                     });
    ASSERT_EQ(fired.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(fired[i], expected[i].token)
          << "seed " << seed << " position " << i;
    }
  }
}

// ---- Online model: events schedule and cancel while running ------------
//
// Every fired event makes decisions that are a pure function of its token
// (not of execution order), so the reference model can replay the same
// decisions against a sorted pending set. Any order divergence between
// the simulator and the model shows up as a token-sequence mismatch.

struct OnlineDriver {
  Simulator sim;
  std::uint64_t next_token = 0;
  std::uint64_t budget;  // total events allowed (bounds the run)
  std::map<std::uint64_t, EventId> live;  // token -> id, pending only
  std::vector<std::pair<std::uint64_t, Time>> fired;

  explicit OnlineDriver(std::uint64_t total) : budget(total) {}

  void spawn(Duration delay) {
    if (budget == 0) return;
    --budget;
    const std::uint64_t token = next_token++;
    const EventId id =
        sim.schedule_after(delay, [this, token] { on_fire(token); });
    live.emplace(token, id);
  }

  void on_fire(std::uint64_t token) {
    live.erase(token);
    fired.emplace_back(token, sim.now());
    std::uint64_t rng = token * 0x9e3779b97f4a7c15ULL + 12345;
    const std::uint64_t r = splitmix64(rng);
    // Schedule 0-2 children.
    const int children = static_cast<int>(r % 3);
    for (int i = 0; i < children; ++i) {
      spawn(interesting_delay(splitmix64(rng)));
    }
    // Maybe cancel the pending event with the smallest token >= pivot
    // (wrapping) — a deterministic choice given the pending set.
    if (splitmix64(rng) % 4 == 0 && !live.empty()) {
      auto it = live.lower_bound(splitmix64(rng) % next_token);
      if (it == live.end()) it = live.begin();
      EXPECT_TRUE(sim.cancel(it->second));
      live.erase(it);
    }
  }
};

struct OnlineModel {
  struct Pending {
    Time when;
    std::uint64_t seq;
    std::uint64_t token;
  };
  std::uint64_t next_token = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t budget;
  Time now = 0;
  std::vector<Pending> pending;  // kept sorted by (when, seq)
  std::set<std::uint64_t> live;
  std::vector<std::pair<std::uint64_t, Time>> fired;

  explicit OnlineModel(std::uint64_t total) : budget(total) {}

  void spawn(Duration delay) {
    if (budget == 0) return;
    --budget;
    const Pending p{now + delay, next_seq++, next_token++};
    pending.insert(std::upper_bound(pending.begin(), pending.end(), p,
                                    [](const Pending& a, const Pending& b) {
                                      return a.when != b.when
                                                 ? a.when < b.when
                                                 : a.seq < b.seq;
                                    }),
                   p);
    live.insert(p.token);
  }

  void run() {
    while (!pending.empty()) {
      const Pending p = pending.front();
      pending.erase(pending.begin());
      now = p.when;
      live.erase(p.token);
      fired.emplace_back(p.token, now);
      std::uint64_t rng = p.token * 0x9e3779b97f4a7c15ULL + 12345;
      const std::uint64_t r = splitmix64(rng);
      const int children = static_cast<int>(r % 3);
      for (int i = 0; i < children; ++i) {
        spawn(interesting_delay(splitmix64(rng)));
      }
      if (splitmix64(rng) % 4 == 0 && !live.empty()) {
        auto it = live.lower_bound(splitmix64(rng) % next_token);
        if (it == live.end()) it = live.begin();
        const std::uint64_t victim = *it;
        live.erase(it);
        pending.erase(std::find_if(pending.begin(), pending.end(),
                                   [victim](const Pending& q) {
                                     return q.token == victim;
                                   }));
      }
    }
  }
};

TEST(SchedulerProperty, MatchesModelWithReentrantScheduleAndCancel) {
  constexpr std::uint64_t kTotal = 4000;
  OnlineDriver driver(kTotal);
  OnlineModel model(kTotal);
  // Seed both with the same initial burst (tokens 0..31 at t=0 decide
  // their own delays on fire; seed spawns use token-hash delays too).
  for (int i = 0; i < 32; ++i) {
    std::uint64_t rng = static_cast<std::uint64_t>(i) * 0x517cc1b727220a95ULL;
    const Duration delay = interesting_delay(splitmix64(rng));
    driver.spawn(delay);
    model.spawn(delay);
  }
  driver.sim.run();
  model.run();

  ASSERT_EQ(driver.fired.size(), model.fired.size());
  for (std::size_t i = 0; i < model.fired.size(); ++i) {
    EXPECT_EQ(driver.fired[i].first, model.fired[i].first) << "position " << i;
    EXPECT_EQ(driver.fired[i].second, model.fired[i].second)
        << "position " << i;
    if (driver.fired[i] != model.fired[i]) break;  // avoid noise cascades
  }
  EXPECT_EQ(driver.sim.pending_events(), 0u);
}

// ---- Cancel semantics against the model --------------------------------

TEST(SchedulerProperty, CancelSemanticsMatchQueueRemoval) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_after(100, [&] { ++fired; });
  const EventId b = sim.schedule_after(100, [&] { ++fired; });
  const EventId far = sim.schedule_after(seconds(10), [&] { ++fired; });

  EXPECT_TRUE(sim.cancel(b));
  EXPECT_FALSE(sim.cancel(b));  // double cancel
  EXPECT_TRUE(sim.cancel(far));
  EXPECT_FALSE(sim.cancel(far));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(a));  // cancel after execution
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Ids are generation-tagged: a slot reused by a new event must not make a
// stale id cancellable.
TEST(SchedulerProperty, StaleIdsNeverCancelReusedSlots) {
  Simulator sim;
  std::vector<EventId> stale;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i) {
      ids.push_back(sim.schedule_after(10 + i, [] {}));
    }
    for (const EventId id : ids) EXPECT_TRUE(sim.cancel(id));
    stale.insert(stale.end(), ids.begin(), ids.end());
    // New events reuse the freed slots; stale ids must all be dead.
    std::vector<EventId> fresh;
    for (int i = 0; i < 20; ++i) {
      fresh.push_back(sim.schedule_after(10 + i, [] {}));
    }
    for (const EventId id : stale) EXPECT_FALSE(sim.cancel(id));
    for (const EventId id : fresh) EXPECT_TRUE(sim.cancel(id));
  }
}

}  // namespace
}  // namespace meshnet::sim
