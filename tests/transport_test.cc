// Tests for congestion controllers, the connection state machine and the
// host-level demux, run over a real simulated network.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/network.h"
#include "net/qdisc.h"
#include "sim/simulator.h"
#include "transport/congestion.h"
#include "transport/connection.h"
#include "transport/transport_host.h"

namespace meshnet::transport {
namespace {

// ------------------------------------------------- congestion control --

TEST(RenoController, InitialWindowIsIw10) {
  RenoController cc;
  EXPECT_EQ(cc.cwnd(), 10u * 1460u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoController, SlowStartDoublesPerRtt) {
  RenoController cc;
  const std::uint64_t before = cc.cwnd();
  cc.on_ack(before, sim::milliseconds(1), 0);  // a full window acked
  EXPECT_EQ(cc.cwnd(), 2 * before);
}

TEST(RenoController, LossHalvesWindow) {
  RenoController cc;
  for (int i = 0; i < 10; ++i) cc.on_ack(cc.cwnd(), 0, 0);
  const std::uint64_t before = cc.cwnd();
  cc.on_loss(0);
  EXPECT_EQ(cc.cwnd(), before / 2);
  EXPECT_EQ(cc.ssthresh(), before / 2);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(RenoController, CongestionAvoidanceIsLinear) {
  RenoConfig config;
  RenoController cc(config);
  for (int i = 0; i < 6; ++i) cc.on_ack(cc.cwnd(), 0, 0);
  cc.on_loss(0);
  const std::uint64_t base = cc.cwnd();
  // One window of acks in CA grows the window by about one MSS.
  std::uint64_t acked = 0;
  while (acked < base) {
    cc.on_ack(config.mss, 0, 0);
    acked += config.mss;
  }
  EXPECT_GE(cc.cwnd(), base + config.mss / 2);
  EXPECT_LE(cc.cwnd(), base + 2 * config.mss);
}

TEST(RenoController, TimeoutCollapsesToOneMss) {
  RenoController cc;
  for (int i = 0; i < 5; ++i) cc.on_ack(cc.cwnd(), 0, 0);
  cc.on_timeout(0);
  EXPECT_EQ(cc.cwnd(), 1460u);
}

TEST(RenoController, WindowNeverExceedsMax) {
  RenoConfig config;
  config.max_window_bytes = 100'000;
  RenoController cc(config);
  for (int i = 0; i < 50; ++i) cc.on_ack(cc.cwnd(), 0, 0);
  EXPECT_LE(cc.cwnd(), 100'000u);
}

TEST(LedbatController, GrowsWhenDelayBelowTarget) {
  LedbatConfig config;
  LedbatController cc(config);
  const std::uint64_t before = cc.cwnd();
  // base rtt 1 ms, then acks at the same rtt: zero queueing delay.
  for (int i = 0; i < 20; ++i) {
    cc.on_ack(config.mss, sim::milliseconds(1), sim::milliseconds(i));
  }
  EXPECT_GT(cc.cwnd(), before);
}

TEST(LedbatController, ShrinksWhenDelayAboveTarget) {
  LedbatConfig config;
  config.target_delay = sim::milliseconds(2);
  LedbatController cc(config);
  // Learn a 1 ms base, grow a bit.
  for (int i = 0; i < 50; ++i) {
    cc.on_ack(config.mss, sim::milliseconds(1), i);
  }
  const std::uint64_t grown = cc.cwnd();
  // Now rtt jumps to base + 4x target: the controller must back off.
  for (int i = 0; i < 50; ++i) {
    cc.on_ack(config.mss, sim::milliseconds(9), 1000 + i);
  }
  EXPECT_LT(cc.cwnd(), grown);
  EXPECT_EQ(cc.last_queue_delay(), sim::milliseconds(8));
}

TEST(LedbatController, TracksBaseRtt) {
  LedbatController cc;
  cc.on_ack(1460, sim::milliseconds(5), 0);
  EXPECT_EQ(cc.base_rtt(), sim::milliseconds(5));
  cc.on_ack(1460, sim::milliseconds(3), 1);
  EXPECT_EQ(cc.base_rtt(), sim::milliseconds(3));
  cc.on_ack(1460, sim::milliseconds(7), 2);  // higher: base unchanged
  EXPECT_EQ(cc.base_rtt(), sim::milliseconds(3));
}

TEST(LedbatController, LossStillHalves) {
  LedbatController cc;
  for (int i = 0; i < 50; ++i) cc.on_ack(1460, sim::milliseconds(1), i);
  const std::uint64_t grown = cc.cwnd();
  cc.on_loss(100);
  EXPECT_LE(cc.cwnd(), grown / 2 + 1460);
}

TEST(LedbatController, WindowFloorsAtOneMss) {
  LedbatController cc;
  for (int i = 0; i < 20; ++i) cc.on_timeout(i);
  EXPECT_GE(cc.cwnd(), 1460u);
}

TEST(MakeController, Factory) {
  EXPECT_EQ(make_controller(CcAlgorithm::kReno, 1460)->name(), "reno");
  EXPECT_EQ(make_controller(CcAlgorithm::kLedbat, 1460)->name(), "ledbat");
}

// ------------------------------------------------------- connections --

// Two hosts joined by a configurable duplex path.
class TransportFixture : public ::testing::Test {
 protected:
  void build(double rate_bps = 1e9,
             sim::Duration delay = sim::microseconds(100),
             std::uint64_t queue_bytes = 9'000'000) {
    const auto a = net.add_location("a");
    const auto b = net.add_location("b");
    ab = &net.add_link(a, b, rate_bps, delay,
                       std::make_unique<net::FifoQdisc>(queue_bytes), "ab");
    ba = &net.add_link(b, a, rate_bps, delay,
                       std::make_unique<net::FifoQdisc>(queue_bytes), "ba");
    net.attach_interface(ip_a, a);
    net.attach_interface(ip_b, b);
    host_a = std::make_unique<TransportHost>(sim, net, ip_a);
    host_b = std::make_unique<TransportHost>(sim, net, ip_b);
  }

  sim::Simulator sim;
  net::Network net{sim};
  const net::IpAddress ip_a = net::make_ip(10, 0, 0, 1);
  const net::IpAddress ip_b = net::make_ip(10, 0, 0, 2);
  net::Link* ab = nullptr;
  net::Link* ba = nullptr;
  std::unique_ptr<TransportHost> host_a;
  std::unique_ptr<TransportHost> host_b;
};

TEST_F(TransportFixture, HandshakeEstablishesBothSides) {
  build();
  Connection* accepted = nullptr;
  host_b->listen(80, [&](Connection& c) { accepted = &c; });
  Connection& client = host_a->connect({ip_b, 80});
  bool connected = false;
  client.set_on_connected([&] { connected = true; });
  sim.run_until(sim::seconds(1));
  EXPECT_TRUE(connected);
  EXPECT_TRUE(client.established());
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(host_b->stats().connections_accepted, 1u);
  EXPECT_EQ(host_a->stats().connections_opened, 1u);
}

TEST_F(TransportFixture, DataArrivesInOrderAndIntact) {
  build();
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  Connection& client = host_a->connect({ip_b, 80});
  std::string sent;
  for (int i = 0; i < 100; ++i) {
    sent += "chunk-" + std::to_string(i) + ";";
  }
  client.send(sent);
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(received, sent);
}

TEST_F(TransportFixture, LargeTransferIntegrity) {
  build();
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  ConnectionOptions options;
  options.mss = 8960;
  Connection& client = host_a->connect({ip_b, 80}, options);
  std::string sent(3 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>((i * 131) ^ (i >> 7));
  }
  client.send(sent);
  sim.run_until(sim::seconds(10));
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);
}

TEST_F(TransportFixture, BidirectionalTransfer) {
  build();
  std::string at_b, at_a;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) {
      at_b.append(d);
      c.send("pong:" + std::string(d));
    });
  });
  Connection& client = host_a->connect({ip_b, 80});
  client.set_on_data([&](std::string_view d) { at_a.append(d); });
  client.send("ping");
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(at_b, "ping");
  EXPECT_EQ(at_a, "pong:ping");
}

TEST_F(TransportFixture, SendBeforeEstablishedIsBuffered) {
  build();
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  Connection& client = host_a->connect({ip_b, 80});
  client.send("early");  // handshake not yet complete
  EXPECT_FALSE(client.established());
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(received, "early");
}

TEST_F(TransportFixture, MssSegmentation) {
  build();
  host_b->listen(80, [&](Connection& c) { c.set_on_data([](std::string_view) {}); });
  ConnectionOptions options;
  options.mss = 1000;
  Connection& client = host_a->connect({ip_b, 80}, options);
  client.send(std::string(10'000, 'x'));
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(client.stats().segments_sent, 10u);
}

TEST_F(TransportFixture, MssNegotiationViaSynOption) {
  build();
  Connection* server = nullptr;
  host_b->listen(80, [&](Connection& c) { server = &c; });
  ConnectionOptions options;
  options.mss = 4321;
  host_a->connect({ip_b, 80}, options);
  sim.run_until(sim::seconds(1));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->mss(), 4321u);
}

TEST_F(TransportFixture, LossIsRecoveredThroughTinyQueue) {
  // A queue that holds barely two packets forces drops during slow start.
  build(1e8, sim::microseconds(100), 3000);
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  ConnectionOptions options;
  options.mss = 1000;
  Connection& client = host_a->connect({ip_b, 80}, options);
  const std::string sent(300'000, 'y');
  client.send(sent);
  sim.run_until(sim::seconds(30));
  EXPECT_EQ(received.size(), sent.size());
  EXPECT_GT(client.stats().retransmits, 0u);
}

TEST_F(TransportFixture, FastRetransmitFiresOnDupAcks) {
  build(1e8, sim::microseconds(100), 2500);
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  ConnectionOptions options;
  options.mss = 1000;
  Connection& client = host_a->connect({ip_b, 80}, options);
  client.send(std::string(500'000, 'z'));
  sim.run_until(sim::seconds(30));
  EXPECT_EQ(received.size(), 500'000u);
  EXPECT_GT(client.stats().fast_retransmits, 0u);
}

TEST_F(TransportFixture, RttIsMeasured) {
  build(1e9, sim::milliseconds(1));
  host_b->listen(80, [&](Connection& c) { c.set_on_data([](std::string_view) {}); });
  Connection& client = host_a->connect({ip_b, 80});
  client.send("x");
  sim.run_until(sim::seconds(1));
  // RTT must be at least the two-way propagation delay.
  EXPECT_GE(client.stats().smoothed_rtt, sim::milliseconds(2));
  EXPECT_LT(client.stats().smoothed_rtt, sim::milliseconds(5));
}

TEST_F(TransportFixture, GracefulCloseReachesBothSides) {
  build();
  bool server_closed = false, server_graceful = false;
  Connection* server = nullptr;
  host_b->listen(80, [&](Connection& c) {
    server = &c;
    c.set_on_data([](std::string_view) {});
    c.set_on_closed([&](bool graceful) {
      server_closed = true;
      server_graceful = graceful;
    });
  });
  Connection& client = host_a->connect({ip_b, 80});
  bool client_closed = false, client_graceful = false;
  client.set_on_closed([&](bool graceful) {
    client_closed = true;
    client_graceful = graceful;
  });
  client.send("bye");
  client.close();
  sim.run_until(sim::seconds(5));
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(client_graceful);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(server_graceful);
}

TEST_F(TransportFixture, CloseFlushesPendingData) {
  build();
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  ConnectionOptions options;
  options.mss = 1000;
  Connection& client = host_a->connect({ip_b, 80}, options);
  client.send(std::string(50'000, 'f'));
  client.close();  // before anything was transmitted
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(received.size(), 50'000u);
  EXPECT_TRUE(client.closed());
}

TEST_F(TransportFixture, SendAfterCloseIsIgnored) {
  build();
  std::string received;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) { received.append(d); });
  });
  Connection& client = host_a->connect({ip_b, 80});
  client.send("keep");
  client.close();
  client.send("drop");
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(received, "keep");
}

TEST_F(TransportFixture, AbortSendsRst) {
  build();
  bool server_closed = false, server_graceful = true;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([](std::string_view) {});
    c.set_on_closed([&](bool graceful) {
      server_closed = true;
      server_graceful = graceful;
    });
  });
  Connection& client = host_a->connect({ip_b, 80});
  client.send("hello");
  sim.run_until(sim::milliseconds(100));
  client.abort();
  sim.run_until(sim::seconds(1));
  EXPECT_TRUE(client.closed());
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(server_graceful);
}

TEST_F(TransportFixture, ConnectToClosedPortGetsRst) {
  build();
  Connection& client = host_a->connect({ip_b, 4444});  // nobody listens
  bool closed = false, graceful = true;
  client.set_on_closed([&](bool g) {
    closed = true;
    graceful = g;
  });
  sim.run_until(sim::seconds(2));
  EXPECT_TRUE(closed);
  EXPECT_FALSE(graceful);
}

TEST_F(TransportFixture, SynRetransmitsOnBlackhole) {
  build();
  // Blackhole the forward path: replace the qdisc with a zero-capacity
  // one after routing works (every SYN is dropped).
  ab->set_qdisc(std::make_unique<net::FifoQdisc>(0));
  // Even a 0-limit FIFO admits into an empty queue; use a classify-all
  // strict qdisc with 0 limit per band... simplest: drop via a token
  // bucket with zero rate and zero burst.
  ab->set_qdisc(std::make_unique<net::TokenBucketQdisc>(1e-9, 0, 1));
  Connection& client = host_a->connect({ip_b, 80});
  sim.run_until(sim::seconds(2));
  EXPECT_FALSE(client.established());
  EXPECT_GT(client.stats().timeouts, 0u);
}

TEST_F(TransportFixture, ConnectionsAreRemovedAfterClose) {
  build();
  host_b->listen(80, [&](Connection& c) { c.set_on_data([](std::string_view) {}); });
  Connection& client = host_a->connect({ip_b, 80});
  client.send("x");
  sim.run_until(sim::milliseconds(500));
  EXPECT_EQ(host_a->connection_count(), 1u);
  client.close();
  sim.run_until(sim::seconds(5));
  EXPECT_EQ(host_a->connection_count(), 0u);
  EXPECT_EQ(host_b->connection_count(), 0u);
}

TEST_F(TransportFixture, DscpMarksAllPackets) {
  build();
  // Count EF packets on the forward link by sniffing with a classifier
  // qdisc installed up front.
  auto counter = std::make_unique<net::StrictPrioQdisc>(
      2, net::classify_by_dscp(), 1 << 20);
  auto* counter_raw = counter.get();
  ab->set_qdisc(std::move(counter));
  host_b->listen(80, [&](Connection& c) { c.set_on_data([](std::string_view) {}); });
  ConnectionOptions options;
  options.dscp = net::Dscp::kExpedited;
  Connection& client = host_a->connect({ip_b, 80}, options);
  client.send(std::string(5000, 'm'));
  sim.run_until(sim::seconds(1));
  EXPECT_GT(counter_raw->stats().enqueued_packets, 0u);
  EXPECT_EQ(counter_raw->band_drops(0), 0u);
  // Everything the client sent landed in band 0 (EF).
  EXPECT_EQ(counter_raw->band_backlog_packets(1), 0u);
}

TEST_F(TransportFixture, AcceptMapperControlsServerOptions) {
  build();
  Connection* server = nullptr;
  host_b->set_accept_options_mapper([](const net::Packet& syn) {
    ConnectionOptions options;
    options.dscp = syn.dscp;
    options.cc = syn.dscp == net::Dscp::kScavenger ? CcAlgorithm::kLedbat
                                                   : CcAlgorithm::kReno;
    return options;
  });
  host_b->listen(80, [&](Connection& c) { server = &c; });
  ConnectionOptions options;
  options.dscp = net::Dscp::kScavenger;
  host_a->connect({ip_b, 80}, options);
  sim.run_until(sim::seconds(1));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->congestion().name(), "ledbat");
  EXPECT_EQ(server->dscp(), net::Dscp::kScavenger);
}

TEST_F(TransportFixture, ServerEchoesDscpByDefault) {
  build();
  Connection* server = nullptr;
  host_b->listen(80, [&](Connection& c) { server = &c; });
  ConnectionOptions options;
  options.dscp = net::Dscp::kExpedited;
  host_a->connect({ip_b, 80}, options);
  sim.run_until(sim::seconds(1));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->dscp(), net::Dscp::kExpedited);
}

TEST_F(TransportFixture, ThroughputApproachesLineRate) {
  build(1e9, sim::microseconds(100));
  std::uint64_t received = 0;
  sim::Time last_byte_at = 0;
  host_b->listen(80, [&](Connection& c) {
    c.set_on_data([&](std::string_view d) {
      received += d.size();
      last_byte_at = sim.now();
    });
  });
  ConnectionOptions options;
  options.mss = 8960;
  Connection& client = host_a->connect({ip_b, 80}, options);
  // 50 MB over 1 Gbps takes ~0.42 s once the window opens.
  constexpr std::uint64_t kBytes = 50 * 1024 * 1024;
  client.send(std::string(kBytes, 't'));
  sim.run_until(sim::seconds(5));
  ASSERT_EQ(received, kBytes);
  const double goodput_gbps = static_cast<double>(received) * 8 /
                              sim::to_seconds(last_byte_at) / 1e9;
  EXPECT_GT(goodput_gbps, 0.8);
}

TEST_F(TransportFixture, ConnStateNames) {
  EXPECT_EQ(conn_state_name(ConnState::kSynSent), "SYN_SENT");
  EXPECT_EQ(conn_state_name(ConnState::kEstablished), "ESTABLISHED");
  EXPECT_EQ(conn_state_name(ConnState::kClosed), "CLOSED");
}

}  // namespace
}  // namespace meshnet::transport
