// Tests for the orchestration substrate: registry, IP allocation, pods.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "cluster/service_registry.h"
#include "sim/simulator.h"

namespace meshnet::cluster {
namespace {

TEST(ServiceRegistry, RegisterAndFind) {
  ServiceRegistry registry;
  registry.register_service("reviews", 9080);
  const ServiceInfo* info = registry.find("reviews");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "reviews");
  EXPECT_EQ(info->port, 9080);
  EXPECT_TRUE(info->endpoints.empty());
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(ServiceRegistry, AddEndpointCreatesServiceImplicitly) {
  ServiceRegistry registry;
  registry.add_endpoint("ratings", {"ratings-v1", 42, 9080, {}});
  const ServiceInfo* info = registry.find("ratings");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->endpoints.size(), 1u);
  EXPECT_EQ(info->port, 9080);  // inherited from the endpoint
}

TEST(ServiceRegistry, AddEndpointReplacesByPodName) {
  ServiceRegistry registry;
  registry.add_endpoint("svc", {"pod-1", 1, 80, {}});
  registry.add_endpoint("svc", {"pod-1", 2, 80, {}});
  const ServiceInfo* info = registry.find("svc");
  ASSERT_EQ(info->endpoints.size(), 1u);
  EXPECT_EQ(info->endpoints[0].ip, 2u);
}

TEST(ServiceRegistry, RemoveEndpoint) {
  ServiceRegistry registry;
  registry.add_endpoint("svc", {"pod-1", 1, 80, {}});
  registry.add_endpoint("svc", {"pod-2", 2, 80, {}});
  EXPECT_TRUE(registry.remove_endpoint("svc", "pod-1"));
  EXPECT_EQ(registry.find("svc")->endpoints.size(), 1u);
  EXPECT_FALSE(registry.remove_endpoint("svc", "pod-1"));
  EXPECT_FALSE(registry.remove_endpoint("ghost", "pod-1"));
}

TEST(ServiceRegistry, VersionBumpsOnEveryMutation) {
  ServiceRegistry registry;
  const auto v0 = registry.version();
  registry.register_service("a", 80);
  const auto v1 = registry.version();
  EXPECT_GT(v1, v0);
  registry.add_endpoint("a", {"p", 1, 80, {}});
  const auto v2 = registry.version();
  EXPECT_GT(v2, v1);
  registry.remove_endpoint("a", "p");
  EXPECT_GT(registry.version(), v2);
}

TEST(ServiceRegistry, ServicesSortedByName) {
  ServiceRegistry registry;
  registry.register_service("zeta", 1);
  registry.register_service("alpha", 2);
  const auto services = registry.services();
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0]->name, "alpha");
  EXPECT_EQ(services[1]->name, "zeta");
}

TEST(Endpoint, LabelOr) {
  Endpoint ep{"p", 1, 80, {{"priority", "high"}}};
  EXPECT_EQ(ep.label_or("priority", "none"), "high");
  EXPECT_EQ(ep.label_or("missing", "none"), "none");
}

class ClusterTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Cluster cluster{sim};
};

TEST_F(ClusterTest, PodIpsAreUniqueAndCniShaped) {
  cluster.add_node("n1");
  cluster.add_node("n2");
  std::set<net::IpAddress> ips;
  for (int i = 0; i < 5; ++i) {
    ips.insert(cluster
                   .add_pod(i % 2 ? "n1" : "n2", "pod-" + std::to_string(i),
                            "svc", 80)
                   .ip());
  }
  EXPECT_EQ(ips.size(), 5u);
  for (const auto ip : ips) {
    EXPECT_EQ((ip >> 24) & 0xff, 10u);
    EXPECT_EQ((ip >> 16) & 0xff, 244u);
  }
}

TEST_F(ClusterTest, AddNodeIsIdempotent) {
  cluster.add_node("n1");
  const auto before = cluster.network().location_count();
  cluster.add_node("n1");
  EXPECT_EQ(cluster.network().location_count(), before);
}

TEST_F(ClusterTest, PodRegistersAsEndpoint) {
  Pod& pod = cluster.add_pod("n1", "reviews-v1", "reviews", 9080,
                             {0, -1, {{"priority", "high"}}});
  const ServiceInfo* info = cluster.registry().find("reviews");
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->endpoints.size(), 1u);
  EXPECT_EQ(info->endpoints[0].pod_name, "reviews-v1");
  EXPECT_EQ(info->endpoints[0].ip, pod.ip());
  EXPECT_EQ(info->endpoints[0].label_or("priority", ""), "high");
}

TEST_F(ClusterTest, ServicelessPodIsNotRegistered) {
  cluster.add_pod("n1", "client", "", 0);
  EXPECT_EQ(cluster.registry().services().size(), 0u);
}

TEST_F(ClusterTest, FindPod) {
  cluster.add_pod("n1", "a", "svc", 80);
  EXPECT_NE(cluster.find_pod("a"), nullptr);
  EXPECT_EQ(cluster.find_pod("b"), nullptr);
  EXPECT_EQ(cluster.pods().size(), 1u);
}

TEST_F(ClusterTest, PodLinkRateOverride) {
  Pod& normal = cluster.add_pod("n1", "normal", "svc", 80);
  PodOptions slow;
  slow.link_bps = 1e9;
  Pod& bottleneck = cluster.add_pod("n1", "slow", "svc", 80, slow);
  EXPECT_DOUBLE_EQ(normal.egress_link().rate_bps(), 15e9);
  EXPECT_DOUBLE_EQ(bottleneck.egress_link().rate_bps(), 1e9);
  EXPECT_DOUBLE_EQ(bottleneck.ingress_link().rate_bps(), 1e9);
}

TEST_F(ClusterTest, PodsCanExchangePackets) {
  Pod& a = cluster.add_pod("n1", "a", "svc", 80);
  Pod& b = cluster.add_pod("n2", "b", "svc", 80);
  std::string got;
  b.transport().listen(80, [&](transport::Connection& c) {
    c.set_on_data([&](std::string_view d) { got.append(d); });
  });
  a.transport().connect({b.ip(), 80}).send("cross-node");
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(got, "cross-node");
}

TEST_F(ClusterTest, SameNodePodsCommunicate) {
  Pod& a = cluster.add_pod("n1", "a", "svc", 80);
  Pod& b = cluster.add_pod("n1", "b", "svc", 80);
  std::string got;
  b.transport().listen(80, [&](transport::Connection& c) {
    c.set_on_data([&](std::string_view d) { got.append(d); });
  });
  a.transport().connect({b.ip(), 80}).send("same-node");
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(got, "same-node");
}

TEST_F(ClusterTest, VnicLinksAreNamedAndDiscoverable) {
  cluster.add_pod("n1", "mypod", "svc", 80);
  EXPECT_NE(cluster.network().find_link("vnic:mypod:egress"), nullptr);
  EXPECT_NE(cluster.network().find_link("vnic:mypod:ingress"), nullptr);
}

}  // namespace
}  // namespace meshnet::cluster
