// Property-style parameterized tests for the queueing disciplines: the
// invariants the cross-layer results rest on, swept across
// configurations.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "net/qdisc.h"
#include "sim/random.h"

namespace meshnet::net {
namespace {

Packet packet_of(std::uint32_t bytes, Dscp dscp) {
  Packet p;
  p.flow = FlowKey{1, 1, 2, 2};
  p.dscp = dscp;
  p.payload = Payload::filled(bytes, 'x');
  return p;
}

// ---- Weighted DRR share accuracy across (share, packet-size mix) ------

using ShareParam = std::tuple<double, std::uint32_t, std::uint32_t>;

class WeightedShareTest : public ::testing::TestWithParam<ShareParam> {};

TEST_P(WeightedShareTest, LongRunShareMatchesConfig) {
  const auto [share, high_size, low_size] = GetParam();
  WeightedPrioQdisc q({share, 1.0 - share}, classify_by_dscp(), 1 << 30);
  auto refill = [&] {
    while (q.band_backlog_packets(0) < 20) {
      q.enqueue(packet_of(high_size, Dscp::kExpedited), 0);
    }
    while (q.band_backlog_packets(1) < 20) {
      q.enqueue(packet_of(low_size, Dscp::kScavenger), 0);
    }
  };
  for (int i = 0; i < 20000; ++i) {
    refill();
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  const double high = static_cast<double>(q.band_dequeued_bytes(0));
  const double low = static_cast<double>(q.band_dequeued_bytes(1));
  EXPECT_NEAR(high / (high + low), share, 0.03)
      << "share=" << share << " sizes=" << high_size << "/" << low_size;
}

INSTANTIATE_TEST_SUITE_P(
    Shares, WeightedShareTest,
    ::testing::Values(ShareParam{0.95, 1400, 1400},
                      ShareParam{0.95, 200, 8900},   // small high pkts
                      ShareParam{0.95, 8900, 200},   // large high pkts
                      ShareParam{0.75, 1400, 1400},
                      ShareParam{0.50, 1400, 700},
                      ShareParam{0.99, 1400, 1400}));

// ---- Work conservation: every enqueued byte is dequeued or dropped ----

class WorkConservationTest
    : public ::testing::TestWithParam<int> {};  // qdisc kind

std::unique_ptr<Qdisc> make_qdisc(int kind, std::uint64_t limit) {
  switch (kind) {
    case 0:
      return std::make_unique<FifoQdisc>(limit);
    case 1:
      return std::make_unique<StrictPrioQdisc>(2, classify_by_dscp(), limit);
    case 2:
      return std::make_unique<WeightedPrioQdisc>(
          std::vector<double>{0.9, 0.1}, classify_by_dscp(), limit);
    default:
      return std::make_unique<TokenBucketQdisc>(1e12, 1 << 20, limit);
  }
}

TEST_P(WorkConservationTest, BytesBalance) {
  auto q = make_qdisc(GetParam(), 20'000);
  sim::RngStream rng(GetParam(), "work-conservation");
  std::uint64_t dequeued_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(1, 9000));
    const Dscp dscp = rng.bernoulli(0.5) ? Dscp::kExpedited : Dscp::kScavenger;
    q->enqueue(packet_of(size, dscp), i);
    if (rng.bernoulli(0.7)) {
      if (const auto p = q->dequeue(i)) dequeued_bytes += p->size_bytes();
    }
  }
  // Drain.
  for (int i = 0; i < 20000 && !q->empty(); ++i) {
    if (const auto p = q->dequeue(1'000'000 + i * 1000)) {
      dequeued_bytes += p->size_bytes();
    }
  }
  const auto& s = q->stats();
  // Accounting convention: note_enqueue fires only for accepted packets,
  // note_drop for rejected ones; every accepted byte must eventually be
  // dequeued once the queue drains.
  EXPECT_EQ(s.enqueued_packets + s.dropped_packets, 5000u);
  EXPECT_EQ(s.enqueued_bytes, s.dequeued_bytes);
  EXPECT_EQ(s.enqueued_packets, s.dequeued_packets);
  EXPECT_EQ(s.dequeued_bytes, dequeued_bytes);
  EXPECT_EQ(q->backlog_bytes(), 0u);
  EXPECT_EQ(q->backlog_packets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WorkConservationTest,
                         ::testing::Values(0, 1, 2, 3));

// ---- FIFO order within a class, under every discipline -----------------

class IntraClassOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(IntraClassOrderTest, NeverReordersWithinAClass) {
  auto q = make_qdisc(GetParam(), 1 << 30);
  sim::RngStream rng(7, "order");
  // Tag packets with increasing seq per class.
  std::uint64_t next_seq[2] = {0, 0};
  std::uint64_t last_out[2] = {0, 0};
  for (int i = 0; i < 3000; ++i) {
    const int cls = rng.bernoulli(0.3) ? 0 : 1;
    Packet p = packet_of(100, cls == 0 ? Dscp::kExpedited : Dscp::kScavenger);
    p.seq = ++next_seq[cls];
    q->enqueue(std::move(p), i);
    if (rng.bernoulli(0.6)) {
      if (const auto out = q->dequeue(i)) {
        const int out_cls = out->dscp == Dscp::kExpedited ? 0 : 1;
        EXPECT_GT(out->seq, last_out[out_cls]);
        last_out[out_cls] = out->seq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, IntraClassOrderTest,
                         ::testing::Values(0, 1, 2, 3));

// ---- Strict priority: high band never waits behind low ----------------

TEST(StrictPriorityProperty, HighNeverQueuedBehindLow) {
  StrictPrioQdisc q(2, classify_by_dscp(), 1 << 30);
  sim::RngStream rng(9, "strict");
  for (int i = 0; i < 2000; ++i) {
    if (rng.bernoulli(0.5)) {
      q.enqueue(packet_of(500, Dscp::kScavenger), i);
    }
    if (rng.bernoulli(0.2)) {
      q.enqueue(packet_of(500, Dscp::kExpedited), i);
    }
    if (rng.bernoulli(0.6)) {
      const auto p = q.dequeue(i);
      if (p && p->dscp != Dscp::kExpedited) {
        // A low packet may only leave when no high packet waits.
        EXPECT_EQ(q.band_backlog_packets(0), 0u);
      }
    }
  }
}

// ---- Token bucket long-run rate across configurations ------------------

class TokenRateTest
    : public ::testing::TestWithParam<double> {};  // rate in bps

TEST_P(TokenRateTest, LongRunThroughputMatchesRate) {
  const double rate = GetParam();
  TokenBucketQdisc q(rate, 20'000, 1 << 30);
  // Keep it saturated and drain as fast as allowed for 10 simulated s.
  std::uint64_t sent_bytes = 0;
  sim::Time now = 0;
  const sim::Time horizon = sim::seconds(10);
  while (now < horizon) {
    while (q.backlog_packets() < 10) q.enqueue(packet_of(960, Dscp::kDefault), now);
    if (const auto p = q.dequeue(now)) {
      sent_bytes += p->size_bytes();
      continue;  // same instant, grab the next if tokens allow
    }
    const auto ready = q.next_ready(now);
    ASSERT_TRUE(ready.has_value());
    ASSERT_GT(*ready, now);
    now = *ready;
  }
  const double achieved_bps =
      static_cast<double>(sent_bytes) * 8.0 / sim::to_seconds(horizon);
  EXPECT_NEAR(achieved_bps / rate, 1.0, 0.02) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenRateTest,
                         ::testing::Values(1e6, 1e7, 1e8, 1e9));

}  // namespace
}  // namespace meshnet::net
