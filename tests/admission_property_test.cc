// Model-checked randomized tests for the admission controller.
//
// The controller is a pure state machine (`now` is an explicit argument,
// no simulator), so these tests drive it with randomized arrival /
// completion / time-advance schedules across 1,000 seeds and check the
// invariants the design promises after every transition:
//
//   (a) FIFO within a priority class: requests of the same class are
//       dispatched in offer order (lower classes may be overtaken,
//       that's the point of priorities);
//   (b) a request is never shed for capacity (`queue-full`) while a
//       strictly lower-priority request still occupies a queue slot —
//       the lower one must be preempted first;
//   (c) conservation: every offered request reaches exactly one terminal
//       outcome (dispatched+completed, or shed with a reason), callbacks
//       fire exactly once, and the controller's counters balance at
//       every step: offered == accepted + shed + queued.
//
// Each seed also randomizes the config (queue capacity, reserve slots,
// AIMD window/limits, retry-first eviction), so the sweep explores the
// corner where the reserved slot forces low-priority requests to queue
// while high priority sails through.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "mesh/admission.h"
#include "mesh/concurrency_limit.h"
#include "sim/random.h"
#include "sim/time.h"

namespace meshnet::mesh {
namespace {

constexpr std::array<TrafficClass, 3> kClassOfRank = {
    TrafficClass::kLatencySensitive,
    TrafficClass::kDefault,
    TrafficClass::kScavenger,
};

struct Tracked {
  std::uint64_t seq = 0;  ///< offer order, 1-based
  TrafficClass klass = TrafficClass::kDefault;
  int rank = 1;
  bool dispatched = false;
  bool shed = false;
  bool completed = false;
  ShedReason shed_reason = ShedReason::kQueueFull;
};

class Harness {
 public:
  Harness(AdmissionConfig config, std::uint64_t seed)
      : config_(config),
        controller_("svc", config),
        rng_(seed, "admission-property") {}

  void arrival() {
    auto owned = std::make_unique<Tracked>();
    Tracked* t = owned.get();
    t->seq = ++next_seq_;
    t->rank = static_cast<int>(rng_.uniform_int(0, 2));
    t->klass = kClassOfRank[t->rank];
    all_.push_back(std::move(owned));

    const bool is_retry = rng_.bernoulli(0.25);
    const sim::Time deadline =
        rng_.bernoulli(0.3)
            ? now_ + sim::milliseconds(rng_.uniform_int(1, 50))
            : 0;

    arrival_rank_ = t->rank;
    const AdmissionController::Decision decision =
        controller_.offer(t->klass, deadline, is_retry, now_);
    arrival_rank_ = -1;

    switch (decision.outcome) {
      case AdmissionController::Decision::Outcome::kAdmitted:
        record_dispatch(t);
        break;
      case AdmissionController::Decision::Outcome::kQueued:
        controller_.bind(
            decision.ticket, [this, t] { record_dispatch(t); },
            [this, t](ShedReason reason) { record_shed(t, reason); });
        break;
      case AdmissionController::Decision::Outcome::kShed:
        record_shed(t, decision.reason);
        if (decision.reason == ShedReason::kQueueFull) {
          // (b) Shed for capacity only when no strictly-lower-priority
          // request holds a queue slot (it would have been preempted).
          for (int r = t->rank + 1; r < 3; ++r) {
            EXPECT_EQ(controller_.queue_depth(kClassOfRank[r]), 0u)
                << "rank " << t->rank << " shed queue-full while rank " << r
                << " occupied a queue slot";
          }
        }
        break;
    }
  }

  void complete_one() {
    if (running_.empty()) return;
    const std::size_t idx =
        static_cast<std::size_t>(rng_.uniform_int(0, running_.size() - 1));
    Tracked* t = running_[idx];
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(idx));
    t->completed = true;
    const sim::Duration latency =
        sim::milliseconds(rng_.uniform_int(1, 30));
    // drain() runs inside: dispatch callbacks re-enter record_dispatch.
    controller_.on_complete(t->klass, latency, now_);
  }

  void advance() {
    now_ += sim::microseconds(rng_.uniform_int(100, 20000));
  }

  void check_step_invariants() {
    EXPECT_EQ(controller_.in_flight(), running_.size());
    EXPECT_LE(controller_.queue_depth(), config_.queue_capacity);
    const AdmissionCounters& c = controller_.counters();
    EXPECT_EQ(c.offered, all_.size());
    // (c) Every offered request is admitted, shed, or still queued.
    EXPECT_EQ(c.offered,
              c.accepted + c.shed_total() + controller_.queue_depth());
  }

  void drain_to_empty() {
    // Completing everything must eventually dispatch or deadline-shed
    // every queued entry; the queue cannot outlive the in-flight set.
    int guard = 0;
    while (!running_.empty()) {
      ASSERT_LT(++guard, 100000) << "drain did not terminate";
      advance();
      complete_one();
    }
    EXPECT_EQ(controller_.queue_depth(), 0u);
  }

  void check_final_accounting() const {
    const AdmissionCounters& c = controller_.counters();
    std::uint64_t dispatched = 0;
    std::uint64_t shed = 0;
    for (const auto& t : all_) {
      // (c) Exactly one terminal outcome each.
      EXPECT_NE(t->dispatched, t->shed)
          << "request " << t->seq << " finished with dispatched="
          << t->dispatched << " shed=" << t->shed;
      if (t->dispatched) {
        EXPECT_TRUE(t->completed);
        ++dispatched;
      } else {
        ++shed;
      }
    }
    EXPECT_EQ(c.accepted, dispatched);
    EXPECT_EQ(c.completed, dispatched);
    EXPECT_EQ(c.shed_total(), shed);
    EXPECT_EQ(c.offered, dispatched + shed);
  }

  sim::RngStream& rng() { return rng_; }

 private:
  void record_dispatch(Tracked* t) {
    EXPECT_FALSE(t->dispatched) << "double dispatch of " << t->seq;
    EXPECT_FALSE(t->shed) << "dispatch after shed of " << t->seq;
    t->dispatched = true;
    // Admission always respects the limit in force at dispatch time. (An
    // AIMD decrease may leave in_flight above the *new* limit — running
    // requests are not aborted — so this holds only here, not globally.)
    EXPECT_LE(controller_.in_flight(), controller_.limit());
    // (a) FIFO within the class: across direct admits and queue drains,
    // same-class dispatch order is offer order.
    EXPECT_GT(t->seq, last_dispatched_[t->rank])
        << "class rank " << t->rank << " reordered";
    last_dispatched_[t->rank] = t->seq;
    running_.push_back(t);
  }

  void record_shed(Tracked* t, ShedReason reason) {
    EXPECT_FALSE(t->dispatched) << "shed after dispatch of " << t->seq;
    EXPECT_FALSE(t->shed) << "double shed of " << t->seq;
    t->shed = true;
    t->shed_reason = reason;
    if (reason == ShedReason::kPreempted) {
      // Preemption is always by a strictly higher-priority arrival.
      ASSERT_GE(arrival_rank_, 0) << "preemption outside an offer";
      EXPECT_GT(t->rank, arrival_rank_)
          << "rank " << t->rank << " preempted by rank " << arrival_rank_;
    }
  }

  AdmissionConfig config_;
  AdmissionController controller_;
  sim::RngStream rng_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  int arrival_rank_ = -1;  ///< set while offer() runs, for (b)/preemption
  std::vector<std::unique_ptr<Tracked>> all_;
  std::vector<Tracked*> running_;
  std::array<std::uint64_t, 3> last_dispatched_{{0, 0, 0}};
};

AdmissionConfig random_config(sim::RngStream& rng) {
  AdmissionConfig config;
  config.enabled = true;
  config.queue_capacity = 1 + rng.uniform_int(0, 7);
  config.shed_retries_first = rng.bernoulli(0.5);
  config.reserve_slots = rng.bernoulli(0.5) ? 1 : 0;
  // Keep min_limit above the reservation so low-priority classes always
  // retain at least one usable slot (no permanent starvation).
  config.limit.min_limit = config.reserve_slots + 1;
  config.limit.initial_limit =
      config.limit.min_limit + static_cast<std::uint32_t>(
                                   rng.uniform_int(0, 4));
  config.limit.max_limit = config.limit.initial_limit + 4;
  config.limit.window = sim::milliseconds(rng.uniform_int(2, 40));
  config.limit.min_window_samples = 1 + rng.uniform_int(0, 4);
  return config;
}

TEST(AdmissionProperty, RandomScheduleHoldsInvariants) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::RngStream config_rng(seed, "admission-config");
    Harness harness(random_config(config_rng), seed);
    for (int op = 0; op < 120; ++op) {
      const double pick = harness.rng().uniform();
      if (pick < 0.55) {
        harness.arrival();
      } else if (pick < 0.90) {
        harness.complete_one();
      } else {
        harness.advance();
      }
      harness.check_step_invariants();
      if (::testing::Test::HasFatalFailure()) return;
    }
    harness.drain_to_empty();
    harness.check_final_accounting();
    if (::testing::Test::HasFailure()) {
      FAIL() << "invariant violated at seed " << seed;
    }
  }
}

// ----- Targeted unit tests for the pieces the property sweep exercises
// only statistically. -----

ConcurrencyLimitConfig fast_limit_config() {
  ConcurrencyLimitConfig config;
  config.initial_limit = 4;
  config.min_limit = 1;
  config.max_limit = 16;
  config.window = sim::milliseconds(10);
  config.min_window_samples = 1;
  config.latency_tolerance = 2.0;
  return config;
}

TEST(ConcurrencyLimit, AdditiveIncreaseWhenPressedAndLatencyFlat) {
  ConcurrencyLimit limit(fast_limit_config());
  sim::Time now = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    // Press the limit: fill every slot, then drain at constant latency.
    while (limit.has_capacity()) limit.on_start();
    now += sim::milliseconds(11);  // crosses the 10 ms window
    const std::uint32_t in_flight = limit.in_flight();
    for (std::uint32_t i = 0; i < in_flight; ++i) {
      limit.on_complete(sim::milliseconds(5), now);
    }
  }
  EXPECT_GT(limit.increases(), 0u);
  EXPECT_EQ(limit.limit(), 16u);  // grew to max under flat latency
}

TEST(ConcurrencyLimit, MultiplicativeDecreaseOnLatencyGradient) {
  ConcurrencyLimit limit(fast_limit_config());
  sim::Time now = 0;
  // Establish a 5 ms baseline across several windows.
  for (int epoch = 0; epoch < 8; ++epoch) {
    limit.on_start();
    now += sim::milliseconds(11);
    limit.on_complete(sim::milliseconds(5), now);
  }
  const std::uint32_t before = limit.limit();
  // Then latency jumps 10x — beyond the 2.0 tolerance.
  for (int epoch = 0; epoch < 8; ++epoch) {
    limit.on_start();
    now += sim::milliseconds(11);
    limit.on_complete(sim::milliseconds(50), now);
  }
  EXPECT_GT(limit.decreases(), 0u);
  EXPECT_LT(limit.limit(), before);
  EXPECT_GE(limit.limit(), fast_limit_config().min_limit);
}

TEST(ConcurrencyLimit, WindowsBelowSampleFloorAreDiscarded) {
  ConcurrencyLimitConfig config = fast_limit_config();
  // Each window collects at most limit+1 samples here; a floor of 20 is
  // unreachable, so the AIMD rule must never act on such sparse windows.
  config.min_window_samples = 20;
  ConcurrencyLimit limit(config);
  sim::Time now = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    while (limit.has_capacity()) limit.on_start();
    now += sim::milliseconds(11);
    limit.on_complete(sim::milliseconds(5), now);
    while (limit.in_flight() > 0) {
      limit.on_complete(sim::milliseconds(5), now);
    }
  }
  EXPECT_EQ(limit.limit(), config.initial_limit);
  EXPECT_EQ(limit.increases(), 0u);
  EXPECT_EQ(limit.decreases(), 0u);
}

AdmissionConfig reserve_config() {
  AdmissionConfig config;
  config.enabled = true;
  config.queue_capacity = 8;
  config.reserve_slots = 1;
  config.limit.initial_limit = 2;
  config.limit.min_limit = 2;
  config.limit.max_limit = 2;
  return config;
}

TEST(AdmissionController, ReservedSlotKeepsCapacityForHighPriority) {
  AdmissionController controller("svc", reserve_config());
  // First scavenger takes the one unreserved slot.
  auto low1 = controller.offer(TrafficClass::kScavenger, 0, false, 0);
  EXPECT_EQ(low1.outcome, AdmissionController::Decision::Outcome::kAdmitted);
  // Second scavenger must queue: the remaining slot is reserved.
  auto low2 = controller.offer(TrafficClass::kScavenger, 0, false, 0);
  EXPECT_EQ(low2.outcome, AdmissionController::Decision::Outcome::kQueued);
  // A latency-sensitive arrival takes the reserved slot immediately,
  // overtaking the queued scavenger.
  auto high = controller.offer(TrafficClass::kLatencySensitive, 0, false, 0);
  EXPECT_EQ(high.outcome, AdmissionController::Decision::Outcome::kAdmitted);
  EXPECT_EQ(controller.in_flight(), 2u);
  EXPECT_EQ(controller.queue_depth(TrafficClass::kScavenger), 1u);
}

TEST(AdmissionController, PreemptionEvictsNewestLowerPriorityRetryFirst) {
  AdmissionConfig config = reserve_config();
  config.queue_capacity = 2;
  config.shed_retries_first = true;
  AdmissionController controller("svc", config);
  // Fill both concurrency slots so everything else queues.
  controller.offer(TrafficClass::kLatencySensitive, 0, false, 0);
  controller.offer(TrafficClass::kLatencySensitive, 0, false, 0);
  // Queue: an older scavenger first try, then a scavenger retry.
  auto first_try = controller.offer(TrafficClass::kScavenger, 0, false, 0);
  auto retry = controller.offer(TrafficClass::kScavenger, 0, true, 0);
  ASSERT_EQ(first_try.outcome,
            AdmissionController::Decision::Outcome::kQueued);
  ASSERT_EQ(retry.outcome, AdmissionController::Decision::Outcome::kQueued);
  ShedReason first_try_reason{};
  ShedReason retry_reason{};
  bool first_try_shed = false;
  bool retry_shed = false;
  controller.bind(first_try.ticket, [] {}, [&](ShedReason r) {
    first_try_shed = true;
    first_try_reason = r;
  });
  controller.bind(retry.ticket, [] {}, [&](ShedReason r) {
    retry_shed = true;
    retry_reason = r;
  });
  // Queue is full; a default-class arrival preempts the scavenger retry
  // (not the older first try) and takes its slot.
  auto mid = controller.offer(TrafficClass::kDefault, 0, false, 0);
  EXPECT_EQ(mid.outcome, AdmissionController::Decision::Outcome::kQueued);
  EXPECT_TRUE(retry_shed);
  EXPECT_EQ(retry_reason, ShedReason::kPreempted);
  EXPECT_FALSE(first_try_shed);
  EXPECT_EQ(controller.counters().shed_preempted, 1u);
}

TEST(AdmissionController, DeadlineUnmeetableShedsAtOfferAndDequeue) {
  AdmissionConfig config = reserve_config();
  config.reserve_slots = 0;
  AdmissionController controller("svc", config);
  // Teach the estimator ~20 ms latencies.
  for (int i = 0; i < 10; ++i) {
    auto d = controller.offer(TrafficClass::kDefault, 0, false, 0);
    ASSERT_EQ(d.outcome, AdmissionController::Decision::Outcome::kAdmitted);
    controller.on_complete(TrafficClass::kDefault, sim::milliseconds(20), 0);
  }
  ASSERT_GT(controller.latency_estimate(), sim::milliseconds(10));

  // An arrival whose deadline is closer than the estimate is shed now.
  auto hopeless = controller.offer(TrafficClass::kDefault,
                                   sim::milliseconds(5), false, 0);
  EXPECT_EQ(hopeless.outcome, AdmissionController::Decision::Outcome::kShed);
  EXPECT_EQ(hopeless.reason, ShedReason::kDeadline);

  // A queued request whose deadline expires while waiting is shed at
  // dequeue instead of wasting a slot.
  controller.offer(TrafficClass::kDefault, 0, false, 0);
  controller.offer(TrafficClass::kDefault, 0, false, 0);  // slots now full
  auto queued = controller.offer(TrafficClass::kDefault,
                                 sim::milliseconds(30), false, 0);
  ASSERT_EQ(queued.outcome, AdmissionController::Decision::Outcome::kQueued);
  ShedReason reason{};
  bool was_shed = false;
  bool was_dispatched = false;
  controller.bind(queued.ticket, [&] { was_dispatched = true; },
                  [&](ShedReason r) {
                    was_shed = true;
                    reason = r;
                  });
  // A slot frees at t=25ms: 25 + ~20 estimate > 30 deadline -> shed.
  controller.on_complete(TrafficClass::kDefault, sim::milliseconds(20),
                         sim::milliseconds(25));
  EXPECT_TRUE(was_shed);
  EXPECT_FALSE(was_dispatched);
  EXPECT_EQ(reason, ShedReason::kDeadline);
}

}  // namespace
}  // namespace meshnet::mesh
