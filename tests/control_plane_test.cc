// Tests for control-plane fault tolerance: versioned config epochs,
// ack/retry push over a lossy channel, rollback on poison config,
// crash/recovery reconvergence, cert rotation and flap damping.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "mesh/control_plane.h"
#include "mesh/health_checker.h"
#include "mesh/sidecar.h"
#include "sim/simulator.h"

namespace meshnet::mesh {
namespace {

std::uint64_t counter(const ControlPlane& cp, std::string_view name) {
  const obs::Counter* c = cp.metrics().find_counter(name);
  return c == nullptr ? 0 : c->value();
}

/// Client pod + N server replicas, sidecars injected, no apps: these
/// tests exercise the push channel and probe machinery, not request
/// traffic.
class ControlPlaneFixture : public ::testing::Test {
 protected:
  void build(int replicas = 1, MeshPolicies policies = {}) {
    cluster_ = std::make_unique<cluster::Cluster>(sim_);
    cluster_->add_node("n1");
    client_pod_ = &cluster_->add_pod("n1", "client", "client", 0);
    for (int i = 1; i <= replicas; ++i) {
      server_pods_.push_back(&cluster_->add_pod(
          "n1", "server-v" + std::to_string(i), "server", 8080));
    }
    cp_ = std::make_unique<ControlPlane>(sim_, *cluster_,
                                         std::move(policies));
    client_sidecar_ = &cp_->inject_sidecar(*client_pod_, {});
    for (auto* pod : server_pods_) {
      server_sidecars_.push_back(&cp_->inject_sidecar(*pod, {}));
    }
  }

  void run_for(sim::Duration duration) {
    sim_.run_until(sim_.now() + duration);
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<ControlPlane> cp_;
  cluster::Pod* client_pod_ = nullptr;
  std::vector<cluster::Pod*> server_pods_;
  Sidecar* client_sidecar_ = nullptr;
  std::vector<Sidecar*> server_sidecars_;
};

// ------------------------------------------------------ config epochs --

TEST_F(ControlPlaneFixture, EpochIsMonotonicAcrossPushes) {
  build();
  EXPECT_EQ(cp_->epoch(), 0u);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    cp_->push_config();
    EXPECT_EQ(cp_->epoch(), i);
    EXPECT_TRUE(cp_->converged());
    EXPECT_EQ(cp_->acked_epoch("server-v1"), i);
    EXPECT_EQ(cp_->acked_epoch("client"), i);
  }
  const obs::Gauge* epoch_gauge = cp_->metrics().find_gauge("config_epoch");
  ASSERT_NE(epoch_gauge, nullptr);
  EXPECT_EQ(epoch_gauge->value(), 3.0);
}

TEST_F(ControlPlaneFixture, UnchangedConfigsAreSkippedNotResent) {
  build();
  const std::uint64_t attempts_before = counter(*cp_, "cp_push_attempts_total");
  cp_->push_config();  // nothing changed since injection
  EXPECT_EQ(counter(*cp_, "cp_push_attempts_total"), attempts_before);
  EXPECT_EQ(counter(*cp_, "cp_push_skipped_noop"), 2u);
  // The new epoch is still acked implicitly: no sidecar is stale.
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(cp_->stale_sidecars(), 0u);

  // A real policy change sends real pushes again.
  cp_->policies().retry.max_retries = 7;
  cp_->push_config();
  EXPECT_EQ(counter(*cp_, "cp_push_attempts_total"), attempts_before + 2);
  EXPECT_TRUE(cp_->converged());
}

TEST_F(ControlPlaneFixture, StaleEpochPushIsRejectedBySidecar) {
  build();
  cp_->push_config();
  cp_->policies().retry.max_retries = 5;
  cp_->push_config();
  ASSERT_EQ(server_sidecars_[0]->config_epoch(), 2u);

  SidecarConfig stale = server_sidecars_[0]->config();
  stale.epoch = 1;
  EXPECT_FALSE(server_sidecars_[0]->apply_config(stale));
  EXPECT_EQ(server_sidecars_[0]->last_config_error(), "stale-epoch");
  EXPECT_EQ(server_sidecars_[0]->stats().configs_rejected, 1u);
  EXPECT_EQ(server_sidecars_[0]->config().retry.max_retries, 5);

  // Epoch 0 marks an unversioned (test/local) config: always applies.
  SidecarConfig unversioned = server_sidecars_[0]->config();
  unversioned.epoch = 0;
  EXPECT_TRUE(server_sidecars_[0]->apply_config(unversioned));
}

// -------------------------------------------------- lossy push channel --

TEST_F(ControlPlaneFixture, LostPushesRetryWithBackoffUntilAcked) {
  MeshPolicies policies;
  policies.cp.ack_timeout = sim::milliseconds(20);
  policies.cp.retry_backoff_base = sim::milliseconds(10);
  policies.cp.retry_backoff_max = sim::milliseconds(40);
  build(1, policies);
  cp_->set_push_loss(1.0);
  cp_->policies().retry.max_retries = 3;  // make configs actually change
  cp_->push_config();
  run_for(sim::milliseconds(500));

  EXPECT_FALSE(cp_->converged());
  EXPECT_EQ(cp_->stale_sidecars(), 2u);
  EXPECT_GT(counter(*cp_, "cp_push_retries_total"), 0u);
  const std::uint64_t acks_at_heal = counter(*cp_, "cp_push_acks_total");

  cp_->set_push_loss(0.0);
  run_for(sim::milliseconds(500));
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(cp_->stale_sidecars(), 0u);
  EXPECT_EQ(cp_->acked_epoch("server-v1"), cp_->epoch());
  // Convergence came from the retry loop (the acks arrived after the
  // heal), not a fresh operator push — the epoch never moved.
  EXPECT_EQ(cp_->epoch(), 1u);
  EXPECT_GT(counter(*cp_, "cp_push_acks_total"), acks_at_heal);
}

TEST_F(ControlPlaneFixture, PartitionDropsPushesAndHealRelaunches) {
  build();
  cp_->set_partitioned("server-v1", true);
  cp_->policies().retry.max_retries = 5;
  cp_->push_config();

  EXPECT_GT(counter(*cp_, "cp_push_dropped_total"), 0u);
  EXPECT_FALSE(cp_->converged());
  EXPECT_LT(cp_->acked_epoch("server-v1"), cp_->epoch());
  EXPECT_EQ(cp_->acked_epoch("client"), cp_->epoch());

  cp_->set_partitioned("server-v1", false);
  run_for(sim::milliseconds(100));
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(cp_->acked_epoch("server-v1"), cp_->epoch());
}

// ------------------------------------------------- poison config + nack --

TEST_F(ControlPlaneFixture, PoisonConfigNackRollsBackToLastGood) {
  build();
  cp_->push_config();  // converge once: this is the last-good snapshot
  ASSERT_TRUE(cp_->converged());
  const sim::Duration good_timeout = cp_->policies().request_timeout;

  cp_->policies().request_timeout = -sim::seconds(1);  // poison
  cp_->push_config();
  run_for(sim::milliseconds(200));

  EXPECT_GT(counter(*cp_, "cp_push_nacks_total"), 0u);
  EXPECT_EQ(counter(*cp_, "cp_config_rollbacks_total"), 1u);
  // The rollback restored the last converged policies and re-pushed a
  // fresh (still monotonic) epoch that every sidecar acked.
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(cp_->policies().request_timeout, good_timeout);
  // The first sidecar pushed to nacked and triggered the rollback; every
  // sidecar — nacker included — still runs the last-good timeout.
  EXPECT_GT(client_sidecar_->stats().configs_rejected, 0u);
  EXPECT_EQ(client_sidecar_->config().request_timeout, good_timeout);
  for (const Sidecar* sidecar : server_sidecars_) {
    EXPECT_EQ(sidecar->config().request_timeout, good_timeout);
  }
}

TEST_F(ControlPlaneFixture, CompileMutatorPoisonIsClearedByRollback) {
  build();
  cp_->push_config();
  ASSERT_TRUE(cp_->converged());

  cp_->set_compile_mutator([](const std::string& pod, SidecarConfig& config) {
    if (pod == "server-v1") config.retry.max_retries = -1;
  });
  cp_->policies().retry.per_try_timeout = sim::milliseconds(123);
  cp_->push_config();
  run_for(sim::milliseconds(200));

  EXPECT_EQ(counter(*cp_, "cp_config_rollbacks_total"), 1u);
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(server_sidecars_[0]->last_config_error(), "negative max_retries");
  EXPECT_GE(server_sidecars_[0]->config().retry.max_retries, 0);
}

// --------------------------------------------------- crash + recovery --

TEST_F(ControlPlaneFixture, CrashGrowsStalenessRecoveryReconverges) {
  MeshPolicies policies;
  policies.cp.push_latency_base = sim::milliseconds(1);
  policies.cp.push_latency_jitter = sim::milliseconds(2);
  policies.cp.reconverge_pacing = sim::milliseconds(10);
  build(2, policies);
  cp_->start(sim::milliseconds(50));
  run_for(sim::milliseconds(500));
  ASSERT_TRUE(cp_->converged());

  cp_->crash();
  EXPECT_TRUE(cp_->crashed());
  EXPECT_FALSE(cp_->converged());
  EXPECT_EQ(counter(*cp_, "cp_crashes_total"), 1u);

  // Discovery keeps changing while nobody can push: staleness grows.
  ASSERT_TRUE(cluster_->crash_pod("server-v2"));
  ASSERT_TRUE(cluster_->restart_pod("server-v2"));  // registry bump
  run_for(sim::milliseconds(400));
  EXPECT_GE(cp_->discovery_staleness(), sim::milliseconds(400));
  // The data plane still runs its last-applied config.
  EXPECT_GT(server_sidecars_[0]->config_epoch(), 0u);

  cp_->recover();
  EXPECT_FALSE(cp_->crashed());
  EXPECT_EQ(counter(*cp_, "cp_recoveries_total"), 1u);
  run_for(sim::seconds(1));
  EXPECT_TRUE(cp_->converged());
  EXPECT_EQ(cp_->stale_sidecars(), 0u);
  EXPECT_EQ(cp_->discovery_staleness(), 0);
  EXPECT_GT(cp_->last_reconverge_duration(), 0);
}

TEST_F(ControlPlaneFixture, CrashedControlPlaneIgnoresOperatorPushes) {
  build();
  cp_->push_config();
  const std::uint64_t epoch = cp_->epoch();
  cp_->crash();
  cp_->policies().retry.max_retries = 9;
  cp_->push_config();  // no-op while down
  EXPECT_EQ(cp_->epoch(), epoch);
  EXPECT_EQ(server_sidecars_[0]->config().retry.max_retries, 1);
}

// ------------------------------------------------------ cert rotation --

TEST_F(ControlPlaneFixture, CertificatesRotateAheadOfExpiry) {
  MeshPolicies policies;
  policies.certificate_lifetime = sim::seconds(2);
  policies.cp.cert_refresh_ahead = 0.25;
  build(1, policies);

  const Certificate* first = cp_->certificate("server");
  ASSERT_NE(first, nullptr);
  const std::uint64_t first_serial = first->serial;

  run_for(sim::seconds(3));
  EXPECT_GT(counter(*cp_, "cp_cert_rotations_total"), 0u);
  const Certificate* rotated = cp_->certificate("server");
  ASSERT_NE(rotated, nullptr);
  EXPECT_GT(rotated->serial, first_serial);
  EXPECT_TRUE(rotated->valid_at(sim_.now()));
  // The rotated cert reached the sidecar through a config push.
  EXPECT_EQ(server_sidecars_[0]->config().identity_cert.serial,
            rotated->serial);

  const obs::Gauge* expiry = cp_->metrics().find_gauge(
      "cert_seconds_to_expiry", {{"service", "server"}});
  ASSERT_NE(expiry, nullptr);
  EXPECT_GT(expiry->value(), 0.0);
}

TEST_F(ControlPlaneFixture, NoRotationWhenRefreshAheadDisabled) {
  MeshPolicies policies;
  policies.certificate_lifetime = sim::seconds(2);
  build(1, policies);  // cert_refresh_ahead = 0
  run_for(sim::seconds(5));
  EXPECT_EQ(counter(*cp_, "cp_cert_rotations_total"), 0u);
}

// ------------------------------------------------------- flap damping --

TEST_F(ControlPlaneFixture, FlapDampingSuppressesThrashingReadmission) {
  MeshPolicies policies;
  policies.health_check.enabled = true;
  policies.health_check.interval = sim::milliseconds(50);
  policies.health_check.timeout = sim::milliseconds(40);
  policies.health_check.unhealthy_threshold = 1;
  policies.health_check.healthy_threshold = 1;
  policies.health_check.flap_max_transitions = 2;
  policies.health_check.flap_window = sim::seconds(60);
  policies.health_check.flap_penalty = sim::seconds(60);
  build(2, policies);
  run_for(sim::milliseconds(300));  // initial probes settle

  const HealthChecker* checker = client_sidecar_->health_checker();
  ASSERT_NE(checker, nullptr);

  // Transition 1: eviction. Transition 2: readmission — arms the damper.
  ASSERT_TRUE(cluster_->crash_pod("server-v1"));
  run_for(sim::milliseconds(500));
  EXPECT_FALSE(checker->healthy("server", "server-v1"));
  ASSERT_TRUE(cluster_->restart_pod("server-v1"));
  run_for(sim::milliseconds(500));
  EXPECT_TRUE(checker->healthy("server", "server-v1"));

  // Third flap: eviction still happens (always allowed) but the
  // readmission is suppressed for the penalty window.
  ASSERT_TRUE(cluster_->crash_pod("server-v1"));
  run_for(sim::milliseconds(500));
  EXPECT_FALSE(checker->healthy("server", "server-v1"));
  ASSERT_TRUE(cluster_->restart_pod("server-v1"));
  run_for(sim::milliseconds(500));
  EXPECT_FALSE(checker->healthy("server", "server-v1"));
  EXPECT_GT(checker->stats().flap_damps, 0u);
}

// ------------------------------------- config validation + fingerprint --

TEST(ConfigValidation, DefaultConfigIsValid) {
  EXPECT_EQ(validate_config(SidecarConfig{}), "");
}

TEST(ConfigValidation, RejectsMalformedConfigs) {
  SidecarConfig bad_timeout;
  bad_timeout.request_timeout = -1;
  EXPECT_NE(validate_config(bad_timeout), "");

  SidecarConfig bad_retries;
  bad_retries.retry.max_retries = -2;
  EXPECT_NE(validate_config(bad_retries), "");

  SidecarConfig bad_endpoint;
  ClusterSpec spec;
  spec.name = "svc";
  cluster::Endpoint nameless;
  nameless.port = 8080;
  spec.endpoints.push_back(nameless);
  bad_endpoint.clusters["svc"] = spec;
  EXPECT_NE(validate_config(bad_endpoint), "");

  SidecarConfig bad_route;
  bad_route.routes["host"] = "";
  EXPECT_NE(validate_config(bad_route), "");
}

TEST(ConfigFingerprint, ExcludesEpochIncludesPayload) {
  SidecarConfig base;
  const std::uint64_t h = hash_sidecar_config(base);

  SidecarConfig same_but_newer = base;
  same_but_newer.epoch = 42;
  EXPECT_EQ(hash_sidecar_config(same_but_newer), h);

  SidecarConfig retry_changed = base;
  retry_changed.retry.max_retries = 7;
  EXPECT_NE(hash_sidecar_config(retry_changed), h);

  SidecarConfig cert_changed = base;
  cert_changed.identity_cert.serial = 9;
  EXPECT_NE(hash_sidecar_config(cert_changed), h);
}

}  // namespace
}  // namespace meshnet::mesh
