// Tests for the util module: strings, flags, logging, JSON and the
// thread pool behind the sweep harness.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace meshnet::util {
namespace {

TEST(Strings, IequalsAscii) {
  EXPECT_TRUE(iequals("Host", "host"));
  EXPECT_TRUE(iequals("X-REQUEST-ID", "x-request-id"));
  EXPECT_FALSE(iequals("host", "hos"));
  EXPECT_FALSE(iequals("a", "b"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD-123"), "mixed-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\r\n\thi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("/product/1", "/product"));
  EXPECT_FALSE(starts_with("/prod", "/product"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("+5").has_value());
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(format_bytes(5ULL * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

Flags parse_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags flags = parse_args({"--rps=30", "--name=fig4"});
  EXPECT_EQ(flags.get_int_or("rps", 0), 30);
  EXPECT_EQ(flags.get_or("name", ""), "fig4");
}

TEST(Flags, SpaceSyntax) {
  const Flags flags = parse_args({"--rps", "42"});
  EXPECT_EQ(flags.get_int_or("rps", 0), 42);
}

TEST(Flags, BareBoolean) {
  const Flags flags = parse_args({"--csv", "--verbose"});
  EXPECT_TRUE(flags.get_bool_or("csv", false));
  EXPECT_TRUE(flags.get_bool_or("verbose", false));
  EXPECT_FALSE(flags.get_bool_or("missing", false));
  EXPECT_TRUE(flags.get_bool_or("missing", true));
}

TEST(Flags, BoolValues) {
  EXPECT_TRUE(parse_args({"--x=true"}).get_bool_or("x", false));
  EXPECT_TRUE(parse_args({"--x=1"}).get_bool_or("x", false));
  EXPECT_TRUE(parse_args({"--x=yes"}).get_bool_or("x", false));
  EXPECT_FALSE(parse_args({"--x=false"}).get_bool_or("x", true));
  EXPECT_FALSE(parse_args({"--x=0"}).get_bool_or("x", true));
}

TEST(Flags, LaterDuplicateWins) {
  const Flags flags = parse_args({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int_or("n", 0), 2);
  // ... but the repeat is recorded, so strict parsers can reject it.
  ASSERT_EQ(flags.duplicates().size(), 1u);
  EXPECT_EQ(flags.duplicates()[0], "n");
}

TEST(Flags, NoDuplicatesOnCleanLine) {
  const Flags flags = parse_args({"--a=1", "--b=2", "--c"});
  EXPECT_TRUE(flags.duplicates().empty());
}

TEST(Flags, UnknownFlagsDetected) {
  const Flags flags = parse_args({"--rps=30", "--thread=8", "--csv"});
  const auto unknown = flags.unknown({"rps", "csv", "threads"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "thread");  // the classic typo for --threads
}

TEST(Flags, UnknownRespectsPrefixWhitelist) {
  const Flags flags =
      parse_args({"--benchmark_filter=BM_Foo", "--benchmark_min_time=2"});
  EXPECT_TRUE(flags.unknown({}, {"benchmark_"}).empty());
  EXPECT_EQ(flags.unknown({}).size(), 2u);
}

TEST(Flags, ValidateCleanLineIsEmpty) {
  const Flags flags = parse_args({"--rps=30", "--csv"});
  EXPECT_EQ(flags.validate({"rps", "csv"}), "");
}

TEST(Flags, ValidateReportsUnknownAndDuplicates) {
  const Flags flags = parse_args({"--typo=1", "--rps=1", "--rps=2"});
  const std::string message = flags.validate({"rps"});
  EXPECT_NE(message.find("unknown flag --typo"), std::string::npos)
      << message;
  EXPECT_NE(message.find("duplicate flag --rps"), std::string::npos)
      << message;
}

TEST(Flags, Positional) {
  const Flags flags = parse_args({"input.txt", "--k=v", "more"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(Flags, NumericFallbacks) {
  const Flags flags = parse_args({"--bad=abc"});
  EXPECT_EQ(flags.get_int_or("bad", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double_or("bad", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(parse_args({"--d=2.25"}).get_double_or("d", 0), 2.25);
}

TEST(Flags, HasAndGet) {
  const Flags flags = parse_args({"--present=x"});
  EXPECT_TRUE(flags.has("present"));
  EXPECT_FALSE(flags.has("absent"));
  EXPECT_FALSE(flags.get("absent").has_value());
}

TEST(Logging, LevelParsing) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed lines are cheap and side-effect free.
  MESHNET_DEBUG() << "must not crash";
  set_log_level(prior);
}

// ---------------------------------------------------------------------------
// JSON document

TEST(Json, BuildAndSerializeCompact) {
  Json doc = Json::object();
  doc.set("name", "fig4");
  doc.set("threads", 8);
  doc.set("ok", true);
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push_back(1.5);
  arr.push_back("two");
  doc.set("items", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"fig4\",\"threads\":8,\"ok\":true,\"none\":null,"
            "\"items\":[1.5,\"two\"]}");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwrites) {
  Json doc = Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("z", 3);  // overwrite keeps the original slot
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[0].second.number_or(0), 3);
  EXPECT_EQ(doc.members()[1].first, "a");
}

TEST(Json, RoundTripThroughParse) {
  Json doc = Json::object();
  doc.set("exact", 0.1);
  doc.set("big", 9007199254740992.0);  // 2^53
  doc.set("neg", -17);
  doc.set("escaped", "a\"b\\c\n\t\x01");
  Json arr = Json::array();
  for (int i = 0; i < 3; ++i) arr.push_back(i);
  doc.set("arr", std::move(arr));

  for (const int indent : {-1, 2}) {
    const auto parsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(parsed->dump(), doc.dump());
  }
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double v : {0.0, -0.0, 1e-300, 1.7976931348623157e308,
                         3.141592653589793, 1.0 / 3.0}) {
    const Json j(v);
    const auto parsed = Json::parse(j.dump());
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_EQ(parsed->number_or(-1), v);
  }
  // Integer-valued doubles print without an exponent or decimal point.
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(static_cast<std::uint64_t>(1234567)).dump(), "1234567");
}

TEST(Json, ParsesHandWrittenDocument) {
  const auto parsed = Json::parse(R"(
    {
      "a": [1, 2.5, -3e2, true, false, null],
      "b": { "nested": "x Aé" }
    }
  )");
  ASSERT_TRUE(parsed.has_value());
  const Json* a = parsed->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 6u);
  EXPECT_EQ(a->items()[2].number_or(0), -300.0);
  const Json* nested = parsed->find("b")->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->string_or(""), "x A\xc3\xa9");
}

TEST(Json, ParseErrorsAreReported) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterm",
                          "{\"a\":1,}", "1 2", "{'a':1}"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, FindOnNonObjectIsNull) {
  EXPECT_EQ(Json(1.0).find("x"), nullptr);
  EXPECT_EQ(Json::array().find("x"), nullptr);
  EXPECT_EQ(Json::object().find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);

  // The pool is reusable after wait_idle.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // After the throw, the pool drains and keeps working.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(3), 3);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);  // hardware default
}

TEST(ThreadPool, SingleThreadRunsInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.submit([i, &order] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace meshnet::util
