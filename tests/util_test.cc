// Tests for the util module: strings, flags, logging plumbing.

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"

namespace meshnet::util {
namespace {

TEST(Strings, IequalsAscii) {
  EXPECT_TRUE(iequals("Host", "host"));
  EXPECT_TRUE(iequals("X-REQUEST-ID", "x-request-id"));
  EXPECT_FALSE(iequals("host", "hos"));
  EXPECT_FALSE(iequals("a", "b"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD-123"), "mixed-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\r\n\thi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("/product/1", "/product"));
  EXPECT_FALSE(starts_with("/prod", "/product"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("+5").has_value());
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(format_bytes(5ULL * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

Flags parse_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags flags = parse_args({"--rps=30", "--name=fig4"});
  EXPECT_EQ(flags.get_int_or("rps", 0), 30);
  EXPECT_EQ(flags.get_or("name", ""), "fig4");
}

TEST(Flags, SpaceSyntax) {
  const Flags flags = parse_args({"--rps", "42"});
  EXPECT_EQ(flags.get_int_or("rps", 0), 42);
}

TEST(Flags, BareBoolean) {
  const Flags flags = parse_args({"--csv", "--verbose"});
  EXPECT_TRUE(flags.get_bool_or("csv", false));
  EXPECT_TRUE(flags.get_bool_or("verbose", false));
  EXPECT_FALSE(flags.get_bool_or("missing", false));
  EXPECT_TRUE(flags.get_bool_or("missing", true));
}

TEST(Flags, BoolValues) {
  EXPECT_TRUE(parse_args({"--x=true"}).get_bool_or("x", false));
  EXPECT_TRUE(parse_args({"--x=1"}).get_bool_or("x", false));
  EXPECT_TRUE(parse_args({"--x=yes"}).get_bool_or("x", false));
  EXPECT_FALSE(parse_args({"--x=false"}).get_bool_or("x", true));
  EXPECT_FALSE(parse_args({"--x=0"}).get_bool_or("x", true));
}

TEST(Flags, LaterDuplicateWins) {
  const Flags flags = parse_args({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int_or("n", 0), 2);
}

TEST(Flags, Positional) {
  const Flags flags = parse_args({"input.txt", "--k=v", "more"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(Flags, NumericFallbacks) {
  const Flags flags = parse_args({"--bad=abc"});
  EXPECT_EQ(flags.get_int_or("bad", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double_or("bad", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(parse_args({"--d=2.25"}).get_double_or("d", 0), 2.25);
}

TEST(Flags, HasAndGet) {
  const Flags flags = parse_args({"--present=x"});
  EXPECT_TRUE(flags.has("present"));
  EXPECT_FALSE(flags.has("absent"));
  EXPECT_FALSE(flags.get("absent").has_value());
}

TEST(Logging, LevelParsing) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed lines are cheap and side-effect free.
  MESHNET_DEBUG() << "must not crash";
  set_log_level(prior);
}

}  // namespace
}  // namespace meshnet::util
