#pragma once

// Fixed-width text tables for bench output. Every bench binary prints the
// rows/series the paper reports through this printer so the output format
// stays uniform and greppable.

#include <string>
#include <vector>

namespace meshnet::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extras are dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with aligned columns, a header underline, and a trailing
  /// newline.
  std::string to_string() const;

  /// Renders as comma-separated values (for plotting scripts).
  std::string to_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace meshnet::stats
