#include "stats/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace meshnet::stats {

namespace {

util::Json histogram_summary(const LogHistogram& histogram) {
  util::Json summary = util::Json::object();
  summary.set("count", util::Json(histogram.count()));
  summary.set("min", util::Json(histogram.min()));
  summary.set("max", util::Json(histogram.max()));
  summary.set("mean", util::Json(histogram.mean()));
  summary.set("p50", util::Json(histogram.percentile(50.0)));
  summary.set("p90", util::Json(histogram.percentile(90.0)));
  summary.set("p99", util::Json(histogram.percentile(99.0)));
  return summary;
}

double tolerance_for(std::string_view leaf, const CompareOptions& options) {
  const auto it = options.metric_tolerance.find(std::string(leaf));
  return it != options.metric_tolerance.end() ? it->second
                                              : options.default_tolerance;
}

bool within_tolerance(double baseline, double current, double tolerance) {
  const double diff = std::fabs(current - baseline);
  if (diff == 0.0) return true;
  const double scale = std::max(std::fabs(baseline), std::fabs(current));
  return diff <= tolerance * scale;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

/// Compares every numeric member of `baseline_obj` against `current_obj`,
/// recursing into nested objects. `path` names the location for messages;
/// the leaf key selects the tolerance.
void compare_numeric_members(const util::Json& baseline_obj,
                             const util::Json& current_obj,
                             const std::string& path,
                             const CompareOptions& options,
                             CompareOutcome& outcome) {
  for (const auto& [key, baseline_value] : baseline_obj.members()) {
    // Anything wall-clock-derived is machine-dependent by construction
    // and must never gate: "wall_ms", "threads", and any "wall_*" metric
    // (e.g. wall_events_per_sec from the engine profiler).
    if (key == "wall_ms" || key == "threads" ||
        key.compare(0, 5, "wall_") == 0) {
      continue;
    }
    const std::string member_path = path + "." + key;
    const util::Json* current_value = current_obj.find(key);
    if (!current_value) {
      outcome.ok = false;
      outcome.failures.push_back("missing in current: " + member_path);
      continue;
    }
    if (baseline_value.is_object()) {
      if (!current_value->is_object()) {
        outcome.ok = false;
        outcome.failures.push_back("not an object in current: " +
                                   member_path);
        continue;
      }
      compare_numeric_members(baseline_value, *current_value, member_path,
                              options, outcome);
      continue;
    }
    if (!baseline_value.is_number()) continue;  // ids/params handled upstream
    if (!current_value->is_number()) {
      outcome.ok = false;
      outcome.failures.push_back("not a number in current: " + member_path);
      continue;
    }
    ++outcome.compared;
    const double tolerance = tolerance_for(key, options);
    const double base = baseline_value.number_or(0.0);
    const double cur = current_value->number_or(0.0);
    if (!within_tolerance(base, cur, tolerance)) {
      outcome.ok = false;
      outcome.failures.push_back(
          member_path + ": baseline " + format_double(base) + " vs current " +
          format_double(cur) + " (tolerance " + format_double(tolerance) +
          ")");
    }
  }
}

const util::Json* find_point(const util::Json& points, std::string_view id) {
  for (const util::Json& point : points.items()) {
    const util::Json* point_id = point.find("id");
    if (point_id && point_id->string_or("") == id) return &point;
  }
  return nullptr;
}

}  // namespace

util::Json BenchReport::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json("meshnet-bench-v1"));
  doc.set("experiment", util::Json(experiment));
  util::Json config_obj = util::Json::object();
  for (const auto& [key, value] : config) {
    config_obj.set(key, util::Json(value));
  }
  doc.set("config", std::move(config_obj));
  doc.set("threads", util::Json(threads));
  doc.set("wall_ms", util::Json(wall_ms));
  if (!engine.empty()) {
    util::Json engine_obj = util::Json::object();
    for (const auto& [key, value] : engine) {
      engine_obj.set(key, util::Json(value));
    }
    doc.set("engine", std::move(engine_obj));
  }

  util::Json points_array = util::Json::array();
  for (const BenchPoint& point : points) {
    util::Json point_obj = util::Json::object();
    point_obj.set("id", util::Json(point.id));
    util::Json params_obj = util::Json::object();
    for (const auto& [key, value] : point.params) {
      params_obj.set(key, util::Json(value));
    }
    point_obj.set("params", std::move(params_obj));
    util::Json metrics_obj = util::Json::object();
    for (const auto& [name, value] : point.scalars) {
      metrics_obj.set(name, util::Json(value));
    }
    point_obj.set("metrics", std::move(metrics_obj));
    util::Json counters_obj = util::Json::object();
    for (const auto& [name, value] : point.counters) {
      counters_obj.set(name, util::Json(value));
    }
    point_obj.set("counters", std::move(counters_obj));
    util::Json histograms_obj = util::Json::object();
    for (const auto& [name, histogram] : point.histograms) {
      histograms_obj.set(name, histogram_summary(histogram));
    }
    point_obj.set("histograms", std::move(histograms_obj));
    point_obj.set("wall_ms", util::Json(point.wall_ms));
    points_array.push_back(std::move(point_obj));
  }
  doc.set("points", std::move(points_array));
  if (metrics.is_object()) doc.set("metrics", metrics);
  return doc;
}

std::string BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot open " + path + " for writing";
  out << to_json().dump(2);
  out.flush();
  if (!out) return "write to " + path + " failed";
  return "";
}

std::optional<util::Json> load_report(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  std::optional<util::Json> doc = util::Json::parse(buffer.str(),
                                                    &parse_error);
  if (!doc && error) *error = path + ": " + parse_error;
  return doc;
}

CompareOutcome compare_reports(const util::Json& baseline,
                               const util::Json& current,
                               const CompareOptions& options) {
  CompareOutcome outcome;

  const auto string_field = [](const util::Json& doc, std::string_view key) {
    const util::Json* value = doc.find(key);
    return value ? value->string_or("") : std::string();
  };
  if (string_field(baseline, "experiment") !=
      string_field(current, "experiment")) {
    outcome.ok = false;
    outcome.failures.push_back(
        "experiment mismatch: baseline '" +
        string_field(baseline, "experiment") + "' vs current '" +
        string_field(current, "experiment") + "'");
    return outcome;
  }

  // Config must describe the same run (strings compared exactly).
  const util::Json* baseline_config = baseline.find("config");
  const util::Json* current_config = current.find("config");
  if (baseline_config && current_config) {
    for (const auto& [key, value] : baseline_config->members()) {
      const util::Json* current_value = current_config->find(key);
      if (!current_value ||
          current_value->string_or("") != value.string_or("")) {
        outcome.ok = false;
        outcome.failures.push_back(
            "config mismatch on '" + key + "': baseline '" +
            value.string_or("") + "' vs current '" +
            (current_value ? current_value->string_or("") : "<absent>") +
            "'");
      }
    }
  }

  const util::Json* baseline_points = baseline.find("points");
  const util::Json* current_points = current.find("points");
  if (!baseline_points || !baseline_points->is_array() || !current_points ||
      !current_points->is_array()) {
    outcome.ok = false;
    outcome.failures.push_back("missing points array");
    return outcome;
  }
  for (const util::Json& baseline_point : baseline_points->items()) {
    const util::Json* id = baseline_point.find("id");
    const std::string point_id = id ? id->string_or("") : "";
    const util::Json* current_point = find_point(*current_points, point_id);
    if (!current_point) {
      outcome.ok = false;
      outcome.failures.push_back("missing point in current: '" + point_id +
                                 "'");
      continue;
    }
    for (const char* section : {"metrics", "counters", "histograms"}) {
      const util::Json* baseline_section = baseline_point.find(section);
      if (!baseline_section || !baseline_section->is_object()) continue;
      const util::Json* current_section = current_point->find(section);
      if (!current_section || !current_section->is_object()) {
        outcome.ok = false;
        outcome.failures.push_back("missing section '" +
                                   std::string(section) + "' in point '" +
                                   point_id + "'");
        continue;
      }
      compare_numeric_members(*baseline_section, *current_section,
                              point_id + "." + section, options, outcome);
    }
  }

  // The unified observability snapshot, when the baseline carries one. Its
  // numeric leaves (counter/gauge values, histogram summaries) are pure
  // functions of the config, so they gate exactly like point sections;
  // string leaves ("schema", "kind") are skipped by the numeric walk.
  const util::Json* baseline_metrics = baseline.find("metrics");
  if (baseline_metrics && baseline_metrics->is_object()) {
    const util::Json* current_metrics = current.find("metrics");
    if (!current_metrics || !current_metrics->is_object()) {
      outcome.ok = false;
      outcome.failures.push_back("missing top-level 'metrics' in current");
    } else {
      compare_numeric_members(*baseline_metrics, *current_metrics, "metrics",
                              options, outcome);
    }
  }
  return outcome;
}

}  // namespace meshnet::stats
