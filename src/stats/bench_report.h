#pragma once

// Machine-readable bench reports: a stable JSON schema for sweep results,
// plus the comparator that gates regressions against a committed baseline.
//
// Schema (version meshnet-bench-v1), one document per experiment:
//
//   {
//     "schema": "meshnet-bench-v1",
//     "experiment": "fig4",
//     "config": {"seed": "42", "duration_s": "15", ...},
//     "threads": 8,              // informational, never compared
//     "wall_ms": 4821.3,         // host wall-clock, never compared
//     "points": [
//       {
//         "id": "rps=40/cross_layer=on",
//         "params": {"rps": "40", "cross_layer": "on"},
//         "metrics": {"ls_p50_ms": 9.6, "ls_p99_ms": 10.9, ...},
//         "counters": {"ls_completed": 1234, ...},
//         "histograms": {
//           "ls_latency_ns": {"count": 1234, "min": ..., "max": ...,
//                              "mean": ..., "p50": ..., "p90": ...,
//                              "p99": ...}
//         },
//         "wall_ms": 412.0       // host wall-clock, never compared
//       }, ...
//     ]
//   }
//
// Everything except the wall_ms/threads fields is a pure function of the
// config (the simulator is deterministic), so baselines compare exactly up
// to floating-point round-trip; the comparator still takes per-metric
// relative tolerances so a baseline can survive intentional noise (e.g.
// comparing across compilers) without being refreshed.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "util/json.h"

namespace meshnet::stats {

struct BenchPoint {
  std::string id;
  std::vector<std::pair<std::string, std::string>> params;
  std::map<std::string, double> scalars;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, LogHistogram> histograms;
  double wall_ms = 0.0;
};

struct BenchReport {
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> config;
  int threads = 1;
  double wall_ms = 0.0;
  /// Host-side engine profile (events/sec etc). Serialized under a
  /// top-level "engine" object that the comparator never visits — these
  /// numbers are machine-dependent and must not gate baselines.
  std::vector<std::pair<std::string, double>> engine;
  std::vector<BenchPoint> points;
  /// Optional unified observability snapshot (schema meshnet-metrics-v1,
  /// see obs/metric_registry.h). When set to an object it is serialized
  /// under a top-level "metrics" key and gated by the comparator like any
  /// other deterministic section (counters exactly, wall_* never).
  util::Json metrics;

  util::Json to_json() const;

  /// Writes the pretty-printed document to `path` ("BENCH_<id>.json" by
  /// convention). Returns an empty string on success, else the error.
  std::string write_file(const std::string& path) const;
};

/// Reads and parses a report file. On failure returns nullopt and stores a
/// message in `error` if non-null.
std::optional<util::Json> load_report(const std::string& path,
                                      std::string* error = nullptr);

struct CompareOptions {
  /// Relative tolerance applied to every numeric metric without a
  /// per-metric override. The default absorbs float round-trip noise
  /// only — sim output is deterministic, so baselines should match.
  double default_tolerance = 1e-9;

  /// Per-metric overrides, keyed by the leaf metric name as it appears in
  /// the report ("ls_p99_ms", or a histogram field like "p99").
  std::map<std::string, double> metric_tolerance;
};

struct CompareOutcome {
  bool ok = true;
  std::size_t compared = 0;            ///< numeric comparisons performed
  std::vector<std::string> failures;   ///< human-readable, one per problem
};

/// Compares `current` against `baseline` (both parsed report documents).
/// Rules: experiments and configs must match; every baseline point (by id)
/// must exist in current; every numeric metric/counter/histogram field in
/// the baseline must be present in current and within tolerance; if the
/// baseline carries a top-level "metrics" object (meshnet-metrics-v1), it
/// must exist in current and every numeric leaf is compared the same way.
/// Fields only in `current` are ignored (adding metrics does not break a
/// baseline); "wall_ms", "threads", any "wall_*"-named metric, and the
/// top-level "engine" object are never compared.
CompareOutcome compare_reports(const util::Json& baseline,
                               const util::Json& current,
                               const CompareOptions& options = {});

}  // namespace meshnet::stats
