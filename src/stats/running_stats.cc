#include "stats/running_stats.h"

#include <cmath>

namespace meshnet::stats {

void RunningStats::record(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

}  // namespace meshnet::stats
