#pragma once

// Streaming mean/variance/min/max (Welford's algorithm). Used for counters
// where full histograms would be overkill (queue depths, window sizes).

#include <cstdint>

namespace meshnet::stats {

class RunningStats {
 public:
  void record(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept;  ///< Sample variance; 0 for n < 2.
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace meshnet::stats
