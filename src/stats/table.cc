#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace meshnet::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace meshnet::stats
