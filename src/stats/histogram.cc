#include "stats/histogram.h"

#include <bit>
#include <cmath>

namespace meshnet::stats {

namespace {
constexpr int clamp_bits(int bits) noexcept {
  if (bits < 3) return 3;
  if (bits > 14) return 14;
  return bits;
}
}  // namespace

LogHistogram::LogHistogram(int precision_bits)
    : k_(clamp_bits(precision_bits)) {
  // Exact region: 2^k slots. Each exponent e in [1, 64-k] needs 2^(k-1).
  const std::size_t exact = std::size_t{1} << k_;
  const std::size_t per_exp = std::size_t{1} << (k_ - 1);
  const std::size_t exponents = static_cast<std::size_t>(64 - k_);
  counts_.assign(exact + exponents * per_exp, 0);
}

std::size_t LogHistogram::index_of(std::uint64_t value) const noexcept {
  const std::uint64_t exact_limit = std::uint64_t{1} << k_;
  if (value < exact_limit) return static_cast<std::size_t>(value);
  const int e = std::bit_width(value) - k_;  // >= 1
  const std::uint64_t mantissa = value >> e;  // in [2^(k-1), 2^k)
  const std::size_t per_exp = std::size_t{1} << (k_ - 1);
  return static_cast<std::size_t>(exact_limit) +
         static_cast<std::size_t>(e - 1) * per_exp +
         static_cast<std::size_t>(mantissa - (std::uint64_t{1} << (k_ - 1)));
}

std::uint64_t LogHistogram::value_of(std::size_t index) const noexcept {
  const std::size_t exact = std::size_t{1} << k_;
  if (index < exact) return static_cast<std::uint64_t>(index);
  const std::size_t per_exp = std::size_t{1} << (k_ - 1);
  const std::size_t rel = index - exact;
  const int e = static_cast<int>(rel / per_exp) + 1;
  const std::uint64_t mantissa =
      (std::uint64_t{1} << (k_ - 1)) + (rel % per_exp);
  // Bucket midpoint: lower edge plus half the bucket width.
  return (mantissa << e) + (std::uint64_t{1} << (e - 1));
}

void LogHistogram::record(std::uint64_t value) { record_n(value, 1); }

void LogHistogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[index_of(value)] += count;
  total_count_ += count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  const double v = static_cast<double>(value);
  const double c = static_cast<double>(count);
  sum_ += v * c;
  sum_sq_ += v * v * c;
}

std::uint64_t LogHistogram::min() const noexcept {
  return total_count_ == 0 ? 0 : min_;
}

double LogHistogram::mean() const noexcept {
  if (total_count_ == 0) return 0.0;
  return sum_ / static_cast<double>(total_count_);
}

double LogHistogram::stddev() const noexcept {
  if (total_count_ < 2) return 0.0;
  const double n = static_cast<double>(total_count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (total_count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target observation (1-based, nearest-rank definition).
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_count_)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const std::uint64_t rep = value_of(i);
      // Clamp the representative into the observed range so p0/p100 are
      // never reported outside [min, max].
      if (rep < min_) return min_;
      if (rep > max_) return max_;
      return rep;
    }
  }
  return max_;
}

double LogHistogram::cdf(std::uint64_t value) const {
  if (total_count_ == 0) return 0.0;
  const std::size_t limit = index_of(value);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= limit && i < counts_.size(); ++i) {
    seen += counts_[i];
  }
  return static_cast<double>(seen) / static_cast<double>(total_count_);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.k_ != k_ || other.total_count_ == 0) {
    if (other.k_ != k_) {
      // Different precision: re-record representative values.
      for (std::size_t i = 0; i < other.counts_.size(); ++i) {
        if (other.counts_[i] != 0) record_n(other.value_of(i), other.counts_[i]);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void LogHistogram::reset() {
  counts_.assign(counts_.size(), 0);
  total_count_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

}  // namespace meshnet::stats
