#pragma once

// Success-rate bookkeeping for availability reporting. One counter per
// tracked subject (an upstream cluster, a fault-window phase, ...). Kept
// in stats/ rather than mesh/ because the chaos experiment and telemetry
// both consume it.

#include <cstdint>

namespace meshnet::stats {

class SuccessRateCounter {
 public:
  void record(bool success) noexcept {
    ++total_;
    if (!success) ++failures_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t failures() const noexcept { return failures_; }
  std::uint64_t successes() const noexcept { return total_ - failures_; }

  /// Fraction of recorded outcomes that succeeded; 1.0 when empty (an
  /// untested subject is presumed available, matching SLO convention).
  double success_rate() const noexcept {
    if (total_ == 0) return 1.0;
    return static_cast<double>(total_ - failures_) /
           static_cast<double>(total_);
  }

  void reset() noexcept {
    total_ = 0;
    failures_ = 0;
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace meshnet::stats
