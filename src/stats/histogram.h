#pragma once

// Log-linear ("HDR-style") histogram with bounded relative error.
//
// Values below 2^k are recorded exactly; larger values land in buckets of
// width 2^(bit_width(v)-k), giving a worst-case relative error of 2^-k.
// With the default k=7 that is < 0.8%, comparable to what wrk2/HdrHistogram
// report, while the whole histogram stays a fixed ~30 KB array that can be
// merged, snapshotted and reset in O(buckets).
//
// Typical use records latencies in nanoseconds and reads percentiles:
//
//   LatencyHistogram h;
//   h.record(rtt_ns);
//   double p99_ms = sim::to_milliseconds(h.percentile(99.0));

#include <cstdint>
#include <vector>

namespace meshnet::stats {

class LogHistogram {
 public:
  /// `precision_bits` = k above; clamped to [3, 14].
  explicit LogHistogram(int precision_bits = 7);

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const noexcept { return total_count_; }
  std::uint64_t min() const noexcept;  ///< 0 when empty.
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept;
  double stddev() const noexcept;

  /// Value at the given percentile in [0, 100]. Returns the representative
  /// (midpoint) value of the bucket containing that rank; 0 when empty.
  std::uint64_t percentile(double p) const;

  /// Fraction of recorded values <= `value` (bucket-granular).
  double cdf(std::uint64_t value) const;

  /// Adds all counts from `other` (must have equal precision).
  void merge(const LogHistogram& other);

  void reset();

  int precision_bits() const noexcept { return k_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }

  /// Bit-exact equality: same precision, same per-bucket counts, same
  /// min/max/sum accumulators. The determinism tests use this to assert
  /// that a sweep produces identical histograms at any thread count.
  friend bool operator==(const LogHistogram& a, const LogHistogram& b) {
    return a.k_ == b.k_ && a.total_count_ == b.total_count_ &&
           a.min_ == b.min_ && a.max_ == b.max_ && a.sum_ == b.sum_ &&
           a.sum_sq_ == b.sum_sq_ && a.counts_ == b.counts_;
  }
  friend bool operator!=(const LogHistogram& a, const LogHistogram& b) {
    return !(a == b);
  }

 private:
  std::size_t index_of(std::uint64_t value) const noexcept;
  std::uint64_t value_of(std::size_t index) const noexcept;

  int k_;
  std::uint64_t total_count_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace meshnet::stats
