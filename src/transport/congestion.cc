#include "transport/congestion.h"

#include <algorithm>

namespace meshnet::transport {

// ------------------------------------------------------------- Reno --

RenoController::RenoController(RenoConfig config)
    : config_(config),
      cwnd_(config.mss * config.initial_window_segments),
      ssthresh_(config.max_window_bytes) {}

void RenoController::on_ack(std::uint64_t acked_bytes, sim::Duration /*rtt*/,
                            sim::Time /*now*/) {
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS of growth per MSS acked.
    cwnd_ += acked_bytes;
  } else {
    // Congestion avoidance: ~one MSS per RTT, scaled by acked bytes.
    const std::uint64_t mss = config_.mss;
    cwnd_ += std::max<std::uint64_t>(1, mss * mss * acked_bytes /
                                            std::max<std::uint64_t>(cwnd_, 1) /
                                            mss);
  }
  cwnd_ = std::min(cwnd_, config_.max_window_bytes);
}

void RenoController::on_loss(sim::Time /*now*/) {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * config_.mss);
  cwnd_ = ssthresh_;
}

void RenoController::on_timeout(sim::Time /*now*/) {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
}

// ----------------------------------------------------------- LEDBAT --

LedbatController::LedbatController(LedbatConfig config)
    : config_(config),
      cwnd_bytes_(static_cast<double>(config.mss) *
                  static_cast<double>(config.initial_window_segments)),
      cwnd_(static_cast<std::uint64_t>(cwnd_bytes_)) {}

void LedbatController::on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
                              sim::Time now) {
  if (rtt > 0) {
    if (rtt < base_rtt_ || now - base_learned_at_ > config_.base_history) {
      base_rtt_ = rtt;
      base_learned_at_ = now;
    }
    last_qdelay_ = std::max<sim::Duration>(0, rtt - base_rtt_);
  }
  const double target = static_cast<double>(config_.target_delay);
  const double off_target =
      (target - static_cast<double>(last_qdelay_)) / target;
  // LEDBAT window update: proportional controller around the delay
  // target, scaled per acked byte (RFC 6817 §3.4.2 shape).
  const double mss = static_cast<double>(config_.mss);
  cwnd_bytes_ += config_.gain * off_target * mss *
                 static_cast<double>(acked_bytes) /
                 std::max(cwnd_bytes_, 1.0);
  cwnd_bytes_ = std::clamp(cwnd_bytes_, mss,
                           static_cast<double>(config_.max_window_bytes));
  cwnd_ = static_cast<std::uint64_t>(cwnd_bytes_);
}

void LedbatController::on_loss(sim::Time /*now*/) {
  cwnd_bytes_ =
      std::max(cwnd_bytes_ / 2.0, static_cast<double>(config_.mss));
  cwnd_ = static_cast<std::uint64_t>(cwnd_bytes_);
}

void LedbatController::on_timeout(sim::Time /*now*/) {
  cwnd_bytes_ = static_cast<double>(config_.mss);
  cwnd_ = static_cast<std::uint64_t>(cwnd_bytes_);
}

std::unique_ptr<CongestionController> make_controller(CcAlgorithm algo,
                                                      std::uint32_t mss) {
  switch (algo) {
    case CcAlgorithm::kLedbat: {
      LedbatConfig cfg;
      cfg.mss = mss;
      return std::make_unique<LedbatController>(cfg);
    }
    case CcAlgorithm::kReno:
    default: {
      RenoConfig cfg;
      cfg.mss = mss;
      return std::make_unique<RenoController>(cfg);
    }
  }
}

}  // namespace meshnet::transport
