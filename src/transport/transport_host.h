#pragma once

// Per-interface transport endpoint: owns the connections bound to one IP,
// demultiplexes incoming packets by 4-tuple, accepts new connections on
// listening ports, and allocates ephemeral ports for outbound connects.
// One TransportHost is attached to every pod interface (the "kernel" of
// that pod).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/address.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace meshnet::transport {

/// Host-wide transport counters (the `netstat -s` of a pod), aggregated
/// across all live and dead connections.
struct HostStats {
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class TransportHost {
 public:
  using AcceptHandler = std::function<void(Connection&)>;

  /// Attaches to `ip`'s interface in `network` (which must already exist).
  TransportHost(sim::Simulator& sim, net::Network& network, net::IpAddress ip);

  TransportHost(const TransportHost&) = delete;
  TransportHost& operator=(const TransportHost&) = delete;

  /// Starts accepting connections on `port`. The handler runs when the
  /// first SYN of a new connection arrives, before any data is delivered,
  /// so it can attach data/closed handlers.
  void listen(net::Port port, AcceptHandler handler);

  /// Opens a client connection; the returned connection is owned by this
  /// host and stays valid until it reaches CLOSED (after which it is
  /// destroyed on a subsequent simulator step).
  Connection& connect(net::SocketAddress remote,
                      ConnectionOptions options = {});

  /// Chooses connection options for *accepted* connections based on the
  /// incoming SYN. The default copies the SYN's DSCP so replies travel in
  /// the sender's traffic class; the cross-layer controller installs a
  /// mapper that additionally selects scavenger congestion control for
  /// scavenger-marked peers (so large low-priority *responses* also yield).
  using AcceptOptionsMapper = std::function<ConnectionOptions(const net::Packet& syn)>;
  void set_accept_options_mapper(AcceptOptionsMapper mapper) {
    accept_mapper_ = std::move(mapper);
  }

  /// Aborts every live connection on this host, as a process restart
  /// would: all TCP state is lost and an RST notifies each peer. New
  /// connections (and fresh TLS handshakes) must be established from
  /// scratch afterwards.
  void reset_all_connections();

  net::IpAddress ip() const noexcept { return ip_; }
  sim::Simulator& sim() noexcept { return sim_; }
  sim::Time now() const noexcept { return sim_.now(); }
  std::size_t connection_count() const noexcept { return connections_.size(); }
  const HostStats& stats() const noexcept { return stats_; }
  HostStats& mutable_stats() noexcept { return stats_; }

  // --- Internal API ----------------------------------------------------
  void send_packet(net::Packet packet);
  void on_connection_closed(Connection& connection);

 private:
  void on_packet(net::Packet packet);

  sim::Simulator& sim_;
  net::Network& network_;
  net::IpAddress ip_;
  net::Port next_ephemeral_ = 40001;
  std::unordered_map<net::FlowKey, std::unique_ptr<Connection>,
                     net::FlowKeyHash>
      connections_;
  std::unordered_map<net::Port, AcceptHandler> listeners_;
  AcceptOptionsMapper accept_mapper_;
  HostStats stats_;
};

}  // namespace meshnet::transport
