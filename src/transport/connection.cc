#include "transport/connection.h"

#include <algorithm>
#include <utility>

#include "transport/transport_host.h"
#include "util/logging.h"

namespace meshnet::transport {

std::string_view conn_state_name(ConnState state) noexcept {
  switch (state) {
    case ConnState::kSynSent:
      return "SYN_SENT";
    case ConnState::kSynReceived:
      return "SYN_RECEIVED";
    case ConnState::kEstablished:
      return "ESTABLISHED";
    case ConnState::kFinSent:
      return "FIN_SENT";
    case ConnState::kClosed:
      return "CLOSED";
  }
  return "?";
}

Connection::Connection(TransportHost& host, net::FlowKey flow, bool is_client,
                       ConnectionOptions options)
    : host_(host),
      flow_(flow),
      is_client_(is_client),
      options_(options),
      state_(is_client ? ConnState::kSynSent : ConnState::kSynReceived),
      cc_(make_controller(options.cc, options.mss)),
      rto_(options.initial_rto) {}

Connection::~Connection() { disarm_rto(); }

void Connection::start_connect() {
  send_control(net::kFlagSyn, 0);
  arm_rto();
}

void Connection::set_mss(std::uint32_t mss) {
  if (mss > 0) options_.mss = mss;
}

void Connection::send(std::string data) {
  if (close_requested_ || state_ == ConnState::kClosed || data.empty()) {
    return;
  }
  stats_.bytes_sent += data.size();
  host_.mutable_stats().bytes_sent += data.size();
  // One pooled copy per send(); each MSS segment (and every retransmit)
  // is a zero-copy slice of that block.
  const net::Payload whole = net::Payload::copy_of(data);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len =
        std::min<std::size_t>(options_.mss, data.size() - offset);
    Segment seg;
    seg.seq = next_seq_;
    seg.payload = whole.slice(offset, len);
    next_seq_ += len;
    unsent_bytes_ += len;
    unsent_.push_back(std::move(seg));
    offset += len;
  }
  if (state_ == ConnState::kEstablished) maybe_send();
}

void Connection::close() {
  if (close_requested_ || state_ == ConnState::kClosed) return;
  close_requested_ = true;
  if (state_ == ConnState::kEstablished) maybe_send_fin();
}

void Connection::abort() {
  if (state_ == ConnState::kClosed) return;
  send_control(net::kFlagRst, next_seq_);
  become_closed(false);
}

void Connection::enter_established() {
  state_ = ConnState::kEstablished;
  rto_backoff_ = 0;
  if (on_connected_) on_connected_();
  maybe_send();
  maybe_send_fin();
}

void Connection::maybe_send() {
  while (!unsent_.empty() &&
         in_flight_bytes_ + unsent_.front().length() <= cc_->cwnd()) {
    Segment seg = std::move(unsent_.front());
    unsent_.pop_front();
    unsent_bytes_ -= seg.length();
    if (seg.seq + seg.length() <= snd_una_) continue;  // already delivered
    // Segments returned to the unsent queue by an RTO (go-back-N) are
    // retransmissions; fresh segments are not.
    transmit_segment(seg, /*is_retransmit=*/seg.retransmitted);
    in_flight_bytes_ += seg.length();
    in_flight_.emplace(seg.seq, std::move(seg));
  }
  if (!in_flight_.empty() || fin_sent_) arm_rto();
  maybe_send_fin();
}

void Connection::transmit_segment(Segment& segment, bool is_retransmit) {
  MESHNET_TRACE() << flow_.to_string() << " xmit seq=" << segment.seq
                  << " len=" << segment.length()
                  << (is_retransmit ? " RETX" : "");
  segment.sent_at = host_.now();
  segment.retransmitted = segment.retransmitted || is_retransmit;
  net::Packet p;
  p.flow = flow_;
  p.seq = segment.seq;
  p.ack = rcv_next_;
  p.flags = net::kFlagAck;
  p.dscp = options_.dscp;
  p.payload = segment.payload;
  p.sent_at = host_.now();
  ++stats_.segments_sent;
  ++host_.mutable_stats().segments_sent;
  if (is_retransmit) {
    ++stats_.retransmits;
    ++host_.mutable_stats().retransmits;
  }
  host_.send_packet(std::move(p));
}

void Connection::send_control(std::uint8_t flags, std::uint64_t seq) {
  net::Packet p;
  p.flow = flow_;
  p.seq = seq;
  p.ack = rcv_next_;
  p.flags = flags;
  p.dscp = options_.dscp;
  if ((flags & net::kFlagSyn) != 0) p.mss_option = options_.mss;
  p.sent_at = host_.now();
  host_.send_packet(std::move(p));
}

void Connection::send_ack() { send_control(net::kFlagAck, next_seq_); }

void Connection::handle_packet(const net::Packet& packet) {
  if (state_ == ConnState::kClosed) return;

  if (packet.has(net::kFlagRst)) {
    become_closed(false);
    return;
  }

  if (packet.has(net::kFlagSyn)) {
    if (is_client_) {
      // SYN|ACK from the server completes our handshake.
      if (state_ == ConnState::kSynSent) {
        disarm_rto();
        send_ack();
        enter_established();
      }
    } else {
      // First or duplicate SYN: (re)send SYN|ACK.
      send_control(net::kFlagSyn | net::kFlagAck, 0);
    }
    return;
  }

  if (!is_client_ && state_ == ConnState::kSynReceived) {
    // Any non-SYN packet from the client means our SYN|ACK arrived.
    enter_established();
  }

  if (packet.has(net::kFlagFin)) {
    fin_received_ = true;
    peer_fin_seq_ = packet.seq;
  }

  if (packet.payload_size() > 0) {
    handle_data(packet);
  }
  if (packet.has(net::kFlagAck)) {
    handle_ack(packet);
  }

  // Deliver EOF once every byte before the peer's FIN has been consumed.
  if (fin_received_ && rcv_next_ >= peer_fin_seq_ &&
      state_ != ConnState::kClosed) {
    send_control(net::kFlagAck | net::kFlagFin, fin_sent_ ? fin_seq_ : next_seq_);
    if (fin_sent_) {
      become_closed(true);
    } else {
      // Passive close: acknowledge and close our side too.
      become_closed(true);
    }
  }
}

void Connection::handle_data(const net::Packet& packet) {
  const std::uint64_t seq = packet.seq;
  const std::uint32_t len = packet.payload_size();
  MESHNET_TRACE() << flow_.to_string() << " data seq=" << seq
                  << " len=" << len << " rcv_next=" << rcv_next_;
  if (seq + len <= rcv_next_) {
    // Entire segment is old news; re-ACK so the sender can advance.
    send_ack();
    return;
  }
  if (seq > rcv_next_) {
    out_of_order_.emplace(seq, packet.payload);
    send_ack();  // duplicate ACK signals the gap
    return;
  }
  // In-order (possibly partially overlapping) delivery.
  const std::uint64_t skip = rcv_next_ - seq;
  std::string_view view = packet.payload.view();
  view.remove_prefix(static_cast<std::size_t>(skip));
  rcv_next_ += view.size();
  stats_.bytes_received += view.size();
  host_.mutable_stats().bytes_received += view.size();
  if (on_data_) on_data_(view);

  // Drain any now-contiguous out-of-order segments.
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_next_) {
    const std::uint64_t oo_seq = it->first;
    const net::Payload& payload = it->second;
    if (oo_seq + payload.size() > rcv_next_) {
      std::string_view oo_view = payload.view();
      oo_view.remove_prefix(static_cast<std::size_t>(rcv_next_ - oo_seq));
      rcv_next_ += oo_view.size();
      stats_.bytes_received += oo_view.size();
      if (on_data_) on_data_(oo_view);
    }
    it = out_of_order_.erase(it);
  }
  send_ack();
}

void Connection::handle_ack(const net::Packet& packet) {
  const std::uint64_t ack = packet.ack;
  const std::uint64_t fin_ack_point = fin_seq_ + 1;
  MESHNET_TRACE() << flow_.to_string() << " ack=" << ack
                  << " snd_una=" << snd_una_
                  << " inflight=" << in_flight_bytes_;

  if (ack > snd_una_) {
    // Fresh cumulative ACK.
    dup_acks_ = 0;
    std::uint64_t acked_bytes = 0;
    sim::Duration rtt_sample = 0;
    auto it = in_flight_.begin();
    while (it != in_flight_.end()) {
      const Segment& seg = it->second;
      if (seg.seq + seg.length() > ack) break;
      acked_bytes += seg.length();
      if (!seg.retransmitted) {
        rtt_sample = host_.now() - seg.sent_at;  // Karn's algorithm
      }
      it = in_flight_.erase(it);
    }
    in_flight_bytes_ -= acked_bytes;
    stats_.bytes_acked += acked_bytes;
    snd_una_ = std::max(snd_una_, ack);
    // Segments parked in the unsent queue by an RTO (go-back-N) may have
    // been covered by this cumulative ACK (the receiver held them out of
    // order); transmitting them again would corrupt the in-flight
    // accounting below snd_una.
    while (!unsent_.empty() &&
           unsent_.front().seq + unsent_.front().length() <= snd_una_) {
      unsent_bytes_ -= unsent_.front().length();
      unsent_.pop_front();
    }
    if (rtt_sample > 0) update_rtt(rtt_sample);
    rto_backoff_ = 0;

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
      } else if (!in_flight_.empty()) {
        // NewReno partial ACK: the ack advanced but not past the recovery
        // point, so the next unacked segment was also lost — retransmit it
        // now instead of stalling until the RTO.
        transmit_segment(in_flight_.begin()->second, /*is_retransmit=*/true);
      }
    }
    if (acked_bytes > 0 && !in_recovery_) {
      cc_->on_ack(acked_bytes, rtt_sample, host_.now());
    }

    if (in_flight_.empty() && !(fin_sent_ && ack < fin_ack_point)) {
      disarm_rto();
    } else {
      arm_rto();
    }
    maybe_send();
  } else if (ack == snd_una_ && !in_flight_.empty() &&
             packet.payload_size() == 0 && !packet.has(net::kFlagFin)) {
    // Duplicate ACK.
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recover_ = next_seq_;
      cc_->on_loss(host_.now());
      ++stats_.fast_retransmits;
      ++host_.mutable_stats().fast_retransmits;
      auto first = in_flight_.begin();
      if (first != in_flight_.end()) {
        transmit_segment(first->second, /*is_retransmit=*/true);
        arm_rto();
      }
    }
  }

  // Our FIN is acknowledged once ack passes it.
  if (fin_sent_ && ack >= fin_ack_point) {
    if (fin_received_ || state_ == ConnState::kFinSent) {
      become_closed(true);
    }
  }
}

void Connection::maybe_send_fin() {
  if (!close_requested_ || fin_sent_ || state_ != ConnState::kEstablished) {
    return;
  }
  if (!unsent_.empty() || !in_flight_.empty()) return;
  fin_sent_ = true;
  fin_seq_ = next_seq_;
  state_ = ConnState::kFinSent;
  send_control(net::kFlagFin | net::kFlagAck, fin_seq_);
  arm_rto();
}

void Connection::arm_rto() {
  disarm_rto();
  sim::Duration timeout = rto_;
  for (int i = 0; i < rto_backoff_; ++i) {
    timeout = std::min(timeout * 2, options_.max_rto);
  }
  rto_timer_ = host_.sim().schedule_after(timeout, [this] {
    rto_timer_ = sim::kInvalidEventId;
    on_rto_fired();
  });
}

void Connection::disarm_rto() {
  if (rto_timer_ != sim::kInvalidEventId) {
    host_.sim().cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEventId;
  }
}

void Connection::on_rto_fired() {
  if (state_ == ConnState::kClosed) return;
  ++stats_.timeouts;
  ++host_.mutable_stats().timeouts;
  ++rto_backoff_;
  if (rto_backoff_ > 10) {
    // Peer unreachable; give up.
    become_closed(false);
    return;
  }
  if (state_ == ConnState::kSynSent) {
    send_control(net::kFlagSyn, 0);
    arm_rto();
    return;
  }
  if (!in_flight_.empty()) {
    cc_->on_timeout(host_.now());
    in_recovery_ = false;
    dup_acks_ = 0;
    // Go-back-N: an RTO means the whole outstanding window is presumed
    // lost (or its ACKs are). Return every in-flight segment to the head
    // of the unsent queue (ascending seq) and restart from snd_una under
    // the collapsed window — retransmission then proceeds ACK-clocked at
    // slow-start pace instead of one segment per timeout.
    for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it) {
      it->second.retransmitted = true;  // Karn: no RTT samples from these
      unsent_bytes_ += it->second.length();
      unsent_.push_front(std::move(it->second));
    }
    in_flight_.clear();
    in_flight_bytes_ = 0;
    maybe_send();
  } else if (fin_sent_) {
    send_control(net::kFlagFin | net::kFlagAck, fin_seq_);
  }
  arm_rto();
}

void Connection::update_rtt(sim::Duration sample) {
  stats_.last_rtt = sample;
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::Duration err =
        sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  stats_.smoothed_rtt = srtt_;
  rto_ = std::clamp(srtt_ + 4 * rttvar_, options_.min_rto, options_.max_rto);
}

void Connection::become_closed(bool graceful) {
  if (state_ == ConnState::kClosed) return;
  state_ = ConnState::kClosed;
  disarm_rto();
  unsent_.clear();
  unsent_bytes_ = 0;
  in_flight_.clear();
  in_flight_bytes_ = 0;
  out_of_order_.clear();
  if (on_closed_) on_closed_(graceful);
  host_.on_connection_closed(*this);
}

}  // namespace meshnet::transport
