#pragma once

// A reliable, ordered byte-stream connection over the simulated fabric.
//
// This is the sidecar-to-sidecar channel: SYN/SYN-ACK setup, MSS
// segmentation, sliding window bounded by a pluggable congestion
// controller, cumulative ACKs, NewReno-style fast retransmit on three
// duplicate ACKs, RFC 6298 RTO estimation with exponential backoff, and
// FIN-based graceful close. Sequence numbers are 64-bit byte offsets, so
// wraparound never occurs within a simulation.
//
// Connections are created by TransportHost (client via connect(), server
// via a listener); user code interacts through send()/close() and the
// three handlers.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "net/address.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/congestion.h"

namespace meshnet::transport {

class TransportHost;

struct ConnectionOptions {
  std::uint32_t mss = 1460;
  CcAlgorithm cc = CcAlgorithm::kReno;
  net::Dscp dscp = net::Dscp::kDefault;
  /// Linux defaults: 200 ms RTO floor, 1 s initial RTO. The floor matters:
  /// transient queueing above a too-low floor causes spurious timeouts.
  sim::Duration min_rto = sim::milliseconds(200);
  sim::Duration initial_rto = sim::seconds(1);
  sim::Duration max_rto = sim::seconds(4);
};

enum class ConnState {
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinSent,
  kClosed,
};

std::string_view conn_state_name(ConnState state) noexcept;

struct ConnectionStats {
  std::uint64_t bytes_sent = 0;       ///< Payload bytes handed to send().
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_received = 0;   ///< In-order payload delivered up.
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  sim::Duration smoothed_rtt = 0;
  sim::Duration last_rtt = 0;
};

class Connection {
 public:
  using DataHandler = std::function<void(std::string_view)>;
  using ConnectedHandler = std::function<void()>;
  /// `graceful` is true for FIN close, false for RST/abort.
  using ClosedHandler = std::function<void(bool graceful)>;

  Connection(TransportHost& host, net::FlowKey flow, bool is_client,
             ConnectionOptions options);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queues payload bytes. Data sent before establishment is buffered and
  /// flushed once the handshake completes. No-op after close().
  void send(std::string data);

  /// Graceful close: a FIN goes out once all queued data is delivered.
  void close();

  /// Immediate teardown: sends RST, drops all state.
  void abort();

  void set_on_data(DataHandler handler) { on_data_ = std::move(handler); }
  void set_on_connected(ConnectedHandler handler) {
    on_connected_ = std::move(handler);
  }
  void set_on_closed(ClosedHandler handler) {
    on_closed_ = std::move(handler);
  }

  /// Changes the DSCP mark for all future packets (cross-layer tagging).
  void set_dscp(net::Dscp dscp) noexcept { options_.dscp = dscp; }
  net::Dscp dscp() const noexcept { return options_.dscp; }

  /// Adopts the peer's advertised MSS (SYN option); 0 is ignored. Only
  /// meaningful before data is sent.
  void set_mss(std::uint32_t mss);
  std::uint32_t mss() const noexcept { return options_.mss; }

  const net::FlowKey& flow() const noexcept { return flow_; }
  ConnState state() const noexcept { return state_; }
  bool is_client() const noexcept { return is_client_; }
  bool established() const noexcept {
    return state_ == ConnState::kEstablished;
  }
  bool closed() const noexcept { return state_ == ConnState::kClosed; }

  const ConnectionStats& stats() const noexcept { return stats_; }
  std::uint64_t cwnd() const noexcept { return cc_->cwnd(); }
  std::uint64_t bytes_in_flight() const noexcept { return in_flight_bytes_; }
  std::uint64_t send_backlog() const noexcept { return unsent_bytes_; }
  const CongestionController& congestion() const noexcept { return *cc_; }
  sim::Duration rto() const noexcept { return rto_; }

  // --- Internal API used by TransportHost ---------------------------
  void start_connect();
  void handle_packet(const net::Packet& packet);

 private:
  struct Segment {
    std::uint64_t seq = 0;
    net::Payload payload;  ///< zero-copy slice of the send() block
    sim::Time sent_at = 0;
    bool retransmitted = false;
    std::uint32_t length() const noexcept {
      return static_cast<std::uint32_t>(payload.size());
    }
  };

  void enter_established();
  void maybe_send();
  void transmit_segment(Segment& segment, bool is_retransmit);
  void send_control(std::uint8_t flags, std::uint64_t seq);
  void send_ack();
  void handle_ack(const net::Packet& packet);
  void handle_data(const net::Packet& packet);
  void maybe_send_fin();
  void arm_rto();
  void disarm_rto();
  void on_rto_fired();
  void update_rtt(sim::Duration sample);
  void become_closed(bool graceful);

  TransportHost& host_;
  net::FlowKey flow_;
  bool is_client_;
  ConnectionOptions options_;
  ConnState state_;
  std::unique_ptr<CongestionController> cc_;

  // Sender state.
  std::deque<Segment> unsent_;
  std::uint64_t unsent_bytes_ = 0;
  std::map<std::uint64_t, Segment> in_flight_;  ///< keyed by seq
  std::uint64_t in_flight_bytes_ = 0;
  std::uint64_t next_seq_ = 0;       ///< Next fresh byte to assign.
  std::uint64_t snd_una_ = 0;        ///< Oldest unacked byte.
  std::uint64_t last_ack_seen_ = 0;
  int dup_acks_ = 0;
  std::uint64_t recover_ = 0;        ///< NewReno recovery point.
  bool in_recovery_ = false;
  bool close_requested_ = false;
  bool fin_sent_ = false;
  std::uint64_t fin_seq_ = 0;

  // RTO state.
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  int rto_backoff_ = 0;
  sim::EventId rto_timer_ = sim::kInvalidEventId;

  // Receiver state.
  std::uint64_t rcv_next_ = 0;
  std::map<std::uint64_t, net::Payload> out_of_order_;
  bool fin_received_ = false;
  std::uint64_t peer_fin_seq_ = 0;

  ConnectionStats stats_;
  DataHandler on_data_;
  ConnectedHandler on_connected_;
  ClosedHandler on_closed_;
};

}  // namespace meshnet::transport
