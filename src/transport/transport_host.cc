#include "transport/transport_host.h"

#include <utility>
#include <vector>

#include "util/logging.h"

namespace meshnet::transport {

TransportHost::TransportHost(sim::Simulator& sim, net::Network& network,
                             net::IpAddress ip)
    : sim_(sim), network_(network), ip_(ip) {
  net::Interface* iface = network.find_interface(ip);
  if (iface == nullptr) {
    MESHNET_ERROR() << "TransportHost: no interface for "
                    << net::ip_to_string(ip);
    return;
  }
  iface->set_handler([this](net::Packet p) { on_packet(std::move(p)); });
}

void TransportHost::listen(net::Port port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

Connection& TransportHost::connect(net::SocketAddress remote,
                                   ConnectionOptions options) {
  net::FlowKey flow;
  flow.src_ip = ip_;
  flow.src_port = next_ephemeral_++;
  flow.dst_ip = remote.ip;
  flow.dst_port = remote.port;
  auto conn = std::make_unique<Connection>(*this, flow, /*is_client=*/true,
                                           options);
  Connection& ref = *conn;
  connections_.emplace(flow, std::move(conn));
  ++stats_.connections_opened;
  ref.start_connect();
  return ref;
}

void TransportHost::send_packet(net::Packet packet) {
  network_.send(std::move(packet));
}

void TransportHost::reset_all_connections() {
  // abort() re-enters on_connection_closed (which schedules erasure from
  // connections_), so collect the targets before touching any of them.
  std::vector<Connection*> live;
  live.reserve(connections_.size());
  for (auto& [flow, conn] : connections_) live.push_back(conn.get());
  for (Connection* conn : live) {
    if (conn->state() != ConnState::kClosed) conn->abort();
  }
}

void TransportHost::on_connection_closed(Connection& connection) {
  // Defer destruction to a fresh simulator step: the connection object is
  // still on the stack when this is called.
  const net::FlowKey flow = connection.flow();
  sim_.schedule_after(0, [this, flow] { connections_.erase(flow); });
}

void TransportHost::on_packet(net::Packet packet) {
  // The local view of the flow reverses the wire header.
  const net::FlowKey local = packet.flow.reversed();
  const auto it = connections_.find(local);
  if (it != connections_.end()) {
    it->second->handle_packet(packet);
    return;
  }
  if (packet.has(net::kFlagSyn) && !packet.has(net::kFlagAck)) {
    const auto lit = listeners_.find(packet.flow.dst_port);
    if (lit != listeners_.end()) {
      ConnectionOptions options;
      if (accept_mapper_) {
        options = accept_mapper_(packet);
      } else {
        options.dscp = packet.dscp;  // answer in the sender's traffic class
      }
      if (packet.mss_option > 0) options.mss = packet.mss_option;
      auto conn = std::make_unique<Connection>(*this, local,
                                               /*is_client=*/false, options);
      Connection& ref = *conn;
      connections_.emplace(local, std::move(conn));
      ++stats_.connections_accepted;
      lit->second(ref);
      ref.handle_packet(packet);
      return;
    }
  }
  // No connection and not a connectable SYN: emit RST so the peer does
  // not hang (unless this is itself an RST).
  if (!packet.has(net::kFlagRst)) {
    net::Packet rst;
    rst.flow = local;
    rst.flags = net::kFlagRst;
    rst.seq = 0;
    rst.ack = 0;
    network_.send(std::move(rst));
  }
}

}  // namespace meshnet::transport
