#pragma once

// Congestion controllers for the sidecar-to-sidecar transport.
//
// Two controllers are provided:
//  * RenoController — classic slow start + AIMD; the stand-in for the
//    kernel TCP the paper's prototype uses between sidecars.
//  * LedbatController — a delay-based *scavenger* in the spirit of
//    LEDBAT/TCP-LP/Proteus (paper §4.2 optimization b): it backs off as
//    soon as the queueing-delay estimate approaches a target, so
//    latency-insensitive flows yield to latency-sensitive Reno flows
//    without any switch support.
//
// Controllers are windows in bytes; the connection enforces
// bytes_in_flight < cwnd(). All hooks receive simulated time so
// controllers can be unit-tested without a connection.

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"

namespace meshnet::transport {

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  /// Called for every new (non-retransmit) cumulative ACK.
  /// `rtt` is the sample for the newest-acked segment (0 = no sample).
  virtual void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
                      sim::Time now) = 0;

  /// Fast-retransmit-detected loss (triple dup-ACK).
  virtual void on_loss(sim::Time now) = 0;

  /// Retransmission timeout: collapse to one segment.
  virtual void on_timeout(sim::Time now) = 0;

  /// Current congestion window, in bytes. Never below one MSS.
  virtual std::uint64_t cwnd() const noexcept = 0;

  virtual std::string name() const = 0;
};

struct RenoConfig {
  std::uint32_t mss = 1460;
  std::uint64_t initial_window_segments = 10;  ///< RFC 6928-style IW10.
  std::uint64_t max_window_bytes = 8 * 1024 * 1024;
};

class RenoController final : public CongestionController {
 public:
  explicit RenoController(RenoConfig config = {});

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::uint64_t cwnd() const noexcept override { return cwnd_; }
  std::string name() const override { return "reno"; }

  std::uint64_t ssthresh() const noexcept { return ssthresh_; }
  bool in_slow_start() const noexcept { return cwnd_ < ssthresh_; }

 private:
  RenoConfig config_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
};

struct LedbatConfig {
  std::uint32_t mss = 1460;
  std::uint64_t initial_window_segments = 2;
  std::uint64_t max_window_bytes = 8 * 1024 * 1024;
  /// Queueing-delay target; the controller aims to keep rtt - base_rtt at
  /// or below this. Datacenter-scale default (the RFC's 100 ms is WAN).
  sim::Duration target_delay = sim::milliseconds(2);
  double gain = 1.0;
  /// Window of recent base-RTT history (base RTT is re-learned so route
  /// changes do not poison the estimate forever).
  sim::Duration base_history = sim::seconds(30);
};

class LedbatController final : public CongestionController {
 public:
  explicit LedbatController(LedbatConfig config = {});

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::uint64_t cwnd() const noexcept override { return cwnd_; }
  std::string name() const override { return "ledbat"; }

  sim::Duration base_rtt() const noexcept { return base_rtt_; }
  sim::Duration last_queue_delay() const noexcept { return last_qdelay_; }

 private:
  LedbatConfig config_;
  double cwnd_bytes_;
  std::uint64_t cwnd_;
  sim::Duration base_rtt_ = INT64_MAX;
  sim::Time base_learned_at_ = 0;
  sim::Duration last_qdelay_ = 0;
};

/// Which controller a connection should use. The cross-layer scavenger
/// selector (core/) maps priority classes onto this.
enum class CcAlgorithm {
  kReno,
  kLedbat,
};

std::unique_ptr<CongestionController> make_controller(CcAlgorithm algo,
                                                      std::uint32_t mss);

}  // namespace meshnet::transport
