#pragma once

// Ingress classification (design component 1, paper §4.2): assign a
// performance objective to each request at the point it enters the mesh.
//
// Classification is rule-based: ordered path-prefix / host / header rules,
// first match wins. Installed on the ingress gateway's filter chain so
// every external request is classified exactly once; apps that already
// stamp x-mesh-priority themselves are respected (explicit app signalling,
// paper §3.3).

#include <optional>
#include <string>
#include <vector>

#include "core/priority.h"
#include "mesh/filter.h"
#include "obs/metric_registry.h"

namespace meshnet::core {

struct ClassificationRule {
  /// Empty matchers are wildcards; all non-empty matchers must match.
  std::string path_prefix;
  std::string host;
  std::string header_name;   ///< match when this header exists...
  std::string header_value;  ///< ...and (if non-empty) equals this value.
  mesh::TrafficClass assign = mesh::TrafficClass::kDefault;

  bool matches(const http::HttpRequest& request) const;
};

struct ClassifierConfig {
  std::vector<ClassificationRule> rules;
  mesh::TrafficClass default_class = mesh::TrafficClass::kLatencySensitive;
  /// Trust a pre-existing x-mesh-priority header instead of classifying.
  bool respect_existing_header = true;
};

class IngressClassifierFilter final : public mesh::HttpFilter {
 public:
  /// With a registry, classification decisions also show up in the
  /// unified snapshot as ingress_classified_total{class=...}.
  explicit IngressClassifierFilter(ClassifierConfig config,
                                   obs::MetricRegistry* registry = nullptr);

  std::string name() const override { return "ingress-classifier"; }
  mesh::FilterStatus on_request(mesh::RequestContext& ctx) override;

  std::uint64_t classified_high() const noexcept { return high_; }
  std::uint64_t classified_low() const noexcept { return low_; }

 private:
  ClassifierConfig config_;
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
  obs::Counter* high_counter_ = nullptr;
  obs::Counter* low_counter_ = nullptr;
};

}  // namespace meshnet::core
