#include "core/provenance.h"

#include <utility>

namespace meshnet::core {

ProvenanceTable::ProvenanceTable(sim::Simulator& sim, sim::Duration ttl)
    : sim_(sim), ttl_(ttl) {}

void ProvenanceTable::record(const std::string& request_id,
                             mesh::TrafficClass priority) {
  if (request_id.empty()) return;
  maybe_sweep();
  entries_[request_id] = Entry{priority, sim_.now() + ttl_};
}

std::optional<mesh::TrafficClass> ProvenanceTable::lookup(
    const std::string& request_id) {
  if (request_id.empty()) {
    ++misses_;
    return std::nullopt;
  }
  const auto it = entries_.find(request_id);
  if (it == entries_.end() || it->second.expires_at <= sim_.now()) {
    if (it != entries_.end()) entries_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.priority;
}

void ProvenanceTable::maybe_sweep() {
  // Amortized: sweep at most once per TTL interval.
  if (sim_.now() - last_sweep_ < ttl_) return;
  last_sweep_ = sim_.now();
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= sim_.now()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

ProvenanceFilter::ProvenanceFilter(std::shared_ptr<ProvenanceTable> table)
    : table_(std::move(table)) {}

mesh::FilterStatus ProvenanceFilter::on_request(mesh::RequestContext& ctx) {
  const std::string request_id = ctx.request.request_id();
  auto priority = request_priority(ctx.request);

  if (ctx.direction == mesh::FilterDirection::kInbound) {
    if (priority) {
      // Remember the inbound request's objective so the sub-requests the
      // app spawns (same x-request-id, no priority header) inherit it.
      table_->record(request_id, *priority);
    }
  } else {
    if (!priority) {
      priority = table_->lookup(request_id);
      if (priority) set_request_priority(ctx.request, *priority);
    } else {
      // App (or an earlier hop) supplied priority explicitly; keep the
      // table warm for its siblings.
      table_->record(request_id, *priority);
    }
  }
  if (priority) ctx.traffic_class = *priority;
  return mesh::FilterStatus::kContinue;
}

void ProvenanceFilter::on_response(mesh::RequestContext& ctx,
                                   http::HttpResponse& response) {
  // Paper §4.3 step 2: copy the priority onto the associated response.
  const std::string_view value = priority_header_value(ctx.traffic_class);
  if (!value.empty()) {
    response.headers.set(http::headers::Id::kMeshPriority, value);
  }
}

}  // namespace meshnet::core
