#include "core/priority_router.h"

#include <algorithm>

#include "http/header_map.h"

namespace meshnet::core {

PriorityRouterFilter::PriorityRouterFilter(std::vector<std::string> clusters)
    : clusters_(std::move(clusters)) {}

bool PriorityRouterFilter::applies_to(
    const std::string& cluster_or_host) const {
  if (clusters_.empty()) return true;
  return std::find(clusters_.begin(), clusters_.end(), cluster_or_host) !=
         clusters_.end();
}

mesh::FilterStatus PriorityRouterFilter::on_request(
    mesh::RequestContext& ctx) {
  if (ctx.direction != mesh::FilterDirection::kOutbound) {
    return mesh::FilterStatus::kContinue;
  }
  const std::string target =
      !ctx.upstream_cluster.empty()
          ? ctx.upstream_cluster
          : ctx.request.headers.get_or(http::headers::Id::kHost, "");
  if (!applies_to(target)) return mesh::FilterStatus::kContinue;

  switch (ctx.traffic_class) {
    case mesh::TrafficClass::kLatencySensitive:
      ctx.subset["priority"] = std::string(kPriorityHigh);
      ++high_;
      break;
    case mesh::TrafficClass::kScavenger:
      ctx.subset["priority"] = std::string(kPriorityLow);
      ++low_;
      break;
    case mesh::TrafficClass::kDefault:
      break;  // unclassified traffic is not constrained
  }
  return mesh::FilterStatus::kContinue;
}

}  // namespace meshnet::core
