#pragma once

// Provenance propagation (design component 2, paper §4.2-4.3): carry each
// request's performance objective through the entire system.
//
// The mechanism is exactly the paper's: the sidecar knows which outgoing
// requests were caused by which incoming ones because the application
// propagates the same global x-request-id (already required for
// distributed tracing). The ProvenanceFilter therefore:
//
//  * inbound:  if the request carries x-mesh-priority, records
//              request-id -> priority in the pod-local ProvenanceTable
//              and assigns the matching traffic class;
//  * outbound: if a sub-request carries the same x-request-id but no
//              priority header (apps are unmodified!), it looks the id up
//              and stamps the inherited priority onto the sub-request.
//
// Entries expire after a TTL so the table stays bounded under load.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/priority.h"
#include "mesh/filter.h"
#include "sim/simulator.h"

namespace meshnet::core {

class ProvenanceTable {
 public:
  explicit ProvenanceTable(sim::Simulator& sim,
                           sim::Duration ttl = sim::seconds(60));

  void record(const std::string& request_id, mesh::TrafficClass priority);
  std::optional<mesh::TrafficClass> lookup(const std::string& request_id);

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    mesh::TrafficClass priority;
    sim::Time expires_at;
  };
  void maybe_sweep();

  sim::Simulator& sim_;
  sim::Duration ttl_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  sim::Time last_sweep_ = 0;
};

class ProvenanceFilter final : public mesh::HttpFilter {
 public:
  explicit ProvenanceFilter(std::shared_ptr<ProvenanceTable> table);

  std::string name() const override { return "provenance"; }
  mesh::FilterStatus on_request(mesh::RequestContext& ctx) override;
  void on_response(mesh::RequestContext& ctx,
                   http::HttpResponse& response) override;

  const ProvenanceTable& table() const noexcept { return *table_; }

 private:
  std::shared_ptr<ProvenanceTable> table_;
};

}  // namespace meshnet::core
