#include "core/priority.h"

namespace meshnet::core {

std::optional<mesh::TrafficClass> parse_priority(std::string_view value) {
  if (value == kPriorityHigh) return mesh::TrafficClass::kLatencySensitive;
  if (value == kPriorityLow) return mesh::TrafficClass::kScavenger;
  return std::nullopt;
}

std::string_view priority_header_value(mesh::TrafficClass c) noexcept {
  switch (c) {
    case mesh::TrafficClass::kLatencySensitive:
      return kPriorityHigh;
    case mesh::TrafficClass::kScavenger:
      return kPriorityLow;
    case mesh::TrafficClass::kDefault:
      break;
  }
  return "";
}

std::optional<mesh::TrafficClass> request_priority(
    const http::HttpRequest& request) {
  const auto value = request.headers.get(http::headers::Id::kMeshPriority);
  if (!value) return std::nullopt;
  return parse_priority(*value);
}

void set_request_priority(http::HttpRequest& request, mesh::TrafficClass c) {
  const std::string_view value = priority_header_value(c);
  if (value.empty()) {
    request.headers.remove(http::headers::Id::kMeshPriority);
  } else {
    request.headers.set(http::headers::Id::kMeshPriority, value);
  }
}

}  // namespace meshnet::core
