#pragma once

// Priority-aware replica routing (design component 3a / prototype step 3,
// paper §4.2-4.3): forward requests to a high- or low-priority replica
// subset ("front end forwards requests to either reviews replica 1 or 2
// depending on priority").
//
// The filter translates the request's traffic class into an endpoint
// subset constraint on the label "priority"; the sidecar's subset load
// balancing does the rest. Clusters without priority-labelled replicas
// fall back to the full endpoint set (sidecar subset_fallback), so the
// filter is safe to install mesh-wide.

#include <string>
#include <vector>

#include "core/priority.h"
#include "mesh/filter.h"

namespace meshnet::core {

class PriorityRouterFilter final : public mesh::HttpFilter {
 public:
  /// `clusters`: which upstream clusters have priority-dedicated replicas.
  /// Empty = apply to every cluster (safe due to subset fallback).
  explicit PriorityRouterFilter(std::vector<std::string> clusters = {});

  std::string name() const override { return "priority-router"; }
  mesh::FilterStatus on_request(mesh::RequestContext& ctx) override;

  std::uint64_t routed_high() const noexcept { return high_; }
  std::uint64_t routed_low() const noexcept { return low_; }

 private:
  bool applies_to(const std::string& cluster_or_host) const;

  std::vector<std::string> clusters_;
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
};

}  // namespace meshnet::core
