#include "core/tc_manager.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace meshnet::core {

TcManager::TcManager(cluster::Cluster& cluster) : cluster_(cluster) {}

net::Classifier TcManager::make_classifier(const TcRule& rule) const {
  if (rule.match == TcMatch::kDscp) {
    return net::classify_by_dscp();
  }
  std::vector<net::IpAddress> ips = rule.high_priority_ips;
  return [ips = std::move(ips)](const net::Packet& p) {
    return std::find(ips.begin(), ips.end(), p.flow.dst_ip) != ips.end() ? 0
                                                                         : 1;
  };
}

bool TcManager::install(TcRule rule) {
  cluster::Pod* pod = cluster_.find_pod(rule.pod_name);
  if (pod == nullptr) {
    MESHNET_WARN() << "tc: unknown pod " << rule.pod_name;
    return false;
  }
  std::unique_ptr<net::Qdisc> qdisc;
  if (rule.strict) {
    qdisc = std::make_unique<net::StrictPrioQdisc>(
        2, make_classifier(rule), rule.per_band_queue_bytes);
  } else {
    qdisc = std::make_unique<net::WeightedPrioQdisc>(
        std::vector<double>{rule.high_share, 1.0 - rule.high_share},
        make_classifier(rule), rule.per_band_queue_bytes);
  }
  pod->egress_link().set_qdisc(std::move(qdisc));
  // Replace any existing rule for this pod in the inventory.
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const TcRule& r) {
                                return r.pod_name == rule.pod_name;
                              }),
               rules_.end());
  rules_.push_back(std::move(rule));
  return true;
}

bool TcManager::clear(const std::string& pod_name) {
  cluster::Pod* pod = cluster_.find_pod(pod_name);
  if (pod == nullptr) return false;
  pod->egress_link().set_qdisc(std::make_unique<net::FifoQdisc>(
      cluster_.config().vnic_queue_bytes));
  rules_.erase(std::remove_if(
                   rules_.begin(), rules_.end(),
                   [&](const TcRule& r) { return r.pod_name == pod_name; }),
               rules_.end());
  return true;
}

void TcManager::install_on_all_pods(TcRule rule_template) {
  for (const auto& pod : cluster_.pods()) {
    TcRule rule = rule_template;
    rule.pod_name = pod->name();
    install(std::move(rule));
  }
}

void TcManager::clear_all() {
  while (!rules_.empty()) clear(rules_.back().pod_name);
}

std::string TcManager::show() const {
  std::ostringstream out;
  for (const TcRule& rule : rules_) {
    out << "qdisc " << (rule.strict ? "prio" : "drr") << " dev vnic:"
        << rule.pod_name << ":egress";
    if (!rule.strict) {
      out << " shares " << rule.high_share << "/" << (1.0 - rule.high_share);
    }
    if (rule.match == TcMatch::kDscp) {
      out << " filter dscp ef -> band 0";
    } else {
      out << " filter dst in {";
      for (std::size_t i = 0; i < rule.high_priority_ips.size(); ++i) {
        if (i > 0) out << ",";
        out << net::ip_to_string(rule.high_priority_ips[i]);
      }
      out << "} -> band 0";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace meshnet::core
