#pragma once

// CrossLayerController: the top-level entry point of the case study
// (paper §4.2). One call to install() wires up all three design
// components across the whole mesh:
//
//  1. classification at the ingress (IngressClassifierFilter on the
//     gateway),
//  2. provenance propagation (a shared per-pod ProvenanceTable + a
//     ProvenanceFilter on every sidecar's inbound and outbound chains),
//  3. cross-layer optimizations:
//      (a) mesh:      priority-subset replica routing,
//      (b) transport: scavenger congestion control for low priority,
//      (c) OS:        TC priority qdiscs on pod vNICs (95/5 nearly-strict),
//      (d) network:   DSCP tagging in-band, or out-of-band flow
//                     advertisement to an SDN coordinator.
//
// Each component toggles independently, which is what the ablation bench
// sweeps.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/provenance.h"
#include "core/priority_router.h"
#include "core/sdn_coordinator.h"
#include "core/tc_manager.h"
#include "mesh/control_plane.h"

namespace meshnet::core {

struct CrossLayerConfig {
  bool classification = true;
  bool provenance = true;

  /// (a) route high/low priority to dedicated replica subsets.
  bool priority_routing = true;
  /// Clusters with priority-dedicated replicas; empty = all (safe).
  std::vector<std::string> priority_routed_clusters;

  /// (b) scavenger transport for low-priority traffic.
  bool scavenger_transport = false;

  /// (c) TC priority qdiscs on every pod vNIC.
  bool tc_priority = true;
  TcMatch tc_match = TcMatch::kDstIp;  ///< the prototype's pod-IP match
  double high_share = 0.95;
  bool strict_tc = false;

  /// (d) in-band DSCP marks on every packet of classified connections.
  bool dscp_tagging = true;

  /// Ingress classification rules (gateway).
  ClassifierConfig classifier;

  /// Provenance table TTL.
  sim::Duration provenance_ttl = sim::seconds(60);
};

class CrossLayerController {
 public:
  CrossLayerController(mesh::ControlPlane& control_plane,
                       cluster::Cluster& cluster, CrossLayerConfig config);

  /// Installs filters, transport policy, and TC rules mesh-wide, then
  /// pushes config. Call once, after all sidecars are injected.
  void install();

  /// Removes TC rules and neutralizes class policies (filters stay but
  /// become inert once classification is withdrawn at the gateway).
  void uninstall();

  TcManager& tc() noexcept { return tc_; }
  SdnCoordinator& sdn() noexcept { return sdn_; }
  const CrossLayerConfig& config() const noexcept { return config_; }

  /// Introspection for tests: the provenance table of one pod's sidecar.
  std::shared_ptr<ProvenanceTable> provenance_table(
      const std::string& pod_name) const;

  /// IPs of pods whose endpoints carry label priority=high (the TC
  /// dst-ip match set).
  std::vector<net::IpAddress> high_priority_pod_ips() const;

 private:
  void install_filters();
  void install_transport_policy();
  void install_tc_rules();

  mesh::ControlPlane& control_plane_;
  cluster::Cluster& cluster_;
  CrossLayerConfig config_;
  TcManager tc_;
  SdnCoordinator sdn_;
  std::map<std::string, std::shared_ptr<ProvenanceTable>> tables_;
  bool installed_ = false;
};

}  // namespace meshnet::core
