#pragma once

// TC rule management (design component 3c / prototype step 3, paper §4.3):
// "we set Linux TC rules that direct packets matching the pod's IP address
// to be given nearly-strict prioritization (up to 95% of bandwidth) in the
// kernel's outgoing packet queue on the sidecar container's virtual
// interface."
//
// TcManager is the programmatic `tc`: it installs and removes queueing
// disciplines on pod vNIC links and keeps an inspectable rule inventory
// (the `tc qdisc show` equivalent). Supported matchers mirror the
// prototype (destination pod IP) plus the DSCP matcher used for in-band
// signalling to the physical network.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "net/qdisc.h"

namespace meshnet::core {

enum class TcMatch {
  kDstIp,  ///< high band when packet dst == a high-priority pod IP
  kDscp,   ///< high band when packet carries DSCP EF
};

struct TcRule {
  std::string pod_name;   ///< whose egress vNIC the qdisc sits on
  TcMatch match = TcMatch::kDstIp;
  std::vector<net::IpAddress> high_priority_ips;  ///< for kDstIp
  double high_share = 0.95;
  bool strict = false;  ///< pure strict priority instead of 95/5 DRR
  /// Per-band queue capacity (matches the vNIC default).
  std::uint64_t per_band_queue_bytes = 9'000'000;
};

class TcManager {
 public:
  explicit TcManager(cluster::Cluster& cluster);

  /// Installs a weighted (or strict) priority qdisc per the rule on the
  /// pod's egress vNIC. Replaces any prior qdisc (backlog is dropped, as
  /// with real `tc qdisc replace`). Returns false if the pod is unknown.
  bool install(TcRule rule);

  /// Restores the default FIFO on the pod's egress vNIC.
  bool clear(const std::string& pod_name);

  /// Installs the same rule on every pod in the cluster (the prototype
  /// applies its rules uniformly to all sidecar interfaces).
  void install_on_all_pods(TcRule rule_template);

  void clear_all();

  const std::vector<TcRule>& rules() const noexcept { return rules_; }

  /// Renders the rule inventory like `tc qdisc show`.
  std::string show() const;

 private:
  net::Classifier make_classifier(const TcRule& rule) const;

  cluster::Cluster& cluster_;
  std::vector<TcRule> rules_;
};

}  // namespace meshnet::core
