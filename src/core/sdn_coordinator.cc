#include "core/sdn_coordinator.h"

namespace meshnet::core {

void SdnCoordinator::advertise(const net::FlowKey& flow,
                               mesh::TrafficClass traffic_class) {
  flows_[flow] = traffic_class;
  ++advertisements_;
}

void SdnCoordinator::withdraw(const net::FlowKey& flow) {
  flows_.erase(flow);
}

mesh::TrafficClass SdnCoordinator::classify(const net::FlowKey& flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) it = flows_.find(flow.reversed());
  return it == flows_.end() ? mesh::TrafficClass::kDefault : it->second;
}

void SdnCoordinator::program_link(net::Link& link, double high_share,
                                  std::uint64_t per_band_queue_bytes) {
  link.set_qdisc(std::make_unique<net::WeightedPrioQdisc>(
      std::vector<double>{high_share, 1.0 - high_share},
      [this](const net::Packet& p) {
        return classify(p.flow) == mesh::TrafficClass::kLatencySensitive ? 0
                                                                         : 1;
      },
      per_band_queue_bytes));
}

}  // namespace meshnet::core
