#pragma once

// Priority vocabulary for the cross-layer case study (paper §4).
//
// On the wire, priority is the custom HTTP header x-mesh-priority with
// values "high" / "low" (paper §4.3 step 1). Inside the mesh it maps onto
// the mesh's TrafficClass, which in turn carries per-class transport and
// DSCP policy.

#include <optional>
#include <string_view>

#include "http/message.h"
#include "mesh/filter.h"

namespace meshnet::core {

inline constexpr std::string_view kPriorityHigh = "high";
inline constexpr std::string_view kPriorityLow = "low";

/// Parses the x-mesh-priority header value. Unknown values -> nullopt.
std::optional<mesh::TrafficClass> parse_priority(std::string_view value);

/// Formats a traffic class as a header value ("" for kDefault).
std::string_view priority_header_value(mesh::TrafficClass c) noexcept;

/// Reads the priority of a request from its headers.
std::optional<mesh::TrafficClass> request_priority(
    const http::HttpRequest& request);

/// Stamps the priority header onto a request.
void set_request_priority(http::HttpRequest& request, mesh::TrafficClass c);

}  // namespace meshnet::core
