#include "core/classifier.h"

#include "util/strings.h"

namespace meshnet::core {

bool ClassificationRule::matches(const http::HttpRequest& request) const {
  if (!path_prefix.empty() && !util::starts_with(request.path, path_prefix)) {
    return false;
  }
  if (!host.empty() &&
      request.headers.get_or(http::headers::Id::kHost, "") != host) {
    return false;
  }
  if (!header_name.empty()) {
    const auto value = request.headers.get(header_name);
    if (!value) return false;
    if (!header_value.empty() && *value != header_value) return false;
  }
  return true;
}

IngressClassifierFilter::IngressClassifierFilter(
    ClassifierConfig config, obs::MetricRegistry* registry)
    : config_(std::move(config)) {
  if (registry != nullptr) {
    high_counter_ = &registry->counter("ingress_classified_total",
                                       {{"class", "high"}});
    low_counter_ = &registry->counter("ingress_classified_total",
                                      {{"class", "low"}});
  }
}

mesh::FilterStatus IngressClassifierFilter::on_request(
    mesh::RequestContext& ctx) {
  std::optional<mesh::TrafficClass> assigned;
  if (config_.respect_existing_header) {
    assigned = request_priority(ctx.request);
  }
  if (!assigned) {
    for (const ClassificationRule& rule : config_.rules) {
      if (rule.matches(ctx.request)) {
        assigned = rule.assign;
        break;
      }
    }
  }
  if (!assigned) assigned = config_.default_class;
  ctx.traffic_class = *assigned;
  set_request_priority(ctx.request, *assigned);
  if (*assigned == mesh::TrafficClass::kLatencySensitive) {
    ++high_;
    if (high_counter_) high_counter_->inc();
  } else if (*assigned == mesh::TrafficClass::kScavenger) {
    ++low_;
    if (low_counter_) low_counter_->inc();
  }
  return mesh::FilterStatus::kContinue;
}

}  // namespace meshnet::core
