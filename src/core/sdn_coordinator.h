#pragma once

// Out-of-band coordination with the physical network (design component 3d,
// paper §4.2: "the service mesh supplying knowledge of flow priority to
// the physical network ... out-of-band (an API call into the SDN
// controller)").
//
// Sidecars (via the cross-layer controller) advertise flow -> priority
// mappings to the SdnCoordinator, which stands in for the fabric's SDN
// controller. The coordinator can then program priority scheduling on
// chosen fabric links using a classifier that consults its live flow
// table — prioritization without any in-band packet marking, the
// deployment model of B4/SWAN-style systems the paper cites.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesh/filter.h"
#include "net/address.h"
#include "net/link.h"
#include "net/qdisc.h"

namespace meshnet::core {

class SdnCoordinator {
 public:
  /// Advertises (or updates) a flow's traffic class. Typically called by
  /// the cross-layer machinery when an upstream connection is opened.
  void advertise(const net::FlowKey& flow, mesh::TrafficClass traffic_class);

  /// Removes a flow advertisement (connection closed).
  void withdraw(const net::FlowKey& flow);

  /// The class advertised for a flow, looked up directionlessly (the
  /// reverse direction of a prioritized flow is prioritized too, since
  /// responses carry the bulk of the bytes).
  mesh::TrafficClass classify(const net::FlowKey& flow) const;

  /// Programs nearly-strict priority scheduling on a fabric link, with
  /// band selection driven by this coordinator's flow table.
  void program_link(net::Link& link, double high_share = 0.95,
                    std::uint64_t per_band_queue_bytes = 9'000'000);

  std::size_t advertised_flows() const noexcept { return flows_.size(); }
  std::uint64_t advertisements() const noexcept { return advertisements_; }

 private:
  std::unordered_map<net::FlowKey, mesh::TrafficClass, net::FlowKeyHash>
      flows_;
  std::uint64_t advertisements_ = 0;
};

}  // namespace meshnet::core
