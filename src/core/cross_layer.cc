#include "core/cross_layer.h"

#include <utility>

#include "util/logging.h"

namespace meshnet::core {

CrossLayerController::CrossLayerController(mesh::ControlPlane& control_plane,
                                           cluster::Cluster& cluster,
                                           CrossLayerConfig config)
    : control_plane_(control_plane),
      cluster_(cluster),
      config_(std::move(config)),
      tc_(cluster) {}

std::vector<net::IpAddress> CrossLayerController::high_priority_pod_ips()
    const {
  std::vector<net::IpAddress> ips;
  for (const cluster::ServiceInfo* info :
       cluster_.registry().services()) {
    for (const cluster::Endpoint& ep : info->endpoints) {
      if (ep.label_or("priority", "") == kPriorityHigh) {
        ips.push_back(ep.ip);
      }
    }
  }
  return ips;
}

void CrossLayerController::install_filters() {
  sim::Simulator& sim = cluster_.sim();
  for (const auto& sidecar : control_plane_.sidecars()) {
    const std::string pod = sidecar->pod().name();

    if (config_.classification && sidecar->config().gateway_mode) {
      sidecar->outbound_filters().append(
          std::make_shared<IngressClassifierFilter>(
              config_.classifier, &control_plane_.metrics()));
    }

    if (config_.provenance) {
      auto table =
          std::make_shared<ProvenanceTable>(sim, config_.provenance_ttl);
      tables_[pod] = table;
      // The same filter instance serves both chains so inbound recordings
      // are visible to outbound lookups — that is the whole point. On the
      // inbound chain provenance must resolve the traffic class *before*
      // the admission filter decides who is shed first.
      auto filter = std::make_shared<ProvenanceFilter>(table);
      sidecar->inbound_filters().insert_before("admission", filter);
      sidecar->outbound_filters().append(filter);
    }

    if (config_.priority_routing) {
      sidecar->outbound_filters().append(
          std::make_shared<PriorityRouterFilter>(
              config_.priority_routed_clusters));
    }
  }
}

void CrossLayerController::install_transport_policy() {
  mesh::MeshPolicies& policies = control_plane_.policies();

  mesh::TrafficClassPolicy high;
  high.cc = transport::CcAlgorithm::kReno;
  high.dscp =
      config_.dscp_tagging ? net::Dscp::kExpedited : net::Dscp::kDefault;
  mesh::TrafficClassPolicy low;
  low.cc = config_.scavenger_transport ? transport::CcAlgorithm::kLedbat
                                       : transport::CcAlgorithm::kReno;
  low.dscp =
      config_.dscp_tagging ? net::Dscp::kScavenger : net::Dscp::kDefault;
  policies.class_policies[mesh::TrafficClass::kLatencySensitive] = high;
  policies.class_policies[mesh::TrafficClass::kScavenger] = low;

  policies.upstream_connection_hook =
      [this](transport::Connection& conn, mesh::TrafficClass tc) {
        sdn_.advertise(conn.flow(), tc);
      };

  // Server halves of scavenger connections must also yield: responses are
  // where the bytes are. Install an accept-side mapper on every pod.
  const std::uint32_t mss = policies.transport_mss;
  const bool scavenger = config_.scavenger_transport;
  for (const auto& pod : cluster_.pods()) {
    pod->transport().set_accept_options_mapper(
        [mss, scavenger](const net::Packet& syn) {
          transport::ConnectionOptions options;
          options.mss = mss;
          options.dscp = syn.dscp;
          if (scavenger && syn.dscp == net::Dscp::kScavenger) {
            options.cc = transport::CcAlgorithm::kLedbat;
          }
          return options;
        });
  }
}

void CrossLayerController::install_tc_rules() {
  TcRule rule;
  rule.match = config_.tc_match;
  rule.high_priority_ips = high_priority_pod_ips();
  rule.high_share = config_.high_share;
  rule.strict = config_.strict_tc;
  if (rule.match == TcMatch::kDstIp && rule.high_priority_ips.empty()) {
    MESHNET_WARN() << "cross-layer: tc dst-ip match requested but no pod "
                      "carries label priority=high; rules will be inert";
  }
  tc_.install_on_all_pods(rule);
}

void CrossLayerController::install() {
  if (installed_) return;
  installed_ = true;
  install_filters();
  install_transport_policy();
  if (config_.tc_priority) install_tc_rules();
  control_plane_.push_config();
  MESHNET_INFO() << "cross-layer prioritization installed ("
                 << control_plane_.sidecars().size() << " sidecars, "
                 << tc_.rules().size() << " tc rules)";
}

void CrossLayerController::uninstall() {
  tc_.clear_all();
  mesh::MeshPolicies& policies = control_plane_.policies();
  policies.class_policies.clear();
  policies.upstream_connection_hook = nullptr;
  for (const auto& pod : cluster_.pods()) {
    pod->transport().set_accept_options_mapper(nullptr);
  }
  control_plane_.push_config();
}

std::shared_ptr<ProvenanceTable> CrossLayerController::provenance_table(
    const std::string& pod_name) const {
  const auto it = tables_.find(pod_name);
  return it == tables_.end() ? nullptr : it->second;
}

}  // namespace meshnet::core
