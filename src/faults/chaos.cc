#include "faults/chaos.h"

#include <utility>

#include "util/logging.h"

namespace meshnet::faults {

std::string_view fault_action_name(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kLinkDown:
      return "link-down";
    case FaultAction::kLinkUp:
      return "link-up";
    case FaultAction::kLinkLoss:
      return "link-loss";
    case FaultAction::kCrashPod:
      return "crash";
    case FaultAction::kRestartPod:
      return "restart";
    case FaultAction::kDeregisterPod:
      return "deregister";
    case FaultAction::kDegradePod:
      return "degrade";
    case FaultAction::kResetConnections:
      return "reset-connections";
    case FaultAction::kCpCrash:
      return "cp-crash";
    case FaultAction::kCpRestart:
      return "cp-restart";
    case FaultAction::kCpPartition:
      return "cp-partition";
    case FaultAction::kCpPushLoss:
      return "cp-push-loss";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kCrashPod, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::restart(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kRestartPod, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::deregister(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kDeregisterPod, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::degrade(sim::Time at, std::string pod,
                              double multiplier) {
  entries_.push_back({at, FaultAction::kDegradePod, std::move(pod),
                      multiplier});
  return *this;
}

FaultPlan& FaultPlan::reset_connections(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kResetConnections, std::move(pod),
                      0.0});
  return *this;
}

FaultPlan& FaultPlan::link_down(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kLinkDown, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::link_up(sim::Time at, std::string pod) {
  entries_.push_back({at, FaultAction::kLinkUp, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::packet_loss(sim::Time from, sim::Time until,
                                  std::string pod, double probability) {
  entries_.push_back({from, FaultAction::kLinkLoss, pod, probability});
  entries_.push_back({until, FaultAction::kLinkLoss, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::flap(sim::Time from, sim::Time until, std::string pod,
                           sim::Duration period, sim::Duration downtime) {
  for (sim::Time t = from; t < until; t += period) {
    link_down(t, pod);
    link_up(t + downtime, pod);
  }
  return *this;
}

FaultPlan& FaultPlan::cp_crash(sim::Time at) {
  entries_.push_back({at, FaultAction::kCpCrash, {}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cp_restart(sim::Time at) {
  entries_.push_back({at, FaultAction::kCpRestart, {}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cp_outage(sim::Time from, sim::Time until) {
  cp_crash(from);
  cp_restart(until);
  return *this;
}

FaultPlan& FaultPlan::cp_partition(sim::Time from, sim::Time until,
                                   std::string pod) {
  entries_.push_back({from, FaultAction::kCpPartition, pod, 1.0});
  entries_.push_back({until, FaultAction::kCpPartition, std::move(pod), 0.0});
  return *this;
}

FaultPlan& FaultPlan::cp_push_loss(sim::Time from, sim::Time until,
                                   double probability) {
  entries_.push_back({from, FaultAction::kCpPushLoss, {}, probability});
  entries_.push_back({until, FaultAction::kCpPushLoss, {}, 0.0});
  return *this;
}

ChaosController::ChaosController(sim::Simulator& sim,
                                 cluster::Cluster& cluster, std::uint64_t seed)
    : sim_(sim), cluster_(cluster), seed_(seed) {}

void ChaosController::schedule(const FaultPlan& plan) {
  for (const FaultEntry& entry : plan.entries()) {
    sim_.schedule_at(entry.at, [this, entry] { apply(entry); });
  }
}

bool ChaosController::apply(const FaultEntry& entry) {
  return execute(entry.action, entry.target, entry.value);
}

bool ChaosController::set_link_up(const std::string& pod, bool up) {
  return execute(up ? FaultAction::kLinkUp : FaultAction::kLinkDown, pod,
                 0.0);
}

bool ChaosController::set_link_loss(const std::string& pod,
                                    double probability) {
  return execute(FaultAction::kLinkLoss, pod, probability);
}

bool ChaosController::crash_pod(const std::string& pod) {
  return execute(FaultAction::kCrashPod, pod, 0.0);
}

bool ChaosController::restart_pod(const std::string& pod) {
  return execute(FaultAction::kRestartPod, pod, 0.0);
}

bool ChaosController::deregister_pod(const std::string& pod) {
  return execute(FaultAction::kDeregisterPod, pod, 0.0);
}

bool ChaosController::degrade_pod(const std::string& pod, double multiplier) {
  return execute(FaultAction::kDegradePod, pod, multiplier);
}

bool ChaosController::execute(FaultAction action, const std::string& target,
                              double value) {
  bool applied = false;
  // Control-plane actions have no pod; dispatch before the pod lookup.
  switch (action) {
    case FaultAction::kCpCrash:
      if (cp_hooks_.crash) applied = cp_hooks_.crash();
      break;
    case FaultAction::kCpRestart:
      if (cp_hooks_.restart) applied = cp_hooks_.restart();
      break;
    case FaultAction::kCpPartition:
      if (cp_hooks_.set_partitioned)
        applied = cp_hooks_.set_partitioned(target, value != 0.0);
      break;
    case FaultAction::kCpPushLoss:
      if (cp_hooks_.set_push_loss)
        applied = cp_hooks_.set_push_loss(value);
      break;
    default: {
      cluster::Pod* pod = cluster_.find_pod(target);
      if (pod != nullptr) {
        applied = execute_pod_fault(*pod, action, target, value);
      }
      break;
    }
  }
  FaultLogEntry logged{sim_.now(), action, target, value, applied};
  if (!applied) {
    MESHNET_WARN() << "chaos: " << fault_action_name(action) << " on "
                   << target << " did not apply";
  }
  log_.push_back(logged);
  if (hook_) hook_(log_.back());
  return applied;
}

bool ChaosController::execute_pod_fault(cluster::Pod& pod, FaultAction action,
                                        const std::string& target,
                                        double value) {
  switch (action) {
    case FaultAction::kLinkDown:
      pod.egress_link().set_up(false);
      pod.ingress_link().set_up(false);
      return true;
    case FaultAction::kLinkUp:
      pod.egress_link().set_up(true);
      pod.ingress_link().set_up(true);
      return true;
    case FaultAction::kLinkLoss:
      pod.egress_link().set_loss(value, seed_);
      pod.ingress_link().set_loss(value, seed_);
      return true;
    case FaultAction::kCrashPod:
      return cluster_.crash_pod(target);
    case FaultAction::kRestartPod:
      return cluster_.restart_pod(target);
    case FaultAction::kDeregisterPod:
      return cluster_.deregister_pod(target);
    case FaultAction::kDegradePod:
      pod.set_compute_multiplier(value);
      return true;
    case FaultAction::kResetConnections:
      pod.transport().reset_all_connections();
      return true;
    default:
      return false;  // CP actions never reach here
  }
}

}  // namespace meshnet::faults
