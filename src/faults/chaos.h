#pragma once

// The fault-injection layer: a declarative FaultPlan (what breaks, when)
// executed by a ChaosController against the cluster substrate.
//
// Injectable faults:
//   - link down/up on a pod's vNIC pair (a flap is a down/up series),
//   - Bernoulli packet loss on a pod's vNIC pair,
//   - pod crash (vNICs blackhole; registry untouched — detection is the
//     mesh's job) / deregister (the slow node-controller path) / restart,
//   - pod degradation (app service time multiplied).
//
// Determinism: every action fires at a fixed simulated time, and the only
// randomness (per-packet loss draws) comes from named RngStreams derived
// from the plan seed — so the same seed yields an identical event log,
// which is what makes chaos results reproducible and A/B-comparable.
// Request-level faults (aborts/delays) live in mesh/fault_filter.h; this
// layer owns infrastructure faults.
//
// The layering is strict: faults/ sees cluster/ and net/, never mesh/.
// Experiments forward the controller's event hook into mesh telemetry.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::faults {

enum class FaultAction {
  kLinkDown,
  kLinkUp,
  kLinkLoss,    ///< value = loss probability (0 clears)
  kCrashPod,
  kRestartPod,
  kDeregisterPod,
  kDegradePod,  ///< value = compute multiplier (1.0 restores)
};

std::string_view fault_action_name(FaultAction action) noexcept;

/// One scheduled fault. `target` is a pod name; link actions apply to the
/// pod's vNIC pair (both directions).
struct FaultEntry {
  sim::Time at = 0;
  FaultAction action = FaultAction::kLinkDown;
  std::string target;
  double value = 0.0;
};

/// A declarative chaos schedule, built fluently and handed to a
/// ChaosController. Entries may be added in any order; the controller
/// schedules each at its absolute time.
class FaultPlan {
 public:
  FaultPlan& crash(sim::Time at, std::string pod);
  FaultPlan& restart(sim::Time at, std::string pod);
  FaultPlan& deregister(sim::Time at, std::string pod);
  FaultPlan& degrade(sim::Time at, std::string pod, double multiplier);
  FaultPlan& link_down(sim::Time at, std::string pod);
  FaultPlan& link_up(sim::Time at, std::string pod);
  /// Bernoulli packet loss on the pod's vNICs during [from, until).
  FaultPlan& packet_loss(sim::Time from, sim::Time until, std::string pod,
                         double probability);
  /// Periodic flapping: the pod's vNICs go down at `from`, `from+period`,
  /// ... while before `until`, staying down for `downtime` each cycle.
  FaultPlan& flap(sim::Time from, sim::Time until, std::string pod,
                  sim::Duration period, sim::Duration downtime);

  const std::vector<FaultEntry>& entries() const noexcept { return entries_; }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<FaultEntry> entries_;
};

/// A fault the controller actually executed (or failed to — unknown pod).
struct FaultLogEntry {
  sim::Time at = 0;
  FaultAction action = FaultAction::kLinkDown;
  std::string target;
  double value = 0.0;
  bool applied = false;
};

class ChaosController {
 public:
  /// Observes every executed fault (experiments forward this into mesh
  /// telemetry as "fault" events).
  using FaultHook = std::function<void(const FaultLogEntry& entry)>;

  ChaosController(sim::Simulator& sim, cluster::Cluster& cluster,
                  std::uint64_t seed = 0);

  /// Schedules every entry of `plan` at its absolute time. May be called
  /// multiple times (plans compose).
  void schedule(const FaultPlan& plan);

  // Immediate actions (also what scheduled entries call). Each returns
  // whether the fault applied (pod exists, state change happened), and
  // appends to the log either way.
  bool apply(const FaultEntry& entry);
  bool set_link_up(const std::string& pod, bool up);
  bool set_link_loss(const std::string& pod, double probability);
  bool crash_pod(const std::string& pod);
  bool restart_pod(const std::string& pod);
  bool deregister_pod(const std::string& pod);
  bool degrade_pod(const std::string& pod, double multiplier);

  void set_fault_hook(FaultHook hook) { hook_ = std::move(hook); }

  /// Chronological record of every executed action — the determinism
  /// contract: same seed + same plan => identical log.
  const std::vector<FaultLogEntry>& log() const noexcept { return log_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  bool execute(FaultAction action, const std::string& target, double value);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  std::uint64_t seed_;
  FaultHook hook_;
  std::vector<FaultLogEntry> log_;
};

}  // namespace meshnet::faults
