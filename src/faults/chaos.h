#pragma once

// The fault-injection layer: a declarative FaultPlan (what breaks, when)
// executed by a ChaosController against the cluster substrate.
//
// Injectable faults:
//   - link down/up on a pod's vNIC pair (a flap is a down/up series),
//   - Bernoulli packet loss on a pod's vNIC pair,
//   - pod crash (vNICs blackhole; registry untouched — detection is the
//     mesh's job) / deregister (the slow node-controller path) / restart,
//   - pod degradation (app service time multiplied).
//
// Determinism: every action fires at a fixed simulated time, and the only
// randomness (per-packet loss draws) comes from named RngStreams derived
// from the plan seed — so the same seed yields an identical event log,
// which is what makes chaos results reproducible and A/B-comparable.
// Request-level faults (aborts/delays) live in mesh/fault_filter.h; this
// layer owns infrastructure faults.
//
// The layering is strict: faults/ sees cluster/ and net/, never mesh/.
// Experiments forward the controller's event hook into mesh telemetry.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::faults {

enum class FaultAction {
  kLinkDown,
  kLinkUp,
  kLinkLoss,    ///< value = loss probability (0 clears)
  kCrashPod,
  kRestartPod,
  kDeregisterPod,
  kDegradePod,  ///< value = compute multiplier (1.0 restores)
  kResetConnections,  ///< abort every transport connection on the pod
  // Control-plane faults. faults/ never sees mesh/, so these dispatch
  // through hooks the experiment layer registers (see CpHooks); without
  // hooks they log as not-applied.
  kCpCrash,      ///< control plane goes down (target unused)
  kCpRestart,    ///< control plane recovers (target unused)
  kCpPartition,  ///< target = pod; value 1 partitions, 0 heals
  kCpPushLoss,   ///< value = push-channel loss probability (0 clears)
};

std::string_view fault_action_name(FaultAction action) noexcept;

/// One scheduled fault. `target` is a pod name; link actions apply to the
/// pod's vNIC pair (both directions).
struct FaultEntry {
  sim::Time at = 0;
  FaultAction action = FaultAction::kLinkDown;
  std::string target;
  double value = 0.0;
};

/// A declarative chaos schedule, built fluently and handed to a
/// ChaosController. Entries may be added in any order; the controller
/// schedules each at its absolute time.
class FaultPlan {
 public:
  FaultPlan& crash(sim::Time at, std::string pod);
  FaultPlan& restart(sim::Time at, std::string pod);
  FaultPlan& deregister(sim::Time at, std::string pod);
  FaultPlan& degrade(sim::Time at, std::string pod, double multiplier);
  /// Abort all of the pod's transport connections (process restart: TCP
  /// state lost, RSTs notify peers). Pair with restart() at the same time
  /// to model a full pod bounce that severs established flows.
  FaultPlan& reset_connections(sim::Time at, std::string pod);
  FaultPlan& link_down(sim::Time at, std::string pod);
  FaultPlan& link_up(sim::Time at, std::string pod);
  /// Bernoulli packet loss on the pod's vNICs during [from, until).
  FaultPlan& packet_loss(sim::Time from, sim::Time until, std::string pod,
                         double probability);
  /// Periodic flapping: the pod's vNICs go down at `from`, `from+period`,
  /// ... while before `until`, staying down for `downtime` each cycle.
  FaultPlan& flap(sim::Time from, sim::Time until, std::string pod,
                  sim::Duration period, sim::Duration downtime);
  FaultPlan& cp_crash(sim::Time at);
  FaultPlan& cp_restart(sim::Time at);
  /// Control plane down during [from, until).
  FaultPlan& cp_outage(sim::Time from, sim::Time until);
  /// One sidecar partitioned from the control plane during [from, until).
  FaultPlan& cp_partition(sim::Time from, sim::Time until, std::string pod);
  /// Push-channel loss during [from, until).
  FaultPlan& cp_push_loss(sim::Time from, sim::Time until,
                          double probability);

  const std::vector<FaultEntry>& entries() const noexcept { return entries_; }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<FaultEntry> entries_;
};

/// A fault the controller actually executed (or failed to — unknown pod).
struct FaultLogEntry {
  sim::Time at = 0;
  FaultAction action = FaultAction::kLinkDown;
  std::string target;
  double value = 0.0;
  bool applied = false;
};

/// Control-plane fault surface. faults/ cannot depend on mesh/, so the
/// experiment layer (which sees both) wires these to mesh::ControlPlane;
/// a CP fault with no hook registered logs as not-applied.
struct CpHooks {
  std::function<bool()> crash;
  std::function<bool()> restart;
  /// (pod, partitioned) — partition one sidecar from the control plane.
  std::function<bool(const std::string&, bool)> set_partitioned;
  std::function<bool(double)> set_push_loss;
};

class ChaosController {
 public:
  /// Observes every executed fault (experiments forward this into mesh
  /// telemetry as "fault" events).
  using FaultHook = std::function<void(const FaultLogEntry& entry)>;

  ChaosController(sim::Simulator& sim, cluster::Cluster& cluster,
                  std::uint64_t seed = 0);

  /// Schedules every entry of `plan` at its absolute time. May be called
  /// multiple times (plans compose).
  void schedule(const FaultPlan& plan);

  // Immediate actions (also what scheduled entries call). Each returns
  // whether the fault applied (pod exists, state change happened), and
  // appends to the log either way.
  bool apply(const FaultEntry& entry);
  bool set_link_up(const std::string& pod, bool up);
  bool set_link_loss(const std::string& pod, double probability);
  bool crash_pod(const std::string& pod);
  bool restart_pod(const std::string& pod);
  bool deregister_pod(const std::string& pod);
  bool degrade_pod(const std::string& pod, double multiplier);

  void set_fault_hook(FaultHook hook) { hook_ = std::move(hook); }
  void set_control_plane_hooks(CpHooks hooks) { cp_hooks_ = std::move(hooks); }

  /// Chronological record of every executed action — the determinism
  /// contract: same seed + same plan => identical log.
  const std::vector<FaultLogEntry>& log() const noexcept { return log_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  bool execute(FaultAction action, const std::string& target, double value);
  bool execute_pod_fault(cluster::Pod& pod, FaultAction action,
                         const std::string& target, double value);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  std::uint64_t seed_;
  FaultHook hook_;
  CpHooks cp_hooks_;
  std::vector<FaultLogEntry> log_;
};

}  // namespace meshnet::faults
