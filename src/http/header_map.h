#pragma once

// Order-preserving, case-insensitive HTTP header collection, plus the
// well-known header names the mesh and the cross-layer case study use.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meshnet::http {

namespace headers {
inline constexpr std::string_view kContentLength = "content-length";
inline constexpr std::string_view kHost = "host";
/// Global request id propagated by apps so the mesh can correlate the
/// sub-requests a service spawns with the inbound request that caused
/// them (Istio/Envoy's x-request-id).
inline constexpr std::string_view kRequestId = "x-request-id";
/// The case study's custom priority header (paper §4.3 impl. step 1):
/// "high" or "low", set at the ingress/front-end and propagated by the
/// provenance filter.
inline constexpr std::string_view kMeshPriority = "x-mesh-priority";
/// Distributed-tracing span context: trace id and parent span id.
inline constexpr std::string_view kTraceId = "x-b3-traceid";
inline constexpr std::string_view kSpanId = "x-b3-spanid";
inline constexpr std::string_view kParentSpanId = "x-b3-parentspanid";
/// Number of upstream retry attempts already made (Envoy convention).
inline constexpr std::string_view kRetryAttempt = "x-envoy-attempt-count";
}  // namespace headers

class HeaderMap {
 public:
  /// Last-write-wins set (replaces all existing values for the name).
  void set(std::string_view name, std::string_view value);

  /// Appends a possibly-duplicate header.
  void add(std::string_view name, std::string_view value);

  /// First value for the name, case-insensitively.
  std::optional<std::string_view> get(std::string_view name) const;

  std::string get_or(std::string_view name, std::string_view fallback) const;

  bool has(std::string_view name) const;

  /// Removes all values for the name; returns how many were removed.
  std::size_t remove(std::string_view name);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Entries in insertion order (names stored lowercased).
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  friend bool operator==(const HeaderMap&, const HeaderMap&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace meshnet::http
