#pragma once

// Order-preserving, case-insensitive HTTP header collection, plus the
// well-known header names the mesh and the cross-layer case study use.
//
// Well-known names are interned to a small integer Id at insertion, so
// the hot paths — priority classification, provenance propagation,
// tracing, content-length handling — look headers up by integer compare
// with no per-lookup case-folding or string allocation. Unknown names
// fall back to the case-insensitive linear scan.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meshnet::http {

namespace headers {
inline constexpr std::string_view kContentLength = "content-length";
inline constexpr std::string_view kHost = "host";
/// Global request id propagated by apps so the mesh can correlate the
/// sub-requests a service spawns with the inbound request that caused
/// them (Istio/Envoy's x-request-id).
inline constexpr std::string_view kRequestId = "x-request-id";
/// The case study's custom priority header (paper §4.3 impl. step 1):
/// "high" or "low", set at the ingress/front-end and propagated by the
/// provenance filter.
inline constexpr std::string_view kMeshPriority = "x-mesh-priority";
/// Distributed-tracing span context: trace id and parent span id.
inline constexpr std::string_view kTraceId = "x-b3-traceid";
inline constexpr std::string_view kSpanId = "x-b3-spanid";
inline constexpr std::string_view kParentSpanId = "x-b3-parentspanid";
/// Number of upstream retry attempts already made (Envoy convention).
inline constexpr std::string_view kRetryAttempt = "x-envoy-attempt-count";
/// Peer service identity stamped by the provenance filter.
inline constexpr std::string_view kMeshSource = "x-mesh-source";
/// Milliseconds left on the caller's armed request deadline, stamped by
/// the outbound sidecar so the serving sidecar's admission controller
/// can shed requests whose deadline is already unmeetable.
inline constexpr std::string_view kDeadlineMs = "x-mesh-deadline-ms";
/// Shed marker on admission-control 503s: carries the shed reason and
/// tells the caller's retry logic not to amplify the overload.
inline constexpr std::string_view kShedReason = "x-mesh-shed";

/// Interned ids for the well-known names above. kUnknown means "not a
/// well-known header"; such entries are matched by case-insensitive
/// string comparison instead.
enum class Id : std::uint8_t {
  kUnknown = 0,
  kContentLength,
  kHost,
  kRequestId,
  kMeshPriority,
  kTraceId,
  kSpanId,
  kParentSpanId,
  kRetryAttempt,
  kMeshSource,
  kDeadlineMs,
  kShedReason,
};

/// Id for `name` (case-insensitive), or Id::kUnknown.
Id intern(std::string_view name) noexcept;

/// Canonical lowercase name for a well-known id. Must not be kUnknown.
std::string_view name_of(Id id) noexcept;
}  // namespace headers

class HeaderMap {
 public:
  /// Last-write-wins set (replaces all existing values for the name).
  void set(std::string_view name, std::string_view value);
  void set(headers::Id id, std::string_view value);

  /// Appends a possibly-duplicate header.
  void add(std::string_view name, std::string_view value);

  /// First value for the name, case-insensitively.
  std::optional<std::string_view> get(std::string_view name) const;
  std::optional<std::string_view> get(headers::Id id) const;

  std::string get_or(std::string_view name, std::string_view fallback) const;
  std::string get_or(headers::Id id, std::string_view fallback) const;

  bool has(std::string_view name) const;
  bool has(headers::Id id) const;

  /// Removes all values for the name; returns how many were removed.
  std::size_t remove(std::string_view name);
  std::size_t remove(headers::Id id);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Entries in insertion order (names stored lowercased).
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Interned id of the i-th entry (kUnknown for non-well-known names).
  headers::Id id_at(std::size_t i) const noexcept { return ids_[i]; }

  friend bool operator==(const HeaderMap& a, const HeaderMap& b) {
    // ids_ is derived from the names, so comparing entries_ suffices.
    return a.entries_ == b.entries_;
  }

 private:
  /// Drops every entry whose index satisfies `pred`, keeping entries_
  /// and ids_ in lockstep. Returns how many were removed.
  template <typename Pred>
  std::size_t erase_where(Pred pred) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (pred(i)) continue;
      if (out != i) {
        entries_[out] = std::move(entries_[i]);
        ids_[out] = ids_[i];
      }
      ++out;
    }
    const std::size_t removed = entries_.size() - out;
    entries_.resize(out);
    ids_.resize(out);
    return removed;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
  std::vector<headers::Id> ids_;  ///< parallel to entries_
};

}  // namespace meshnet::http
