#pragma once

// HTTP/1.1-style request and response messages. Bodies are plain byte
// strings; the codec (codec.h) turns messages into wire bytes and back.

#include <cstdint>
#include <string>
#include <string_view>

#include "http/header_map.h"

namespace meshnet::http {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  HeaderMap headers;
  std::string body;

  /// Convenience accessors for the headers the mesh manipulates.
  std::string request_id() const {
    return headers.get_or(headers::Id::kRequestId, "");
  }
  void set_request_id(std::string_view id) {
    headers.set(headers::Id::kRequestId, id);
  }
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  bool ok() const noexcept { return status >= 200 && status < 300; }
};

/// Reason phrases for the subset of statuses the mesh generates.
std::string_view status_text(int status) noexcept;

/// Fresh unique request id ("req-<counter>-<hex>"). Deterministic across a
/// run given the same call sequence; the counter is thread-local, so
/// simulations running concurrently on different threads (sweep points)
/// draw the same sequences they would single-threaded.
std::string generate_request_id();

/// Resets the calling thread's request-id counter (experiments call this
/// at start so repeated runs in one process produce identical ids).
void reset_request_id_counter();

}  // namespace meshnet::http
