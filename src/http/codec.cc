#include "http/codec.h"

#include <utility>

#include "util/strings.h"

namespace meshnet::http {

namespace {
constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHttpVersion = "HTTP/1.1";

void append_headers(std::string& out, const HeaderMap& headers,
                    std::size_t body_size) {
  const auto& entries = headers.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (headers.id_at(i) == headers::Id::kContentLength) {
      continue;  // always emit an accurate one below
    }
    const auto& [name, value] = entries[i];
    out.append(name).append(": ").append(value).append(kCrlf);
  }
  out.append(headers::kContentLength)
      .append(": ")
      .append(std::to_string(body_size))
      .append(kCrlf);
  out.append(kCrlf);
}
}  // namespace

std::string serialize_request(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.body.size());
  out.append(request.method)
      .append(" ")
      .append(request.path)
      .append(" ")
      .append(kHttpVersion)
      .append(kCrlf);
  append_headers(out, request.headers, request.body.size());
  out.append(request.body);
  return out;
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out.append(kHttpVersion)
      .append(" ")
      .append(std::to_string(response.status))
      .append(" ")
      .append(status_text(response.status))
      .append(kCrlf);
  append_headers(out, response.headers, response.body.size());
  out.append(response.body);
  return out;
}

HttpParser::HttpParser(ParserKind kind) : kind_(kind) {}

void HttpParser::reset() {
  state_ = State::kHead;
  error_ = ParserError::kNone;
  head_buffer_.clear();
  body_.clear();
  body_expected_ = 0;
  request_ = HttpRequest{};
  response_ = HttpResponse{};
}

void HttpParser::fail(ParserError error) {
  state_ = State::kError;
  error_ = error;
}

bool HttpParser::feed(std::string_view data) {
  while (!data.empty() && state_ != State::kError) {
    if (state_ == State::kHead) {
      // Accumulate until the blank line ending the head. To find the
      // terminator across chunk boundaries, search the tail of the
      // buffer after appending.
      const std::size_t scan_from =
          head_buffer_.size() < 3 ? 0 : head_buffer_.size() - 3;
      head_buffer_.append(data);
      data = {};
      const std::size_t end = head_buffer_.find("\r\n\r\n", scan_from);
      if (end == std::string::npos) {
        if (head_buffer_.size() > kMaxHeadBytes) fail(ParserError::kHeadTooLarge);
        continue;
      }
      // Anything after the head belongs to the body (or the next message).
      std::string rest = head_buffer_.substr(end + 4);
      head_buffer_.resize(end);
      parse_head();
      if (state_ == State::kError) return false;
      head_buffer_.clear();
      if (body_expected_ == 0) {
        emit_message();
        state_ = State::kHead;
      } else {
        state_ = State::kBody;
      }
      // Re-feed the remainder through the state machine.
      if (!rest.empty()) {
        const std::string pending = std::move(rest);
        feed(pending);
      }
      continue;
    }
    if (state_ == State::kBody) {
      const std::size_t need = body_expected_ - body_.size();
      const std::size_t take = std::min(need, data.size());
      body_.append(data.substr(0, take));
      data.remove_prefix(take);
      if (body_.size() == body_expected_) {
        emit_message();
        state_ = State::kHead;
      }
    }
  }
  return state_ != State::kError;
}

void HttpParser::parse_head() {
  // Split the head into lines; the first is the start line.
  std::string_view head(head_buffer_);
  const std::size_t first_eol = head.find("\r\n");
  const std::string_view start_line =
      first_eol == std::string_view::npos ? head : head.substr(0, first_eol);
  if (!parse_start_line(start_line)) return;

  HeaderMap& headers =
      kind_ == ParserKind::kRequest ? request_.headers : response_.headers;
  headers = HeaderMap{};
  std::string_view remaining = first_eol == std::string_view::npos
                                   ? std::string_view{}
                                   : head.substr(first_eol + 2);
  while (!remaining.empty()) {
    std::size_t eol = remaining.find("\r\n");
    std::string_view line =
        eol == std::string_view::npos ? remaining : remaining.substr(0, eol);
    remaining = eol == std::string_view::npos
                    ? std::string_view{}
                    : remaining.substr(eol + 2);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(ParserError::kBadHeader);
      return;
    }
    const std::string_view name = util::trim(line.substr(0, colon));
    const std::string_view value = util::trim(line.substr(colon + 1));
    if (name.empty()) {
      fail(ParserError::kBadHeader);
      return;
    }
    headers.add(name, value);
  }

  body_expected_ = 0;
  if (const auto cl = headers.get(headers::Id::kContentLength)) {
    const auto parsed = util::parse_u64(util::trim(*cl));
    if (!parsed) {
      fail(ParserError::kBadContentLength);
      return;
    }
    body_expected_ = static_cast<std::size_t>(*parsed);
  }
  body_.clear();
  body_.reserve(body_expected_);
}

bool HttpParser::parse_start_line(std::string_view line) {
  const auto parts = util::split(line, ' ');
  if (kind_ == ParserKind::kRequest) {
    // METHOD SP PATH SP VERSION
    if (parts.size() < 3 || parts[0].empty() || parts[1].empty() ||
        !util::starts_with(parts[2], "HTTP/")) {
      fail(ParserError::kBadStartLine);
      return false;
    }
    request_ = HttpRequest{};
    request_.method = std::string(parts[0]);
    request_.path = std::string(parts[1]);
    return true;
  }
  // VERSION SP STATUS SP REASON...
  if (parts.size() < 2 || !util::starts_with(parts[0], "HTTP/")) {
    fail(ParserError::kBadStartLine);
    return false;
  }
  const auto status = util::parse_u64(parts[1]);
  if (!status || *status < 100 || *status > 599) {
    fail(ParserError::kBadStartLine);
    return false;
  }
  response_ = HttpResponse{};
  response_.status = static_cast<int>(*status);
  return true;
}

void HttpParser::emit_message() {
  ++parsed_;
  if (kind_ == ParserKind::kRequest) {
    request_.body = std::move(body_);
    body_.clear();
    if (on_request_) on_request_(std::move(request_));
    request_ = HttpRequest{};
  } else {
    response_.body = std::move(body_);
    body_.clear();
    if (on_response_) on_response_(std::move(response_));
    response_ = HttpResponse{};
  }
  body_expected_ = 0;
}

}  // namespace meshnet::http
