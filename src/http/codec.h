#pragma once

// HTTP/1.1 wire codec.
//
// serialize_*() produce real request/status lines and header blocks with a
// content-length framed body. HttpParser is an incremental push parser:
// feed it arbitrary byte chunks straight off a transport connection and it
// emits complete messages, handling messages split across chunks and
// multiple pipelined messages inside one chunk. Malformed input moves the
// parser into an error state that the caller can observe and reset.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace meshnet::http {

std::string serialize_request(const HttpRequest& request);
std::string serialize_response(const HttpResponse& response);

enum class ParserKind { kRequest, kResponse };

enum class ParserError {
  kNone,
  kBadStartLine,
  kBadHeader,
  kBadContentLength,
  kHeadTooLarge,
};

class HttpParser {
 public:
  using RequestHandler = std::function<void(HttpRequest)>;
  using ResponseHandler = std::function<void(HttpResponse)>;

  explicit HttpParser(ParserKind kind);

  void set_on_request(RequestHandler handler) {
    on_request_ = std::move(handler);
  }
  void set_on_response(ResponseHandler handler) {
    on_response_ = std::move(handler);
  }

  /// Consumes a chunk of bytes. Returns false once the parser is in an
  /// error state (further input is ignored until reset()).
  bool feed(std::string_view data);

  bool has_error() const noexcept { return error_ != ParserError::kNone; }
  ParserError error() const noexcept { return error_; }

  /// Number of complete messages emitted so far.
  std::uint64_t messages_parsed() const noexcept { return parsed_; }

  /// Bytes buffered waiting for more input.
  std::size_t buffered_bytes() const noexcept {
    return head_buffer_.size() + body_.size();
  }

  void reset();

  /// Upper bound on the head (start line + headers) before the parser
  /// rejects the message.
  static constexpr std::size_t kMaxHeadBytes = 64 * 1024;

 private:
  enum class State { kHead, kBody, kError };

  void parse_head();
  bool parse_start_line(std::string_view line);
  void emit_message();
  void fail(ParserError error);

  ParserKind kind_;
  State state_ = State::kHead;
  ParserError error_ = ParserError::kNone;
  std::string head_buffer_;
  std::string body_;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  HttpResponse response_;
  std::uint64_t parsed_ = 0;
  RequestHandler on_request_;
  ResponseHandler on_response_;
};

}  // namespace meshnet::http
