#include "http/header_map.h"

#include <algorithm>

#include "util/strings.h"

namespace meshnet::http {

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void HeaderMap::add(std::string_view name, std::string_view value) {
  entries_.emplace_back(util::to_lower(name), std::string(value));
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (util::iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

std::string HeaderMap::get_or(std::string_view name,
                              std::string_view fallback) const {
  const auto v = get(name);
  return std::string(v ? *v : fallback);
}

bool HeaderMap::has(std::string_view name) const {
  return get(name).has_value();
}

std::size_t HeaderMap::remove(std::string_view name) {
  const auto before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const auto& entry) {
                                  return util::iequals(entry.first, name);
                                }),
                 entries_.end());
  return before - entries_.size();
}

}  // namespace meshnet::http
