#include "http/header_map.h"

#include "util/strings.h"

namespace meshnet::http {

namespace headers {

Id intern(std::string_view name) noexcept {
  // Dispatch on length first: the well-known set has at most two names
  // per length, so a lookup is one or two case-insensitive compares.
  switch (name.size()) {
    case 4:
      if (util::iequals(name, kHost)) return Id::kHost;
      break;
    case 11:
      if (util::iequals(name, kSpanId)) return Id::kSpanId;
      if (util::iequals(name, kShedReason)) return Id::kShedReason;
      break;
    case 12:
      if (util::iequals(name, kRequestId)) return Id::kRequestId;
      if (util::iequals(name, kTraceId)) return Id::kTraceId;
      break;
    case 13:
      if (util::iequals(name, kMeshSource)) return Id::kMeshSource;
      break;
    case 14:
      if (util::iequals(name, kContentLength)) return Id::kContentLength;
      break;
    case 15:
      if (util::iequals(name, kMeshPriority)) return Id::kMeshPriority;
      break;
    case 17:
      if (util::iequals(name, kParentSpanId)) return Id::kParentSpanId;
      break;
    case 18:
      if (util::iequals(name, kDeadlineMs)) return Id::kDeadlineMs;
      break;
    case 21:
      if (util::iequals(name, kRetryAttempt)) return Id::kRetryAttempt;
      break;
    default:
      break;
  }
  return Id::kUnknown;
}

std::string_view name_of(Id id) noexcept {
  switch (id) {
    case Id::kContentLength:
      return kContentLength;
    case Id::kHost:
      return kHost;
    case Id::kRequestId:
      return kRequestId;
    case Id::kMeshPriority:
      return kMeshPriority;
    case Id::kTraceId:
      return kTraceId;
    case Id::kSpanId:
      return kSpanId;
    case Id::kParentSpanId:
      return kParentSpanId;
    case Id::kRetryAttempt:
      return kRetryAttempt;
    case Id::kUnknown:
      break;
    case Id::kMeshSource:
      return kMeshSource;
    case Id::kDeadlineMs:
      return kDeadlineMs;
    case Id::kShedReason:
      return kShedReason;
  }
  return "";
}

}  // namespace headers

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void HeaderMap::set(headers::Id id, std::string_view value) {
  remove(id);
  entries_.emplace_back(std::string(headers::name_of(id)),
                        std::string(value));
  ids_.push_back(id);
}

void HeaderMap::add(std::string_view name, std::string_view value) {
  const headers::Id id = headers::intern(name);
  // Well-known names reuse the canonical lowercase constant; only
  // unknown names pay for case-folding.
  entries_.emplace_back(id != headers::Id::kUnknown
                            ? std::string(headers::name_of(id))
                            : util::to_lower(name),
                        std::string(value));
  ids_.push_back(id);
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  const headers::Id id = headers::intern(name);
  if (id != headers::Id::kUnknown) return get(id);
  for (const auto& [key, value] : entries_) {
    if (util::iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

std::optional<std::string_view> HeaderMap::get(headers::Id id) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return std::string_view(entries_[i].second);
  }
  return std::nullopt;
}

std::string HeaderMap::get_or(std::string_view name,
                              std::string_view fallback) const {
  const auto v = get(name);
  return std::string(v ? *v : fallback);
}

std::string HeaderMap::get_or(headers::Id id,
                              std::string_view fallback) const {
  const auto v = get(id);
  return std::string(v ? *v : fallback);
}

bool HeaderMap::has(std::string_view name) const {
  return get(name).has_value();
}

bool HeaderMap::has(headers::Id id) const { return get(id).has_value(); }

std::size_t HeaderMap::remove(std::string_view name) {
  const headers::Id id = headers::intern(name);
  if (id != headers::Id::kUnknown) return remove(id);
  return erase_where(
      [&](std::size_t i) { return util::iequals(entries_[i].first, name); });
}

std::size_t HeaderMap::remove(headers::Id id) {
  return erase_where([&](std::size_t i) { return ids_[i] == id; });
}

}  // namespace meshnet::http
