#include "http/message.h"

#include <cstdio>

namespace meshnet::http {

namespace {
// thread_local so concurrent sweep points (each a whole simulation running
// on one worker thread, see workload/sweep_runner.h) draw independent,
// reproducible id sequences: every experiment resets the counter at start
// and runs to completion on a single thread.
thread_local std::uint64_t g_request_counter = 0;
}  // namespace

std::string_view status_text(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

std::string generate_request_id() {
  ++g_request_counter;
  char buf[48];
  std::snprintf(buf, sizeof buf, "req-%llu-%08llx",
                static_cast<unsigned long long>(g_request_counter),
                static_cast<unsigned long long>(g_request_counter *
                                                0x9e3779b97f4a7c15ULL >>
                                                32));
  return buf;
}

void reset_request_id_counter() { g_request_counter = 0; }

}  // namespace meshnet::http
