#pragma once

// IPv4-style addressing for the simulated fabric. Addresses are plain
// uint32 values with dotted-quad pretty printing; the cluster substrate
// allocates them from per-node pod subnets the way Kubernetes CNIs do.

#include <cstdint>
#include <string>

namespace meshnet::net {

/// An IPv4 address in host byte order.
using IpAddress = std::uint32_t;

/// A transport port.
using Port = std::uint16_t;

constexpr IpAddress kNoAddress = 0;

constexpr IpAddress make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                            std::uint8_t d) noexcept {
  return (static_cast<IpAddress>(a) << 24) | (static_cast<IpAddress>(b) << 16) |
         (static_cast<IpAddress>(c) << 8) | static_cast<IpAddress>(d);
}

std::string ip_to_string(IpAddress ip);

/// Parses "a.b.c.d"; returns kNoAddress on malformed input.
IpAddress parse_ip(const std::string& text);

/// A (host, port) endpoint.
struct SocketAddress {
  IpAddress ip = kNoAddress;
  Port port = 0;

  friend bool operator==(const SocketAddress&, const SocketAddress&) = default;
  std::string to_string() const;
};

/// An ordered connection 4-tuple, used as a demux key.
struct FlowKey {
  IpAddress src_ip = kNoAddress;
  Port src_port = 0;
  IpAddress dst_ip = kNoAddress;
  Port dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  FlowKey reversed() const noexcept {
    return FlowKey{dst_ip, dst_port, src_ip, src_port};
  }
  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
    h ^= (static_cast<std::uint64_t>(k.src_port) << 16) | k.dst_port;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace meshnet::net
