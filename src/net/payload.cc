#include "net/payload.h"

#include <bit>
#include <cstring>
#include <new>
#include <vector>

namespace meshnet::net {

namespace {

// Size classes are powers of two from 64 B (ACK-sized app messages) to
// 64 KiB (the largest bulk responses the e-library sends are segmented
// well below this). Larger blocks bypass the pool.
constexpr std::size_t kMinClassBytes = 64;
constexpr std::size_t kMaxClassBytes = 64 * 1024;
constexpr int kMinClassShift = 6;
constexpr int kClassCount = 11;  // 64, 128, ..., 64 KiB

int class_for(std::size_t bytes) noexcept {
  const std::size_t clamped = bytes < kMinClassBytes ? kMinClassBytes : bytes;
  const int cls = std::bit_width(clamped - 1) - kMinClassShift;
  return cls < 0 ? 0 : cls;
}

std::size_t class_bytes(int cls) noexcept {
  return kMinClassBytes << cls;
}

struct Pool {
  std::vector<void*> free_lists[kClassCount];
  PayloadPoolStats stats;

  ~Pool() {
    for (auto& list : free_lists) {
      for (void* block : list) ::operator delete(block);
    }
  }
};

Pool& pool() noexcept {
  thread_local Pool instance;
  return instance;
}

}  // namespace

struct PayloadPoolAccess {
  using Block = Payload::Block;

  static Block* acquire(std::size_t bytes) {
    Pool& p = pool();
    if (bytes > kMaxClassBytes) {
      ++p.stats.unpooled;
      void* raw = ::operator new(sizeof(Block) + bytes);
      Block* block = static_cast<Block*>(raw);
      block->refs = 1;
      block->capacity = static_cast<std::uint32_t>(bytes);
      return block;
    }
    const int cls = class_for(bytes);
    auto& list = p.free_lists[cls];
    if (!list.empty()) {
      ++p.stats.pool_hits;
      --p.stats.blocks_cached;
      p.stats.bytes_cached -= class_bytes(cls);
      Block* block = static_cast<Block*>(list.back());
      list.pop_back();
      block->refs = 1;
      return block;
    }
    ++p.stats.pool_misses;
    void* raw = ::operator new(sizeof(Block) + class_bytes(cls));
    Block* block = static_cast<Block*>(raw);
    block->refs = 1;
    block->capacity = static_cast<std::uint32_t>(class_bytes(cls));
    return block;
  }

  static void release(Block* block) noexcept {
    if (block->capacity > kMaxClassBytes) {
      ::operator delete(block);
      return;
    }
    Pool& p = pool();
    const int cls = class_for(block->capacity);
    p.free_lists[cls].push_back(block);
    ++p.stats.blocks_cached;
    p.stats.bytes_cached += class_bytes(cls);
  }
};

PayloadPoolStats payload_pool_stats() noexcept { return pool().stats; }

void payload_pool_trim() noexcept {
  Pool& p = pool();
  for (auto& list : p.free_lists) {
    for (void* block : list) ::operator delete(block);
    list.clear();
  }
  p.stats.blocks_cached = 0;
  p.stats.bytes_cached = 0;
}

Payload Payload::copy_of(std::string_view bytes) {
  Payload out;
  if (bytes.empty()) return out;
  Block* block = PayloadPoolAccess::acquire(bytes.size());
  std::memcpy(block->bytes(), bytes.data(), bytes.size());
  out.block_ = block;
  out.data_ = block->bytes();
  out.size_ = static_cast<std::uint32_t>(bytes.size());
  return out;
}

Payload Payload::filled(std::size_t count, char fill) {
  Payload out;
  if (count == 0) return out;
  Block* block = PayloadPoolAccess::acquire(count);
  std::memset(block->bytes(), fill, count);
  out.block_ = block;
  out.data_ = block->bytes();
  out.size_ = static_cast<std::uint32_t>(count);
  return out;
}

void Payload::release() noexcept {
  if (block_ != nullptr) {
    if (--block_->refs == 0) PayloadPoolAccess::release(block_);
    block_ = nullptr;
  }
}

}  // namespace meshnet::net
