#include "net/link.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace meshnet::net {

Link::Link(sim::Simulator& sim, std::string name, double rate_bits_per_second,
           sim::Duration propagation_delay, std::unique_ptr<Qdisc> qdisc)
    : sim_(sim),
      name_(std::move(name)),
      rate_bps_(rate_bits_per_second),
      prop_delay_(propagation_delay),
      qdisc_(std::move(qdisc)) {}

void Link::send(Packet packet) {
  if (!up_) {
    ++stats_.down_drops;
    return;
  }
  if (loss_probability_ > 0.0 && loss_rng_ &&
      loss_rng_->bernoulli(loss_probability_)) {
    ++stats_.loss_drops;
    return;
  }
  if (!qdisc_->enqueue(std::move(packet), sim_.now())) {
    MESHNET_DEBUG() << "link " << name_ << ": qdisc drop";
  }
  try_transmit();
}

void Link::set_qdisc(std::unique_ptr<Qdisc> qdisc) {
  qdisc_ = std::move(qdisc);
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    ++stats_.carrier_losses;
    // Backlogged packets die with the carrier (the driver's TX ring is
    // flushed); the loss shows up to transports as missing ACKs.
    while (auto packet = qdisc_->dequeue(sim_.now())) {
      ++stats_.down_drops;
    }
    if (pending_retry_ != sim::kInvalidEventId) {
      sim_.cancel(pending_retry_);
      pending_retry_ = sim::kInvalidEventId;
    }
    MESHNET_DEBUG() << "link " << name_ << ": carrier down";
  } else {
    MESHNET_DEBUG() << "link " << name_ << ": carrier up";
    try_transmit();
  }
}

void Link::set_loss(double probability, std::uint64_t seed) {
  if (probability <= 0.0) {
    loss_probability_ = 0.0;
    loss_rng_.reset();
    return;
  }
  loss_probability_ = probability;
  loss_rng_ = std::make_unique<sim::RngStream>(seed, "loss:" + name_);
}

double Link::utilization(sim::Time now) const noexcept {
  if (now <= 0) return 0.0;
  return static_cast<double>(stats_.busy_time) / static_cast<double>(now);
}

void Link::try_transmit() {
  if (transmitting_ || !up_) return;
  if (pending_retry_ != sim::kInvalidEventId) {
    sim_.cancel(pending_retry_);
    pending_retry_ = sim::kInvalidEventId;
  }
  auto packet = qdisc_->dequeue(sim_.now());
  if (!packet) {
    // A shaper may hold packets back even though the transmitter is idle;
    // come back when the qdisc says a packet could be eligible.
    if (const auto ready = qdisc_->next_ready(sim_.now())) {
      // Guard against zero-progress spins: a qdisc that says "ready now"
      // but dequeues nothing must be retried strictly later.
      const sim::Time when = std::max(*ready, sim_.now() + 1);
      pending_retry_ = sim_.schedule_at(when, [this] {
        pending_retry_ = sim::kInvalidEventId;
        try_transmit();
      });
    }
    return;
  }
  transmitting_ = true;
  const sim::Duration tx_time =
      sim::transmission_time(packet->size_bytes(), rate_bps_);
  stats_.busy_time += tx_time;
  // Serialization finishes after tx_time; the bits arrive prop_delay later.
  sim_.schedule_after(tx_time, [this, p = std::move(*packet)]() mutable {
    transmitting_ = false;
    stats_.delivered_packets += 1;
    stats_.delivered_bytes += p.size_bytes();
    if (handoff_) {
      // Cut link: the destination lives on another shard. Hand the
      // packet off at serialization-complete time with the remaining
      // propagation; the mailbox layer delivers it there.
      handoff_(std::move(p), prop_delay_);
    } else {
      sim_.schedule_after(prop_delay_, [this, p = std::move(p)]() mutable {
        if (sink_) sink_(std::move(p));
      });
    }
    try_transmit();
  });
}

}  // namespace meshnet::net
