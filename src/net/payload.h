#pragma once

// Pooled, refcounted packet payload buffers.
//
// Every simulated segment used to carry a shared_ptr<const std::string>,
// which costs one control-block allocation plus one string allocation per
// segment and a pair of atomic refcount ops per packet copy. Payload
// replaces that with a view into a refcounted block drawn from a
// thread-local size-class pool: the transport copies the application
// bytes into ONE block per send() and every MSS segment (and every
// retransmit) is a zero-copy slice of it, so steady-state packet flow
// does not touch the allocator at all once the pool is warm.
//
// Thread affinity: a simulation (and all of its packets) lives on a
// single thread — the sweep runner pins each point to one worker — so
// refcounts are plain integers and the pool is thread_local. Payloads
// must not be shared across threads.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace meshnet::net {

/// Allocation behaviour of the calling thread's payload pool (counters
/// are cumulative; deterministic for a deterministic packet sequence).
struct PayloadPoolStats {
  std::uint64_t pool_hits = 0;     ///< blocks served from a freelist
  std::uint64_t pool_misses = 0;   ///< blocks that hit the allocator
  std::uint64_t unpooled = 0;      ///< oversized blocks (> max class)
  std::uint64_t blocks_cached = 0; ///< blocks currently in freelists
  std::uint64_t bytes_cached = 0;  ///< capacity held in freelists
};

/// Snapshot of the calling thread's pool counters.
PayloadPoolStats payload_pool_stats() noexcept;

/// Frees every cached block on the calling thread (tests / leak tools).
void payload_pool_trim() noexcept;

class Payload {
 public:
  Payload() noexcept = default;

  /// Copies `bytes` into a pooled block. The one copy per send() —
  /// slices of the result share the block.
  static Payload copy_of(std::string_view bytes);

  /// Convenience for tests/benches: a block of `count` copies of `fill`.
  static Payload filled(std::size_t count, char fill);

  Payload(const Payload& other) noexcept
      : block_(other.block_), data_(other.data_), size_(other.size_) {
    if (block_ != nullptr) ++block_->refs;
  }

  Payload(Payload&& other) noexcept
      : block_(std::exchange(other.block_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  Payload& operator=(const Payload& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      data_ = other.data_;
      size_ = other.size_;
      if (block_ != nullptr) ++block_->refs;
    }
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      block_ = std::exchange(other.block_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~Payload() { release(); }

  /// A sub-range sharing this payload's block (no copy). `offset` +
  /// `length` must lie within size().
  Payload slice(std::size_t offset, std::size_t length) const noexcept {
    Payload out;
    out.block_ = block_;
    out.data_ = data_ + offset;
    out.size_ = static_cast<std::uint32_t>(length);
    if (block_ != nullptr) ++block_->refs;
    return out;
  }

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::string_view view() const noexcept { return {data_, size_}; }

  void reset() noexcept {
    release();
    data_ = nullptr;
    size_ = 0;
  }

 private:
  friend struct PayloadPoolAccess;

  struct Block {
    std::uint32_t refs;
    std::uint32_t capacity;
    // payload bytes follow the header in the same allocation
    char* bytes() noexcept { return reinterpret_cast<char*>(this + 1); }
  };

  void release() noexcept;

  Block* block_ = nullptr;
  const char* data_ = nullptr;
  std::uint32_t size_ = 0;
};

}  // namespace meshnet::net
