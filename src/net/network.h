#pragma once

// The simulated fabric: locations (hosts / switches) joined by links, with
// interfaces (pod vNIC endpoints) attached to locations. Routing is
// shortest-path by hop count, precomputed as next-hop tables the way a
// static L3 fabric would be. Same-location traffic ("localhost" between an
// app container and its sidecar inside one pod) bypasses the fabric with a
// small configurable loopback delay.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace meshnet::net {

using LocationId = std::uint32_t;
constexpr LocationId kInvalidLocation = UINT32_MAX;

/// A packet delivery endpoint with an IP, attached to a location.
class Interface {
 public:
  Interface(IpAddress ip, LocationId location, std::string name)
      : ip_(ip), location_(location), name_(std::move(name)) {}

  IpAddress ip() const noexcept { return ip_; }
  LocationId location() const noexcept { return location_; }
  const std::string& name() const noexcept { return name_; }

  void set_handler(std::function<void(Packet)> handler) {
    handler_ = std::move(handler);
  }
  void deliver(Packet packet) const {
    if (handler_) handler_(std::move(packet));
  }

 private:
  IpAddress ip_;
  LocationId location_;
  std::string name_;
  std::function<void(Packet)> handler_;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim);

  /// Adds a routing node (host bridge, switch, ...).
  LocationId add_location(std::string name);

  /// Adds a unidirectional link. Default qdisc is a drop-tail FIFO.
  Link& add_link(LocationId from, LocationId to, double rate_bps,
                 sim::Duration propagation_delay,
                 std::unique_ptr<Qdisc> qdisc = nullptr,
                 std::string name = {});

  /// Adds a pair of unidirectional links (A->B and B->A) with identical
  /// parameters; returns {forward, reverse}.
  std::pair<Link*, Link*> add_duplex_link(LocationId a, LocationId b,
                                          double rate_bps,
                                          sim::Duration propagation_delay,
                                          std::string name = {});

  /// Attaches an interface with the given IP at a location. IPs must be
  /// unique across the network.
  Interface& attach_interface(IpAddress ip, LocationId location,
                              std::string name = {});

  /// Injects a packet from its flow's source toward its destination.
  /// Unroutable packets (unknown IPs, partitioned fabric) are dropped and
  /// counted.
  void send(Packet packet);

  Interface* find_interface(IpAddress ip);
  Link* find_link(const std::string& name);

  /// All links, for stats sweeps.
  std::vector<Link*> links();

  /// Delay applied to same-location (loopback) deliveries.
  void set_loopback_delay(sim::Duration delay) noexcept {
    loopback_delay_ = delay;
  }
  sim::Duration loopback_delay() const noexcept { return loopback_delay_; }

  std::uint64_t unroutable_drops() const noexcept { return unroutable_; }
  std::size_t location_count() const noexcept { return location_names_.size(); }

 private:
  void on_link_output(const Link* link, LocationId arrived_at, Packet packet);
  void rebuild_routes();
  Link* next_hop(LocationId from, LocationId to);

  sim::Simulator& sim_;
  std::vector<std::string> location_names_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::pair<LocationId, LocationId>> link_endpoints_;
  std::unordered_map<IpAddress, std::unique_ptr<Interface>> interfaces_;
  // next_hop_[from * n + to] = link index + 1 (0 = unreachable).
  std::vector<std::uint32_t> next_hop_table_;
  bool routes_dirty_ = true;
  sim::Duration loopback_delay_ = sim::microseconds(25);
  std::uint64_t unroutable_ = 0;
};

}  // namespace meshnet::net
