#include "net/qdisc.h"

#include <algorithm>

namespace meshnet::net {

Classifier classify_by_dscp() {
  return [](const Packet& p) {
    return p.dscp == Dscp::kExpedited ? 0 : 1;
  };
}

Classifier classify_by_dst_ip(IpAddress high_priority_ip) {
  return [high_priority_ip](const Packet& p) {
    return p.flow.dst_ip == high_priority_ip ? 0 : 1;
  };
}

Classifier classify_all_to(int band) {
  return [band](const Packet&) { return band; };
}

void Qdisc::note_enqueue(const Packet& p) noexcept {
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += p.size_bytes();
}

void Qdisc::note_dequeue(const Packet& p) noexcept {
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes();
}

void Qdisc::note_drop(const Packet& p) noexcept {
  ++stats_.dropped_packets;
  stats_.dropped_bytes += p.size_bytes();
}

void Qdisc::note_backlog(std::uint64_t bytes) noexcept {
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, bytes);
}

// ---------------------------------------------------------------- FIFO --

FifoQdisc::FifoQdisc(std::uint64_t byte_limit) : byte_limit_(byte_limit) {}

bool FifoQdisc::enqueue(Packet packet, sim::Time /*now*/) {
  if (bytes_ + packet.size_bytes() > byte_limit_ && !queue_.empty()) {
    note_drop(packet);
    return false;
  }
  bytes_ += packet.size_bytes();
  note_enqueue(packet);
  note_backlog(bytes_);
  queue_.push_back(std::move(packet));
  return true;
}

std::optional<Packet> FifoQdisc::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return std::nullopt;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size_bytes();
  note_dequeue(p);
  return p;
}

std::optional<sim::Time> FifoQdisc::next_ready(sim::Time now) const {
  if (queue_.empty()) return std::nullopt;
  return now;
}

// -------------------------------------------------------- StrictPrio --

StrictPrioQdisc::StrictPrioQdisc(int bands, Classifier classifier,
                                 std::uint64_t per_band_byte_limit)
    : classifier_(std::move(classifier)),
      per_band_byte_limit_(per_band_byte_limit),
      bands_(static_cast<std::size_t>(std::max(bands, 1))) {}

int StrictPrioQdisc::clamp_band(int band) const noexcept {
  if (band < 0) return 0;
  const int last = static_cast<int>(bands_.size()) - 1;
  return band > last ? last : band;
}

bool StrictPrioQdisc::enqueue(Packet packet, sim::Time /*now*/) {
  Band& band = bands_[static_cast<std::size_t>(clamp_band(classifier_(packet)))];
  if (band.bytes + packet.size_bytes() > per_band_byte_limit_ &&
      !band.queue.empty()) {
    ++band.drops;
    note_drop(packet);
    return false;
  }
  band.bytes += packet.size_bytes();
  note_enqueue(packet);
  note_backlog(backlog_bytes());
  band.queue.push_back(std::move(packet));
  return true;
}

std::optional<Packet> StrictPrioQdisc::dequeue(sim::Time /*now*/) {
  for (Band& band : bands_) {
    if (band.queue.empty()) continue;
    Packet p = std::move(band.queue.front());
    band.queue.pop_front();
    band.bytes -= p.size_bytes();
    note_dequeue(p);
    return p;
  }
  return std::nullopt;
}

std::optional<sim::Time> StrictPrioQdisc::next_ready(sim::Time now) const {
  return backlog_packets() > 0 ? std::optional<sim::Time>(now) : std::nullopt;
}

std::uint64_t StrictPrioQdisc::backlog_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const Band& b : bands_) total += b.bytes;
  return total;
}

std::uint64_t StrictPrioQdisc::backlog_packets() const noexcept {
  std::uint64_t total = 0;
  for (const Band& b : bands_) total += b.queue.size();
  return total;
}

std::uint64_t StrictPrioQdisc::band_backlog_packets(int band) const {
  return bands_.at(static_cast<std::size_t>(band)).queue.size();
}

std::uint64_t StrictPrioQdisc::band_drops(int band) const {
  return bands_.at(static_cast<std::size_t>(band)).drops;
}

// ------------------------------------------------------ WeightedPrio --

WeightedPrioQdisc::WeightedPrioQdisc(std::vector<double> shares,
                                     Classifier classifier,
                                     std::uint64_t per_band_byte_limit,
                                     std::uint32_t quantum_unit_bytes)
    : classifier_(std::move(classifier)),
      per_band_byte_limit_(per_band_byte_limit) {
  if (shares.empty()) shares.push_back(1.0);
  double total = 0.0;
  for (double s : shares) total += std::max(s, 0.0);
  if (total <= 0.0) total = 1.0;
  bands_.resize(shares.size());
  // Scale quantums so the *largest* share gets one MTU-ish quantum per
  // round; smaller shares accumulate credit over multiple rounds.
  const double max_share = *std::max_element(shares.begin(), shares.end());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double norm = std::max(shares[i], 0.0) / max_share;
    bands_[i].quantum = norm * static_cast<double>(quantum_unit_bytes);
  }
}

int WeightedPrioQdisc::clamp_band(int band) const noexcept {
  if (band < 0) return 0;
  const int last = static_cast<int>(bands_.size()) - 1;
  return band > last ? last : band;
}

bool WeightedPrioQdisc::enqueue(Packet packet, sim::Time /*now*/) {
  Band& band = bands_[static_cast<std::size_t>(clamp_band(classifier_(packet)))];
  if (band.bytes + packet.size_bytes() > per_band_byte_limit_ &&
      !band.queue.empty()) {
    ++band.drops;
    note_drop(packet);
    return false;
  }
  band.bytes += packet.size_bytes();
  note_enqueue(packet);
  note_backlog(backlog_bytes());
  band.queue.push_back(std::move(packet));
  return true;
}

std::optional<Packet> WeightedPrioQdisc::dequeue(sim::Time /*now*/) {
  if (backlog_packets() == 0) return std::nullopt;
  // Deficit round robin. Each band receives its quantum exactly once per
  // turn (tracked by turn_credited_) and may transmit while its deficit
  // lasts; when the deficit cannot cover the head packet, the turn ends
  // and the deficit carries over. Bands with empty queues forfeit their
  // deficit (standard DRR) so an idle high band cannot hoard credit.
  const std::size_t n = bands_.size();
  // Worst case one full round with credit plus the safety iteration:
  // deficits grow every round, so a head packet is always reachable
  // within (max_packet / min_quantum + 1) rounds; bound generously.
  const std::size_t max_iterations = 64 * n + 4;
  for (std::size_t attempts = 0; attempts < max_iterations; ++attempts) {
    Band& band = bands_[round_cursor_];
    if (band.queue.empty()) {
      band.deficit = 0.0;
      turn_credited_ = false;
      round_cursor_ = (round_cursor_ + 1) % n;
      continue;
    }
    if (!turn_credited_) {
      band.deficit += band.quantum;
      turn_credited_ = true;
    }
    const auto head_size =
        static_cast<double>(band.queue.front().size_bytes());
    if (band.deficit >= head_size) {
      band.deficit -= head_size;
      Packet p = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= p.size_bytes();
      band.dequeued_bytes += p.size_bytes();
      note_dequeue(p);
      if (band.queue.empty()) {
        band.deficit = 0.0;
        turn_credited_ = false;
        round_cursor_ = (round_cursor_ + 1) % n;
      }
      return p;
    }
    // Deficit exhausted for this turn: move on, keep the remainder.
    turn_credited_ = false;
    round_cursor_ = (round_cursor_ + 1) % n;
  }
  // Unreachable with growing deficits; serve any head as a safety valve.
  for (Band& band : bands_) {
    if (band.queue.empty()) continue;
    Packet p = std::move(band.queue.front());
    band.queue.pop_front();
    band.bytes -= p.size_bytes();
    band.dequeued_bytes += p.size_bytes();
    note_dequeue(p);
    return p;
  }
  return std::nullopt;
}

std::optional<sim::Time> WeightedPrioQdisc::next_ready(sim::Time now) const {
  return backlog_packets() > 0 ? std::optional<sim::Time>(now) : std::nullopt;
}

std::uint64_t WeightedPrioQdisc::backlog_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const Band& b : bands_) total += b.bytes;
  return total;
}

std::uint64_t WeightedPrioQdisc::backlog_packets() const noexcept {
  std::uint64_t total = 0;
  for (const Band& b : bands_) total += b.queue.size();
  return total;
}

std::uint64_t WeightedPrioQdisc::band_backlog_packets(int band) const {
  return bands_.at(static_cast<std::size_t>(band)).queue.size();
}

std::uint64_t WeightedPrioQdisc::band_dequeued_bytes(int band) const {
  return bands_.at(static_cast<std::size_t>(band)).dequeued_bytes;
}

std::uint64_t WeightedPrioQdisc::band_drops(int band) const {
  return bands_.at(static_cast<std::size_t>(band)).drops;
}

// ------------------------------------------------------- TokenBucket --

TokenBucketQdisc::TokenBucketQdisc(double rate_bits_per_second,
                                   std::uint64_t burst_bytes,
                                   std::uint64_t byte_limit)
    : rate_bps_(rate_bits_per_second),
      burst_bytes_(static_cast<double>(burst_bytes)),
      byte_limit_(byte_limit),
      tokens_(static_cast<double>(burst_bytes)) {}

double TokenBucketQdisc::effective_cap() const noexcept {
  // A head packet larger than the burst could never accumulate enough
  // tokens under a hard cap; allow filling up to its size so oversized
  // packets drain at the configured rate instead of deadlocking (Linux
  // TBF rejects such configs outright; we degrade gracefully).
  if (queue_.empty()) return burst_bytes_;
  return std::max(burst_bytes_,
                  static_cast<double>(queue_.front().size_bytes()));
}

void TokenBucketQdisc::refill(sim::Time now) noexcept {
  if (now <= last_refill_) return;
  const double elapsed_s = sim::to_seconds(now - last_refill_);
  tokens_ = std::min(effective_cap(), tokens_ + elapsed_s * rate_bps_ / 8.0);
  last_refill_ = now;
}

double TokenBucketQdisc::tokens_at(sim::Time now) const noexcept {
  const double elapsed_s =
      now > last_refill_ ? sim::to_seconds(now - last_refill_) : 0.0;
  return std::min(effective_cap(), tokens_ + elapsed_s * rate_bps_ / 8.0);
}

bool TokenBucketQdisc::enqueue(Packet packet, sim::Time /*now*/) {
  if (bytes_ + packet.size_bytes() > byte_limit_ && !queue_.empty()) {
    note_drop(packet);
    return false;
  }
  bytes_ += packet.size_bytes();
  note_enqueue(packet);
  note_backlog(bytes_);
  queue_.push_back(std::move(packet));
  return true;
}

std::optional<Packet> TokenBucketQdisc::dequeue(sim::Time now) {
  if (queue_.empty()) return std::nullopt;
  refill(now);
  const auto need = static_cast<double>(queue_.front().size_bytes());
  if (tokens_ < need) return std::nullopt;
  tokens_ -= need;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= p.size_bytes();
  note_dequeue(p);
  return p;
}

std::optional<sim::Time> TokenBucketQdisc::next_ready(sim::Time now) const {
  if (queue_.empty()) return std::nullopt;
  const auto need = static_cast<double>(queue_.front().size_bytes());
  const double have = tokens_at(now);
  if (have >= need) return now;
  const double deficit_bytes = need - have;
  const double wait_s = deficit_bytes * 8.0 / rate_bps_;
  // A zero/negligible refill rate makes the wait non-finite or far beyond
  // any experiment horizon; the cap keeps from_seconds() (int64 ns) from
  // overflowing. The head packet will never be ready.
  constexpr double kMaxWaitS = 1e8;  // ~3 sim-years
  if (!(wait_s < kMaxWaitS)) return std::nullopt;
  return now + sim::from_seconds(wait_s) + 1;  // +1ns: strictly after refill
}

}  // namespace meshnet::net
