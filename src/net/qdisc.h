#pragma once

// Queueing disciplines for simulated NICs and links.
//
// These model the Linux TC machinery the paper's prototype configures: a
// default drop-tail FIFO, a strict-priority qdisc, a *nearly-strict*
// weighted qdisc (deficit round robin with a 95/5 quantum split — the
// "up to 95% of bandwidth" rule the prototype installs with `tc`), and a
// token-bucket shaper. Classification is pluggable so the cross-layer
// TcManager can install filters that match pod IPs or DSCP marks, exactly
// like `tc filter` rules.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace meshnet::net {

/// Maps a packet to a band index (0 = highest priority). Out-of-range
/// results are clamped to the lowest band.
using Classifier = std::function<int(const Packet&)>;

/// Classifier helpers mirroring `tc filter` match rules.
Classifier classify_by_dscp();          ///< EF->0, everything else->1.
Classifier classify_by_dst_ip(IpAddress high_priority_ip);
Classifier classify_all_to(int band);

struct QdiscStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t enqueued_bytes = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t max_backlog_bytes = 0;
};

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Returns false when the packet was dropped (queue overflow).
  virtual bool enqueue(Packet packet, sim::Time now) = 0;

  /// Returns the next packet to transmit, or nullopt when nothing is
  /// eligible at `now` (empty, or a shaper is out of tokens).
  virtual std::optional<Packet> dequeue(sim::Time now) = 0;

  /// Earliest time a packet could become eligible, given no further
  /// enqueues. Returns nullopt when the queue is empty.
  virtual std::optional<sim::Time> next_ready(sim::Time now) const = 0;

  virtual std::uint64_t backlog_bytes() const noexcept = 0;
  virtual std::uint64_t backlog_packets() const noexcept = 0;
  bool empty() const noexcept { return backlog_packets() == 0; }

  const QdiscStats& stats() const noexcept { return stats_; }

 protected:
  void note_enqueue(const Packet& p) noexcept;
  void note_dequeue(const Packet& p) noexcept;
  void note_drop(const Packet& p) noexcept;
  void note_backlog(std::uint64_t bytes) noexcept;

 private:
  QdiscStats stats_;
};

/// Drop-tail FIFO bounded by bytes.
class FifoQdisc : public Qdisc {
 public:
  explicit FifoQdisc(std::uint64_t byte_limit = 256 * 1024);

  bool enqueue(Packet packet, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::optional<sim::Time> next_ready(sim::Time now) const override;
  std::uint64_t backlog_bytes() const noexcept override { return bytes_; }
  std::uint64_t backlog_packets() const noexcept override {
    return queue_.size();
  }

 private:
  std::uint64_t byte_limit_;
  std::uint64_t bytes_ = 0;
  std::deque<Packet> queue_;
};

/// Strict priority across N bands: band 0 is always served first.
class StrictPrioQdisc : public Qdisc {
 public:
  StrictPrioQdisc(int bands, Classifier classifier,
                  std::uint64_t per_band_byte_limit = 256 * 1024);

  bool enqueue(Packet packet, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::optional<sim::Time> next_ready(sim::Time now) const override;
  std::uint64_t backlog_bytes() const noexcept override;
  std::uint64_t backlog_packets() const noexcept override;

  std::uint64_t band_backlog_packets(int band) const;
  std::uint64_t band_drops(int band) const;

 private:
  struct Band {
    std::deque<Packet> queue;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
  };
  Classifier classifier_;
  std::uint64_t per_band_byte_limit_;
  std::vector<Band> bands_;
  int clamp_band(int band) const noexcept;
};

/// Nearly-strict weighted priority: deficit round robin over two or more
/// bands with quantums proportional to their shares. With shares {95, 5}
/// a backlogged high band receives ~95% of link bandwidth while the low
/// band keeps a 5% trickle — matching the prototype's TC configuration.
class WeightedPrioQdisc : public Qdisc {
 public:
  WeightedPrioQdisc(std::vector<double> shares, Classifier classifier,
                    std::uint64_t per_band_byte_limit = 256 * 1024,
                    std::uint32_t quantum_unit_bytes = 9000);

  bool enqueue(Packet packet, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::optional<sim::Time> next_ready(sim::Time now) const override;
  std::uint64_t backlog_bytes() const noexcept override;
  std::uint64_t backlog_packets() const noexcept override;

  std::uint64_t band_backlog_packets(int band) const;
  std::uint64_t band_dequeued_bytes(int band) const;
  std::uint64_t band_drops(int band) const;

 private:
  struct Band {
    std::deque<Packet> queue;
    std::uint64_t bytes = 0;
    double quantum = 0.0;   ///< Credit added per DRR round.
    double deficit = 0.0;   ///< Accumulated credit.
    std::uint64_t dequeued_bytes = 0;
    std::uint64_t drops = 0;
  };
  Classifier classifier_;
  std::uint64_t per_band_byte_limit_;
  std::vector<Band> bands_;
  std::size_t round_cursor_ = 0;
  /// Whether the band at round_cursor_ already received its quantum for
  /// the current turn.
  bool turn_credited_ = false;
  int clamp_band(int band) const noexcept;
};

/// Token-bucket shaper in front of a drop-tail FIFO (Linux TBF). Used by
/// tests and by rate-limit experiments; links themselves already model
/// serialization delay, so the shaper is for sub-line-rate policies.
class TokenBucketQdisc : public Qdisc {
 public:
  TokenBucketQdisc(double rate_bits_per_second, std::uint64_t burst_bytes,
                   std::uint64_t byte_limit = 256 * 1024);

  bool enqueue(Packet packet, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::optional<sim::Time> next_ready(sim::Time now) const override;
  std::uint64_t backlog_bytes() const noexcept override { return bytes_; }
  std::uint64_t backlog_packets() const noexcept override {
    return queue_.size();
  }

  double tokens_at(sim::Time now) const noexcept;

 private:
  double effective_cap() const noexcept;
  void refill(sim::Time now) noexcept;

  double rate_bps_;
  double burst_bytes_;
  std::uint64_t byte_limit_;
  double tokens_;
  sim::Time last_refill_ = 0;
  std::uint64_t bytes_ = 0;
  std::deque<Packet> queue_;
};

}  // namespace meshnet::net
