#pragma once

// A unidirectional link: qdisc + serialization at a fixed rate +
// propagation delay. The device loop pulls from the qdisc whenever the
// transmitter goes idle, so the qdisc's scheduling decision (FIFO vs
// priority) is what determines who gets the next transmission slot —
// exactly where the paper's TC-based prioritization acts.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/packet.h"
#include "net/qdisc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace meshnet::net {

struct LinkStats {
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  sim::Duration busy_time = 0;  ///< Total transmission time so far.
  std::uint64_t down_drops = 0;  ///< Packets lost while the link was down.
  std::uint64_t loss_drops = 0;  ///< Packets lost to injected random loss.
  std::uint64_t carrier_losses = 0;  ///< up->down transitions so far.
};

class Link {
 public:
  /// `sink` receives each packet after serialization + propagation.
  Link(sim::Simulator& sim, std::string name, double rate_bits_per_second,
       sim::Duration propagation_delay, std::unique_ptr<Qdisc> qdisc);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_sink(std::function<void(Packet)> sink) { sink_ = std::move(sink); }

  /// Cross-shard handoff (the parallel engine's cut-link path). When
  /// set, the link still owns its qdisc and serializes packets on the
  /// local shard's clock — the queueing decision stays exactly where tc
  /// acts — but instead of scheduling the sink after propagation it
  /// invokes `handoff(packet, propagation_delay())` at
  /// serialization-complete time. The handoff owner is responsible for
  /// delivering the packet on the destination shard at
  /// now() + propagation_delay(); the propagation therefore doubles as
  /// the link's conservative lookahead contribution. Takes precedence
  /// over set_sink.
  void set_handoff(std::function<void(Packet, sim::Duration)> handoff) {
    handoff_ = std::move(handoff);
  }

  /// Enqueues the packet; it is dropped silently if the qdisc is full
  /// (the transport's loss recovery handles it).
  void send(Packet packet);

  /// Swaps the queueing discipline (models `tc qdisc replace`). Any
  /// backlogged packets in the old qdisc are dropped, as with real tc.
  void set_qdisc(std::unique_ptr<Qdisc> qdisc);

  /// Carrier control (the fault layer's `ip link set down/up`). Taking the
  /// link down discards the qdisc backlog and blackholes every subsequent
  /// send; bits already serialized onto the wire still arrive. Bringing it
  /// back up resumes transmission of whatever is enqueued afterwards.
  void set_up(bool up);
  bool is_up() const noexcept { return up_; }

  /// Injects Bernoulli packet loss: each sent packet is dropped with
  /// `probability` before it reaches the qdisc. The stream is seeded from
  /// (seed, link name) so runs are reproducible. probability <= 0 clears.
  void set_loss(double probability, std::uint64_t seed = 0);
  double loss_probability() const noexcept { return loss_probability_; }

  Qdisc& qdisc() noexcept { return *qdisc_; }
  const Qdisc& qdisc() const noexcept { return *qdisc_; }

  const std::string& name() const noexcept { return name_; }
  double rate_bps() const noexcept { return rate_bps_; }
  sim::Duration propagation_delay() const noexcept { return prop_delay_; }
  const LinkStats& stats() const noexcept { return stats_; }

  /// Fraction of wall-clock sim time this link has spent transmitting.
  double utilization(sim::Time now) const noexcept;

 private:
  void try_transmit();

  sim::Simulator& sim_;
  std::string name_;
  double rate_bps_;
  sim::Duration prop_delay_;
  std::unique_ptr<Qdisc> qdisc_;
  std::function<void(Packet)> sink_;
  std::function<void(Packet, sim::Duration)> handoff_;
  bool transmitting_ = false;
  bool up_ = true;
  double loss_probability_ = 0.0;
  std::unique_ptr<sim::RngStream> loss_rng_;
  sim::EventId pending_retry_ = sim::kInvalidEventId;
  LinkStats stats_;
};

}  // namespace meshnet::net
