#pragma once

// The simulated wire unit. Packets carry real payload bytes (the transport
// segments actual serialized HTTP messages) plus the fields the case study
// manipulates: a DSCP codepoint for in-band priority signalling to the
// "physical" network (design §4.2 optimization d).

#include <cstdint>

#include "net/address.h"
#include "net/payload.h"
#include "sim/time.h"

namespace meshnet::net {

/// Transport-level packet flags (TCP-style).
enum PacketFlags : std::uint8_t {
  kFlagNone = 0,
  kFlagSyn = 1 << 0,
  kFlagAck = 1 << 1,
  kFlagFin = 1 << 2,
  kFlagRst = 1 << 3,
};

/// Differentiated-services codepoints used by the cross-layer machinery.
/// kExpedited marks latency-sensitive traffic (DSCP EF); kScavenger marks
/// latency-insensitive background traffic (DSCP CS1, the LEDBAT/LE class).
enum class Dscp : std::uint8_t {
  kDefault = 0,
  kScavenger = 8,
  kExpedited = 46,
};

struct Packet {
  FlowKey flow;
  std::uint64_t seq = 0;        ///< Byte offset of payload start.
  std::uint64_t ack = 0;        ///< Cumulative ACK: next expected byte.
  std::uint8_t flags = kFlagNone;
  Dscp dscp = Dscp::kDefault;
  std::uint32_t header_bytes = 40;  ///< IP+transport header overhead.
  /// TCP MSS option: advertised on SYN so the accepting side segments its
  /// sends to match the initiator (0 = absent).
  std::uint32_t mss_option = 0;
  Payload payload;  ///< Pooled slice; empty for pure ACKs.

  /// Receiver-side echo of the sender's one-way queueing signal, used by
  /// the LEDBAT-style scavenger controller. Carries the remote's observed
  /// one-way delay sample in nanoseconds (0 = none).
  sim::Duration echo_delay = 0;

  sim::Time sent_at = 0;  ///< Stamped by the transport for RTT samples.

  std::uint32_t payload_size() const noexcept {
    return static_cast<std::uint32_t>(payload.size());
  }
  std::uint32_t size_bytes() const noexcept {
    return header_bytes + payload_size();
  }
  bool has(PacketFlags f) const noexcept { return (flags & f) != 0; }
};

}  // namespace meshnet::net
