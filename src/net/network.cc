#include "net/network.h"

#include <deque>
#include <utility>

#include "util/logging.h"

namespace meshnet::net {

Network::Network(sim::Simulator& sim) : sim_(sim) {}

LocationId Network::add_location(std::string name) {
  const auto id = static_cast<LocationId>(location_names_.size());
  if (name.empty()) name = "loc-" + std::to_string(id);
  location_names_.push_back(std::move(name));
  routes_dirty_ = true;
  return id;
}

Link& Network::add_link(LocationId from, LocationId to, double rate_bps,
                        sim::Duration propagation_delay,
                        std::unique_ptr<Qdisc> qdisc, std::string name) {
  if (!qdisc) qdisc = std::make_unique<FifoQdisc>();
  if (name.empty()) {
    name = location_names_.at(from) + "->" + location_names_.at(to);
  }
  auto link = std::make_unique<Link>(sim_, std::move(name), rate_bps,
                                     propagation_delay, std::move(qdisc));
  Link* raw = link.get();
  link->set_sink([this, raw, to](Packet p) {
    on_link_output(raw, to, std::move(p));
  });
  links_.push_back(std::move(link));
  link_endpoints_.emplace_back(from, to);
  routes_dirty_ = true;
  return *raw;
}

std::pair<Link*, Link*> Network::add_duplex_link(
    LocationId a, LocationId b, double rate_bps,
    sim::Duration propagation_delay, std::string name) {
  std::string fwd_name = name.empty() ? std::string() : name + ":fwd";
  std::string rev_name = name.empty() ? std::string() : name + ":rev";
  Link& fwd = add_link(a, b, rate_bps, propagation_delay, nullptr,
                       std::move(fwd_name));
  Link& rev = add_link(b, a, rate_bps, propagation_delay, nullptr,
                       std::move(rev_name));
  return {&fwd, &rev};
}

Interface& Network::attach_interface(IpAddress ip, LocationId location,
                                     std::string name) {
  if (name.empty()) name = ip_to_string(ip);
  auto iface = std::make_unique<Interface>(ip, location, std::move(name));
  Interface& ref = *iface;
  interfaces_[ip] = std::move(iface);
  return ref;
}

Interface* Network::find_interface(IpAddress ip) {
  const auto it = interfaces_.find(ip);
  return it == interfaces_.end() ? nullptr : it->second.get();
}

Link* Network::find_link(const std::string& name) {
  for (const auto& link : links_) {
    if (link->name() == name) return link.get();
  }
  return nullptr;
}

std::vector<Link*> Network::links() {
  std::vector<Link*> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link.get());
  return out;
}

void Network::rebuild_routes() {
  const std::size_t n = location_names_.size();
  next_hop_table_.assign(n * n, 0);
  // Reverse BFS from every destination over the link graph gives the
  // first-hop link toward that destination from each location.
  std::vector<std::vector<std::uint32_t>> out_links(n);
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    out_links[link_endpoints_[i].first].push_back(i);
  }
  for (LocationId dst = 0; dst < n; ++dst) {
    std::vector<int> dist(n, -1);
    dist[dst] = 0;
    std::deque<LocationId> frontier{dst};
    // BFS over reversed edges: dist[v] = hops from v to dst.
    std::vector<std::vector<std::pair<LocationId, std::uint32_t>>> in_links(n);
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      in_links[link_endpoints_[i].second].emplace_back(
          link_endpoints_[i].first, i);
    }
    while (!frontier.empty()) {
      const LocationId v = frontier.front();
      frontier.pop_front();
      for (const auto& [prev, link_idx] : in_links[v]) {
        if (dist[prev] == -1) {
          dist[prev] = dist[v] + 1;
          frontier.push_back(prev);
        }
        // Record the best (shortest, first-added) outgoing link from prev
        // toward dst.
        if (dist[prev] == dist[v] + 1 &&
            next_hop_table_[prev * n + dst] == 0) {
          next_hop_table_[prev * n + dst] = link_idx + 1;
        }
      }
    }
  }
  routes_dirty_ = false;
}

Link* Network::next_hop(LocationId from, LocationId to) {
  if (routes_dirty_) rebuild_routes();
  const std::size_t n = location_names_.size();
  const std::uint32_t entry = next_hop_table_[from * n + to];
  return entry == 0 ? nullptr : links_[entry - 1].get();
}

void Network::send(Packet packet) {
  Interface* src = find_interface(packet.flow.src_ip);
  Interface* dst = find_interface(packet.flow.dst_ip);
  if (src == nullptr || dst == nullptr) {
    ++unroutable_;
    MESHNET_DEBUG() << "unroutable packet " << packet.flow.to_string();
    return;
  }
  if (src->location() == dst->location()) {
    sim_.schedule_after(loopback_delay_,
                        [dst, p = std::move(packet)]() mutable {
                          dst->deliver(std::move(p));
                        });
    return;
  }
  Link* hop = next_hop(src->location(), dst->location());
  if (hop == nullptr) {
    ++unroutable_;
    MESHNET_DEBUG() << "no route " << packet.flow.to_string();
    return;
  }
  hop->send(std::move(packet));
}

void Network::on_link_output(const Link* /*link*/, LocationId arrived_at,
                             Packet packet) {
  Interface* dst = find_interface(packet.flow.dst_ip);
  if (dst == nullptr) {
    ++unroutable_;
    return;
  }
  if (dst->location() == arrived_at) {
    dst->deliver(std::move(packet));
    return;
  }
  Link* hop = next_hop(arrived_at, dst->location());
  if (hop == nullptr) {
    ++unroutable_;
    return;
  }
  hop->send(std::move(packet));
}

}  // namespace meshnet::net
