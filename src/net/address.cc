#include "net/address.h"

#include <cstdio>

#include "util/strings.h"

namespace meshnet::net {

std::string ip_to_string(IpAddress ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

IpAddress parse_ip(const std::string& text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return kNoAddress;
  IpAddress ip = 0;
  for (const auto part : parts) {
    const auto v = util::parse_u64(part);
    if (!v || *v > 255) return kNoAddress;
    ip = (ip << 8) | static_cast<IpAddress>(*v);
  }
  return ip;
}

std::string SocketAddress::to_string() const {
  return ip_to_string(ip) + ":" + std::to_string(port);
}

std::string FlowKey::to_string() const {
  return ip_to_string(src_ip) + ":" + std::to_string(src_port) + "->" +
         ip_to_string(dst_ip) + ":" + std::to_string(dst_port);
}

}  // namespace meshnet::net
