#pragma once

// Structured per-request access logs, Envoy-style: one record per proxied
// request with the fields an operator greps for first (route, priority
// class, retries, deadline slack, upstream). Full logging at bench rates
// would swamp memory, so records sit behind a deterministic sampling
// knob: keep every Nth request, counted per sink — reproducible across
// runs and thread counts, unlike probabilistic samplers.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "sim/time.h"

namespace meshnet::obs {

struct AccessLogRecord {
  sim::Time at = 0;  ///< completion time
  std::string source;            ///< the sidecar's service
  std::string route;             ///< request path
  std::string upstream_cluster;  ///< empty when routing failed (e.g. 404)
  std::string upstream_endpoint; ///< pod that served the final attempt
  std::string priority;          ///< traffic-class name
  int status = 0;
  int retries = 0;               ///< attempts beyond the first
  sim::Duration latency = 0;
  /// Admission-control shed reason ("queue-full" / "deadline" /
  /// "preempted"); empty for requests that were not shed.
  std::string shed_reason;
  /// Time left on the request deadline at completion; negative when the
  /// deadline had already passed (the request was abandoned).
  sim::Duration deadline_slack = 0;
};

class AccessLog {
 public:
  /// When `registry` is non-null, exposes access_log_seen_total /
  /// access_log_records_total counters in the unified snapshot.
  explicit AccessLog(MetricRegistry* registry = nullptr);

  /// Keep one of every `n` records (1 = all). 0 disables logging
  /// entirely — record() is then a no-op that doesn't even count, so
  /// benches with logging off pay nothing.
  void set_sample_every(std::uint64_t n) noexcept { sample_every_ = n; }
  std::uint64_t sample_every() const noexcept { return sample_every_; }
  bool enabled() const noexcept { return sample_every_ > 0; }

  /// Returns true when the record was kept. Deterministic: the 1st,
  /// (n+1)th, (2n+1)th... records seen are kept, in order.
  bool record(AccessLogRecord record);

  std::uint64_t seen() const noexcept { return seen_; }
  std::uint64_t sampled() const noexcept { return records_.size(); }
  const std::vector<AccessLogRecord>& records() const noexcept {
    return records_;
  }

  void clear();

 private:
  MetricRegistry* registry_ = nullptr;
  Counter* seen_counter_ = nullptr;
  Counter* sampled_counter_ = nullptr;
  std::uint64_t sample_every_ = 0;
  std::uint64_t seen_ = 0;
  std::vector<AccessLogRecord> records_;
};

}  // namespace meshnet::obs
