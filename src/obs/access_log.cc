#include "obs/access_log.h"

#include <utility>

namespace meshnet::obs {

AccessLog::AccessLog(MetricRegistry* registry) : registry_(registry) {
  if (registry_) {
    seen_counter_ = &registry_->counter("access_log_seen_total");
    sampled_counter_ = &registry_->counter("access_log_records_total");
  }
}

bool AccessLog::record(AccessLogRecord record) {
  if (sample_every_ == 0) return false;
  ++seen_;
  if (seen_counter_) seen_counter_->inc();
  if ((seen_ - 1) % sample_every_ != 0) return false;
  records_.push_back(std::move(record));
  if (sampled_counter_) sampled_counter_->inc();
  return true;
}

void AccessLog::clear() {
  seen_ = 0;
  records_.clear();
  if (seen_counter_) seen_counter_->reset();
  if (sampled_counter_) sampled_counter_->reset();
}

}  // namespace meshnet::obs
