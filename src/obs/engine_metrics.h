#pragma once

// Bridges the event loop's deterministic self-profile (sim::LoopStats)
// into the unified registry, so one snapshot carries the engine counters
// next to the mesh metrics. Called once per run, after the simulation
// drains — the loop profile is cumulative, not sampled.

#include "obs/metric_registry.h"
#include "sim/loop_stats.h"

namespace meshnet::obs {

inline void export_loop_stats(const sim::LoopStats& loop,
                              MetricRegistry& registry) {
  registry.counter("engine_scheduled").inc(loop.scheduled);
  registry.counter("engine_executed").inc(loop.executed);
  registry.counter("engine_cancelled").inc(loop.cancelled);
  registry.counter("engine_heap_pushes").inc(loop.heap_pushes);
  registry.counter("engine_wheel_pushes").inc(loop.wheel_pushes);
  registry.counter("engine_due_merges").inc(loop.due_merges);
  registry.counter("engine_task_heap_allocs").inc(loop.task_heap_allocs);
  registry.counter("engine_heap_compactions").inc(loop.heap_compactions);
  registry.counter("engine_wheel_compactions").inc(loop.wheel_compactions);
  // A high-water mark, not a count: exported as a gauge so snapshot
  // merging takes the max across sweep points instead of a meaningless
  // sum.
  registry.gauge("engine_max_queue_depth")
      .set(static_cast<double>(loop.max_queue_depth));
}

}  // namespace meshnet::obs
