#include "obs/span_exporter.h"

#include <utility>

namespace meshnet::obs {

SpanExporter::SpanExporter(MetricRegistry* registry) : registry_(registry) {}

SpanExporter::ServiceCells& SpanExporter::cells_for(
    const std::string& service) {
  const auto it = cells_.find(service);
  if (it != cells_.end()) return it->second;
  ServiceCells cells;
  const Labels labels = {{"service", service}};
  cells.total = &registry_->counter("spans_total", labels);
  cells.errors = &registry_->counter("span_errors_total", labels);
  cells.duration = &registry_->histogram("span_duration_ns", labels);
  return cells_.emplace(service, cells).first->second;
}

void SpanExporter::export_span(SpanRecord span) {
  ++exported_total_;
  if (registry_) {
    ServiceCells& cells = cells_for(span.service);
    cells.total->inc();
    if (span.error) cells.errors->inc();
    const sim::Duration duration = span.duration();
    cells.duration->record(
        duration > 0 ? static_cast<std::uint64_t>(duration) : 0);
  }
  for (const auto& sink : sinks_) sink(span);
  if (retention_ == 0) return;
  spans_.push_back(std::move(span));
  if (spans_.size() > retention_) {
    spans_.erase(spans_.begin(),
                 spans_.begin() +
                     static_cast<std::ptrdiff_t>(spans_.size() - retention_));
  }
}

void SpanExporter::add_sink(std::function<void(const SpanRecord&)> sink) {
  sinks_.push_back(std::move(sink));
}

void SpanExporter::clear() {
  spans_.clear();
  exported_total_ = 0;
  for (auto& [service, cells] : cells_) {
    cells.total->reset();
    cells.errors->reset();
    cells.duration->reset();
  }
}

}  // namespace meshnet::obs
