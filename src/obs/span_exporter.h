#pragma once

// The span half of the observability layer. mesh::Tracer is a thin
// adapter over this pipeline: every finished span flows through
// export_span(), which (1) folds the span into per-service registry
// series — spans_total / span_errors_total / span_duration_ns, all
// labeled {service} — (2) fans it out to any attached sinks, and
// (3) retains it for inspection, bounded by the retention limit.
//
// Metrics are recorded even at retention 0 (the bench setting): that is
// what puts span statistics into the unified snapshot without paying for
// span storage on long runs.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "sim/time.h"

namespace meshnet::obs {

/// One finished span. mesh::Span is an alias of this type, so tracing
/// call sites and filters use it directly.
struct SpanRecord {
  std::string trace_id;
  std::string span_id;
  std::string parent_span_id;
  std::string service;
  std::string operation;
  sim::Time start = 0;
  sim::Time end = 0;
  bool error = false;

  sim::Duration duration() const noexcept { return end - start; }
};

class SpanExporter {
 public:
  /// When `registry` is non-null, every exported span updates the
  /// per-service series there.
  explicit SpanExporter(MetricRegistry* registry = nullptr);
  SpanExporter(const SpanExporter&) = delete;
  SpanExporter& operator=(const SpanExporter&) = delete;

  void export_span(SpanRecord span);

  /// Called for every exported span, regardless of retention.
  void add_sink(std::function<void(const SpanRecord&)> sink);

  /// Keep only the most recent `limit` spans (memory bound for long
  /// runs); 0 disables retention entirely — metrics and sinks still see
  /// every span.
  void set_retention(std::size_t limit) noexcept { retention_ = limit; }

  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  std::size_t span_count() const noexcept { return spans_.size(); }
  std::uint64_t exported_total() const noexcept { return exported_total_; }

  void clear();

 private:
  struct ServiceCells {
    Counter* total = nullptr;
    Counter* errors = nullptr;
    Histogram* duration = nullptr;
  };

  ServiceCells& cells_for(const std::string& service);

  MetricRegistry* registry_ = nullptr;
  std::map<std::string, ServiceCells, std::less<>> cells_;
  std::vector<std::function<void(const SpanRecord&)>> sinks_;
  std::size_t retention_ = SIZE_MAX;
  std::uint64_t exported_total_ = 0;
  std::vector<SpanRecord> spans_;
};

}  // namespace meshnet::obs
