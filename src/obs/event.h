#pragma once

// Typed mesh event channels. The mesh used to tag resilience events with
// free-form strings ("breaker" / "health" / "fault"), which made event
// filtering vulnerable to silent typos — `event_count("braker")` happily
// returned 0. EventKind closes that hole: producers and consumers share
// one enum, and the registry counts each kind under
// mesh_events_total{kind=...}.

#include <cstdint>
#include <optional>
#include <string_view>

namespace meshnet::obs {

enum class EventKind : std::uint8_t {
  kBreaker = 0,       ///< circuit-breaker state transition
  kHealth = 1,        ///< active-health-check eviction / readmission
  kFault = 2,         ///< fault injected by the chaos layer
  kControlPlane = 3,  ///< CP lifecycle: crash, recovery, rollback, nack
};

inline constexpr int kEventKindCount = 4;

constexpr std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kBreaker:
      return "breaker";
    case EventKind::kHealth:
      return "health";
    case EventKind::kFault:
      return "fault";
    case EventKind::kControlPlane:
      return "control-plane";
  }
  return "breaker";
}

constexpr std::optional<EventKind> event_kind_from_string(
    std::string_view name) noexcept {
  if (name == "breaker") return EventKind::kBreaker;
  if (name == "health") return EventKind::kHealth;
  if (name == "fault") return EventKind::kFault;
  if (name == "control-plane") return EventKind::kControlPlane;
  return std::nullopt;
}

}  // namespace meshnet::obs
