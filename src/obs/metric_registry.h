#pragma once

// The unified observability substrate (paper §3.2 "better visibility").
//
// Every telemetry surface in the mesh — per-edge request metrics, span
// statistics, resilience events, engine counters — records into one
// label-based MetricRegistry, so a single snapshot can answer
// cross-cutting questions ("p99 per-edge latency of LS traffic while the
// breaker was open") that the previous scattered APIs could not.
//
// Design constraints, in order:
//   1. Determinism. Series iterate in a sorted, content-defined order, so
//      two runs with the same inputs produce bit-identical snapshots at
//      any thread count (per-run registries, merged in input order).
//   2. Zero hot-path allocation (the PR-3 discipline). A series is
//      *interned* once — `counter(name, labels)` returns a stable
//      reference the caller caches — and every subsequent record is a
//      plain integer/histogram update, no map lookups, no strings.
//   3. One stable wire format. `MetricsSnapshot::to_json()` emits the
//      meshnet-metrics-v1 schema that stats/bench_report embeds as the
//      top-level "metrics" block and tools/bench_check diffs.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "util/json.h"

namespace meshnet::obs {

/// Ordered label set, e.g. {{"source","frontend"},{"upstream","reviews"}}.
/// Order is part of the series identity; callers use a fixed order per
/// metric name (the registry does not sort for them).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
std::string_view metric_kind_name(MetricKind kind) noexcept;

/// Monotonic event count. Snapshots merge counters by summing.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (queue depth high-water marks, utilization).
/// Snapshots merge gauges by taking the max — the only order-independent
/// combination that is meaningful for the level-style series we export.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Distribution of values (latencies in ns). Snapshots merge histograms
/// with LogHistogram::merge (bucket-exact).
class Histogram {
 public:
  explicit Histogram(int precision_bits) : histogram_(precision_bits) {}
  void record(std::uint64_t value) { histogram_.record(value); }
  void record_n(std::uint64_t value, std::uint64_t n) {
    histogram_.record_n(value, n);
  }
  const stats::LogHistogram& data() const noexcept { return histogram_; }
  /// Bucket-exact fold-in; `other` must have equal precision.
  void merge(const stats::LogHistogram& other) { histogram_.merge(other); }
  void reset() { histogram_.reset(); }

 private:
  stats::LogHistogram histogram_;
};

/// One series, frozen. `counter`/`gauge`/`histogram` is meaningful per
/// `kind`; the others stay default-constructed.
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  stats::LogHistogram histogram{7};

  /// "name" or "name{k=v,k=v}" — the display/JSON key of the series.
  std::string key() const;

  friend bool operator==(const SeriesSnapshot& a, const SeriesSnapshot& b) {
    return a.name == b.name && a.labels == b.labels && a.kind == b.kind &&
           a.counter == b.counter && a.gauge == b.gauge &&
           a.histogram == b.histogram;
  }
};

/// A frozen, order-stable view of a registry. Comparable bit-exactly
/// (the thread-count determinism golden relies on this) and mergeable
/// across per-point registries.
struct MetricsSnapshot {
  static constexpr std::string_view kSchema = "meshnet-metrics-v1";

  /// Sorted by (name, labels) — the registry's iteration order.
  std::vector<SeriesSnapshot> series;

  const SeriesSnapshot* find(std::string_view name,
                             const Labels& labels = {}) const;

  /// Folds `other` in: counters sum, histograms merge, gauges take max.
  /// Series missing on either side are unioned in. Order-independent for
  /// counters/histograms; gauges chose max precisely so merging stays
  /// order-independent too.
  void merge(const MetricsSnapshot& other);

  bool empty() const noexcept { return series.empty(); }

  /// meshnet-metrics-v1: {"schema": ..., "series": {"<key>": {...}}}.
  /// Counters emit {"kind":"counter","value":N} (compared exactly by
  /// bench_check), gauges {"kind":"gauge","value":X}, histograms a
  /// count/min/max/mean/p50/p90/p99 summary.
  util::Json to_json() const;

  friend bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
    return a.series == b.series;
  }
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Interns (name, labels) and returns the cell. Repeated calls with the
  /// same identity return the same cell — callers cache the reference and
  /// never pay the lookup on the hot path.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       int precision_bits = 7);

  /// Lookup without creating; nullptr when absent or of a different kind.
  const Counter* find_counter(std::string_view name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(std::string_view name,
                          const Labels& labels = {}) const;
  const Histogram* find_histogram(std::string_view name,
                                  const Labels& labels = {}) const;

  std::size_t series_count() const noexcept { return series_.size(); }

  /// Freezes every series, in sorted (name, labels) order.
  MetricsSnapshot snapshot() const;

  /// Folds another registry's current values into this one (counters sum,
  /// histograms merge, gauges max), creating missing series.
  void merge(const MetricRegistry& other);

  /// Zeroes every cell; the series stay interned (cached references held
  /// by adapters remain valid).
  void reset_values();

  /// Drops every series. Invalidates cached references — only for
  /// teardown/tests, never mid-flight.
  void clear();

 private:
  struct Series {
    std::string name;
    Labels labels;
    MetricKind kind;
    // Exactly one is non-null, matching `kind`. unique_ptr keeps cell
    // addresses stable even though the map itself is node-based anyway
    // (belt and braces: Series may move during map surgery in merge()).
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& intern(std::string_view name, const Labels& labels,
                 MetricKind kind, int precision_bits);
  const Series* lookup(std::string_view name, const Labels& labels) const;

  /// Keyed by an injective encoding of (name, labels) that sorts by name
  /// first, then label pairs — the deterministic snapshot order.
  std::map<std::string, Series, std::less<>> series_;
};

}  // namespace meshnet::obs
