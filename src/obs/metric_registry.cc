#include "obs/metric_registry.h"

#include <algorithm>

namespace meshnet::obs {

namespace {

// Injective, sortable encoding of (name, labels). The separators are
// control characters that cannot appear in metric names or service-name
// label values, and they sort below every printable character, so the
// map order is "name first, then label pairs" — exactly the order
// snapshot() promises.
constexpr char kNameEnd = '\x01';
constexpr char kLabelKeyEnd = '\x02';
constexpr char kLabelValueEnd = '\x03';

std::string encode_key(std::string_view name, const Labels& labels) {
  std::size_t size = name.size() + 1;
  for (const auto& [key, value] : labels) {
    size += key.size() + value.size() + 2;
  }
  std::string encoded;
  encoded.reserve(size);
  encoded.append(name);
  encoded.push_back(kNameEnd);
  for (const auto& [key, value] : labels) {
    encoded.append(key);
    encoded.push_back(kLabelKeyEnd);
    encoded.append(value);
    encoded.push_back(kLabelValueEnd);
  }
  return encoded;
}

util::Json histogram_summary(const stats::LogHistogram& histogram) {
  util::Json summary = util::Json::object();
  summary.set("count", util::Json(histogram.count()));
  summary.set("min", util::Json(histogram.min()));
  summary.set("max", util::Json(histogram.max()));
  summary.set("mean", util::Json(histogram.mean()));
  summary.set("p50", util::Json(histogram.percentile(50.0)));
  summary.set("p90", util::Json(histogram.percentile(90.0)));
  summary.set("p99", util::Json(histogram.percentile(99.0)));
  return summary;
}

}  // namespace

std::string_view metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

std::string SeriesSnapshot::key() const {
  std::string out = name;
  if (!labels.empty()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [label_key, label_value] : labels) {
      if (!first) out.push_back(',');
      first = false;
      out.append(label_key);
      out.push_back('=');
      out.append(label_value);
    }
    out.push_back('}');
  }
  return out;
}

const SeriesSnapshot* MetricsSnapshot::find(std::string_view name,
                                            const Labels& labels) const {
  for (const SeriesSnapshot& entry : series) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  // Both sides are sorted by (name, labels) — the registry's encoded-key
  // order — so a classic sorted merge keeps the result sorted.
  const auto less = [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  };
  std::vector<SeriesSnapshot> merged;
  merged.reserve(series.size() + other.series.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < series.size() || j < other.series.size()) {
    if (j >= other.series.size()) {
      merged.push_back(std::move(series[i++]));
      continue;
    }
    if (i >= series.size()) {
      merged.push_back(other.series[j++]);
      continue;
    }
    if (less(series[i], other.series[j])) {
      merged.push_back(std::move(series[i++]));
      continue;
    }
    if (less(other.series[j], series[i])) {
      merged.push_back(other.series[j++]);
      continue;
    }
    SeriesSnapshot combined = std::move(series[i++]);
    const SeriesSnapshot& theirs = other.series[j++];
    switch (combined.kind) {
      case MetricKind::kCounter:
        combined.counter += theirs.counter;
        break;
      case MetricKind::kGauge:
        combined.gauge = std::max(combined.gauge, theirs.gauge);
        break;
      case MetricKind::kHistogram:
        combined.histogram.merge(theirs.histogram);
        break;
    }
    merged.push_back(std::move(combined));
  }
  series = std::move(merged);
}

util::Json MetricsSnapshot::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json(kSchema));
  util::Json series_obj = util::Json::object();
  for (const SeriesSnapshot& entry : series) {
    util::Json value = util::Json::object();
    value.set("kind", util::Json(metric_kind_name(entry.kind)));
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.set("value", util::Json(entry.counter));
        break;
      case MetricKind::kGauge:
        value.set("value", util::Json(entry.gauge));
        break;
      case MetricKind::kHistogram:
        value = histogram_summary(entry.histogram);
        value.set("kind", util::Json(metric_kind_name(entry.kind)));
        break;
    }
    series_obj.set(entry.key(), std::move(value));
  }
  doc.set("series", std::move(series_obj));
  return doc;
}

MetricRegistry::Series& MetricRegistry::intern(std::string_view name,
                                               const Labels& labels,
                                               MetricKind kind,
                                               int precision_bits) {
  std::string key = encode_key(name, labels);
  const auto it = series_.find(key);
  if (it != series_.end()) return it->second;
  Series entry;
  entry.name = std::string(name);
  entry.labels = labels;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(precision_bits);
      break;
  }
  return series_.emplace(std::move(key), std::move(entry)).first->second;
}

const MetricRegistry::Series* MetricRegistry::lookup(
    std::string_view name, const Labels& labels) const {
  const auto it = series_.find(encode_key(name, labels));
  return it != series_.end() ? &it->second : nullptr;
}

Counter& MetricRegistry::counter(std::string_view name, const Labels& labels) {
  return *intern(name, labels, MetricKind::kCounter, 0).counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, const Labels& labels) {
  return *intern(name, labels, MetricKind::kGauge, 0).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     const Labels& labels,
                                     int precision_bits) {
  return *intern(name, labels, MetricKind::kHistogram, precision_bits)
              .histogram;
}

const Counter* MetricRegistry::find_counter(std::string_view name,
                                            const Labels& labels) const {
  const Series* entry = lookup(name, labels);
  return entry ? entry->counter.get() : nullptr;
}

const Gauge* MetricRegistry::find_gauge(std::string_view name,
                                        const Labels& labels) const {
  const Series* entry = lookup(name, labels);
  return entry ? entry->gauge.get() : nullptr;
}

const Histogram* MetricRegistry::find_histogram(std::string_view name,
                                                const Labels& labels) const {
  const Series* entry = lookup(name, labels);
  return entry ? entry->histogram.get() : nullptr;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.series.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    SeriesSnapshot frozen;
    frozen.name = entry.name;
    frozen.labels = entry.labels;
    frozen.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        frozen.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        frozen.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        frozen.histogram = entry.histogram->data();
        break;
    }
    snap.series.push_back(std::move(frozen));
  }
  return snap;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [key, theirs] : other.series_) {
    switch (theirs.kind) {
      case MetricKind::kCounter:
        counter(theirs.name, theirs.labels).inc(theirs.counter->value());
        break;
      case MetricKind::kGauge: {
        Gauge& mine = gauge(theirs.name, theirs.labels);
        mine.set(std::max(mine.value(), theirs.gauge->value()));
        break;
      }
      case MetricKind::kHistogram: {
        histogram(theirs.name, theirs.labels,
                  theirs.histogram->data().precision_bits())
            .merge(theirs.histogram->data());
        break;
      }
    }
  }
}

void MetricRegistry::reset_values() {
  for (auto& [key, entry] : series_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

void MetricRegistry::clear() { series_.clear(); }

}  // namespace meshnet::obs
