#include "sim/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace meshnet::sim {

/// Epoch barrier shared between the coordinator (the run_until caller)
/// and the persistent workers. The mutex/condvar handoff establishes the
/// happens-before edges that make shard state and mailbox overflow
/// vectors safe to touch from the coordinator between epochs.
struct ParallelEngine::Sync {
  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;  ///< generation counter; bumped to start work
  Time horizon = 0;
  int remaining = 0;  ///< workers still executing the current epoch
  bool quit = false;
  std::exception_ptr first_error;
};

ParallelEngine::ParallelEngine(ParallelEngineOptions options)
    : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.lookahead < 1) {
    throw std::invalid_argument("ParallelEngine: lookahead must be >= 1 ns");
  }
  shards_.resize(static_cast<std::size_t>(options_.shards));
  for (Shard& shard : shards_) {
    shard.sim = std::make_unique<Simulator>();
  }
  mailboxes_.reserve(shards_.size() * shards_.size());
  for (std::size_t i = 0; i < shards_.size() * shards_.size(); ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(options_.mailbox_capacity));
  }

  int requested = util::ThreadPool::resolve_thread_count(options_.threads);
  requested = std::min(requested, options_.shards);
  if (options_.respect_worker_budget) {
    // The calling thread is executor 0 and is not a new worker; only the
    // extras count against the shared budget. A grant of zero degrades
    // to sequential execution with identical results.
    budget_granted_ =
        util::WorkerBudget::global().acquire(requested - 1, 0);
    executors_ = 1 + budget_granted_;
  } else {
    executors_ = requested;
  }
  if (executors_ > 1) sync_ = std::make_unique<Sync>();
}

ParallelEngine::~ParallelEngine() {
  if (workers_started_) {
    {
      std::lock_guard<std::mutex> lock(sync_->mutex);
      sync_->quit = true;
    }
    sync_->start_cv.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
  util::WorkerBudget::global().release(budget_granted_);
}

void ParallelEngine::post(int src, int dst, Time when, InlineTask task) {
  Shard& source = shards_[static_cast<std::size_t>(src)];
  if (when < source.sim->now() + options_.lookahead) {
    throw std::logic_error(
        "ParallelEngine::post: delivery time violates the lookahead "
        "window (cut-link latency shorter than the configured lookahead, "
        "or a zero-latency cross-shard path)");
  }
  Message message{when, source.next_send_seq++, std::move(task)};
  Mailbox& box = mailbox(src, dst);
  if (!box.ring.try_push(message)) {
    // Ring full: spill producer-side. Nothing drains the ring until the
    // barrier, so every later message this epoch lands behind it in the
    // overflow — per-producer order is preserved. The spill is counted at
    // the barrier (post() runs concurrently across workers; stats_ is
    // coordinator-owned).
    box.overflow.push_back(std::move(message));
  }
}

void ParallelEngine::run_shard_range(int first, int last, Time horizon) {
  for (int index = first; index < last; ++index) {
    Simulator& sim = *shards_[static_cast<std::size_t>(index)].sim;
    Simulator::ShardGuard guard(&sim);
    sim.run_until(horizon);
  }
}

void ParallelEngine::worker_loop(int worker_index, int first_shard,
                                 int last_shard) {
  std::uint64_t seen = 0;
  for (;;) {
    Time horizon;
    {
      std::unique_lock<std::mutex> lock(sync_->mutex);
      sync_->start_cv.wait(
          lock, [&] { return sync_->quit || sync_->epoch != seen; });
      if (sync_->quit) return;
      seen = sync_->epoch;
      horizon = sync_->horizon;
    }
    try {
      run_shard_range(first_shard, last_shard, horizon);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sync_->mutex);
      if (!sync_->first_error) sync_->first_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(sync_->mutex);
      --sync_->remaining;
    }
    sync_->done_cv.notify_all();
    (void)worker_index;
  }
}

void ParallelEngine::start_workers() {
  if (workers_started_ || executors_ <= 1) return;
  workers_started_ = true;
  workers_.reserve(static_cast<std::size_t>(executors_ - 1));
  // Contiguous shard blocks per executor; executor 0 is the caller.
  const int shards = shard_count();
  for (int executor = 1; executor < executors_; ++executor) {
    const int first = shards * executor / executors_;
    const int last = shards * (executor + 1) / executors_;
    workers_.emplace_back(
        [this, executor, first, last] { worker_loop(executor, first, last); });
  }
}

void ParallelEngine::run_epoch(Time horizon) {
  if (executors_ <= 1) {
    run_shard_range(0, shard_count(), horizon);
    return;
  }
  start_workers();
  {
    std::lock_guard<std::mutex> lock(sync_->mutex);
    sync_->horizon = horizon;
    sync_->remaining = executors_ - 1;
    ++sync_->epoch;
  }
  sync_->start_cv.notify_all();
  run_shard_range(0, shard_count() / executors_, horizon);
  std::unique_lock<std::mutex> lock(sync_->mutex);
  sync_->done_cv.wait(lock, [&] { return sync_->remaining == 0; });
  if (sync_->first_error) {
    std::exception_ptr error = std::exchange(sync_->first_error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelEngine::inject_messages(Time horizon) {
  batch_.clear();
  const int shards = shard_count();
  for (int src = 0; src < shards; ++src) {
    for (int dst = 0; dst < shards; ++dst) {
      Mailbox& box = mailbox(src, dst);
      Message message;
      while (box.ring.try_pop(message)) {
        batch_.push_back(PendingDelivery{message.when,
                                         static_cast<std::uint32_t>(src),
                                         message.seq,
                                         static_cast<std::uint32_t>(dst),
                                         std::move(message.task)});
      }
      stats_.mailbox_overflows += box.overflow.size();
      for (Message& spilled : box.overflow) {
        batch_.push_back(PendingDelivery{spilled.when,
                                         static_cast<std::uint32_t>(src),
                                         spilled.seq,
                                         static_cast<std::uint32_t>(dst),
                                         std::move(spilled.task)});
      }
      box.overflow.clear();
    }
  }
  // Canonical cross-shard order: (time, source shard, send sequence).
  // The key is unique per source, so destinations assign their internal
  // tie-breaking seq numbers identically on every run.
  std::sort(batch_.begin(), batch_.end(),
            [](const PendingDelivery& a, const PendingDelivery& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (PendingDelivery& delivery : batch_) {
    if (delivery.when <= horizon) {
      throw std::logic_error(
          "ParallelEngine: mailbox message due inside the epoch that "
          "produced it — lookahead is larger than the actual cut-link "
          "latency");
    }
    Simulator& dst = *shards_[delivery.dst].sim;
    Simulator::ShardGuard guard(&dst);
    dst.schedule_at(delivery.when, std::move(delivery.task));
    ++stats_.messages;
  }
  batch_.clear();
}

void ParallelEngine::run_until(Time deadline) {
  for (;;) {
    Time next = Simulator::kNoEventTime;
    for (Shard& shard : shards_) {
      const Time when = shard.sim->next_event_time();
      if (when == Simulator::kNoEventTime) continue;
      if (next == Simulator::kNoEventTime || when < next) next = when;
    }
    if (next == Simulator::kNoEventTime || next > deadline) break;
    const Time reach = (next > INT64_MAX - options_.lookahead)
                           ? INT64_MAX
                           : next + options_.lookahead - 1;
    const Time horizon = std::min(deadline, reach);
    run_epoch(horizon);
    ++stats_.epochs;
    inject_messages(horizon);
  }
  // Nothing at or before the deadline remains anywhere; advance every
  // clock to the deadline (cheap, no events fire).
  for (Shard& shard : shards_) {
    Simulator::ShardGuard guard(shard.sim.get());
    shard.sim->run_until(deadline);
  }
}

std::uint64_t ParallelEngine::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.sim->events_executed();
  return total;
}

LoopStats ParallelEngine::merged_loop_stats() const {
  LoopStats merged;
  for (const Shard& shard : shards_) merged.merge(shard.sim->loop_stats());
  return merged;
}

}  // namespace meshnet::sim
