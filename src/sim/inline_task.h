#pragma once

// Small-buffer-optimized move-only callable for the event loop.
//
// std::function<void()> heap-allocates once captures exceed its tiny
// internal buffer (16 bytes on libstdc++) and drags in copyability
// machinery the scheduler never uses. InlineTask stores any callable up
// to kInlineBytes in-place, so the steady-state schedule/fire cycle does
// not touch the allocator; larger captures fall back to the heap and are
// counted (sim::LoopStats::task_heap_allocs) so regressions show up in
// bench reports instead of profiles.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace meshnet::sim {

class InlineTask {
 public:
  /// Capture budget. 48 bytes fits every scheduler lambda in the tree
  /// (typically `this` + a couple of ids) with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineTask(InlineTask&& other) noexcept { steal(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True if the callable was too large for the inline buffer and lives
  /// on the heap (LoopStats counts these at schedule time).
  bool heap_allocated() const noexcept { return ops_ && ops_->heap; }

  /// Destroys the stored callable (and releases its captures) eagerly —
  /// used by cancel() so a cancelled timer does not pin resources until
  /// its tombstone drains.
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      /*heap=*/false,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
      /*heap=*/true,
  };

  void steal(InlineTask& other) noexcept {
    if (other.ops_) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace meshnet::sim
