#include "sim/random.h"

namespace meshnet::sim {

namespace {
std::uint64_t fnv1a_mix(std::uint64_t seed, std::string_view name) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  // Finalize (splitmix64) so nearby seeds diverge.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}
}  // namespace

RngStream::RngStream(std::uint64_t run_seed, std::string_view name)
    : engine_(fnv1a_mix(run_seed, name)) {}

double RngStream::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RngStream::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t RngStream::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double RngStream::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool RngStream::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::uint64_t RngStream::next_u64() { return engine_(); }

}  // namespace meshnet::sim
