#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace meshnet::sim {

thread_local const Simulator* Simulator::t_active_shard_ = nullptr;

void Simulator::throw_cross_shard_access() const {
  throw std::logic_error(
      "sim::Simulator: schedule/cancel on a simulator other than the "
      "shard armed on this thread — cross-shard events must go through "
      "ParallelEngine::post (mailboxes), never direct scheduling");
}

namespace {

/// Earliest occupied slot index at or after `from` (wrapping), given a
/// per-level occupancy bitmap. Bitmap must be non-zero.
int next_occupied(std::uint64_t bitmap, int from) noexcept {
  const std::uint64_t ahead = bitmap >> from;
  if (ahead != 0) return from + std::countr_zero(ahead);
  return std::countr_zero(bitmap);
}

}  // namespace

Simulator::Simulator() {
  // Typical experiments keep a few hundred timers in flight; reserving
  // here keeps the first seconds of a run allocation-quiet too.
  slots_.reserve(256);
  heap_.reserve(64);
  due_.reserve(32);
}

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.task.reset();  // release captures eagerly
  ++slot.gen;         // invalidates the EventId and any queued Entry
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId Simulator::schedule_at(Time when, InlineTask fn) {
  check_shard_affinity();
  if (when < now_) when = now_;
  if (fn.heap_allocated()) ++stats_.task_heap_allocs;
  const std::uint32_t slot_index = alloc_slot();
  Slot& slot = slots_[slot_index];
  slot.task = std::move(fn);
  ++stats_.scheduled;
  ++live_count_;
  if (live_count_ > stats_.max_queue_depth) {
    stats_.max_queue_depth = live_count_;
  }
  insert_entry(Entry{when, next_seq_++, slot_index, slot.gen});
  return (static_cast<EventId>(slot.gen) << 32) |
         static_cast<EventId>(slot_index + 1);
}

EventId Simulator::schedule_after(Duration delay, InlineTask fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  check_shard_affinity();
  const std::uint32_t index_plus_one = static_cast<std::uint32_t>(id);
  if (id == kInvalidEventId || index_plus_one == 0) return false;
  const std::size_t index = index_plus_one - 1;
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  const Where where = slot.where;
  free_slot(static_cast<std::uint32_t>(index));
  --live_count_;
  ++stats_.cancelled;
  // The queued Entry is now a tombstone: skipped when it surfaces, or
  // reclaimed by a lazy compaction once tombstones outnumber live
  // entries (cancelled far-future timers must not accumulate).
  if (where == Where::kHeap) {
    ++heap_tombstones_;
    if (heap_tombstones_ * 2 > heap_.size() && heap_.size() >= kCompactMin) {
      compact_heap();
    }
  } else if (where == Where::kWheel) {
    ++wheel_tombstones_;
    if (wheel_tombstones_ * 2 > wheel_entries_ &&
        wheel_entries_ >= kCompactMin) {
      compact_wheel();
    }
  }
  return true;
}

void Simulator::insert_entry(const Entry& e) {
  if (due_horizon_ != kNoHorizon && e.when < due_horizon_) {
    // The event lands inside the tick currently draining: merge it into
    // the due run to keep global (when, seq) order. Its seq is the
    // global max, so it sorts after every existing equal-`when` entry.
    const auto pos = std::upper_bound(due_.begin() + due_head_, due_.end(),
                                      e, entry_less);
    due_.insert(pos, e);
    slots_[e.slot].where = Where::kDue;
    ++stats_.due_merges;
    return;
  }
  // Pick the first level whose bucket-unit distance fits. Comparing in
  // bucket units (tick >> 6*level) rather than raw tick deltas keeps
  // every level's live window at exactly 64 distinct units, so a bucket
  // never mixes a near tick with one a whole wheel-turn later.
  const std::int64_t tick = e.when >> kTickBits;
  const std::int64_t cur = cur_tick();
  int level = -1;
  for (int candidate = 0; candidate < kWheelLevels; ++candidate) {
    if ((tick >> (kSlotBits * candidate)) - (cur >> (kSlotBits * candidate)) <
        kWheelSlots) {
      level = candidate;
      break;
    }
  }
  if (level >= 0) {
    wheel_insert(level, e);
  } else {
    heap_push(e);
    slots_[e.slot].where = Where::kHeap;
    ++stats_.heap_pushes;
  }
}

void Simulator::wheel_insert(int level, const Entry& e) {
  const int index = static_cast<int>(
      ((e.when >> kTickBits) >> (kSlotBits * level)) & kSlotMask);
  wheel_[level][index].push_back(e);
  occupancy_[level] |= std::uint64_t{1} << index;
  ++wheel_entries_;
  slots_[e.slot].where = Where::kWheel;
  ++stats_.wheel_pushes;
}

void Simulator::heap_push(const Entry& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Entry Simulator::heap_pop() {
  const Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
  return top;
}

void Simulator::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) return;
    std::size_t best = i;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first; child < last; ++child) {
      if (entry_less(heap_[child], heap_[best])) best = child;
    }
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Simulator::compact_heap() {
  std::erase_if(heap_, [this](const Entry& e) { return dead(e); });
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      heap_sift_down(i);
    }
  }
  heap_tombstones_ = 0;
  ++stats_.heap_compactions;
}

void Simulator::compact_wheel() {
  for (int level = 0; level < kWheelLevels; ++level) {
    for (int index = 0; index < kWheelSlots; ++index) {
      auto& bucket = wheel_[level][index];
      if (bucket.empty()) continue;
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [this](const Entry& e) { return dead(e); });
      wheel_entries_ -= before - bucket.size();
      if (bucket.empty()) {
        occupancy_[level] &= ~(std::uint64_t{1} << index);
      }
    }
  }
  wheel_tombstones_ = 0;
  ++stats_.wheel_compactions;
}

std::int64_t Simulator::wheel_min_tick() {
  std::int64_t best = -1;
  const std::int64_t cur = cur_tick();
  for (int level = 0; level < kWheelLevels; ++level) {
    for (;;) {
      if (occupancy_[level] == 0) break;
      const int cur_index =
          static_cast<int>((cur >> (kSlotBits * level)) & kSlotMask);
      const int index = next_occupied(occupancy_[level], cur_index);
      auto& bucket = wheel_[level][index];
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [this](const Entry& e) { return dead(e); });
      const std::size_t removed = before - bucket.size();
      wheel_entries_ -= removed;
      wheel_tombstones_ -= std::min(wheel_tombstones_, removed);
      if (bucket.empty()) {
        occupancy_[level] &= ~(std::uint64_t{1} << index);
        continue;  // bucket was all tombstones; rescan the level
      }
      std::int64_t min_tick = bucket.front().when >> kTickBits;
      for (const Entry& e : bucket) {
        min_tick = std::min(min_tick, e.when >> kTickBits);
      }
      if (best < 0 || min_tick < best) best = min_tick;
      break;
    }
  }
  return best;
}

void Simulator::drain_tick(std::int64_t tick) {
  // Entries at `tick` can sit at any level (a long delay shrinks as the
  // clock advances without ever being re-bucketed), but within a level
  // the slot index is a pure function of the tick.
  for (int level = 0; level < kWheelLevels; ++level) {
    const int index =
        static_cast<int>((tick >> (kSlotBits * level)) & kSlotMask);
    if ((occupancy_[level] & (std::uint64_t{1} << index)) == 0) continue;
    auto& bucket = wheel_[level][index];
    std::erase_if(bucket, [&](const Entry& e) {
      if (dead(e)) {
        --wheel_entries_;
        wheel_tombstones_ -= std::min<std::size_t>(wheel_tombstones_, 1);
        return true;
      }
      if ((e.when >> kTickBits) == tick) {
        due_.push_back(e);
        slots_[e.slot].where = Where::kDue;
        --wheel_entries_;
        return true;
      }
      return false;
    });
    if (bucket.empty()) occupancy_[level] &= ~(std::uint64_t{1} << index);
  }
  std::sort(due_.begin(), due_.end(), entry_less);
  due_horizon_ = (tick + 1) << kTickBits;
}

Time Simulator::next_when() {
  for (;;) {
    while (due_head_ < due_.size() && dead(due_[due_head_])) ++due_head_;
    while (!heap_.empty() && dead(heap_.front())) {
      heap_pop();
      if (heap_tombstones_ > 0) --heap_tombstones_;
    }
    if (due_head_ < due_.size()) {
      const Entry& front = due_[due_head_];
      if (!heap_.empty() && entry_less(heap_.front(), front)) {
        return heap_.front().when;
      }
      return front.when;
    }
    // Current due run exhausted; the wheel may hold the next tick. The
    // heap wins outright only when its top fires strictly before every
    // wheel tick — on a tie the tick is drained so heap and wheel
    // events merge in exact (when, seq) order.
    due_.clear();
    due_head_ = 0;
    due_horizon_ = kNoHorizon;
    if (wheel_entries_ > 0) {
      const std::int64_t best = wheel_min_tick();
      if (best >= 0 &&
          (heap_.empty() || (heap_.front().when >> kTickBits) >= best)) {
        drain_tick(best);
        continue;
      }
    }
    if (heap_.empty()) return kNoEvent;
    return heap_.front().when;
  }
}

Simulator::Entry Simulator::take_next() {
  if (due_head_ < due_.size()) {
    const Entry& front = due_[due_head_];
    if (!heap_.empty() && entry_less(heap_.front(), front)) {
      return heap_pop();
    }
    return due_[due_head_++];
  }
  return heap_pop();
}

void Simulator::fire(const Entry& e) {
  InlineTask task = std::move(slots_[e.slot].task);
  free_slot(e.slot);
  --live_count_;
  ++stats_.executed;
  stats_.record_depth(live_count_);
  task();
}

void Simulator::run_loop(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    const Time when = next_when();
    if (when == kNoEvent) break;
    if (when > deadline) {
      now_ = deadline;
      return;
    }
    const Entry e = take_next();
    now_ = e.when;
    fire(e);
  }
}

Time Simulator::next_event_time() { return next_when(); }

void Simulator::run() { run_loop(INT64_MAX); }

void Simulator::run_until(Time deadline) {
  run_loop(deadline);
  if (now_ < deadline) now_ = deadline;
}

}  // namespace meshnet::sim
