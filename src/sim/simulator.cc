#include "sim/simulator.h"

#include <utility>

namespace meshnet::sim {

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_seq_;
  queue_.push(Event{when, next_seq_, id, std::move(fn)});
  ++next_seq_;
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) return false;
  // We cannot remove from the middle of the heap; remember the id and skip
  // the event when it surfaces.
  return cancelled_.insert(id).second;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) {
      now_ = deadline;
      return;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace meshnet::sim
