#pragma once

// Deterministic single-threaded discrete-event simulator.
//
// Components schedule callbacks at absolute or relative simulated times.
// Events at the same timestamp run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes runs bit-for-bit
// reproducible.
//
// Hot-path layout (see DESIGN.md "Performance model"):
//
//  - Callables are stored in a slab of generation-tagged slots as
//    InlineTask (no allocation for captures <= 48 bytes). An EventId is
//    (generation << 32) | (slot + 1), so cancel() is an O(1) tag check
//    that frees the slot (and the callable's captures) immediately.
//  - Pending events are 24-byte {when, seq, slot, gen} entries held in
//    either a hierarchical timer wheel (3 levels x 64 slots, 8.192 us
//    base tick — the short retry/pacing/transmission delays that
//    dominate) or a 4-ary min-heap for far timers. Entries whose slot
//    generation no longer matches are tombstones, skipped on pop;
//    the heap and wheel compact lazily once tombstones exceed half
//    their population, so cancelled far-future timers cannot
//    accumulate.
//  - Execution order is always resolved by exact (when, seq)
//    comparisons: the wheel drains one tick at a time into a sorted
//    "due" run that is merge-compared against the heap top, so the
//    data-structure split never changes the event order the old
//    priority-queue implementation produced.

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_task.h"
#include "sim/loop_stats.h"
#include "sim/time.h"

namespace meshnet::sim {

/// Identifies a scheduled event so it can be cancelled (timers).
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  /// Returned by next_event_time() when the queue is empty.
  static constexpr Time kNoEventTime = INT64_MIN;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Absolute time of the earliest live pending event, or kNoEventTime
  /// when nothing is scheduled. Prunes tombstones lazily but never
  /// executes events or advances the clock. The parallel engine's epoch
  /// coordinator uses this to compute the global lookahead horizon.
  Time next_event_time();

  /// Shard-affinity guard (see sim/parallel.h). While a ShardGuard for
  /// simulator S is armed on the current thread, schedule_at /
  /// schedule_after / cancel on any *other* simulator throw
  /// std::logic_error: shard-local components must never mutate another
  /// shard's event queue directly — cross-shard traffic has to go
  /// through the engine's mailboxes, otherwise determinism (and thread
  /// safety) silently break. Unarmed threads (every single-simulator
  /// program) pay one thread-local load + branch per schedule.
  class ShardGuard {
   public:
    explicit ShardGuard(const Simulator* active) noexcept
        : previous_(t_active_shard_) {
      t_active_shard_ = active;
    }
    ~ShardGuard() { t_active_shard_ = previous_; }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    const Simulator* previous_;
  };

  /// Schedules `fn` to run at absolute time `when` (clamped to now()).
  EventId schedule_at(Time when, InlineTask fn);

  /// Schedules `fn` to run `delay` after now() (negative delays are
  /// clamped to zero).
  EventId schedule_after(Duration delay, InlineTask fn);

  /// Cancels a pending event. Safe to call with an id that already fired
  /// or was already cancelled (no-op). Returns true if the event was
  /// pending and is now cancelled.
  bool cancel(EventId id);

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs until simulated time strictly exceeds `deadline` or the queue
  /// drains. The clock is left at min(deadline, last event time).
  void run_until(Time deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (for diagnostics and tests).
  std::uint64_t events_executed() const noexcept { return stats_.executed; }

  /// Number of events currently pending (scheduled, not fired, not
  /// cancelled).
  std::size_t pending_events() const noexcept { return live_count_; }

  /// Engine throughput counters (deterministic; see sim/loop_stats.h).
  const LoopStats& loop_stats() const noexcept { return stats_; }

 private:
  // -- timer wheel geometry ------------------------------------------------
  static constexpr int kTickBits = 13;  ///< 8.192 us per level-0 tick
  static constexpr int kSlotBits = 6;   ///< 64 slots per level
  static constexpr int kWheelLevels = 3;
  static constexpr int kWheelSlots = 1 << kSlotBits;
  static constexpr int kSlotMask = kWheelSlots - 1;
  // Delays beyond the level-2 window (~2.1 s) go to the 4-ary heap.
  /// Lazy-compaction floor: below this population tombstones are
  /// harmless and a rebuild would cost more than it saves.
  static constexpr std::size_t kCompactMin = 64;

  static constexpr Time kNoEvent = kNoEventTime;
  static constexpr Time kNoHorizon = -1;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  enum class Where : std::uint8_t { kHeap, kWheel, kDue };

  struct Slot {
    InlineTask task;
    std::uint32_t gen = 1;             ///< bumped on free; tags EventIds
    std::uint32_t next_free = kNilSlot;
    Where where = Where::kHeap;
  };

  /// 24-byte pending-event reference; the callable stays in its slot.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  bool dead(const Entry& e) const noexcept {
    return slots_[e.slot].gen != e.gen;
  }

  std::int64_t cur_tick() const noexcept { return now_ >> kTickBits; }

  /// Trips when a ShardGuard for a different simulator is armed on this
  /// thread (cold path lives in the .cc).
  void check_shard_affinity() const {
    if (t_active_shard_ != nullptr && t_active_shard_ != this) {
      throw_cross_shard_access();
    }
  }
  [[noreturn]] void throw_cross_shard_access() const;

  static thread_local const Simulator* t_active_shard_;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t index) noexcept;

  void insert_entry(const Entry& e);
  void wheel_insert(int level, const Entry& e);

  void heap_push(const Entry& e);
  Entry heap_pop();
  void heap_sift_down(std::size_t i);
  void compact_heap();
  void compact_wheel();

  /// Minimal pending tick held by the wheel, or -1 if the wheel is
  /// empty. Prunes dead entries from the buckets it inspects so the
  /// occupancy bitmaps stay truthful.
  std::int64_t wheel_min_tick();

  /// Moves every wheel entry at exactly `tick` into the sorted due run.
  void drain_tick(std::int64_t tick);

  /// Time of the next live event (draining/pruning lazily as needed), or
  /// kNoEvent when everything ran. take_next() must follow with no
  /// intervening mutation.
  Time next_when();
  Entry take_next();
  void fire(const Entry& e);
  void run_loop(Time deadline);

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  LoopStats stats_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;

  std::vector<Entry> heap_;  ///< 4-ary min-heap ordered by (when, seq)
  std::size_t heap_tombstones_ = 0;

  std::array<std::array<std::vector<Entry>, kWheelSlots>, kWheelLevels>
      wheel_;
  std::array<std::uint64_t, kWheelLevels> occupancy_{};
  std::size_t wheel_entries_ = 0;
  std::size_t wheel_tombstones_ = 0;

  /// The currently draining wheel tick, sorted by (when, seq) and
  /// consumed from due_head_. Active while due_horizon_ >= 0: new events
  /// below the horizon merge in to preserve global order.
  std::vector<Entry> due_;
  std::size_t due_head_ = 0;
  Time due_horizon_ = kNoHorizon;
};

}  // namespace meshnet::sim
