#pragma once

// Deterministic single-threaded discrete-event simulator.
//
// Components schedule callbacks at absolute or relative simulated times.
// Events at the same timestamp run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes runs bit-for-bit
// reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace meshnet::sim {

/// Identifies a scheduled event so it can be cancelled (timers).
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (clamped to now()).
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now() (negative delays are
  /// clamped to zero).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Safe to call with an id that already fired
  /// or was already cancelled (no-op). Returns true if the event was
  /// pending and is now cancelled.
  bool cancel(EventId id);

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs until simulated time strictly exceeds `deadline` or the queue
  /// drains. The clock is left at min(deadline, last event time).
  void run_until(Time deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (for diagnostics and tests).
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending.
  std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace meshnet::sim
