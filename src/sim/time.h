#pragma once

// Simulated time. All simulator clocks are nanoseconds since the start of
// the run, held in a signed 64-bit integer (plenty for ~292 years of
// simulated time). Plain integers keep the event loop allocation-free and
// trivially comparable; the helpers below give call sites readable units.

#include <cstdint>

namespace meshnet::sim {

/// Nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr Duration nanoseconds(std::int64_t n) noexcept { return n; }
constexpr Duration microseconds(std::int64_t n) noexcept {
  return n * kMicrosecond;
}
constexpr Duration milliseconds(std::int64_t n) noexcept {
  return n * kMillisecond;
}
constexpr Duration seconds(std::int64_t n) noexcept { return n * kSecond; }

/// Fractional-seconds constructor for rate math (e.g. 0.0015 s).
/// Saturates instead of overflowing so degenerate rates (a shaper with an
/// epsilon rate computing a centuries-long wait) stay well-defined.
constexpr Duration from_seconds(double s) noexcept {
  const double ns = s * static_cast<double>(kSecond);
  if (ns >= 9.2e18) return INT64_MAX;
  if (ns <= -9.2e18) return INT64_MIN;
  return static_cast<Duration>(ns);
}

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_milliseconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_microseconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Time a given number of bytes occupies on a link of `bits_per_second`.
constexpr Duration transmission_time(std::uint64_t bytes,
                                     double bits_per_second) noexcept {
  return static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                               bits_per_second *
                               static_cast<double>(kSecond));
}

}  // namespace meshnet::sim
