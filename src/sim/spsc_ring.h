#pragma once

// Bounded single-producer/single-consumer ring buffer.
//
// The parallel engine's cross-shard mailboxes are SPSC by construction:
// during an epoch exactly one executor thread (the one running the source
// shard) pushes, and only the barrier coordinator pops — never while the
// epoch is running. The acquire/release protocol below still makes the
// ring safe for fully concurrent push/pop, so the mailboxes stay correct
// (and TSan-clean) even if a future scheme drains them mid-epoch.
//
// Capacity is rounded up to a power of two. try_push fails when the ring
// is full; the mailbox layer spills to a producer-owned overflow vector
// (drained after the ring at each barrier, which preserves per-producer
// send order because nothing is consumed between the first spill and the
// barrier).

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace meshnet::sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false (value untouched) when full.
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact for the consumer, a snapshot
  /// for anyone else).
  bool empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next pop index
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next push index
};

}  // namespace meshnet::sim
