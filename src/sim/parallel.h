#pragma once

// Conservative parallel discrete-event engine (Chandy–Misra–Bryant-style
// barrier epochs over sharded sim::Simulator instances).
//
// The topology is partitioned into S shards, each owning one unmodified
// zero-alloc Simulator (DESIGN.md §7) and all state of the services,
// links and timers assigned to it. Cross-shard interactions are only
// allowed through bounded SPSC mailboxes (one per ordered shard pair):
// the sender posts a task stamped with its delivery time, which must be
// at least `lookahead` after the sender's clock — in mesh terms, the
// propagation latency of the cut link the event is crossing.
//
// Epoch protocol (run_until):
//   1. T      = min over shards of next_event_time()    (global min).
//   2. E      = min(deadline, T + lookahead - 1)        (epoch horizon).
//   3. Every shard independently runs run_until(E) — lock-free, no
//      shared state, one executor thread per shard group. Any event it
//      executes has time t in [T, E], so any cross-shard message it
//      emits is delivered at t + lookahead > E: never inside this epoch.
//   4. Barrier. The coordinator drains every mailbox, sorts the batch by
//      the canonical (delivery time, source shard, send sequence) key,
//      and schedules each task into its destination shard in that order.
//   5. Repeat until no shard holds an event at or before the deadline.
//
// Determinism: epoch horizons are pure functions of simulator state,
// shard execution is sequential within an epoch, and step 4's canonical
// order fixes the destination's tie-breaking seq assignment — so for a
// fixed shard count the run is bit-identical at any worker thread count
// (threads only change which host thread executes a shard, never what it
// observes). The thread-invariance goldens rely on exactly this.
//
// Safety rails: while an executor runs a shard (and while the
// coordinator injects into one), a Simulator::ShardGuard is armed, so a
// partitioning bug that schedules straight onto a foreign shard throws
// std::logic_error instead of silently racing; posts whose delivery time
// violates the lookahead also throw.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/inline_task.h"
#include "sim/loop_stats.h"
#include "sim/simulator.h"
#include "sim/spsc_ring.h"
#include "sim/time.h"

namespace meshnet::sim {

struct ParallelEngineOptions {
  /// Number of shards (fixed by the partition; results depend on it).
  int shards = 1;

  /// Conservative lookahead window: the minimum latency of any cut link.
  /// Every cross-shard post must deliver at least this far after the
  /// sender's clock. Must be >= 1 ns.
  Duration lookahead = 1;

  /// Worker threads to execute shards on (0 = one per hardware thread).
  /// Clamped to the shard count, and — when respect_worker_budget is set
  /// — to what util::WorkerBudget::global() grants, so nested use under
  /// a sweep pool cannot oversubscribe the host. Results never depend on
  /// this value.
  int threads = 1;

  /// Opt out of the shared worker budget (top-level benchmarks that are
  /// explicitly measuring N-thread wall clock set this to false).
  bool respect_worker_budget = true;

  /// Ring slots per ordered shard pair; bursts past this spill to an
  /// unbounded producer-side overflow (counted, still deterministic).
  std::size_t mailbox_capacity = 256;
};

struct ParallelEngineStats {
  std::uint64_t epochs = 0;             ///< barrier rounds executed
  std::uint64_t messages = 0;           ///< cross-shard tasks delivered
  std::uint64_t mailbox_overflows = 0;  ///< posts that spilled past the ring
};

class ParallelEngine {
 public:
  explicit ParallelEngine(ParallelEngineOptions options);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Executor threads actually used (after budget/shard clamping),
  /// including the calling thread.
  int executor_count() const noexcept { return executors_; }

  Duration lookahead() const noexcept { return options_.lookahead; }

  /// The shard's simulator: build shard-local state against it, and read
  /// clocks/stats from it after a run.
  Simulator& shard(int index) { return *shards_[index].sim; }
  const Simulator& shard(int index) const { return *shards_[index].sim; }

  /// Posts `task` for execution on shard `dst` at absolute time `when`.
  /// Must be called from shard `src`'s execution context during a run
  /// (the engine arms a ShardGuard; this is the only legal way to cross
  /// shards). Throws std::logic_error if `when` is closer than the
  /// lookahead to the source clock.
  void post(int src, int dst, Time when, InlineTask task);

  /// Runs every shard until simulated time strictly exceeds `deadline`
  /// (events at exactly `deadline` run, matching Simulator::run_until).
  /// All shard clocks end at `deadline`. May be called repeatedly with
  /// increasing deadlines.
  void run_until(Time deadline);

  /// Sum of events executed across shards (deterministic).
  std::uint64_t events_executed() const noexcept;

  /// Order-independent fold of every shard's loop profile.
  LoopStats merged_loop_stats() const;

  /// Deterministic synchronization counters.
  const ParallelEngineStats& stats() const noexcept { return stats_; }

 private:
  struct Message {
    Time when = 0;
    std::uint64_t seq = 0;  ///< per-source-shard send sequence
    InlineTask task;
  };

  /// One ordered shard pair's mailbox. The ring is the fast path; the
  /// overflow vector (producer-owned, drained after the ring at each
  /// barrier so per-producer order is preserved) keeps bursts correct.
  struct Mailbox {
    explicit Mailbox(std::size_t capacity) : ring(capacity) {}
    SpscRing<Message> ring;
    std::vector<Message> overflow;
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    std::uint64_t next_send_seq = 1;
  };

  /// Flattened batch entry used for the canonical barrier sort.
  struct PendingDelivery {
    Time when;
    std::uint32_t src;
    std::uint64_t seq;
    std::uint32_t dst;
    InlineTask task;
  };

  Mailbox& mailbox(int src, int dst) {
    return *mailboxes_[static_cast<std::size_t>(src) * shards_.size() +
                       static_cast<std::size_t>(dst)];
  }

  void run_shard_range(int first, int last, Time horizon);
  void run_epoch(Time horizon);
  void inject_messages(Time horizon);
  void start_workers();
  void worker_loop(int worker_index, int first_shard, int last_shard);

  ParallelEngineOptions options_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  ParallelEngineStats stats_;
  std::vector<PendingDelivery> batch_;  ///< reused barrier scratch

  int executors_ = 1;
  int budget_granted_ = 0;

  // Epoch barrier state (only touched when executors_ > 1).
  struct Sync;
  std::unique_ptr<Sync> sync_;
  std::vector<std::thread> workers_;
  bool workers_started_ = false;
};

}  // namespace meshnet::sim
