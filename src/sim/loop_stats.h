#pragma once

// Lightweight event-loop profiler. The simulator updates these counters
// inline (a handful of integer ops per event, no allocation, no clock
// reads), so they are deterministic: two identical runs produce identical
// LoopStats. Wall-clock throughput (events/sec) is derived by the bench
// harness from `executed` and host wall time, and is reported under a
// "wall_" name so baselines never compare it.

#include <array>
#include <cstddef>
#include <cstdint>

namespace meshnet::sim {

struct LoopStats {
  std::uint64_t scheduled = 0;        ///< schedule_at/schedule_after calls
  std::uint64_t executed = 0;         ///< events fired
  std::uint64_t cancelled = 0;        ///< successful cancel() calls
  std::uint64_t heap_pushes = 0;      ///< far timers sent to the 4-ary heap
  std::uint64_t wheel_pushes = 0;     ///< short timers sent to the wheel
  std::uint64_t due_merges = 0;       ///< inserts into the active due run
  std::uint64_t task_heap_allocs = 0; ///< InlineTask captures > inline buffer
  std::uint64_t heap_compactions = 0; ///< tombstone purges of the heap
  std::uint64_t wheel_compactions = 0;///< tombstone purges of the wheel
  std::uint64_t max_queue_depth = 0;  ///< peak live pending events

  /// Queue-depth histogram: bucket i counts events that fired while the
  /// number of live pending events was in [2^i, 2^(i+1)); bucket 0 also
  /// holds depth 0.
  static constexpr std::size_t kDepthBuckets = 24;
  std::array<std::uint64_t, kDepthBuckets> depth_histogram{};

  void record_depth(std::size_t depth) noexcept {
    if (depth > max_queue_depth) max_queue_depth = depth;
    std::size_t bucket = 0;
    while ((std::size_t{1} << (bucket + 1)) <= depth &&
           bucket + 1 < kDepthBuckets) {
      ++bucket;
    }
    ++depth_histogram[bucket];
  }

  /// Order-independent fold of another loop's counters, used by the
  /// parallel engine to merge per-shard profiles into one snapshot.
  /// Counters sum; max_queue_depth takes the max of the per-loop maxima
  /// (the merged value is "deepest any one shard ever got", not a
  /// simultaneous global depth).
  void merge(const LoopStats& other) noexcept {
    scheduled += other.scheduled;
    executed += other.executed;
    cancelled += other.cancelled;
    heap_pushes += other.heap_pushes;
    wheel_pushes += other.wheel_pushes;
    due_merges += other.due_merges;
    task_heap_allocs += other.task_heap_allocs;
    heap_compactions += other.heap_compactions;
    wheel_compactions += other.wheel_compactions;
    if (other.max_queue_depth > max_queue_depth) {
      max_queue_depth = other.max_queue_depth;
    }
    for (std::size_t i = 0; i < kDepthBuckets; ++i) {
      depth_histogram[i] += other.depth_histogram[i];
    }
  }

  /// Host-throughput helper for bench reports (NOT deterministic).
  double events_per_second(double wall_seconds) const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(executed) / wall_seconds
                              : 0.0;
  }
};

}  // namespace meshnet::sim
