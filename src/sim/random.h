#pragma once

// Named, independently seeded PRNG streams.
//
// Each logical source of randomness (one workload's inter-arrival times,
// one load balancer's choices, ...) takes its own stream, derived from a
// run-level seed plus the stream name. Adding a new consumer of randomness
// therefore never perturbs the draws seen by existing consumers, which
// keeps A/B experiment pairs (e.g. with/without cross-layer optimization)
// comparable.

#include <cstdint>
#include <random>
#include <string_view>

namespace meshnet::sim {

class RngStream {
 public:
  /// Derives the stream's seed from (run_seed, name) via FNV-1a mixing.
  RngStream(std::uint64_t run_seed, std::string_view name);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

 private:
  std::mt19937_64 engine_;
};

}  // namespace meshnet::sim
