#pragma once

// Named, independently seeded PRNG streams.
//
// Each logical source of randomness (one workload's inter-arrival times,
// one load balancer's choices, ...) takes its own stream, seeded with
// splitmix64(FNV-1a(run_seed, name)) feeding an mt19937_64 engine.
// Because a stream's draws depend only on (run_seed, name) and the order
// of calls *on that stream*, adding a new consumer of randomness never
// perturbs the draws seen by existing consumers, which keeps A/B
// experiment pairs (e.g. with/without cross-layer optimization)
// comparable.
//
// Two caveats the derivation implies:
//   * Names must be unique per logical source. Two streams constructed
//     with the same (run_seed, name) are the SAME sequence, not
//     independent draws — include a distinguishing id ("arrivals:svc-7",
//     not "arrivals") when instantiating per-entity streams.
//   * The seeding is a hash, not a cryptographic split: distinct names
//     give streams that are independent for simulation purposes, but
//     there is no hard guarantee against collisions across the full
//     64-bit space. Keep names structured and short.
//
// Thread/shard affinity: a stream is mutable state with no locking. Under
// the sharded parallel engine (sim/parallel.h) every stream must be owned
// by exactly one shard and only drawn from while that shard executes —
// shard determinism relies on per-stream call order, which a stream
// shared across shards would destroy. Seed per-shard consumers by name
// exactly as above; the (run_seed, name) derivation guarantees a shard
// sees the same sequence no matter how many shards or worker threads the
// engine runs with.

#include <cstdint>
#include <random>
#include <string_view>

namespace meshnet::sim {

class RngStream {
 public:
  /// Derives the stream's seed from (run_seed, name) via FNV-1a mixing.
  RngStream(std::uint64_t run_seed, std::string_view name);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

 private:
  std::mt19937_64 engine_;
};

}  // namespace meshnet::sim
