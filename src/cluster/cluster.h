#pragma once

// The orchestration substrate: a cluster of nodes hosting pods, each pod
// with one IP (app container and sidecar share the pod network namespace,
// as in Kubernetes), a vNIC modelled as a duplex link to its node's
// bridge, and a TransportHost acting as the pod's kernel. IP allocation
// follows the CNI convention of one /24 per node (10.244.<node>.<pod>).
//
// The paper's testbed maps onto this as: one node (single 32-core server
// under KIND), 15 Gbps vNIC links, and the reviews->ratings bottleneck
// expressed by giving the ratings pod a 1 Gbps vNIC.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/service_registry.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace meshnet::cluster {

class Cluster;

struct NodeInfo {
  std::string name;
  net::LocationId bridge = net::kInvalidLocation;
  std::uint8_t index = 0;
  std::uint8_t next_pod_ip = 2;  ///< .0/.1 reserved, CNI-style.
};

struct PodOptions {
  /// vNIC rate; 0 means "use the cluster default".
  double link_bps = 0.0;
  /// vNIC one-way propagation delay; negative means cluster default.
  sim::Duration link_delay = -1;
  std::map<std::string, std::string> labels;
};

class Pod {
 public:
  Pod(Cluster& cluster, std::string name, std::string service,
      net::IpAddress ip, net::LocationId location, net::Link* egress,
      net::Link* ingress);

  const std::string& name() const noexcept { return name_; }
  const std::string& service() const noexcept { return service_; }
  net::IpAddress ip() const noexcept { return ip_; }
  net::LocationId location() const noexcept { return location_; }

  /// False while the pod is crashed (vNICs down, packets blackholed).
  bool running() const noexcept { return running_; }

  /// Degradation factor applied to the app container's processing delay
  /// (1.0 = healthy; the fault layer raises it to model CPU starvation /
  /// noisy neighbours). Apps read it at admission time.
  double compute_multiplier() const noexcept { return compute_multiplier_; }
  void set_compute_multiplier(double multiplier) noexcept {
    compute_multiplier_ = multiplier < 0.0 ? 0.0 : multiplier;
  }

  /// The pod's "kernel": listen/connect through this.
  transport::TransportHost& transport() noexcept { return *transport_; }

  /// The vNIC links (pod->node and node->pod). The cross-layer TcManager
  /// installs qdiscs on these, mirroring `tc qdisc replace dev veth...`.
  net::Link& egress_link() noexcept { return *egress_; }
  net::Link& ingress_link() noexcept { return *ingress_; }

 private:
  friend class Cluster;
  std::string name_;
  std::string service_;
  net::IpAddress ip_;
  net::LocationId location_;
  net::Link* egress_;
  net::Link* ingress_;
  std::unique_ptr<transport::TransportHost> transport_;
  // Registration snapshot so a restarted pod can re-join its service.
  net::Port service_port_ = 0;
  std::map<std::string, std::string> labels_;
  bool running_ = true;
  double compute_multiplier_ = 1.0;
};

struct ClusterConfig {
  double default_link_bps = 15e9;                      ///< paper: 15 Gbps
  sim::Duration default_link_delay = sim::microseconds(20);
  sim::Duration loopback_delay = sim::microseconds(10);
  double node_uplink_bps = 40e9;  ///< node bridge <-> cluster fabric
  sim::Duration node_uplink_delay = sim::microseconds(5);
  /// vNIC queue capacity (Linux txqueuelen 1000 x ~9000B MTU by default);
  /// must comfortably exceed one congestion window or every slow-start
  /// burst becomes a drop storm.
  std::uint64_t vnic_queue_bytes = 9'000'000;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig config = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a worker node (a bridge location uplinked to the cluster fabric).
  NodeInfo& add_node(const std::string& name);

  /// Schedules a pod onto a node. The pod gets an IP, its own location,
  /// vNIC links to the node bridge, and a TransportHost. If `service` is
  /// non-empty and `service_port` != 0, the pod is registered as an
  /// endpoint of that service with the given labels.
  Pod& add_pod(const std::string& node, const std::string& pod_name,
               const std::string& service, net::Port service_port,
               PodOptions options = {});

  Pod* find_pod(const std::string& name);
  const std::vector<std::unique_ptr<Pod>>& pods() const { return pods_; }

  // --- Pod lifecycle (the fault layer's kubelet) ----------------------
  //
  // crash_pod models a hard failure: both vNICs go down, so in-flight and
  // future packets blackhole. It deliberately does NOT touch the service
  // registry — detecting the failure is the job of health checking (fast
  // path) or deregister_pod (the slow "node controller noticed" path).
  // All three return false when no pod by that name exists (crash/restart
  // additionally no-op when already in the requested state).

  bool crash_pod(const std::string& name);

  /// Removes the crashed pod's endpoint from the registry (endpoint
  /// churn the control plane will push to every sidecar).
  bool deregister_pod(const std::string& name);

  /// Brings the vNICs back up and re-registers the endpoint with its
  /// original port and labels.
  bool restart_pod(const std::string& name);

  sim::Simulator& sim() noexcept { return sim_; }
  net::Network& network() noexcept { return network_; }
  ServiceRegistry& registry() noexcept { return registry_; }
  const ClusterConfig& config() const noexcept { return config_; }

 private:
  sim::Simulator& sim_;
  ClusterConfig config_;
  net::Network network_;
  ServiceRegistry registry_;
  net::LocationId fabric_;
  std::map<std::string, NodeInfo> nodes_;
  std::vector<std::unique_ptr<Pod>> pods_;
  std::uint8_t next_node_index_ = 0;
};

}  // namespace meshnet::cluster
