#pragma once

// Service discovery state: named services, each with a port and a set of
// endpoints (pods). This is the cluster's "DNS + Endpoints" store; the
// mesh control plane watches it (by version number) and pushes endpoint
// updates to sidecars, the way Istio's pilot consumes the Kubernetes API.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"

namespace meshnet::cluster {

struct Endpoint {
  std::string pod_name;
  net::IpAddress ip = net::kNoAddress;
  net::Port port = 0;
  /// Free-form labels; the priority-subset router selects on these
  /// (e.g. {"priority", "high"}).
  std::map<std::string, std::string> labels;

  std::string label_or(const std::string& key, const std::string& fb) const {
    const auto it = labels.find(key);
    return it == labels.end() ? fb : it->second;
  }
};

struct ServiceInfo {
  std::string name;
  net::Port port = 0;
  std::vector<Endpoint> endpoints;
};

class ServiceRegistry {
 public:
  /// Declares a service; idempotent (port is updated).
  void register_service(const std::string& name, net::Port port);

  /// Adds (or replaces, by pod name) an endpoint. The service is created
  /// implicitly if unknown.
  void add_endpoint(const std::string& service, Endpoint endpoint);

  /// Removes an endpoint by pod name; returns true if one was removed.
  bool remove_endpoint(const std::string& service,
                       const std::string& pod_name);

  const ServiceInfo* find(const std::string& service) const;

  /// All services, sorted by name.
  std::vector<const ServiceInfo*> services() const;

  /// Monotonically increasing; bumped by every mutation. Control planes
  /// poll this to decide when to push.
  std::uint64_t version() const noexcept { return version_; }

  /// Fires after every version bump with the new version. The control
  /// plane uses this to timestamp discovery churn (staleness accounting)
  /// even while it is crashed — the watch channel is the cluster's, not
  /// the control plane's. One listener; set empty to clear.
  void set_change_listener(std::function<void(std::uint64_t version)> fn) {
    change_listener_ = std::move(fn);
  }

 private:
  void bump_version();

  std::map<std::string, ServiceInfo> services_;
  std::uint64_t version_ = 0;
  std::function<void(std::uint64_t)> change_listener_;
};

}  // namespace meshnet::cluster
