#include "cluster/topology_gen.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/random.h"

namespace meshnet::cluster {

GenTopology generate_layered_fanout(const FanoutSpec& spec,
                                    std::uint64_t seed) {
  if (spec.layer_widths.empty()) {
    throw std::invalid_argument("generate_layered_fanout: no layers");
  }
  for (int width : spec.layer_widths) {
    if (width < 1) {
      throw std::invalid_argument("generate_layered_fanout: empty layer");
    }
  }
  if (spec.fanout < 1) {
    throw std::invalid_argument("generate_layered_fanout: fanout < 1");
  }
  if (spec.min_edge_latency < 1 ||
      spec.max_edge_latency < spec.min_edge_latency) {
    // Zero-latency edges would make the parallel engine's lookahead
    // window empty; the generator refuses to produce them.
    throw std::invalid_argument(
        "generate_layered_fanout: edge latency band must be >= 1 ns");
  }

  GenTopology topology;
  // Wiring and latencies come from a single stream keyed only by the run
  // seed, so the generated graph is a pure function of (spec, seed).
  sim::RngStream rng(seed, "topo-gen");

  std::vector<int> layer_start;  // first service id of each layer
  int next_id = 0;
  for (std::size_t layer = 0; layer < spec.layer_widths.size(); ++layer) {
    layer_start.push_back(next_id);
    for (int i = 0; i < spec.layer_widths[layer]; ++i) {
      GenService service;
      service.id = next_id++;
      service.layer = static_cast<int>(layer);
      topology.services.push_back(std::move(service));
    }
  }

  const auto draw_latency = [&]() -> sim::Duration {
    return static_cast<sim::Duration>(rng.uniform_int(
        static_cast<std::uint64_t>(spec.min_edge_latency),
        static_cast<std::uint64_t>(spec.max_edge_latency)));
  };

  std::vector<int> candidates;
  for (std::size_t layer = 0; layer + 1 < spec.layer_widths.size(); ++layer) {
    const int child_base = layer_start[layer + 1];
    const int child_count = spec.layer_widths[layer + 1];
    const int picks = std::min(spec.fanout, child_count);
    for (int i = 0; i < spec.layer_widths[layer]; ++i) {
      const int parent = layer_start[layer] + i;
      candidates.resize(static_cast<std::size_t>(child_count));
      std::iota(candidates.begin(), candidates.end(), child_base);
      // Partial Fisher-Yates: the first `picks` entries become a uniform
      // distinct sample, consuming a deterministic number of draws.
      for (int k = 0; k < picks; ++k) {
        const auto j = static_cast<int>(rng.uniform_int(
            static_cast<std::uint64_t>(k),
            static_cast<std::uint64_t>(child_count - 1)));
        std::swap(candidates[static_cast<std::size_t>(k)],
                  candidates[static_cast<std::size_t>(j)]);
      }
      // Sorted children: the call order a service fans out in is part of
      // the topology, not an artifact of the sampling walk.
      std::sort(candidates.begin(), candidates.begin() + picks);
      for (int k = 0; k < picks; ++k) {
        GenEdge edge;
        edge.from = parent;
        edge.to = candidates[static_cast<std::size_t>(k)];
        edge.latency = draw_latency();
        edge.rate_bps = spec.edge_rate_bps;
        topology.services[static_cast<std::size_t>(parent)].out_edges.push_back(
            static_cast<int>(topology.edges.size()));
        topology.edges.push_back(edge);
      }
    }
  }
  return topology;
}

TopologyPartition partition_topology(const GenTopology& topology,
                                     int shards) {
  if (shards < 1) shards = 1;
  const int n = topology.service_count();
  shards = std::min(shards, std::max(n, 1));

  // Weight = 1 + in-degree: a service's event volume scales with the
  // requests arriving at it, and every service costs at least its own
  // bookkeeping.
  std::vector<std::uint64_t> weight(static_cast<std::size_t>(n), 1);
  for (const GenEdge& edge : topology.edges) {
    ++weight[static_cast<std::size_t>(edge.to)];
  }
  const std::uint64_t total =
      std::accumulate(weight.begin(), weight.end(), std::uint64_t{0});

  TopologyPartition partition;
  partition.shards = shards;
  partition.shard_of.resize(static_cast<std::size_t>(n), 0);
  // Contiguous blocks in id order (ids follow layers, so a block is a
  // band of adjacent layers/slices): service i goes to the shard its
  // weight midpoint falls into. Deterministic, and keeps heavy fan-in
  // layers spread across shards instead of piling into the last one.
  std::uint64_t prefix = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t midpoint = prefix + weight[static_cast<std::size_t>(i)] / 2;
    const auto shard = static_cast<int>(
        (midpoint * static_cast<std::uint64_t>(shards)) / std::max<std::uint64_t>(total, 1));
    partition.shard_of[static_cast<std::size_t>(i)] = std::min(shard, shards - 1);
    prefix += weight[static_cast<std::size_t>(i)];
  }

  sim::Duration cut_min = 0;
  sim::Duration all_min = 0;
  for (const GenEdge& edge : topology.edges) {
    if (all_min == 0 || edge.latency < all_min) all_min = edge.latency;
    if (partition.shard_of[static_cast<std::size_t>(edge.from)] !=
        partition.shard_of[static_cast<std::size_t>(edge.to)]) {
      ++partition.cut_edges;
      if (cut_min == 0 || edge.latency < cut_min) cut_min = edge.latency;
    }
  }
  if (partition.cut_edges > 0) {
    partition.lookahead = cut_min;
  } else if (all_min > 0) {
    partition.lookahead = all_min;
  } else {
    partition.lookahead = 1;  // no edges at all; any positive window works
  }
  return partition;
}

}  // namespace meshnet::cluster
