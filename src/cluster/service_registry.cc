#include "cluster/service_registry.h"

#include <algorithm>

namespace meshnet::cluster {

void ServiceRegistry::bump_version() {
  ++version_;
  if (change_listener_) change_listener_(version_);
}

void ServiceRegistry::register_service(const std::string& name,
                                       net::Port port) {
  ServiceInfo& info = services_[name];
  info.name = name;
  info.port = port;
  bump_version();
}

void ServiceRegistry::add_endpoint(const std::string& service,
                                   Endpoint endpoint) {
  ServiceInfo& info = services_[service];
  if (info.name.empty()) info.name = service;
  if (info.port == 0) info.port = endpoint.port;
  const auto it = std::find_if(info.endpoints.begin(), info.endpoints.end(),
                               [&](const Endpoint& e) {
                                 return e.pod_name == endpoint.pod_name;
                               });
  if (it != info.endpoints.end()) {
    *it = std::move(endpoint);
  } else {
    info.endpoints.push_back(std::move(endpoint));
  }
  bump_version();
}

bool ServiceRegistry::remove_endpoint(const std::string& service,
                                      const std::string& pod_name) {
  const auto sit = services_.find(service);
  if (sit == services_.end()) return false;
  auto& eps = sit->second.endpoints;
  const auto before = eps.size();
  eps.erase(std::remove_if(
                eps.begin(), eps.end(),
                [&](const Endpoint& e) { return e.pod_name == pod_name; }),
            eps.end());
  if (eps.size() != before) {
    bump_version();
    return true;
  }
  return false;
}

const ServiceInfo* ServiceRegistry::find(const std::string& service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<const ServiceInfo*> ServiceRegistry::services() const {
  std::vector<const ServiceInfo*> out;
  out.reserve(services_.size());
  for (const auto& [name, info] : services_) out.push_back(&info);
  return out;
}

}  // namespace meshnet::cluster
