#include "cluster/cluster.h"

#include <utility>

#include "util/logging.h"

namespace meshnet::cluster {

Pod::Pod(Cluster& cluster, std::string name, std::string service,
         net::IpAddress ip, net::LocationId location, net::Link* egress,
         net::Link* ingress)
    : name_(std::move(name)),
      service_(std::move(service)),
      ip_(ip),
      location_(location),
      egress_(egress),
      ingress_(ingress),
      transport_(std::make_unique<transport::TransportHost>(
          cluster.sim(), cluster.network(), ip)) {}

Cluster::Cluster(sim::Simulator& sim, ClusterConfig config)
    : sim_(sim), config_(config), network_(sim) {
  network_.set_loopback_delay(config_.loopback_delay);
  fabric_ = network_.add_location("fabric");
}

NodeInfo& Cluster::add_node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) return it->second;
  NodeInfo info;
  info.name = name;
  info.index = next_node_index_++;
  info.bridge = network_.add_location("node:" + name);
  network_.add_link(info.bridge, fabric_, config_.node_uplink_bps,
                    config_.node_uplink_delay,
                    std::make_unique<net::FifoQdisc>(config_.vnic_queue_bytes),
                    "uplink:" + name + ":fwd");
  network_.add_link(fabric_, info.bridge, config_.node_uplink_bps,
                    config_.node_uplink_delay,
                    std::make_unique<net::FifoQdisc>(config_.vnic_queue_bytes),
                    "uplink:" + name + ":rev");
  return nodes_.emplace(name, std::move(info)).first->second;
}

Pod& Cluster::add_pod(const std::string& node, const std::string& pod_name,
                      const std::string& service, net::Port service_port,
                      PodOptions options) {
  NodeInfo& n = add_node(node);
  const net::IpAddress ip = net::make_ip(10, 244, n.index, n.next_pod_ip++);
  const net::LocationId loc = network_.add_location("pod:" + pod_name);
  const double bps =
      options.link_bps > 0.0 ? options.link_bps : config_.default_link_bps;
  const sim::Duration delay = options.link_delay >= 0
                                  ? options.link_delay
                                  : config_.default_link_delay;
  net::Link& egress = network_.add_link(
      loc, n.bridge, bps, delay,
      std::make_unique<net::FifoQdisc>(config_.vnic_queue_bytes),
      "vnic:" + pod_name + ":egress");
  net::Link& ingress = network_.add_link(
      n.bridge, loc, bps, delay,
      std::make_unique<net::FifoQdisc>(config_.vnic_queue_bytes),
      "vnic:" + pod_name + ":ingress");
  network_.attach_interface(ip, loc, pod_name);
  auto pod = std::make_unique<Pod>(*this, pod_name, service, ip, loc,
                                   &egress, &ingress);
  Pod& ref = *pod;
  ref.service_port_ = service_port;
  ref.labels_ = std::move(options.labels);
  pods_.push_back(std::move(pod));

  if (!service.empty() && service_port != 0) {
    Endpoint ep;
    ep.pod_name = pod_name;
    ep.ip = ip;
    ep.port = service_port;
    ep.labels = ref.labels_;
    registry_.add_endpoint(service, std::move(ep));
  }
  MESHNET_DEBUG() << "pod " << pod_name << " @ " << net::ip_to_string(ip)
                  << " on node " << node;
  return ref;
}

Pod* Cluster::find_pod(const std::string& name) {
  for (const auto& pod : pods_) {
    if (pod->name() == name) return pod.get();
  }
  return nullptr;
}

bool Cluster::crash_pod(const std::string& name) {
  Pod* pod = find_pod(name);
  if (pod == nullptr || !pod->running_) return false;
  pod->running_ = false;
  pod->egress_link().set_up(false);
  pod->ingress_link().set_up(false);
  MESHNET_DEBUG() << "pod " << name << " crashed";
  return true;
}

bool Cluster::deregister_pod(const std::string& name) {
  Pod* pod = find_pod(name);
  if (pod == nullptr || pod->service().empty()) return false;
  return registry_.remove_endpoint(pod->service(), name);
}

bool Cluster::restart_pod(const std::string& name) {
  Pod* pod = find_pod(name);
  if (pod == nullptr || pod->running_) return false;
  pod->running_ = true;
  pod->egress_link().set_up(true);
  pod->ingress_link().set_up(true);
  if (!pod->service().empty() && pod->service_port_ != 0) {
    Endpoint ep;
    ep.pod_name = name;
    ep.ip = pod->ip();
    ep.port = pod->service_port_;
    ep.labels = pod->labels_;
    registry_.add_endpoint(pod->service(), std::move(ep));
  }
  MESHNET_DEBUG() << "pod " << name << " restarted";
  return true;
}

}  // namespace meshnet::cluster
