#pragma once

// Parameterized mesh topology generation + shard partitioning.
//
// ROADMAP item 1 frames the scale problem as "thousands of services";
// the bookinfo e-library is six. This generator builds layered fan-out
// DAGs — the canonical microservice call pattern: a thin edge layer
// fanning out through aggregation layers to wide leaf layers — with
// seeded, reproducible wiring. The partitioner cuts a generated topology
// into shards for the parallel engine (sim/parallel.h) and computes the
// conservative lookahead (the minimum latency over cut edges) that
// bounds how far shards may run between barriers.
//
// Edge latencies are a pure function of (spec, seed, edge), NEVER of the
// partition: the same topology simulated with 1 shard or 8 must behave
// identically — partitioning may only change synchronization granularity
// and wall-clock, not semantics.

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace meshnet::cluster {

/// Spec for a layered fan-out DAG. layer_widths[0] services are roots
/// (traffic sources); the last layer's services are leaves.
struct FanoutSpec {
  std::vector<int> layer_widths;  ///< services per layer, front = roots
  int fanout = 3;                 ///< children sampled per service
  /// Inter-service latency band: each edge draws a latency in
  /// [min_edge_latency, max_edge_latency] from the topology stream.
  sim::Duration min_edge_latency = sim::milliseconds(1);
  sim::Duration max_edge_latency = sim::milliseconds(2);
  double edge_rate_bps = 10e9;  ///< serialization rate per edge
};

struct GenEdge {
  int from = 0;
  int to = 0;
  sim::Duration latency = 0;  ///< propagation delay (lookahead metadata)
  double rate_bps = 0.0;
};

struct GenService {
  int id = 0;
  int layer = 0;
  std::vector<int> out_edges;  ///< indices into GenTopology::edges
};

struct GenTopology {
  std::vector<GenService> services;
  std::vector<GenEdge> edges;

  int service_count() const noexcept {
    return static_cast<int>(services.size());
  }
};

/// Builds the DAG: every service in layer k picks `fanout` distinct
/// children in layer k+1 (all of them when the next layer is narrower
/// than the fanout), seeded so the same (spec, seed) always yields the
/// same wiring and latencies.
GenTopology generate_layered_fanout(const FanoutSpec& spec,
                                    std::uint64_t seed);

struct TopologyPartition {
  std::vector<int> shard_of;  ///< service id -> shard index
  int shards = 1;
  int cut_edges = 0;  ///< edges whose endpoints land on different shards
  /// min latency over cut edges — the engine's conservative lookahead.
  /// When no edge is cut (1 shard), this is the min over all edges so a
  /// single-shard engine still gets a valid window.
  sim::Duration lookahead = 0;
};

/// Weight-balanced contiguous partition: services are walked in id order
/// (so layers stay roughly contiguous) and split into `shards` blocks of
/// approximately equal traffic weight, where a service's weight is
/// 1 + in-degree (a proxy for the events it will execute). Deterministic.
TopologyPartition partition_topology(const GenTopology& topology,
                                     int shards);

}  // namespace meshnet::cluster
