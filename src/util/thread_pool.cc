#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace meshnet::util {

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> error_lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace meshnet::util
