#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace meshnet::util {

WorkerBudget& WorkerBudget::global() {
  static WorkerBudget budget;
  return budget;
}

void WorkerBudget::set_limit(int workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  limit_ = workers < 0 ? 0 : workers;
}

int WorkerBudget::limit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limit_ > 0) return limit_;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

int WorkerBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

int WorkerBudget::acquire(int requested, int minimum) {
  if (requested < 0) requested = 0;
  if (minimum < 0) minimum = 0;
  if (minimum > requested) requested = minimum;
  std::lock_guard<std::mutex> lock(mutex_);
  const int cap =
      limit_ > 0
          ? limit_
          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int available = std::max(0, cap - in_use_);
  const int granted = std::max(minimum, std::min(requested, available));
  in_use_ += granted;
  return granted;
}

void WorkerBudget::release(int granted) {
  if (granted <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ = std::max(0, in_use_ - granted);
}

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_thread_count(threads);
  // Register (never clamp): a pool's size is the caller's explicit
  // request; the budget makes it visible so nested engines yield.
  budget_granted_ = WorkerBudget::global().acquire(count, count);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  WorkerBudget::global().release(budget_granted_);
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> error_lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace meshnet::util
