#include "util/flags.h"

#include <cstdlib>

#include "util/strings.h"

namespace meshnet::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean "--name".
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::optional<std::string> Flags::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(std::string_view name,
                          std::string_view fallback) const {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

std::int64_t Flags::get_int_or(std::string_view name,
                               std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

double Flags::get_double_or(std::string_view name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool Flags::get_bool_or(std::string_view name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

}  // namespace meshnet::util
