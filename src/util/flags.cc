#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace meshnet::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      // "--name value" when the next token is not itself a flag.
      name = std::string(arg);
      value = argv[i + 1];
      ++i;
    } else {
      // Bare boolean "--name".
      name = std::string(arg);
      value = "true";
    }
    auto [it, inserted] = flags.values_.emplace(name, value);
    if (!inserted) {
      it->second = value;  // later duplicate wins, but is recorded
      if (std::find(flags.duplicates_.begin(), flags.duplicates_.end(),
                    name) == flags.duplicates_.end()) {
        flags.duplicates_.push_back(name);
      }
    }
  }
  return flags;
}

Flags Flags::parse_or_die(int argc, const char* const* argv,
                          const std::vector<std::string_view>& known,
                          const std::vector<std::string_view>& known_prefixes) {
  Flags flags = parse(argc, argv);
  const std::string error = flags.validate(known, known_prefixes);
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "flags",
                 error.c_str());
    std::string list;
    for (const std::string_view name : known) {
      list += list.empty() ? "--" : ", --";
      list += name;
    }
    std::fprintf(stderr, "known flags: %s\n", list.c_str());
    std::exit(2);
  }
  return flags;
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::optional<std::string> Flags::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(std::string_view name,
                          std::string_view fallback) const {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

std::int64_t Flags::get_int_or(std::string_view name,
                               std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

double Flags::get_double_or(std::string_view name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool Flags::get_bool_or(std::string_view name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> Flags::unknown(
    const std::vector<std::string_view>& known,
    const std::vector<std::string_view>& known_prefixes) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    const bool prefixed = std::any_of(
        known_prefixes.begin(), known_prefixes.end(),
        [&name = name](std::string_view prefix) {
          return starts_with(name, prefix);
        });
    if (!prefixed) out.push_back(name);
  }
  return out;
}

std::string Flags::validate(
    const std::vector<std::string_view>& known,
    const std::vector<std::string_view>& known_prefixes) const {
  std::string error;
  for (const std::string& name : unknown(known, known_prefixes)) {
    if (!error.empty()) error += "; ";
    error += "unknown flag --" + name;
  }
  for (const std::string& name : duplicates_) {
    if (!error.empty()) error += "; ";
    error += "duplicate flag --" + name;
  }
  return error;
}

}  // namespace meshnet::util
