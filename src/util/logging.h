#pragma once

// Lightweight leveled logging for the meshnet library.
//
// The simulator is single-threaded, so the logger keeps no locks. Log lines
// are written to stderr so bench/table output on stdout stays machine-
// parseable. The active level is a process-wide setting; the default (kWarn)
// keeps test and bench output quiet.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace meshnet::util {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the process-wide minimum level that will be emitted.
LogLevel log_level() noexcept;

/// Sets the process-wide minimum level. Not thread-safe (the simulator is
/// single-threaded by design).
void set_log_level(LogLevel level) noexcept;

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kWarn on
/// unrecognized input.
LogLevel parse_log_level(std::string_view text) noexcept;

std::string_view log_level_name(LogLevel level) noexcept;

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace meshnet::util

#define MESHNET_LOG(level)                                            \
  if (::meshnet::util::log_level() <= (level))                        \
  ::meshnet::util::detail::LogLine((level), __FILE__, __LINE__)

#define MESHNET_TRACE() MESHNET_LOG(::meshnet::util::LogLevel::kTrace)
#define MESHNET_DEBUG() MESHNET_LOG(::meshnet::util::LogLevel::kDebug)
#define MESHNET_INFO() MESHNET_LOG(::meshnet::util::LogLevel::kInfo)
#define MESHNET_WARN() MESHNET_LOG(::meshnet::util::LogLevel::kWarn)
#define MESHNET_ERROR() MESHNET_LOG(::meshnet::util::LogLevel::kError)
