#pragma once

// Tiny command-line flag parser used by the examples and bench binaries.
//
// Supports "--name=value", "--name value", and boolean "--name". Unknown
// flags are collected so callers can decide whether to reject them (bench
// binaries must tolerate google-benchmark's own flags).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace meshnet::util {

class Flags {
 public:
  /// Parses argv (excluding argv[0]). Later duplicates override earlier ones.
  static Flags parse(int argc, const char* const* argv);

  bool has(std::string_view name) const;

  /// Returns the raw string value, or nullopt when absent.
  std::optional<std::string> get(std::string_view name) const;

  std::string get_or(std::string_view name, std::string_view fallback) const;
  std::int64_t get_int_or(std::string_view name, std::int64_t fallback) const;
  double get_double_or(std::string_view name, double fallback) const;
  bool get_bool_or(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace meshnet::util
