#pragma once

// Tiny command-line flag parser used by the examples and bench binaries.
//
// Supports "--name=value", "--name value", and boolean "--name". Parsing
// never fails, but problems are *recorded* instead of silently ignored:
// duplicate occurrences land in duplicates(), and validate()/parse_or_die()
// reject flags outside a binary's declared set — a typo like
// `--thread=8` must abort the run, not silently sweep with defaults.
// Binaries that embed other flag-parsing libraries (google-benchmark)
// whitelist those by prefix.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace meshnet::util {

class Flags {
 public:
  /// Parses argv (excluding argv[0]). Later duplicates override earlier
  /// ones; every duplicated name is also recorded in duplicates().
  static Flags parse(int argc, const char* const* argv);

  /// parse() + validate(); on any error prints the message and the known
  /// flag list to stderr and exits with status 2.
  static Flags parse_or_die(int argc, const char* const* argv,
                            const std::vector<std::string_view>& known,
                            const std::vector<std::string_view>&
                                known_prefixes = {});

  bool has(std::string_view name) const;

  /// Returns the raw string value, or nullopt when absent.
  std::optional<std::string> get(std::string_view name) const;

  std::string get_or(std::string_view name, std::string_view fallback) const;
  std::int64_t get_int_or(std::string_view name, std::int64_t fallback) const;
  double get_double_or(std::string_view name, double fallback) const;
  bool get_bool_or(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flag names that appeared more than once, in first-repeat order.
  const std::vector<std::string>& duplicates() const { return duplicates_; }

  /// Parsed flags not in `known` and not matching any of `known_prefixes`.
  std::vector<std::string> unknown(
      const std::vector<std::string_view>& known,
      const std::vector<std::string_view>& known_prefixes = {}) const;

  /// Human-readable description of every problem (unknown flags given the
  /// declared set, plus duplicates). Empty string when the command line is
  /// clean.
  std::string validate(const std::vector<std::string_view>& known,
                       const std::vector<std::string_view>& known_prefixes =
                           {}) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> duplicates_;
};

}  // namespace meshnet::util
