#pragma once

// Minimal dependency-free JSON document: build, serialize, parse.
//
// Only what the bench pipeline needs — objects keep insertion order (so
// emitted reports have a stable, diffable field order), numbers round-trip
// exactly (%.17g), and the parser accepts exactly what dump() emits plus
// ordinary hand-written JSON (no comments, no trailing commas).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meshnet::util {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(std::int64_t value) : Json(static_cast<double>(value)) {}
  Json(std::uint64_t value) : Json(static_cast<double>(value)) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(std::string_view value) : Json(std::string(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }

  /// Array append; no-op unless this is an array.
  void push_back(Json value);

  /// Object insert/overwrite, preserving first-insertion order.
  void set(std::string_view key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  double number_or(double fallback) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  bool bool_or(bool fallback) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  const std::string& string_or(const std::string& fallback) const {
    return kind_ == Kind::kString ? string_ : fallback;
  }

  const std::vector<Json>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }

  /// Serializes. `indent` < 0 renders compact; otherwise pretty-printed
  /// with that many spaces per level and a trailing newline at top level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document. On failure returns nullopt and, if
  /// `error` is non-null, stores a message with the byte offset.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace meshnet::util
