#include "util/logging.h"

namespace meshnet::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() noexcept { return g_level; }

void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel parse_log_level(std::string_view text) noexcept {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view file, int line) {
  // Trim the path down to the basename for readability.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  stream_ << "[" << log_level_name(level) << " " << file << ":" << line
          << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  std::cerr << stream_.str();
}

}  // namespace detail

}  // namespace meshnet::util
