#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace meshnet::util {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  // Integers within the double-exact range print without a fraction so
  // counters stay greppable; everything else round-trips via %.17g.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    std::optional<Json> value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const char* message) {
    if (error_ && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Json(true);
        break;
      case 'f':
        if (consume_literal("false")) return Json(false);
        break;
      case 'n':
        if (consume_literal("null")) return Json();
        break;
      default:
        return parse_number();
    }
    fail("invalid value");
    return std::nullopt;
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json object = Json::object();
    skip_ws();
    if (consume('}')) return object;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      skip_ws();
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      object.set(*key, std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return object;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json array = Json::array();
    skip_ws();
    if (consume(']')) return array;
    for (;;) {
      skip_ws();
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return array;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the bench pipeline
          // never emits non-BMP text).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      fail("invalid number");
      return std::nullopt;
    }
    return Json(value);
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) return;
  items_.push_back(std::move(value));
}

void Json::set(std::string_view key, Json value) {
  if (kind_ != Kind::kObject) return;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      append_number(out, number_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

}  // namespace meshnet::util
