#pragma once

// Small string utilities shared across modules. Nothing here allocates
// unless the return type is a std::string/vector.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace meshnet::util {

/// Case-insensitive ASCII comparison (HTTP header names, header values such
/// as "Keep-Alive"). Non-ASCII bytes are compared verbatim.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Lowercases ASCII letters in place and returns the result.
std::string to_lower(std::string_view s);

/// Removes leading/trailing ASCII whitespace (SP, HTAB, CR, LF).
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` begins with `prefix` (case-sensitive).
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Parses a non-negative decimal integer; rejects empty input, signs,
/// non-digits, and overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Formats a byte count with binary-ish human units ("512 B", "1.5 KB").
std::string format_bytes(std::uint64_t bytes);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace meshnet::util
