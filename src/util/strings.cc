#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace meshnet::util {

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

constexpr char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKb = 1024;
  constexpr std::uint64_t kMb = kKb * 1024;
  constexpr std::uint64_t kGb = kMb * 1024;
  char buf[64];
  if (bytes >= kGb) {
    std::snprintf(buf, sizeof buf, "%.2f GB",
                  static_cast<double>(bytes) / static_cast<double>(kGb));
  } else if (bytes >= kMb) {
    std::snprintf(buf, sizeof buf, "%.2f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMb));
  } else if (bytes >= kKb) {
    std::snprintf(buf, sizeof buf, "%.2f KB",
                  static_cast<double>(bytes) / static_cast<double>(kKb));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace meshnet::util
