#pragma once

// Fixed-size worker pool for fanning independent jobs across threads.
//
// The pool is deliberately minimal: submit() enqueues a job, wait_idle()
// blocks until every submitted job has finished. Jobs must be independent
// (the pool gives no ordering guarantees between them); anything that needs
// a deterministic result must derive it from the job's *inputs*, not from
// scheduling — which is exactly the contract workload::SweepRunner builds
// on. A job that throws stores the first exception, which wait_idle()
// rethrows on the caller's thread.

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meshnet::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 are clamped to 1, and 0 means
  /// "one per hardware thread" (at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including from inside
  /// a running job.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle. Rethrows
  /// the first exception any job raised since the last wait_idle().
  void wait_idle();

  int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// The worker count a `threads` option resolves to (0 => hardware).
  static int resolve_thread_count(int requested);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace meshnet::util
