#pragma once

// Fixed-size worker pool for fanning independent jobs across threads.
//
// The pool is deliberately minimal: submit() enqueues a job, wait_idle()
// blocks until every submitted job has finished. Jobs must be independent
// (the pool gives no ordering guarantees between them); anything that needs
// a deterministic result must derive it from the job's *inputs*, not from
// scheduling — which is exactly the contract workload::SweepRunner builds
// on. A job that throws stores the first exception, which wait_idle()
// rethrows on the caller's thread.

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meshnet::util {

/// Process-wide accounting of worker threads, shared by every layer that
/// spawns parallelism, so nested parallel layers do not oversubscribe the
/// host. The failure mode this exists for: `sweep_runner --threads N`
/// fans sweep points across a ThreadPool, and each point internally
/// builds a multi-shard sim::ParallelEngine — without a shared budget
/// that spawns N*M threads on an N-core box and everything thrashes.
///
/// Protocol:
///  * Top-level pools (the user's explicit --threads choice) REGISTER
///    their workers via acquire(n, n): they are never clamped, they just
///    make their concurrency visible.
///  * Nested engines acquire their *extra* workers with acquire(m, 0)
///    and run with whatever was granted. Clamping is always safe for
///    them because engine results are thread-count-invariant by design;
///    only wall-clock changes.
///
/// The limit defaults to the hardware thread count; release() must return
/// exactly what acquire() granted.
class WorkerBudget {
 public:
  /// The process-wide instance every pool/engine shares.
  static WorkerBudget& global();

  WorkerBudget() = default;
  WorkerBudget(const WorkerBudget&) = delete;
  WorkerBudget& operator=(const WorkerBudget&) = delete;

  /// Sets the total worker limit (0 = hardware concurrency, the default).
  void set_limit(int workers);
  int limit() const;

  /// Workers currently registered/granted.
  int in_use() const;

  /// Grants between `minimum` and `requested` workers, never pushing
  /// in_use above the limit unless `minimum` itself requires it (a
  /// caller that must make progress — e.g. a pool needing one worker —
  /// may exceed the limit by its minimum). Returns the grant, which the
  /// caller must eventually release().
  int acquire(int requested, int minimum);

  void release(int granted);

 private:
  mutable std::mutex mutex_;
  int limit_ = 0;  ///< 0 = hardware concurrency
  int in_use_ = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 are clamped to 1, and 0 means
  /// "one per hardware thread" (at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including from inside
  /// a running job.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle. Rethrows
  /// the first exception any job raised since the last wait_idle().
  void wait_idle();

  int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// The worker count a `threads` option resolves to (0 => hardware).
  static int resolve_thread_count(int requested);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
  int budget_granted_ = 0;  ///< registered with WorkerBudget::global()
};

}  // namespace meshnet::util
