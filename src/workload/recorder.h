#pragma once

// Latency recording with wrk2 methodology: each request's latency is
// measured from its *scheduled* (intended) send time, not from when the
// client actually got around to sending it, so queueing inside the client
// is charged to the system under test (no coordinated omission). Samples
// are only counted inside the [measure_start, measure_end) window, which
// excludes warm-up and cool-down as the paper does.

#include <cstdint>

#include "sim/time.h"
#include "stats/histogram.h"

namespace meshnet::workload {

class LatencyRecorder {
 public:
  LatencyRecorder(sim::Time measure_start, sim::Time measure_end);

  /// Records one completed request. `scheduled` is the intended send
  /// time; `completed` is when the full response arrived.
  void record(sim::Time scheduled, sim::Time completed, bool success);

  std::uint64_t count() const noexcept { return histogram_.count(); }
  std::uint64_t errors() const noexcept { return errors_; }

  double percentile_ms(double p) const {
    return sim::to_milliseconds(
        static_cast<sim::Duration>(histogram_.percentile(p)));
  }
  double p50_ms() const { return percentile_ms(50.0); }
  double p90_ms() const { return percentile_ms(90.0); }
  double p99_ms() const { return percentile_ms(99.0); }
  double mean_ms() const {
    return histogram_.mean() / static_cast<double>(sim::kMillisecond);
  }
  double max_ms() const {
    return sim::to_milliseconds(static_cast<sim::Duration>(histogram_.max()));
  }

  /// Completed-request throughput over the measurement window.
  double throughput_rps() const;

  const stats::LogHistogram& histogram() const noexcept { return histogram_; }

  sim::Time measure_start() const noexcept { return measure_start_; }
  sim::Time measure_end() const noexcept { return measure_end_; }

 private:
  sim::Time measure_start_;
  sim::Time measure_end_;
  stats::LogHistogram histogram_{7};
  std::uint64_t errors_ = 0;
};

}  // namespace meshnet::workload
