#pragma once

// The MESHSCALE experiment: N generated services built declaratively
// (cluster::MeshSpec -> MeshBuilder) and driven end to end — gateway,
// sidecars, apps, control plane — on the sharded parallel engine.
//
// Where PARSIM strips the mesh away to benchmark the engine, MESHSCALE
// keeps the whole stack and asks the control-plane scaling question from
// ROADMAP item 1: what does it cost to keep N services' sidecars
// configured as the mesh grows, and how much of that cost do delta
// (xDS-style incremental) pushes, cluster scoping and deterministic
// endpoint subsetting remove?
//
// Shape: `cells` independent replicas of one N-service layered fan-out
// mesh, one cell per engine shard. Cells never exchange messages — each
// is a complete mesh with its own control plane and ingress gateway — so
// for a fixed cell count the run is bit-identical at every engine thread
// count (the same guarantee PARSIM earns with cut edges, earned here by
// construction). Cells differ only in their arrival streams; together
// they model independent availability zones running the same topology.
//
// Mid-run, one replica of the last (leaf) service is crashed and
// deregistered, then restored: single-endpoint churn, the dominant
// config-push trigger in production meshes. The experiment samples the
// push channel's byte counters at the churn instant so the report can
// separate steady-state config cost from the marginal cost of one
// endpoint flapping — the number the delta-push comparison is about.
//
// Determinism rules (same spirit as PARSIM):
//   * every request carries a workload-assigned fixed-format
//     x-request-id, so the sidecars' thread_local fallback id generator
//     is never consulted;
//   * per-visit app think time is a hash of (seed, cell, service, path),
//     not a draw from a shared stream;
//   * each cell's arrival process owns a named RNG stream.

#include <cstdint>

#include "mesh/control_plane.h"
#include "obs/metric_registry.h"
#include "sim/parallel.h"
#include "sim/time.h"
#include "stats/histogram.h"

namespace meshnet::workload {

struct MeshscaleConfig {
  int services = 50;   ///< generated services per cell (>= 4)
  int replicas = 2;    ///< pods per service
  int fanout = 2;      ///< call fan-out between layers
  int cells = 2;       ///< independent mesh replicas (= engine shards)
  int threads = 1;     ///< engine worker threads (0 = hardware concurrency)
  bool respect_worker_budget = true;

  std::uint64_t seed = 42;
  sim::Duration duration = sim::seconds(3);  ///< arrival window
  double root_rps = 20.0;  ///< Poisson arrival rate per root service

  /// Control-plane transport under test: incremental deltas vs full
  /// snapshots (everything else about the push channel is identical).
  bool delta_push = true;
  /// Compile each service's declared calls into a cluster scope (leaves
  /// get an empty scope, the gateway sees only the roots). Off = every
  /// sidecar sees every cluster, the legacy O(N^2) view.
  bool derive_scopes = false;
  /// Endpoint-subsetting aperture (0 = every subscriber tracks every
  /// endpoint). Only meaningful with replicas > subset_size.
  int subset_size = 0;

  /// Single-endpoint churn: crash + deregister one leaf replica at
  /// `churn_at`, restart it at `restore_at` (both must precede the end
  /// of the arrival window).
  bool churn = true;
  sim::Duration churn_at = sim::milliseconds(1200);
  sim::Duration restore_at = sim::milliseconds(1800);
  sim::Duration drain = sim::milliseconds(1500);  ///< post-window drain

  /// Per-visit app think-time window (hash-deterministic).
  sim::Duration compute_min = sim::microseconds(200);
  sim::Duration compute_max = sim::microseconds(800);
};

struct MeshscaleExperimentResult {
  // Workload surface — invariant across engine thread counts.
  std::uint64_t requests_generated = 0;
  std::uint64_t responses = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  /// Client send -> response, in MICROSECONDS (us-scale keeps the
  /// histogram's double accumulators exact; see parsim_experiment.cc).
  stats::LogHistogram e2e_latency{7};
  obs::MetricsSnapshot metrics;  ///< workload series only

  // Control-plane surface, summed over cells in cell order.
  std::uint64_t epochs = 0;     ///< final config epochs
  std::uint64_t cp_pushes = 0;  ///< pushes launched into the channel
  mesh::ControlPlane::PushChannelBytes bytes;        ///< whole run
  mesh::ControlPlane::PushChannelBytes churn_bytes;  ///< churn window only
  bool converged = false;  ///< every cell fully converged at the end
  /// Restore -> full reconvergence, worst cell (0 when churn is off).
  sim::Duration churn_convergence = 0;
  std::uint64_t sidecars = 0;
  /// Sum over sidecars of their config's endpoint-table entries; the
  /// state the scoping/subsetting knobs exist to bound.
  std::uint64_t endpoint_entries = 0;
  std::uint64_t max_endpoints_per_sidecar = 0;

  // Shape + engine surface (thread-invariant for a fixed cell count).
  int services = 0;
  int cells = 0;
  int executors = 1;
  std::uint64_t events_executed = 0;
  sim::ParallelEngineStats engine;
};

MeshscaleExperimentResult run_meshscale_experiment(
    const MeshscaleConfig& config);

}  // namespace meshnet::workload
