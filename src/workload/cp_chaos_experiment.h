#pragma once

// The CHAOS_CP experiment: a control-plane outage under pod churn on the
// e-library topology.
//
// The LS/LI workload mix runs while the control plane crashes for
// `outage_duration` (default 30 s). During the outage a churn storm
// alternately crashes and restarts the two reviews replicas, so the
// service registry keeps changing while nobody is pushing config: the
// data plane must serve stale-while-revalidate — last-good endpoints keep
// routing, active health checking (with flap damping) does the fast
// detection, and discovery staleness grows monotonically. When the
// control plane recovers it reconverges the mesh with paced, jittered
// pushes; the experiment measures LS goodput per phase, peak routing
// staleness during the outage, and time-to-reconverge after it.
//
// Two arms: outage on (the chaos run) and outage off (the control run the
// goodput ratio is normalized against). Acceptance: during-outage LS
// goodput >= 0.9x the no-outage arm, full reconvergence after recovery,
// zero lost sidecars.

#include <cstdint>
#include <string>
#include <vector>

#include "app/elibrary.h"
#include "faults/chaos.h"
#include "mesh/telemetry.h"
#include "workload/chaos_experiment.h"
#include "workload/elibrary_experiment.h"
#include "workload/generator.h"

namespace meshnet::workload {

struct CpChaosExperimentConfig {
  double ls_rps = 30.0;
  double li_rps = 10.0;

  sim::Duration warmup = sim::seconds(4);
  sim::Duration duration = sim::seconds(46);  ///< measured window
  sim::Duration cooldown = sim::seconds(4);
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;

  /// The experiment's arm switch: with `outage` off the control plane
  /// stays up the whole run (the normalization baseline).
  bool outage = true;
  /// Outage window, relative to the start of the measured window.
  sim::Duration outage_offset = sim::seconds(5);
  sim::Duration outage_duration = sim::seconds(30);

  /// Pod-churn storm during the outage: the two reviews replicas are
  /// alternately crashed and restarted every `churn_period`, so registry
  /// churn accumulates while the control plane cannot push.
  bool churn = true;
  sim::Duration churn_period = sim::seconds(4);

  /// End-to-end deadline at every sidecar (same rationale as CHAOS).
  sim::Duration request_timeout = sim::milliseconds(2500);

  /// Push-channel realism: non-zero latency/jitter so pushes are real
  /// simulated events, a tight ack timeout, paced reconvergence.
  sim::Duration push_latency_base = sim::milliseconds(2);
  sim::Duration push_latency_jitter = sim::milliseconds(3);
  sim::Duration ack_timeout = sim::milliseconds(200);
  sim::Duration reconverge_pacing = sim::milliseconds(25);
  double push_loss = 0.0;

  /// Short cert lifetime + refresh-ahead so rotation (and its push
  /// traffic) happens several times inside the run, including a forced
  /// re-issue at recovery.
  sim::Duration certificate_lifetime = sim::seconds(20);
  double cert_refresh_ahead = 0.25;

  /// Flap damping for the churn storm (see HealthCheckConfig). The
  /// threshold sits above what the alternating reviews churn produces
  /// (~5 transitions per 10 s window): the damper is armed as a safety
  /// valve against pathological flapping without suppressing the only
  /// replica capacity the storm leaves standing.
  std::uint32_t flap_max_transitions = 8;
  sim::Duration flap_window = sim::seconds(10);
  sim::Duration flap_penalty = sim::seconds(3);

  app::ElibraryOptions app;
};

struct CpChaosExperimentResult {
  PhaseSummary before;  ///< pre-outage
  PhaseSummary during;  ///< the outage window
  PhaseSummary after;   ///< post-recovery

  WorkloadSummary ls;  ///< whole measured window
  WorkloadSummary li;

  // Push-channel counters (mirrors of the cp_* registry series).
  std::uint64_t push_attempts = 0;
  std::uint64_t push_acks = 0;
  std::uint64_t push_nacks = 0;
  std::uint64_t push_retries = 0;
  std::uint64_t push_skipped_noop = 0;
  std::uint64_t push_dropped = 0;
  std::uint64_t config_rollbacks = 0;
  std::uint64_t cert_rotations = 0;

  std::uint64_t final_epoch = 0;
  std::uint64_t stale_sidecars_at_end = 0;
  bool converged = false;        ///< all sidecars on the final epoch
  double reconverge_ms = 0.0;    ///< recovery -> full convergence
  double max_staleness_ms = 0.0; ///< peak discovery staleness (sampled)

  std::uint64_t health_evictions = 0;
  std::uint64_t health_readmissions = 0;
  std::uint64_t flap_damps = 0;
  std::uint64_t upstream_retries = 0;
  std::uint64_t retries_denied_by_budget = 0;
  std::uint64_t panic_picks = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t upstream_failures = 0;

  /// Determinism witnesses: identical across runs with the same config.
  std::vector<faults::FaultLogEntry> fault_log;
  std::vector<mesh::MeshEvent> mesh_events;
  std::uint64_t events_executed = 0;
  sim::LoopStats loop_stats;
  obs::MetricsSnapshot metrics;
};

CpChaosExperimentResult run_cp_chaos_experiment(
    const CpChaosExperimentConfig& config);

/// The acceptance table: per-phase LS goodput for the outage and control
/// arms, the during-outage goodput ratio, staleness and reconvergence.
std::string format_cp_chaos_comparison(const CpChaosExperimentResult& outage,
                                       const CpChaosExperimentResult& control);

}  // namespace meshnet::workload
