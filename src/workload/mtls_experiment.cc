#include "workload/mtls_experiment.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "obs/engine_metrics.h"
#include "sim/simulator.h"

namespace meshnet::workload {

namespace {

void apply_mtls_policies(mesh::MeshPolicies& policies,
                         const MtlsExperimentConfig& config) {
  // Data-plane resilience, same stance as the chaos experiments: the
  // storm's reconnect wave is absorbed by health checking, breakers and
  // budgeted retries — identically across arms, so the measured deltas
  // are pure crypto cost.
  policies.retry.max_retries = 3;
  policies.retry.per_try_timeout = sim::milliseconds(500);
  policies.retry.backoff_jitter = true;
  policies.retry.backoff_max = sim::milliseconds(250);
  policies.retry.retry_budget = 0.5;
  policies.retry.retry_budget_min_concurrency = 20;
  policies.breaker.consecutive_failures = 5;
  policies.breaker.open_duration = sim::milliseconds(500);
  policies.health_check.enabled = true;
  policies.health_check.interval = sim::milliseconds(250);
  policies.health_check.timeout = sim::milliseconds(200);
  policies.health_check.unhealthy_threshold = 2;
  policies.health_check.healthy_threshold = 2;
  policies.request_timeout = config.request_timeout;
  // The arm switches.
  policies.tls.enabled = config.mtls;
  policies.tls.session_resumption = config.session_resumption;
  policies.mtls_overrides = config.mtls_overrides;
}

PhaseSummary summarize_mtls_phase(std::string name, const LatencyRecorder& rec,
                                  std::uint64_t scheduled) {
  PhaseSummary s;
  s.name = std::move(name);
  s.scheduled = scheduled;
  s.completed = rec.count();
  s.errors = rec.errors();
  const std::uint64_t finished = s.completed + s.errors;
  s.success_rate = finished == 0
                       ? 1.0
                       : static_cast<double>(s.completed) /
                             static_cast<double>(finished);
  s.goodput_rps = rec.throughput_rps();
  s.p50_ms = rec.p50_ms();
  s.p99_ms = rec.p99_ms();
  return s;
}

std::uint64_t counter_value(const obs::MetricRegistry& registry,
                            std::string_view name) {
  const obs::Counter* counter = registry.find_counter(name);
  return counter == nullptr ? 0 : counter->value();
}

}  // namespace

MtlsExperimentResult run_mtls_experiment(const MtlsExperimentConfig& config) {
  http::reset_request_id_counter();
  sim::Simulator sim;

  app::ElibraryOptions app_options = config.app;
  apply_mtls_policies(app_options.policies, config);

  app::Elibrary app(sim, app_options);
  app.control_plane().tracer().set_retention(0);
  mesh::ControlPlane& cp = app.control_plane();

  // Same hierarchical timeout budget as CHAOS_CP: the edge hop outlives
  // one full interior failover.
  cp.set_compile_mutator([](const std::string&, mesh::SidecarConfig& config) {
    if (config.gateway_mode) {
      config.retry.per_try_timeout = sim::milliseconds(1500);
      config.retry.max_retries = 1;
    }
  });
  cp.push_config();

  const sim::Time measure_start = config.warmup;
  const sim::Time measure_end = config.warmup + config.duration;
  const sim::Time traffic_end = measure_end + config.cooldown;
  const sim::Time storm_at = measure_start + config.storm_offset;

  // --- the handshake storm ------------------------------------------------
  faults::ChaosController chaos(sim, app.cluster(), config.seed);
  chaos.set_fault_hook([&](const faults::FaultLogEntry& entry) {
    cp.telemetry().record_event(
        entry.at, obs::EventKind::kFault, entry.target,
        std::string(faults::fault_action_name(entry.action)));
  });
  if (config.storm) {
    // Every service pod bounces at once: all in-mesh connections (and
    // their TLS sessions) die, and the entire mesh re-handshakes when
    // the pods return. Sidecar objects — and with them the clients'
    // ticket caches and the services' certificates — survive the
    // restart, which is exactly what makes resumption applicable.
    faults::FaultPlan plan;
    for (const char* pod : {"frontend-v1", "details-v1", "reviews-v1",
                            "reviews-v2", "ratings-v1"}) {
      plan.crash(storm_at, pod);
      plan.restart(storm_at + config.storm_restart_delay, pod);
      // A process restart loses TCP state: abort the pod's connections
      // so peers see RSTs and must reconnect (and re-handshake). The
      // restart entry is added first at the same timestamp, so the
      // links are back up when the RSTs go out.
      plan.reset_connections(storm_at + config.storm_restart_delay, pod);
    }
    chaos.schedule(plan);
  }

  // --- load ---------------------------------------------------------------
  mesh::HttpClientPool::Options client_options;
  client_options.max_connections = 2048;
  client_options.connection.mss = app_options.policies.transport_mss;
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), client_options,
                              "wrk2-client");

  WorkloadSpec ls;
  ls.name = "latency-sensitive";
  ls.rps = config.ls_rps;
  ls.arrival = config.arrival;
  ls.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLsPathPrefix));
  ls.start = 0;
  ls.end = traffic_end;
  ls.measure_start = measure_start;
  ls.measure_end = measure_end;

  WorkloadSpec li = ls;
  li.name = "latency-insensitive";
  li.rps = config.li_rps;
  li.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLiPathPrefix));

  OpenLoopGenerator ls_gen(sim, client, ls, config.seed);
  OpenLoopGenerator li_gen(sim, client, li, config.seed + 1);

  // Phase bucketing around the storm instant, keyed on scheduled arrival
  // time (wrk2 convention: a request that arrived during the reconnect
  // wave but straggled in later still charges the post phase).
  LatencyRecorder pre_rec(measure_start, storm_at);
  LatencyRecorder post_rec(storm_at, measure_end);
  std::array<std::uint64_t, 2> scheduled_per_phase{};
  ls_gen.set_arrival_observer([&](sim::Time scheduled) {
    if (scheduled >= measure_start && scheduled < storm_at) {
      ++scheduled_per_phase[0];
    } else if (scheduled >= storm_at && scheduled < measure_end) {
      ++scheduled_per_phase[1];
    }
  });
  ls_gen.set_sample_observer(
      [&](sim::Time scheduled, sim::Time completed, bool success) {
        pre_rec.record(scheduled, completed, success);
        post_rec.record(scheduled, completed, success);
      });

  // Bottleneck busy time over exactly the measured window.
  sim::Duration busy_at_start = 0;
  sim::Duration busy_at_end = 0;
  sim.schedule_at(measure_start, [&] {
    busy_at_start = app.bottleneck_link().stats().busy_time;
  });
  sim.schedule_at(measure_end, [&] {
    busy_at_end = app.bottleneck_link().stats().busy_time;
  });

  ls_gen.start();
  li_gen.start();

  sim.run_until(traffic_end + 2 * config.request_timeout + sim::seconds(10));

  auto summarize = [](const OpenLoopGenerator& gen) {
    WorkloadSummary s;
    const LatencyRecorder& rec = gen.recorder();
    s.completed = rec.count();
    s.errors = rec.errors();
    s.achieved_rps = rec.throughput_rps();
    s.p50_ms = rec.p50_ms();
    s.p90_ms = rec.p90_ms();
    s.p99_ms = rec.p99_ms();
    s.mean_ms = rec.mean_ms();
    return s;
  };

  MtlsExperimentResult result;
  result.ls = summarize(ls_gen);
  result.li = summarize(li_gen);
  result.pre = summarize_mtls_phase("pre", pre_rec, scheduled_per_phase[0]);
  result.post = summarize_mtls_phase("post", post_rec, scheduled_per_phase[1]);
  result.bottleneck_utilization =
      static_cast<double>(busy_at_end - busy_at_start) /
      static_cast<double>(measure_end - measure_start);
  result.bottleneck_drops =
      app.bottleneck_link().qdisc().stats().dropped_packets;

  const obs::MetricRegistry& registry = cp.metrics();
  result.handshakes_full = counter_value(registry, "tls_handshakes_full_total");
  result.handshakes_resumed =
      counter_value(registry, "tls_handshakes_resumed_total");
  result.handshake_failures =
      counter_value(registry, "tls_handshake_failures_total");
  result.tickets_issued = counter_value(registry, "tls_tickets_issued_total");
  result.resumptions_rejected =
      counter_value(registry, "tls_resumptions_rejected_total");
  result.session_cache_evictions =
      counter_value(registry, "tls_session_cache_evictions_total");
  result.records_encrypted =
      counter_value(registry, "tls_records_encrypted_total");
  result.records_decrypted =
      counter_value(registry, "tls_records_decrypted_total");
  result.bytes_encrypted = counter_value(registry, "tls_bytes_encrypted_total");
  result.bytes_decrypted = counter_value(registry, "tls_bytes_decrypted_total");
  result.tls_alerts = counter_value(registry, "tls_alerts_total");
  result.cert_rotations = counter_value(registry, "cp_cert_rotations_total");

  for (const auto& sidecar : cp.sidecars()) {
    result.upstream_retries += sidecar->stats().upstream_retries;
    result.timeouts += sidecar->stats().timeouts;
    result.upstream_failures += sidecar->stats().upstream_failures;
    result.downstream_aborts += sidecar->stats().downstream_aborts;
  }
  result.fault_log = chaos.log();
  result.events_executed = sim.events_executed();
  result.loop_stats = sim.loop_stats();
  obs::export_loop_stats(result.loop_stats, cp.metrics());
  result.metrics = cp.metrics().snapshot();
  return result;
}

std::string format_mtls_comparison(const MtlsExperimentResult& plaintext,
                                   const MtlsExperimentResult& mtls_full,
                                   const MtlsExperimentResult& mtls_resume,
                                   const MtlsExperimentResult& storm_full,
                                   const MtlsExperimentResult& storm_resume) {
  std::string out;
  char line[256];
  out += "steady state (whole measured window):\n";
  std::snprintf(line, sizeof(line), "  %-12s %8s %8s %8s %8s %7s %6s %11s\n",
                "arm", "ls_p50", "ls_p99", "li_p50", "li_p99", "li_rps",
                "bneck", "handshakes");
  out += line;
  const auto steady_row = [&](const char* arm,
                              const MtlsExperimentResult& r) {
    std::snprintf(line, sizeof(line),
                  "  %-12s %8.2f %8.2f %8.2f %8.2f %7.1f %6.3f %6llu+%llur\n",
                  arm, r.ls.p50_ms, r.ls.p99_ms, r.li.p50_ms, r.li.p99_ms,
                  r.li.achieved_rps, r.bottleneck_utilization,
                  static_cast<unsigned long long>(r.handshakes_full),
                  static_cast<unsigned long long>(r.handshakes_resumed));
    out += line;
  };
  steady_row("plaintext", plaintext);
  steady_row("mtls-full", mtls_full);
  steady_row("mtls-resume", mtls_resume);

  out += "handshake storm (LS workload, pre / post mass restart):\n";
  std::snprintf(line, sizeof(line), "  %-12s %9s %9s %10s %10s %11s\n", "arm",
                "pre_p99", "post_p99", "post_good", "post_succ", "handshakes");
  out += line;
  const auto storm_row = [&](const char* arm, const MtlsExperimentResult& r) {
    std::snprintf(line, sizeof(line),
                  "  %-12s %9.2f %9.2f %10.1f %9.2f%% %6llu+%llur\n", arm,
                  r.pre.p99_ms, r.post.p99_ms, r.post.goodput_rps,
                  100.0 * r.post.success_rate,
                  static_cast<unsigned long long>(r.handshakes_full),
                  static_cast<unsigned long long>(r.handshakes_resumed));
    out += line;
  };
  storm_row("storm-full", storm_full);
  storm_row("storm-resume", storm_resume);

  const double storm_delta_p99 =
      storm_full.post.p99_ms - storm_resume.post.p99_ms;
  std::snprintf(line, sizeof(line),
                "mTLS steady-state overhead: LS p50 +%.2f ms, LI p50 "
                "+%.2f ms, LI p99 +%.2f ms | resumption saves %.2f ms of "
                "post-storm p99\n",
                mtls_resume.ls.p50_ms - plaintext.ls.p50_ms,
                mtls_resume.li.p50_ms - plaintext.li.p50_ms,
                mtls_resume.li.p99_ms - plaintext.li.p99_ms,
                storm_delta_p99);
  out += line;
  return out;
}

}  // namespace meshnet::workload
