#include "workload/parsim_experiment.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "net/qdisc.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace meshnet::workload {

namespace {

// splitmix64 finalizer: the per-visit compute time is a pure function of
// (seed, service, request), so it does not depend on the order services
// happen to process requests in — one of the three shard-invariance rules.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Arrival {
  std::uint64_t request_id = 0;
  sim::Time start = 0;  ///< root arrival time, carried end to end
  int src = -1;         ///< sending service id (-1 = root generator)
};

/// One simulated service: canonical same-timestamp ingestion in front of
/// a single-server FIFO with hash-deterministic compute, fanning out to
/// its children over per-edge links at completion.
class Service {
 public:
  int id = 0;
  bool leaf = false;
  sim::Simulator* sim = nullptr;
  std::vector<net::Link*> out_links;

  // Cached registry cells (shard-local registry; no locking needed).
  obs::Counter* visits = nullptr;
  obs::Counter* leaf_done = nullptr;
  obs::Histogram* latency = nullptr;

  std::uint64_t run_seed = 0;
  sim::Duration compute_min = 1;
  sim::Duration compute_span = 1;  ///< max - min + 1
  std::uint32_t request_bytes = 0;

  void deliver(std::uint64_t request_id, sim::Time start, int src) {
    visits->inc();
    pending_.push_back(Arrival{request_id, start, src});
    if (!drain_scheduled_) {
      // The drain is scheduled *during* the first same-timestamp
      // delivery, so its seq is higher than every delivery at this
      // timestamp (all were scheduled strictly earlier — every delay in
      // PARSIM is positive). It therefore observes the complete batch.
      drain_scheduled_ = true;
      sim->schedule_at(sim->now(), [this] { drain(); });
    }
  }

 private:
  void drain() {
    drain_scheduled_ = false;
    std::sort(pending_.begin(), pending_.end(),
              [](const Arrival& a, const Arrival& b) {
                return std::tie(a.request_id, a.src) <
                       std::tie(b.request_id, b.src);
              });
    for (Arrival& arrival : pending_) queue_.push_back(arrival);
    pending_.clear();
    if (!busy_ && !queue_.empty()) start_next();
  }

  void start_next() {
    busy_ = true;
    const Arrival job = queue_.front();
    queue_.pop_front();
    const sim::Duration compute =
        compute_min +
        static_cast<sim::Duration>(
            mix64(run_seed ^ mix64(static_cast<std::uint64_t>(id)) ^
                  job.request_id) %
            static_cast<std::uint64_t>(compute_span));
    sim->schedule_after(compute, [this, job] { complete(job); });
  }

  void complete(const Arrival& job) {
    if (leaf) {
      latency->record(
          static_cast<std::uint64_t>((sim->now() - job.start) /
                                     sim::kMicrosecond));
      leaf_done->inc();
    } else {
      for (net::Link* link : out_links) {
        net::Packet packet;
        packet.flow.src_ip = static_cast<net::IpAddress>(id);
        packet.seq = job.request_id;
        packet.sent_at = job.start;
        packet.header_bytes = request_bytes;
        link->send(std::move(packet));
      }
    }
    busy_ = false;
    if (!queue_.empty()) start_next();
  }

  std::vector<Arrival> pending_;  ///< same-timestamp ingestion buffer
  bool drain_scheduled_ = false;
  std::deque<Arrival> queue_;  ///< canonical-order FIFO
  bool busy_ = false;
};

/// Open-loop Poisson source in front of a root service. Each root owns
/// its own named stream, so the arrival sequence is independent of shard
/// and thread counts.
struct Root {
  Service* service = nullptr;
  sim::RngStream rng;
  obs::Counter* generated = nullptr;
  double rps = 1.0;
  sim::Time end = 0;
  std::uint64_t next_request = 0;

  Root(Service* svc, std::uint64_t seed)
      : service(svc),
        rng(seed, "parsim-arrivals:" + std::to_string(svc->id)) {}

  void schedule_next() {
    const sim::Duration gap = std::max<sim::Duration>(
        1, sim::from_seconds(rng.exponential(1.0 / rps)));
    const sim::Time when = service->sim->now() + gap;
    if (when > end) return;  // arrival window closed; the run then drains
    service->sim->schedule_at(when, [this] {
      generated->inc();
      const std::uint64_t request_id =
          (static_cast<std::uint64_t>(service->id) << 40) | next_request++;
      service->deliver(request_id, service->sim->now(), -1);
      schedule_next();
    });
  }
};

}  // namespace

cluster::FanoutSpec ParsimConfig::default_topology() {
  cluster::FanoutSpec spec;
  spec.layer_widths = {4, 8, 16, 36};  // 64 services
  spec.fanout = 3;
  // The band sets the engine's lookahead (min cut-edge latency): 2-4 ms
  // keeps epochs wide enough that each shard executes tens-to-hundreds
  // of events per barrier, which is what amortizes synchronization on
  // multi-core hosts.
  spec.min_edge_latency = sim::milliseconds(2);
  spec.max_edge_latency = sim::milliseconds(4);
  spec.edge_rate_bps = 10e9;
  return spec;
}

ParsimExperimentResult run_parsim_experiment(const ParsimConfig& config) {
  const cluster::GenTopology topology =
      cluster::generate_layered_fanout(config.topology, config.seed);
  const cluster::TopologyPartition partition =
      cluster::partition_topology(topology, config.shards);

  sim::ParallelEngineOptions engine_options;
  engine_options.shards = partition.shards;
  engine_options.lookahead = partition.lookahead;
  engine_options.threads = config.threads;
  engine_options.respect_worker_budget = config.respect_worker_budget;
  sim::ParallelEngine engine(engine_options);

  std::vector<std::unique_ptr<obs::MetricRegistry>> registries;
  registries.reserve(static_cast<std::size_t>(partition.shards));
  for (int s = 0; s < partition.shards; ++s) {
    registries.push_back(std::make_unique<obs::MetricRegistry>());
  }

  const sim::Duration compute_span =
      std::max<sim::Duration>(1, config.compute_max - config.compute_min + 1);

  std::vector<std::unique_ptr<Service>> services;
  services.reserve(topology.services.size());
  for (const cluster::GenService& spec : topology.services) {
    const int shard = partition.shard_of[static_cast<std::size_t>(spec.id)];
    obs::MetricRegistry& registry = *registries[static_cast<std::size_t>(shard)];
    auto service = std::make_unique<Service>();
    service->id = spec.id;
    service->leaf = spec.out_edges.empty();
    service->sim = &engine.shard(shard);
    service->visits = &registry.counter(
        "parsim_visits", {{"layer", std::to_string(spec.layer)}});
    if (service->leaf) {
      service->leaf_done = &registry.counter("parsim_leaf_completions");
      // Microseconds, deliberately: LogHistogram keeps double sum/sum-sq
      // accumulators, and with us-scale values every partial sum stays
      // below 2^53 — exactly representable, so per-shard accumulation
      // merges to the same bits in any order. Nanosecond squares would
      // overflow the mantissa and make shard-count invariance bucket-
      // exact but not bit-exact.
      service->latency = &registry.histogram("parsim_e2e_latency_us");
    }
    service->run_seed = config.seed;
    service->compute_min = std::max<sim::Duration>(1, config.compute_min);
    service->compute_span = compute_span;
    service->request_bytes = config.request_bytes;
    services.push_back(std::move(service));
  }

  std::vector<std::unique_ptr<net::Link>> links;
  links.reserve(topology.edges.size());
  for (const cluster::GenEdge& edge : topology.edges) {
    const int src_shard = partition.shard_of[static_cast<std::size_t>(edge.from)];
    const int dst_shard = partition.shard_of[static_cast<std::size_t>(edge.to)];
    sim::Simulator& src_sim = engine.shard(src_shard);
    auto link = std::make_unique<net::Link>(
        src_sim,
        "edge:" + std::to_string(edge.from) + "-" + std::to_string(edge.to),
        edge.rate_bps, edge.latency, std::make_unique<net::FifoQdisc>());
    Service* dst = services[static_cast<std::size_t>(edge.to)].get();
    if (src_shard == dst_shard) {
      link->set_sink([dst](net::Packet packet) {
        dst->deliver(packet.seq, packet.sent_at,
                     static_cast<int>(packet.flow.src_ip));
      });
    } else {
      // Cut edge: serialize locally, then cross at serialization-complete
      // time via the engine mailbox. Only PODs cross the thread boundary
      // (the packet — and with it any pooled payload — dies on the
      // source shard).
      sim::ParallelEngine* engine_ptr = &engine;
      sim::Simulator* src_sim_ptr = &src_sim;
      link->set_handoff([engine_ptr, src_sim_ptr, src_shard, dst_shard, dst](
                            net::Packet packet, sim::Duration propagation) {
        const std::uint64_t request_id = packet.seq;
        const sim::Time start = packet.sent_at;
        const int src_id = static_cast<int>(packet.flow.src_ip);
        engine_ptr->post(src_shard, dst_shard,
                         src_sim_ptr->now() + propagation,
                         [dst, request_id, start, src_id] {
                           dst->deliver(request_id, start, src_id);
                         });
      });
    }
    services[static_cast<std::size_t>(edge.from)]->out_links.push_back(
        link.get());
    links.push_back(std::move(link));
  }

  std::vector<std::unique_ptr<Root>> roots;
  for (const cluster::GenService& spec : topology.services) {
    if (spec.layer != 0) continue;
    Service* service = services[static_cast<std::size_t>(spec.id)].get();
    const int shard = partition.shard_of[static_cast<std::size_t>(spec.id)];
    auto root = std::make_unique<Root>(service, config.seed);
    root->generated = &registries[static_cast<std::size_t>(shard)]->counter(
        "parsim_requests_generated");
    root->rps = config.root_rps;
    root->end = config.duration;
    root->schedule_next();
    roots.push_back(std::move(root));
  }

  // Arrivals stop at config.duration; one extra second drains in-flight
  // requests (per-visit residence is ~ms and utilization is low, so the
  // system empties deterministically long before the deadline).
  engine.run_until(config.duration + sim::seconds(1));

  obs::MetricRegistry merged;
  for (const auto& registry : registries) merged.merge(*registry);

  ParsimExperimentResult result;
  result.metrics = merged.snapshot();
  if (const obs::Counter* generated =
          merged.find_counter("parsim_requests_generated")) {
    result.requests_generated = generated->value();
  }
  if (const obs::Counter* completions =
          merged.find_counter("parsim_leaf_completions")) {
    result.leaf_completions = completions->value();
  }
  for (const obs::SeriesSnapshot& series : result.metrics.series) {
    if (series.name == "parsim_visits") result.service_visits += series.counter;
  }
  if (const obs::Histogram* latency =
          merged.find_histogram("parsim_e2e_latency_us")) {
    result.e2e_latency = latency->data();
  }

  result.shards = partition.shards;
  result.executors = engine.executor_count();
  result.services = topology.service_count();
  result.edges = static_cast<int>(topology.edges.size());
  result.cut_edges = partition.cut_edges;
  result.lookahead = partition.lookahead;

  result.events_executed = engine.events_executed();
  result.loop_stats = engine.merged_loop_stats();
  result.engine = engine.stats();
  return result;
}

}  // namespace meshnet::workload
