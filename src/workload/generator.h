#pragma once

// Open- and closed-loop load generators (the wrk2 stand-in, DESIGN.md §2).
//
// The open-loop generator emits requests on a schedule independent of
// completions — the paper's methodology ("uniformly random inter-arrival
// times", average RPS swept 10..50). The closed-loop generator keeps a
// fixed number of outstanding requests (useful for capacity probing and
// tests).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "http/message.h"
#include "mesh/http_client.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/recorder.h"

namespace meshnet::workload {

enum class ArrivalProcess {
  kUniformRandom,  ///< U(0, 2/rps) gaps — the paper's choice
  kPoisson,        ///< exponential gaps
  kConstant,       ///< fixed 1/rps gaps
};

struct WorkloadSpec {
  std::string name = "workload";
  double rps = 10.0;
  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;
  /// Builds the i-th request (i starts at 0).
  std::function<http::HttpRequest(std::uint64_t)> make_request;
  sim::Time start = 0;
  sim::Time end = 0;            ///< last arrival strictly before this
  sim::Time measure_start = 0;  ///< warm-up boundary
  sim::Time measure_end = 0;    ///< cool-down boundary
};

class OpenLoopGenerator {
 public:
  /// Observes every arrival, with its scheduled (intended) send time.
  using ArrivalObserver = std::function<void(sim::Time scheduled)>;
  /// Observes every completion (success or failure). Fires in addition
  /// to the internal recorder — experiments use it to bucket samples
  /// into extra windows (e.g. before/during/after a fault).
  using SampleObserver = std::function<void(sim::Time scheduled,
                                            sim::Time completed,
                                            bool success)>;

  OpenLoopGenerator(sim::Simulator& sim, mesh::HttpClientPool& client,
                    WorkloadSpec spec, std::uint64_t seed);

  /// Schedules the first arrival. Call once.
  void start();

  void set_arrival_observer(ArrivalObserver observer) {
    arrival_observer_ = std::move(observer);
  }
  void set_sample_observer(SampleObserver observer) {
    sample_observer_ = std::move(observer);
  }

  const WorkloadSpec& spec() const noexcept { return spec_; }
  const LatencyRecorder& recorder() const noexcept { return recorder_; }
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t failed() const noexcept { return failed_; }
  std::uint64_t outstanding() const noexcept { return sent_ - completed_ - failed_; }

 private:
  void arrive(sim::Time scheduled);
  sim::Duration next_gap();

  sim::Simulator& sim_;
  mesh::HttpClientPool& client_;
  WorkloadSpec spec_;
  sim::RngStream rng_;
  LatencyRecorder recorder_;
  ArrivalObserver arrival_observer_;
  SampleObserver sample_observer_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

class ClosedLoopGenerator {
 public:
  ClosedLoopGenerator(sim::Simulator& sim, mesh::HttpClientPool& client,
                      WorkloadSpec spec, int concurrency);

  void start();

  const LatencyRecorder& recorder() const noexcept { return recorder_; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  void issue_one();

  sim::Simulator& sim_;
  mesh::HttpClientPool& client_;
  WorkloadSpec spec_;
  int concurrency_;
  LatencyRecorder recorder_;
  std::uint64_t seq_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

/// Convenience: a GET request factory for a fixed path prefix; request i
/// targets "<prefix>/<i % modulo>".
std::function<http::HttpRequest(std::uint64_t)> simple_get_factory(
    std::string host, std::string path_prefix, std::uint64_t modulo = 100);

}  // namespace meshnet::workload
