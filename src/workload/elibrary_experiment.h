#pragma once

// The paper's experiment in a function (§4.3 setup): the e-library app, a
// latency-sensitive and a latency-insensitive workload hitting the ingress
// gateway simultaneously with uniformly random inter-arrivals, with or
// without cross-layer prioritization. Every bench that reproduces a
// figure/table row calls run_elibrary_experiment() with the matching
// parameters.

#include <cstdint>
#include <string>

#include "app/elibrary.h"
#include "core/cross_layer.h"
#include "obs/metric_registry.h"
#include "sim/loop_stats.h"
#include "stats/histogram.h"
#include "workload/generator.h"

namespace meshnet::workload {

struct ElibraryExperimentConfig {
  /// Offered load per workload (the paper sweeps 10..50).
  double ls_rps = 30.0;
  double li_rps = 30.0;

  sim::Duration warmup = sim::seconds(4);
  sim::Duration duration = sim::seconds(20);   ///< measured window
  sim::Duration cooldown = sim::seconds(4);
  std::uint64_t seed = 42;

  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;

  bool cross_layer = false;
  core::CrossLayerConfig cross_layer_config = default_cross_layer_config();

  /// Optimization (d) out-of-band variant: program the bottleneck link's
  /// scheduler through the SDN coordinator (which learns flow priorities
  /// from the sidecars' advertisements) instead of relying on in-band
  /// marks or dst-IP TC rules. Requires cross_layer.
  bool sdn_out_of_band = false;

  app::ElibraryOptions app;

  /// The paper's classification: user page loads are high priority,
  /// analytics scans low, with priority-routed reviews replicas.
  static core::CrossLayerConfig default_cross_layer_config();
};

struct WorkloadSummary {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

struct ElibraryExperimentResult {
  WorkloadSummary ls;
  WorkloadSummary li;

  /// Full latency distributions (nanoseconds, wrk2 scheduled-time
  /// convention) behind the summaries above. Bit-identical across runs
  /// with the same config — the determinism golden tests compare these.
  stats::LogHistogram ls_latency;
  stats::LogHistogram li_latency;
  double bottleneck_utilization = 0.0;
  std::uint64_t bottleneck_drops = 0;
  std::uint64_t high_band_bytes = 0;  ///< dequeued from the priority band
  std::uint64_t low_band_bytes = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t spans_recorded = 0;
  /// Event-loop profile for the run (deterministic; see sim/loop_stats.h).
  sim::LoopStats loop_stats;
  /// The unified meshnet-metrics-v1 snapshot: edge metrics, span stats,
  /// mesh events and engine counters from one registry. Bit-identical
  /// across runs with the same config.
  obs::MetricsSnapshot metrics;
};

ElibraryExperimentResult run_elibrary_experiment(
    const ElibraryExperimentConfig& config);

}  // namespace meshnet::workload
