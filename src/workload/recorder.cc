#include "workload/recorder.h"

namespace meshnet::workload {

LatencyRecorder::LatencyRecorder(sim::Time measure_start,
                                 sim::Time measure_end)
    : measure_start_(measure_start), measure_end_(measure_end) {}

void LatencyRecorder::record(sim::Time scheduled, sim::Time completed,
                             bool success) {
  if (scheduled < measure_start_ || scheduled >= measure_end_) return;
  if (!success) {
    ++errors_;
    return;
  }
  const sim::Duration latency =
      completed > scheduled ? completed - scheduled : 0;
  histogram_.record(static_cast<std::uint64_t>(latency));
}

double LatencyRecorder::throughput_rps() const {
  const double window = sim::to_seconds(measure_end_ - measure_start_);
  if (window <= 0.0) return 0.0;
  return static_cast<double>(histogram_.count()) / window;
}

}  // namespace meshnet::workload
