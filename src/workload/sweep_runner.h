#pragma once

// Thread-pool-backed experiment harness for parameter sweeps.
//
// The paper's evaluation (§4.3, Fig. 4) is a sweep — LS/LI latency across
// 10–50 RPS, with/without cross-layer optimization. Every sweep point is a
// single-threaded pure function of (config, seed): it builds its own
// Simulator with its own named PRNG streams, runs to completion, and
// returns metrics (DESIGN.md §6). Points are therefore embarrassingly
// parallel, and this runner fans them across a util::ThreadPool while
// guaranteeing BIT-IDENTICAL output regardless of thread count:
//
//   * results are stored in a pre-sized slot per point and assembled in
//     input order, never in completion order;
//   * cross-point aggregates (histogram/RunningStats merges) are computed
//     after the join, walking points in input order, so floating-point
//     accumulation order is fixed;
//   * per-simulation process state (the HTTP request-id counter) is
//     thread-local and reset by each experiment, so a point draws the
//     same sequences it would single-threaded.
//
// The only fields that may differ between runs are host wall-clock times,
// which the bench comparator (stats/bench_report.h) excludes.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.h"
#include "stats/bench_report.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"

namespace meshnet::workload {

/// What one sweep point reports back. All maps are keyed by metric name;
/// keys present in several points merge into SweepResult's aggregates.
struct PointMetrics {
  std::map<std::string, double> scalars;           ///< e.g. "ls_p99_ms"
  std::map<std::string, std::uint64_t> counters;   ///< e.g. "events"
  std::map<std::string, stats::LogHistogram> histograms;  ///< raw samples
  /// The point's unified meshnet-metrics-v1 snapshot (may be empty).
  obs::MetricsSnapshot snapshot;
};

/// One point of a sweep: a stable id, the parameters that define it (kept
/// ordered for stable report output), and the pure function that runs it.
struct SweepPoint {
  std::string id;  ///< unique within the sweep, e.g. "rps=40/cross_layer=on"
  std::vector<std::pair<std::string, std::string>> params;
  std::function<PointMetrics()> run;
};

struct SweepPointResult {
  std::string id;
  std::vector<std::pair<std::string, std::string>> params;
  PointMetrics metrics;
  double wall_ms = 0.0;  ///< host time; excluded from determinism claims
};

struct SweepResult {
  std::vector<SweepPointResult> points;  ///< in input order
  int threads_used = 1;
  double wall_ms = 0.0;  ///< host time for the whole sweep

  /// Cross-point aggregates, merged in input order (deterministic):
  /// histograms by name, counter sums by name, and the distribution of
  /// per-point wall-clock (for harness tuning, not for comparison).
  std::map<std::string, stats::LogHistogram> merged_histograms;
  std::map<std::string, std::uint64_t> merged_counters;
  stats::RunningStats point_wall_ms;
  /// Union of the points' snapshots, folded in input order (counters sum,
  /// histograms merge, gauges max) — the whole-sweep observability view.
  obs::MetricsSnapshot merged_snapshot;
};

struct SweepOptions {
  /// Worker threads; 0 means one per hardware thread.
  int threads = 1;

  /// Emit one stderr line as each point finishes (completion order, so
  /// informational only; stdout is never written by the runner).
  bool progress = false;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Adds a point. Ids should be unique; the comparator matches baseline
  /// points by id.
  void add(SweepPoint point);

  /// Convenience: build the id from "key=value" params and add.
  void add(std::vector<std::pair<std::string, std::string>> params,
           std::function<PointMetrics()> run);

  std::size_t point_count() const noexcept { return points_.size(); }

  /// Runs every added point across the pool, blocks until all complete,
  /// and returns assembled results. Rethrows the first exception any
  /// point raised. The runner can be reused (points stay added).
  SweepResult run();

 private:
  SweepOptions options_;
  std::vector<SweepPoint> points_;
};

/// Packages a sweep's results as a bench report ready for
/// BenchReport::write_file / compare_reports. `config` should pin every
/// knob needed to reproduce the run (seed, durations, rps levels, ...).
stats::BenchReport make_bench_report(
    std::string experiment,
    std::vector<std::pair<std::string, std::string>> config,
    const SweepResult& sweep);

}  // namespace meshnet::workload
