#include "workload/cp_chaos_experiment.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>

#include "obs/engine_metrics.h"
#include "sim/simulator.h"

namespace meshnet::workload {

namespace {

void apply_cp_chaos_policies(mesh::MeshPolicies& policies,
                             const CpChaosExperimentConfig& config) {
  // Data-plane resilience, same stance as the CHAOS experiment: the
  // churn storm is detected by active health checking, absorbed by
  // breakers and budgeted retries.
  policies.retry.max_retries = 3;
  policies.retry.per_try_timeout = sim::milliseconds(500);
  policies.retry.backoff_jitter = true;
  policies.retry.backoff_max = sim::milliseconds(250);
  // A churn storm is not an overload: at each blind-window edge roughly
  // half the in-flight set legitimately needs one failover retry, so the
  // budget is provisioned for that (storm amplification is still capped;
  // overload protection proper is the breakers' and admission's job).
  policies.retry.retry_budget = 0.5;
  policies.retry.retry_budget_min_concurrency = 20;
  policies.breaker.consecutive_failures = 5;
  policies.breaker.open_duration = sim::milliseconds(500);
  policies.health_check.enabled = true;
  policies.health_check.interval = sim::milliseconds(250);
  policies.health_check.timeout = sim::milliseconds(200);
  policies.health_check.unhealthy_threshold = 2;
  policies.health_check.healthy_threshold = 2;
  policies.health_check.flap_max_transitions = config.flap_max_transitions;
  policies.health_check.flap_window = config.flap_window;
  policies.health_check.flap_penalty = config.flap_penalty;
  policies.request_timeout = config.request_timeout;
  // The push channel is a real simulated network: latency, ack timeouts,
  // paced reconvergence, optional loss.
  policies.cp.push_latency_base = config.push_latency_base;
  policies.cp.push_latency_jitter = config.push_latency_jitter;
  policies.cp.ack_timeout = config.ack_timeout;
  policies.cp.reconverge_pacing = config.reconverge_pacing;
  policies.cp.push_loss = config.push_loss;
  policies.cp.cert_refresh_ahead = config.cert_refresh_ahead;
  policies.certificate_lifetime = config.certificate_lifetime;
}

PhaseSummary summarize_cp_phase(std::string name, const LatencyRecorder& rec,
                                std::uint64_t scheduled) {
  PhaseSummary s;
  s.name = std::move(name);
  s.scheduled = scheduled;
  s.completed = rec.count();
  s.errors = rec.errors();
  const std::uint64_t finished = s.completed + s.errors;
  s.success_rate = finished == 0
                       ? 1.0
                       : static_cast<double>(s.completed) /
                             static_cast<double>(finished);
  s.goodput_rps = rec.throughput_rps();
  s.p50_ms = rec.p50_ms();
  s.p99_ms = rec.p99_ms();
  return s;
}

std::uint64_t counter_value(const obs::MetricRegistry& registry,
                            std::string_view name) {
  const obs::Counter* counter = registry.find_counter(name);
  return counter == nullptr ? 0 : counter->value();
}

}  // namespace

CpChaosExperimentResult run_cp_chaos_experiment(
    const CpChaosExperimentConfig& config) {
  http::reset_request_id_counter();
  sim::Simulator sim;

  app::ElibraryOptions app_options = config.app;
  apply_cp_chaos_policies(app_options.policies, config);

  app::Elibrary app(sim, app_options);
  app.control_plane().tracer().set_retention(0);
  mesh::ControlPlane& cp = app.control_plane();

  // Hierarchical timeout budget, compiled per sidecar: the edge hop must
  // outlive one full interior failover (per-try timeout + retry at the
  // frontend), otherwise interior recovery from a churned-away replica
  // surfaces as gateway-level errors. Interior hops keep the tight
  // mesh-wide per-try timeout.
  cp.set_compile_mutator([](const std::string&, mesh::SidecarConfig& config) {
    if (config.gateway_mode) {
      config.retry.per_try_timeout = sim::milliseconds(1500);
      config.retry.max_retries = 1;
    }
  });
  cp.push_config();

  const sim::Time measure_start = config.warmup;
  const sim::Time measure_end = config.warmup + config.duration;
  const sim::Time traffic_end = measure_end + config.cooldown;
  const sim::Time outage_start = measure_start + config.outage_offset;
  const sim::Time outage_end = outage_start + config.outage_duration;

  // --- the chaos schedule -------------------------------------------------
  faults::ChaosController chaos(sim, app.cluster(), config.seed);
  chaos.set_fault_hook([&](const faults::FaultLogEntry& entry) {
    cp.telemetry().record_event(
        entry.at, obs::EventKind::kFault, entry.target,
        std::string(faults::fault_action_name(entry.action)));
  });
  // faults/ cannot see mesh/: the CP fault actions dispatch through
  // hooks wired here, in the layer that sees both.
  faults::CpHooks hooks;
  hooks.crash = [&cp] {
    if (cp.crashed()) return false;
    cp.crash();
    return true;
  };
  hooks.restart = [&cp] {
    if (!cp.crashed()) return false;
    cp.recover();
    return true;
  };
  hooks.set_partitioned = [&cp](const std::string& pod, bool partitioned) {
    cp.set_partitioned(pod, partitioned);
    return true;
  };
  hooks.set_push_loss = [&cp](double probability) {
    cp.set_push_loss(probability);
    return true;
  };
  chaos.set_control_plane_hooks(std::move(hooks));

  faults::FaultPlan plan;
  if (config.outage) {
    plan.cp_outage(outage_start, outage_end);
  }
  if (config.churn) {
    // Alternating churn: reviews-v1 down for the first half of each
    // period, reviews-v2 for the second — one replica is always up, but
    // the registry (restart re-registers) and health state never settle.
    const sim::Duration half = config.churn_period / 2;
    for (sim::Time t = outage_start; t + config.churn_period <= outage_end;
         t += config.churn_period) {
      plan.crash(t, "reviews-v1");
      plan.restart(t + half, "reviews-v1");
      plan.crash(t + half, "reviews-v2");
      plan.restart(t + config.churn_period, "reviews-v2");
    }
  }
  chaos.schedule(plan);

  // --- load ---------------------------------------------------------------
  mesh::HttpClientPool::Options client_options;
  client_options.max_connections = 2048;
  client_options.connection.mss = app_options.policies.transport_mss;
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), client_options,
                              "wrk2-client");

  WorkloadSpec ls;
  ls.name = "latency-sensitive";
  ls.rps = config.ls_rps;
  ls.arrival = config.arrival;
  ls.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLsPathPrefix));
  ls.start = 0;
  ls.end = traffic_end;
  ls.measure_start = measure_start;
  ls.measure_end = measure_end;

  WorkloadSpec li = ls;
  li.name = "latency-insensitive";
  li.rps = config.li_rps;
  li.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLiPathPrefix));

  OpenLoopGenerator ls_gen(sim, client, ls, config.seed);
  OpenLoopGenerator li_gen(sim, client, li, config.seed + 1);

  // Phase bucketing for the LS workload, keyed on scheduled arrival time.
  LatencyRecorder before_rec(measure_start, outage_start);
  LatencyRecorder during_rec(outage_start, outage_end);
  LatencyRecorder after_rec(outage_end, measure_end);
  std::array<std::uint64_t, 3> scheduled_per_phase{};
  ls_gen.set_arrival_observer([&](sim::Time scheduled) {
    if (scheduled >= measure_start && scheduled < outage_start) {
      ++scheduled_per_phase[0];
    } else if (scheduled >= outage_start && scheduled < outage_end) {
      ++scheduled_per_phase[1];
    } else if (scheduled >= outage_end && scheduled < measure_end) {
      ++scheduled_per_phase[2];
    }
  });
  ls_gen.set_sample_observer(
      [&](sim::Time scheduled, sim::Time completed, bool success) {
        before_rec.record(scheduled, completed, success);
        during_rec.record(scheduled, completed, success);
        after_rec.record(scheduled, completed, success);
      });

  // Routing-staleness sampler: peak discovery staleness over the run
  // (grows through the outage, resets when the recovered control plane
  // catches up).
  double max_staleness_ms = 0.0;
  const sim::Duration sample_interval = sim::milliseconds(500);
  std::function<void()> sample = [&] {
    const double staleness_ms =
        sim::to_seconds(cp.discovery_staleness()) * 1e3;
    max_staleness_ms = std::max(max_staleness_ms, staleness_ms);
    // Keep the live gauge honest through the outage: the control plane's
    // own poll loop (which normally maintains it) is down.
    cp.metrics().gauge("cp_discovery_staleness_ms").set(staleness_ms);
    if (sim.now() + sample_interval <= traffic_end) {
      sim.schedule_after(sample_interval, [&] { sample(); });
    }
  };
  sim.schedule_at(measure_start, [&] { sample(); });

  ls_gen.start();
  li_gen.start();

  sim.run_until(traffic_end + 2 * config.request_timeout + sim::seconds(10));

  // Settle before the final convergence read: a cert rotation (or any
  // other config delta) can land just before the horizon and leave its
  // push legitimately in flight. Give the mesh a bounded, deterministic
  // window to drain it.
  const sim::Time settle_deadline = sim.now() + sim::seconds(5);
  while (!cp.converged() && sim.now() < settle_deadline) {
    sim.run_until(sim.now() + sim::milliseconds(100));
  }

  auto summarize = [](const OpenLoopGenerator& gen) {
    WorkloadSummary s;
    const LatencyRecorder& rec = gen.recorder();
    s.completed = rec.count();
    s.errors = rec.errors();
    s.achieved_rps = rec.throughput_rps();
    s.p50_ms = rec.p50_ms();
    s.p90_ms = rec.p90_ms();
    s.p99_ms = rec.p99_ms();
    s.mean_ms = rec.mean_ms();
    return s;
  };

  CpChaosExperimentResult result;
  result.before =
      summarize_cp_phase("before", before_rec, scheduled_per_phase[0]);
  result.during =
      summarize_cp_phase("during", during_rec, scheduled_per_phase[1]);
  result.after = summarize_cp_phase("after", after_rec, scheduled_per_phase[2]);
  result.ls = summarize(ls_gen);
  result.li = summarize(li_gen);

  const obs::MetricRegistry& registry = cp.metrics();
  result.push_attempts = counter_value(registry, "cp_push_attempts_total");
  result.push_acks = counter_value(registry, "cp_push_acks_total");
  result.push_nacks = counter_value(registry, "cp_push_nacks_total");
  result.push_retries = counter_value(registry, "cp_push_retries_total");
  result.push_skipped_noop = counter_value(registry, "cp_push_skipped_noop");
  result.push_dropped = counter_value(registry, "cp_push_dropped_total");
  result.config_rollbacks =
      counter_value(registry, "cp_config_rollbacks_total");
  result.cert_rotations = counter_value(registry, "cp_cert_rotations_total");

  result.final_epoch = cp.epoch();
  result.stale_sidecars_at_end = cp.stale_sidecars();
  result.converged = cp.converged() && result.stale_sidecars_at_end == 0;
  result.reconverge_ms =
      sim::to_seconds(cp.last_reconverge_duration()) * 1e3;
  result.max_staleness_ms = max_staleness_ms;
  cp.metrics().gauge("cp_max_staleness_ms").set(max_staleness_ms);

  for (const mesh::MeshEvent& event : cp.telemetry().events()) {
    if (event.kind == obs::EventKind::kHealth) {
      if (event.detail == "evicted") ++result.health_evictions;
      if (event.detail == "readmitted") ++result.health_readmissions;
    }
  }
  for (const auto& sidecar : cp.sidecars()) {
    result.upstream_retries += sidecar->stats().upstream_retries;
    result.retries_denied_by_budget +=
        sidecar->stats().retries_denied_by_budget;
    result.panic_picks += sidecar->stats().panic_picks;
    result.timeouts += sidecar->stats().timeouts;
    result.upstream_failures += sidecar->stats().upstream_failures;
    if (sidecar->health_checker() != nullptr) {
      result.flap_damps += sidecar->health_checker()->stats().flap_damps;
    }
  }
  result.fault_log = chaos.log();
  result.mesh_events = cp.telemetry().events();
  result.events_executed = sim.events_executed();
  result.loop_stats = sim.loop_stats();
  obs::export_loop_stats(result.loop_stats, cp.metrics());
  result.metrics = cp.metrics().snapshot();
  return result;
}

std::string format_cp_chaos_comparison(
    const CpChaosExperimentResult& outage,
    const CpChaosExperimentResult& control) {
  std::string out;
  char line[256];
  auto row = [&](const char* arm, const PhaseSummary& p) {
    std::snprintf(line, sizeof(line),
                  "  %-8s %-7s %8.1f %9.2f%% %9.1f %9.1f\n", arm,
                  p.name.c_str(), p.goodput_rps, 100.0 * p.success_rate,
                  p.p50_ms, p.p99_ms);
    out += line;
  };
  out += "LS workload by phase (CP outage = 'during'):\n";
  std::snprintf(line, sizeof(line), "  %-8s %-7s %8s %10s %9s %9s\n", "arm",
                "phase", "goodput", "success", "p50ms", "p99ms");
  out += line;
  for (const PhaseSummary* p :
       {&outage.before, &outage.during, &outage.after}) {
    row("outage", *p);
  }
  for (const PhaseSummary* p :
       {&control.before, &control.during, &control.after}) {
    row("control", *p);
  }
  const double ratio = control.during.goodput_rps > 0.0
                           ? outage.during.goodput_rps /
                                 control.during.goodput_rps
                           : 0.0;
  std::snprintf(
      line, sizeof(line),
      "during-outage goodput ratio %.3f | staleness peak %.0f ms | "
      "reconverge %.0f ms | epoch %llu | stale sidecars %llu\n",
      ratio, outage.max_staleness_ms, outage.reconverge_ms,
      static_cast<unsigned long long>(outage.final_epoch),
      static_cast<unsigned long long>(outage.stale_sidecars_at_end));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "pushes: %llu attempts, %llu acks, %llu retries, %llu dropped, "
      "%llu noop-skips, %llu cert rotations | damped readmissions %llu\n",
      static_cast<unsigned long long>(outage.push_attempts),
      static_cast<unsigned long long>(outage.push_acks),
      static_cast<unsigned long long>(outage.push_retries),
      static_cast<unsigned long long>(outage.push_dropped),
      static_cast<unsigned long long>(outage.push_skipped_noop),
      static_cast<unsigned long long>(outage.cert_rotations),
      static_cast<unsigned long long>(outage.flap_damps));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "data plane: %llu retries (%llu denied by budget), %llu panic picks, "
      "%llu deadline timeouts, %llu upstream failures\n",
      static_cast<unsigned long long>(outage.upstream_retries),
      static_cast<unsigned long long>(outage.retries_denied_by_budget),
      static_cast<unsigned long long>(outage.panic_picks),
      static_cast<unsigned long long>(outage.timeouts),
      static_cast<unsigned long long>(outage.upstream_failures));
  out += line;
  return out;
}

}  // namespace meshnet::workload
