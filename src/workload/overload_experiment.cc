#include "workload/overload_experiment.h"

#include <memory>
#include <string_view>

#include "obs/engine_metrics.h"
#include "sim/simulator.h"

namespace meshnet::workload {

app::ElibraryOptions OverloadExperimentConfig::default_overload_app() {
  app::ElibraryOptions app;
  // Compute-bound tuning: payloads small enough that the 1 Gbps ratings
  // vNIC never saturates; the frontend's seven workers (each held for
  // the whole fan-out, ~63 ms per request) are the knee, near 110 rps.
  app.component_bytes = 2 * 1024;
  app.analytics_multiplier = 2;
  app.service_time = sim::milliseconds(20);
  app.app_max_concurrency = 7;

  mesh::MeshPolicies& policies = app.policies;
  // A short end-to-end deadline makes deadline-aware shedding observable
  // and bounds the drain tail.
  policies.request_timeout = sim::seconds(2);
  policies.retry.max_retries = 1;
  policies.retry.retry_budget = 0.2;

  mesh::AdmissionConfig& admission = policies.admission;
  admission.enabled = false;  // toggled per arm by the experiment
  admission.queue_capacity = 64;
  admission.shed_retries_first = true;
  // Four of the seven slots are reserved: an LS arrival waits only when
  // four LS requests are already in flight (~0.4% at 10 rps x 63 ms),
  // while uncontended LI load (~2.3 concurrent) fits the other three.
  admission.reserve_slots = 4;
  admission.limit.initial_limit = 7;
  admission.limit.min_limit = 2;
  admission.limit.max_limit = 12;
  admission.limit.window = sim::milliseconds(200);
  admission.limit.min_window_samples = 5;
  admission.limit.latency_tolerance = 2.0;
  return app;
}

OverloadExperimentResult run_overload_experiment(
    const OverloadExperimentConfig& config) {
  http::reset_request_id_counter();
  sim::Simulator sim;

  app::ElibraryOptions app_options = config.app;
  app_options.policies.admission.enabled = config.admission;
  app::Elibrary app(sim, app_options);
  app.control_plane().tracer().set_retention(0);

  // Classification at the gateway + provenance propagation are what give
  // the admission controllers a priority to act on; both arms run with
  // the cross-layer filters installed so the only difference between
  // them is the admission subsystem itself.
  core::CrossLayerController cross_layer(app.control_plane(), app.cluster(),
                                         config.cross_layer_config);
  cross_layer.install();

  mesh::HttpClientPool::Options client_options;
  client_options.max_connections = 2048;
  client_options.connection.mss = app_options.policies.transport_mss;
  mesh::HttpClientPool client(sim, app.client_pod().transport(),
                              app.gateway_address(), client_options,
                              "wrk2-client");

  const sim::Time measure_start = config.warmup;
  const sim::Time measure_end = config.warmup + config.duration;
  const sim::Time traffic_end = measure_end + config.cooldown;

  WorkloadSpec ls;
  ls.name = "latency-sensitive";
  ls.rps = config.ls_rps;
  ls.arrival = config.arrival;
  ls.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLsPathPrefix));
  ls.start = 0;
  ls.end = traffic_end;
  ls.measure_start = measure_start;
  ls.measure_end = measure_end;

  WorkloadSpec li = ls;
  li.name = "latency-insensitive";
  li.rps = config.li_rps();
  li.make_request = simple_get_factory(
      "frontend", std::string(app::Elibrary::kLiPathPrefix));

  OpenLoopGenerator ls_gen(sim, client, ls, config.seed);
  OpenLoopGenerator li_gen(sim, client, li, config.seed + 1);
  ls_gen.start();
  li_gen.start();

  // Drain: every in-flight request either completes or hits its armed
  // deadline within request_timeout of the last arrival.
  sim.run_until(traffic_end + app_options.policies.request_timeout +
                sim::seconds(5));

  auto summarize = [](const OpenLoopGenerator& gen) {
    WorkloadSummary s;
    const LatencyRecorder& rec = gen.recorder();
    s.completed = rec.count();
    s.errors = rec.errors();
    s.achieved_rps = rec.throughput_rps();
    s.p50_ms = rec.p50_ms();
    s.p90_ms = rec.p90_ms();
    s.p99_ms = rec.p99_ms();
    s.mean_ms = rec.mean_ms();
    return s;
  };

  OverloadExperimentResult result;
  result.ls = summarize(ls_gen);
  result.li = summarize(li_gen);
  result.ls_latency = ls_gen.recorder().histogram();
  result.li_latency = li_gen.recorder().histogram();

  for (const auto& sidecar : app.control_plane().sidecars()) {
    const mesh::SidecarStats& stats = sidecar->stats();
    result.upstream_retries += stats.upstream_retries;
    result.retries_suppressed_by_overload +=
        stats.retries_suppressed_by_overload;
    result.timeouts += stats.timeouts;
  }

  result.events_executed = sim.events_executed();
  result.loop_stats = sim.loop_stats();
  obs::export_loop_stats(result.loop_stats, app.control_plane().metrics());
  result.metrics = app.control_plane().metrics().snapshot();

  // Fold the admission series (one per service/class/reason) into the
  // by-class and by-reason totals the acceptance criteria talk about.
  auto label_value = [](const obs::SeriesSnapshot& series,
                        std::string_view key) -> std::string_view {
    for (const auto& [k, v] : series.labels) {
      if (k == key) return v;
    }
    return "";
  };
  for (const obs::SeriesSnapshot& series : result.metrics.series) {
    if (series.name == "admission_accepted_total") {
      result.admission_accepted += series.counter;
    } else if (series.name == "admission_queued_total") {
      result.admission_queued += series.counter;
    } else if (series.name == "admission_shed_total") {
      const std::string_view klass = label_value(series, "class");
      if (klass == "latency-sensitive") {
        result.ls_shed += series.counter;
      } else if (klass == "scavenger") {
        result.li_shed += series.counter;
      } else {
        result.default_shed += series.counter;
      }
      const std::string_view reason = label_value(series, "reason");
      if (reason == "queue-full") {
        result.shed_queue_full += series.counter;
      } else if (reason == "deadline") {
        result.shed_deadline += series.counter;
      } else if (reason == "preempted") {
        result.shed_preempted += series.counter;
      }
    }
  }
  return result;
}

}  // namespace meshnet::workload
