#include "workload/bench_harness.h"

#include <cstdio>

namespace meshnet::workload {

// Weak fallback: binaries that do not link bench/alloc_counter.cc (the
// examples) report no allocation profile. The attribute form is portable
// across the gcc/clang matrix; MSVC is not a supported toolchain here.
__attribute__((weak)) std::uint64_t bench_allocation_count() noexcept {
  return 0;
}

HarnessOptions parse_harness_flags(
    int argc, const char* const* argv, std::string_view experiment,
    std::int64_t default_duration_s, std::uint64_t default_seed,
    const std::vector<std::string_view>& extra_flags,
    const std::vector<std::string_view>& extra_prefixes) {
  std::vector<std::string_view> known = {"threads",  "json-out", "baseline",
                                         "tolerance", "duration", "seed"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());

  HarnessOptions options;
  options.flags = util::Flags::parse_or_die(argc, argv, known, extra_prefixes);
  options.threads =
      static_cast<int>(options.flags.get_int_or("threads", 1));
  options.json_out = options.flags.get_or("json-out", "");
  if (options.json_out == "true") {  // bare --json-out
    options.json_out = "BENCH_" + std::string(experiment) + ".json";
  }
  options.baseline = options.flags.get_or("baseline", "");
  options.tolerance = options.flags.get_double_or("tolerance", 1e-9);
  options.duration_s =
      options.flags.get_int_or("duration", default_duration_s);
  options.seed = static_cast<std::uint64_t>(options.flags.get_int_or(
      "seed", static_cast<std::int64_t>(default_seed)));
  return options;
}

SweepOptions sweep_options(const HarnessOptions& options) {
  SweepOptions sweep;
  sweep.threads = options.threads;
  sweep.progress = true;
  return sweep;
}

int finish_harness(const stats::BenchReport& input,
                   const HarnessOptions& options) {
  stats::BenchReport report = input;
  // Engine throughput profile: host wall-clock events/sec across the
  // whole run. Lives under the top-level "engine" object and "wall_"
  // names, which the comparator never visits (machine-dependent).
  double total_events = 0.0;
  for (const stats::BenchPoint& point : report.points) {
    const auto it = point.counters.find("events");
    if (it != point.counters.end()) {
      total_events += static_cast<double>(it->second);
    }
  }
  if (total_events > 0.0 && report.wall_ms > 0.0) {
    report.engine.emplace_back("wall_events_total", total_events);
    report.engine.emplace_back("wall_events_per_sec",
                               total_events / (report.wall_ms / 1000.0));
  }
  // Allocation profile (zero-alloc discipline, measured): present only in
  // binaries that link the counting allocator. Process-lifetime counts,
  // so the per-event figure includes setup — an upper bound, comparable
  // run to run on the same binary, and like all wall_* fields never part
  // of baseline comparisons.
  const double total_allocs =
      static_cast<double>(bench_allocation_count());
  if (total_allocs > 0.0 && total_events > 0.0) {
    report.engine.emplace_back("wall_allocs_total", total_allocs);
    report.engine.emplace_back("wall_allocs_per_event",
                               total_allocs / total_events);
  }
  if (!options.json_out.empty()) {
    const std::string error = report.write_file(options.json_out);
    if (!error.empty()) {
      std::fprintf(stderr, "json-out: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu points)\n", options.json_out.c_str(),
                 report.points.size());
  }
  if (!options.baseline.empty()) {
    std::string error;
    const auto baseline = stats::load_report(options.baseline, &error);
    if (!baseline) {
      std::fprintf(stderr, "baseline: %s\n", error.c_str());
      return 2;
    }
    stats::CompareOptions compare;
    compare.default_tolerance = options.tolerance;
    const stats::CompareOutcome outcome =
        stats::compare_reports(*baseline, report.to_json(), compare);
    for (const std::string& failure : outcome.failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::printf("baseline %s: %zu comparisons, %zu failures — %s\n",
                options.baseline.c_str(), outcome.compared,
                outcome.failures.size(), outcome.ok ? "OK" : "REGRESSION");
    if (!outcome.ok) return 1;
  }
  return 0;
}

PointMetrics elibrary_point_metrics(const ElibraryExperimentResult& result) {
  PointMetrics metrics;
  const auto add_workload = [&metrics](const std::string& prefix,
                                       const WorkloadSummary& summary) {
    metrics.scalars[prefix + "_p50_ms"] = summary.p50_ms;
    metrics.scalars[prefix + "_p90_ms"] = summary.p90_ms;
    metrics.scalars[prefix + "_p99_ms"] = summary.p99_ms;
    metrics.scalars[prefix + "_mean_ms"] = summary.mean_ms;
    metrics.scalars[prefix + "_rps"] = summary.achieved_rps;
    const double total =
        static_cast<double>(summary.completed + summary.errors);
    metrics.scalars[prefix + "_success_rate"] =
        total > 0 ? static_cast<double>(summary.completed) / total : 1.0;
    metrics.counters[prefix + "_completed"] = summary.completed;
    metrics.counters[prefix + "_errors"] = summary.errors;
  };
  add_workload("ls", result.ls);
  add_workload("li", result.li);
  metrics.scalars["bottleneck_utilization"] = result.bottleneck_utilization;
  metrics.counters["bottleneck_drops"] = result.bottleneck_drops;
  metrics.counters["events"] = result.events_executed;
  // Scheduler profile. Deterministic (pure functions of the config, like
  // every other counter here), so they are safe in compared baselines and
  // double as determinism witnesses for the event-loop internals.
  const sim::LoopStats& loop = result.loop_stats;
  metrics.counters["engine_scheduled"] = loop.scheduled;
  metrics.counters["engine_cancelled"] = loop.cancelled;
  metrics.counters["engine_wheel_pushes"] = loop.wheel_pushes;
  metrics.counters["engine_heap_pushes"] = loop.heap_pushes;
  metrics.counters["engine_due_merges"] = loop.due_merges;
  metrics.counters["engine_task_heap_allocs"] = loop.task_heap_allocs;
  metrics.counters["engine_max_queue_depth"] = loop.max_queue_depth;
  metrics.histograms["ls_latency_ns"] = result.ls_latency;
  metrics.histograms["li_latency_ns"] = result.li_latency;
  metrics.snapshot = result.metrics;
  return metrics;
}

PointMetrics overload_point_metrics(const OverloadExperimentResult& result) {
  PointMetrics metrics;
  const auto add_workload = [&metrics](const std::string& prefix,
                                       const WorkloadSummary& summary) {
    metrics.scalars[prefix + "_achieved_rps"] = summary.achieved_rps;
    metrics.scalars[prefix + "_p50_ms"] = summary.p50_ms;
    metrics.scalars[prefix + "_p90_ms"] = summary.p90_ms;
    metrics.scalars[prefix + "_p99_ms"] = summary.p99_ms;
    metrics.scalars[prefix + "_mean_ms"] = summary.mean_ms;
    metrics.counters[prefix + "_completed"] = summary.completed;
    metrics.counters[prefix + "_errors"] = summary.errors;
  };
  add_workload("ls", result.ls);
  add_workload("li", result.li);
  metrics.counters["ls_shed"] = result.ls_shed;
  metrics.counters["li_shed"] = result.li_shed;
  metrics.counters["default_shed"] = result.default_shed;
  metrics.counters["shed_queue_full"] = result.shed_queue_full;
  metrics.counters["shed_deadline"] = result.shed_deadline;
  metrics.counters["shed_preempted"] = result.shed_preempted;
  metrics.counters["admission_accepted"] = result.admission_accepted;
  metrics.counters["admission_queued"] = result.admission_queued;
  metrics.counters["upstream_retries"] = result.upstream_retries;
  metrics.counters["retries_suppressed_by_overload"] =
      result.retries_suppressed_by_overload;
  metrics.counters["timeouts"] = result.timeouts;
  metrics.counters["events"] = result.events_executed;
  metrics.histograms["ls_latency_ms"] = result.ls_latency;
  metrics.histograms["li_latency_ms"] = result.li_latency;
  metrics.snapshot = result.metrics;
  return metrics;
}

PointMetrics cp_point_metrics(const CpChaosExperimentResult& result) {
  PointMetrics metrics;
  const auto add_phase = [&metrics](const std::string& prefix,
                                    const PhaseSummary& phase) {
    metrics.scalars[prefix + "_goodput_rps"] = phase.goodput_rps;
    metrics.scalars[prefix + "_success_rate"] = phase.success_rate;
    metrics.scalars[prefix + "_p50_ms"] = phase.p50_ms;
    metrics.scalars[prefix + "_p99_ms"] = phase.p99_ms;
    metrics.counters[prefix + "_scheduled"] = phase.scheduled;
    metrics.counters[prefix + "_completed"] = phase.completed;
    metrics.counters[prefix + "_errors"] = phase.errors;
  };
  add_phase("before", result.before);
  add_phase("during", result.during);
  add_phase("after", result.after);
  metrics.scalars["ls_p99_ms"] = result.ls.p99_ms;
  metrics.scalars["li_p99_ms"] = result.li.p99_ms;
  metrics.scalars["reconverge_ms"] = result.reconverge_ms;
  metrics.scalars["max_staleness_ms"] = result.max_staleness_ms;
  metrics.counters["ls_completed"] = result.ls.completed;
  metrics.counters["ls_errors"] = result.ls.errors;
  metrics.counters["li_completed"] = result.li.completed;
  metrics.counters["li_errors"] = result.li.errors;
  metrics.counters["push_attempts"] = result.push_attempts;
  metrics.counters["push_acks"] = result.push_acks;
  metrics.counters["push_nacks"] = result.push_nacks;
  metrics.counters["push_retries"] = result.push_retries;
  metrics.counters["push_skipped_noop"] = result.push_skipped_noop;
  metrics.counters["push_dropped"] = result.push_dropped;
  metrics.counters["config_rollbacks"] = result.config_rollbacks;
  metrics.counters["cert_rotations"] = result.cert_rotations;
  metrics.counters["final_epoch"] = result.final_epoch;
  metrics.counters["stale_sidecars_at_end"] = result.stale_sidecars_at_end;
  metrics.counters["converged"] = result.converged ? 1 : 0;
  metrics.counters["health_evictions"] = result.health_evictions;
  metrics.counters["health_readmissions"] = result.health_readmissions;
  metrics.counters["flap_damps"] = result.flap_damps;
  metrics.counters["upstream_retries"] = result.upstream_retries;
  metrics.counters["retries_denied_by_budget"] =
      result.retries_denied_by_budget;
  metrics.counters["panic_picks"] = result.panic_picks;
  metrics.counters["timeouts"] = result.timeouts;
  metrics.counters["upstream_failures"] = result.upstream_failures;
  metrics.counters["faults_executed"] = result.fault_log.size();
  metrics.counters["events"] = result.events_executed;
  metrics.snapshot = result.metrics;
  return metrics;
}

PointMetrics mtls_point_metrics(const MtlsExperimentResult& result) {
  PointMetrics metrics;
  const auto add_workload = [&metrics](const std::string& prefix,
                                       const WorkloadSummary& summary) {
    metrics.scalars[prefix + "_p50_ms"] = summary.p50_ms;
    metrics.scalars[prefix + "_p90_ms"] = summary.p90_ms;
    metrics.scalars[prefix + "_p99_ms"] = summary.p99_ms;
    metrics.scalars[prefix + "_mean_ms"] = summary.mean_ms;
    metrics.scalars[prefix + "_rps"] = summary.achieved_rps;
    metrics.counters[prefix + "_completed"] = summary.completed;
    metrics.counters[prefix + "_errors"] = summary.errors;
  };
  add_workload("ls", result.ls);
  add_workload("li", result.li);
  const auto add_phase = [&metrics](const std::string& prefix,
                                    const PhaseSummary& phase) {
    metrics.scalars[prefix + "_goodput_rps"] = phase.goodput_rps;
    metrics.scalars[prefix + "_success_rate"] = phase.success_rate;
    metrics.scalars[prefix + "_p50_ms"] = phase.p50_ms;
    metrics.scalars[prefix + "_p99_ms"] = phase.p99_ms;
    metrics.counters[prefix + "_scheduled"] = phase.scheduled;
    metrics.counters[prefix + "_completed"] = phase.completed;
    metrics.counters[prefix + "_errors"] = phase.errors;
  };
  add_phase("pre", result.pre);
  add_phase("post", result.post);
  metrics.scalars["bottleneck_utilization"] = result.bottleneck_utilization;
  metrics.counters["bottleneck_drops"] = result.bottleneck_drops;
  metrics.counters["tls_handshakes_full"] = result.handshakes_full;
  metrics.counters["tls_handshakes_resumed"] = result.handshakes_resumed;
  metrics.counters["tls_handshake_failures"] = result.handshake_failures;
  metrics.counters["tls_tickets_issued"] = result.tickets_issued;
  metrics.counters["tls_resumptions_rejected"] = result.resumptions_rejected;
  metrics.counters["tls_session_cache_evictions"] =
      result.session_cache_evictions;
  metrics.counters["tls_records_encrypted"] = result.records_encrypted;
  metrics.counters["tls_records_decrypted"] = result.records_decrypted;
  metrics.counters["tls_bytes_encrypted"] = result.bytes_encrypted;
  metrics.counters["tls_bytes_decrypted"] = result.bytes_decrypted;
  metrics.counters["tls_alerts"] = result.tls_alerts;
  metrics.counters["cert_rotations"] = result.cert_rotations;
  metrics.counters["upstream_retries"] = result.upstream_retries;
  metrics.counters["timeouts"] = result.timeouts;
  metrics.counters["upstream_failures"] = result.upstream_failures;
  metrics.counters["downstream_aborts"] = result.downstream_aborts;
  metrics.counters["faults_executed"] = result.fault_log.size();
  metrics.counters["events"] = result.events_executed;
  metrics.snapshot = result.metrics;
  return metrics;
}

PointMetrics parsim_point_metrics(const ParsimExperimentResult& result) {
  PointMetrics metrics;
  // Workload surface: invariant across shard AND thread counts (the
  // ShardInvariance property test compares exactly the non-engine_* keys
  // plus the snapshot).
  metrics.counters["requests_generated"] = result.requests_generated;
  metrics.counters["leaf_completions"] = result.leaf_completions;
  metrics.counters["service_visits"] = result.service_visits;
  // The e2e histogram is recorded in MICROSECONDS (see parsim_experiment).
  metrics.scalars["e2e_p50_ms"] =
      static_cast<double>(result.e2e_latency.percentile(50.0)) / 1000.0;
  metrics.scalars["e2e_p99_ms"] =
      static_cast<double>(result.e2e_latency.percentile(99.0)) / 1000.0;
  metrics.scalars["e2e_mean_ms"] = result.e2e_latency.mean() / 1000.0;
  metrics.histograms["e2e_latency_us"] = result.e2e_latency;
  metrics.snapshot = result.metrics;
  metrics.counters["services"] = static_cast<std::uint64_t>(result.services);
  metrics.counters["edges"] = static_cast<std::uint64_t>(result.edges);
  // Engine surface: thread-invariant for a fixed shard count, shard-
  // DEPENDENT otherwise — everything below is named engine_* (or is the
  // harness's "events" throughput counter) so shard comparisons can
  // exclude it wholesale.
  metrics.counters["events"] = result.events_executed;
  metrics.counters["engine_cut_edges"] =
      static_cast<std::uint64_t>(result.cut_edges);
  metrics.counters["engine_lookahead_ns"] =
      static_cast<std::uint64_t>(result.lookahead);
  metrics.counters["engine_epochs"] = result.engine.epochs;
  metrics.counters["engine_messages"] = result.engine.messages;
  metrics.counters["engine_mailbox_overflows"] =
      result.engine.mailbox_overflows;
  const sim::LoopStats& loop = result.loop_stats;
  metrics.counters["engine_scheduled"] = loop.scheduled;
  metrics.counters["engine_cancelled"] = loop.cancelled;
  metrics.counters["engine_wheel_pushes"] = loop.wheel_pushes;
  metrics.counters["engine_heap_pushes"] = loop.heap_pushes;
  metrics.counters["engine_due_merges"] = loop.due_merges;
  metrics.counters["engine_task_heap_allocs"] = loop.task_heap_allocs;
  metrics.counters["engine_max_queue_depth"] = loop.max_queue_depth;
  return metrics;
}

PointMetrics meshscale_point_metrics(const MeshscaleExperimentResult& result) {
  PointMetrics metrics;
  // Workload surface.
  metrics.counters["requests_generated"] = result.requests_generated;
  metrics.counters["responses"] = result.responses;
  metrics.counters["successes"] = result.successes;
  metrics.counters["failures"] = result.failures;
  metrics.scalars["success_rate"] =
      result.responses > 0 ? static_cast<double>(result.successes) /
                                 static_cast<double>(result.responses)
                           : 0.0;
  // The e2e histogram is recorded in MICROSECONDS (see the experiment).
  metrics.scalars["e2e_p50_ms"] =
      static_cast<double>(result.e2e_latency.percentile(50.0)) / 1000.0;
  metrics.scalars["e2e_p99_ms"] =
      static_cast<double>(result.e2e_latency.percentile(99.0)) / 1000.0;
  metrics.scalars["e2e_mean_ms"] = result.e2e_latency.mean() / 1000.0;
  metrics.histograms["e2e_latency_us"] = result.e2e_latency;
  metrics.snapshot = result.metrics;
  // Control-plane push-channel surface.
  metrics.counters["cp_epochs"] = result.epochs;
  metrics.counters["cp_pushes"] = result.cp_pushes;
  metrics.counters["cp_full_pushes"] = result.bytes.full_pushes;
  metrics.counters["cp_delta_pushes"] = result.bytes.delta_pushes;
  metrics.counters["cp_delta_fallbacks"] = result.bytes.delta_fallbacks;
  metrics.counters["cp_full_push_bytes"] = result.bytes.full_bytes;
  metrics.counters["cp_delta_push_bytes"] = result.bytes.delta_bytes;
  metrics.counters["cp_churn_push_bytes"] =
      result.churn_bytes.full_bytes + result.churn_bytes.delta_bytes;
  metrics.counters["cp_churn_pushes"] =
      result.churn_bytes.full_pushes + result.churn_bytes.delta_pushes;
  metrics.counters["cp_converged"] = result.converged ? 1 : 0;
  metrics.scalars["churn_convergence_ms"] =
      sim::to_milliseconds(result.churn_convergence);
  // Per-sidecar endpoint-table sizes (what scoping/subsetting bound).
  metrics.counters["sidecars"] = result.sidecars;
  metrics.counters["endpoint_entries"] = result.endpoint_entries;
  metrics.counters["max_endpoints_per_sidecar"] =
      result.max_endpoints_per_sidecar;
  metrics.scalars["mean_endpoints_per_sidecar"] =
      result.sidecars > 0 ? static_cast<double>(result.endpoint_entries) /
                                static_cast<double>(result.sidecars)
                          : 0.0;
  // Shape + engine surface (thread-invariant for a fixed cell count).
  metrics.counters["services"] = static_cast<std::uint64_t>(result.services);
  metrics.counters["cells"] = static_cast<std::uint64_t>(result.cells);
  metrics.counters["events"] = result.events_executed;
  metrics.counters["engine_epochs"] = result.engine.epochs;
  metrics.counters["engine_messages"] = result.engine.messages;
  return metrics;
}

}  // namespace meshnet::workload
