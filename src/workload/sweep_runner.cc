#include "workload/sweep_runner.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/thread_pool.h"

namespace meshnet::workload {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

void SweepRunner::add(SweepPoint point) { points_.push_back(std::move(point)); }

void SweepRunner::add(
    std::vector<std::pair<std::string, std::string>> params,
    std::function<PointMetrics()> run) {
  SweepPoint point;
  for (const auto& [key, value] : params) {
    if (!point.id.empty()) point.id += '/';
    point.id += key + '=' + value;
  }
  point.params = std::move(params);
  point.run = std::move(run);
  add(std::move(point));
}

SweepResult SweepRunner::run() {
  const auto sweep_start = std::chrono::steady_clock::now();
  SweepResult result;
  result.points.resize(points_.size());

  util::ThreadPool pool(options_.threads);
  result.threads_used = pool.thread_count();

  std::mutex progress_mutex;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    pool.submit([this, i, &result, &progress_mutex, &completed] {
      const SweepPoint& point = points_[i];
      const auto point_start = std::chrono::steady_clock::now();
      SweepPointResult& slot = result.points[i];  // distinct slot per point
      slot.id = point.id;
      slot.params = point.params;
      slot.metrics = point.run();
      slot.wall_ms = elapsed_ms(point_start);
      if (options_.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        std::fprintf(stderr, "  [%zu/%zu] %s  (%.0f ms)\n", completed,
                     points_.size(), point.id.c_str(), slot.wall_ms);
      }
    });
  }
  pool.wait_idle();

  // Aggregate strictly in input order so merges are deterministic.
  for (const SweepPointResult& point : result.points) {
    for (const auto& [name, histogram] : point.metrics.histograms) {
      auto [it, inserted] = result.merged_histograms.try_emplace(
          name, histogram.precision_bits());
      it->second.merge(histogram);
    }
    for (const auto& [name, value] : point.metrics.counters) {
      result.merged_counters[name] += value;
    }
    result.merged_snapshot.merge(point.metrics.snapshot);
    result.point_wall_ms.record(point.wall_ms);
  }
  result.wall_ms = elapsed_ms(sweep_start);
  return result;
}

stats::BenchReport make_bench_report(
    std::string experiment,
    std::vector<std::pair<std::string, std::string>> config,
    const SweepResult& sweep) {
  stats::BenchReport report;
  report.experiment = std::move(experiment);
  report.config = std::move(config);
  report.threads = sweep.threads_used;
  report.wall_ms = sweep.wall_ms;
  report.points.reserve(sweep.points.size());
  for (const SweepPointResult& point : sweep.points) {
    stats::BenchPoint out;
    out.id = point.id;
    out.params = point.params;
    out.scalars = point.metrics.scalars;
    out.counters = point.metrics.counters;
    out.histograms = point.metrics.histograms;
    out.wall_ms = point.wall_ms;
    report.points.push_back(std::move(out));
  }
  if (!sweep.merged_snapshot.empty()) {
    report.metrics = sweep.merged_snapshot.to_json();
  }
  return report;
}

}  // namespace meshnet::workload
