#pragma once

// The OVERLOAD experiment: compute saturation on the e-library topology.
//
// The paper's case study (§4.3) protects LS traffic at a *bandwidth*
// bottleneck; this experiment drives the complementary failure mode —
// offered load past the compute knee of the service tree — and measures
// whether priority-aware admission control at the sidecars keeps the
// latency-sensitive workload within its uncontended latency while the
// shedding falls on the latency-insensitive analytics traffic.
//
// Setup: the e-library app tuned so the frontend's worker pool (not the
// ratings vNIC) is the bottleneck. LS load is held fixed at a fraction
// of capacity; LI load fills the remainder of `load_factor * capacity`.
// Sweeping load_factor past 1.0 with admission on/off produces the
// collapse-vs-controlled comparison; BENCH_overload.json commits it.

#include <cstdint>

#include "app/elibrary.h"
#include "core/cross_layer.h"
#include "obs/metric_registry.h"
#include "sim/loop_stats.h"
#include "stats/histogram.h"
#include "workload/elibrary_experiment.h"
#include "workload/generator.h"

namespace meshnet::workload {

struct OverloadExperimentConfig {
  /// Estimated saturation throughput of the tuned topology (the knee).
  double capacity_rps = 90.0;
  /// Offered LS load, held fixed across the sweep (well under capacity —
  /// the protected workload is not the one causing the overload).
  double ls_rps = 10.0;
  /// Total offered load = load_factor * capacity_rps; LI fills the
  /// difference. 2.0 is the acceptance point ("2x offered overload").
  double load_factor = 2.0;
  /// Toggles the admission subsystem (the experiment's two arms).
  bool admission = true;

  sim::Duration warmup = sim::seconds(3);
  sim::Duration duration = sim::seconds(10);  ///< measured window
  sim::Duration cooldown = sim::seconds(2);
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::kUniformRandom;

  core::CrossLayerConfig cross_layer_config =
      ElibraryExperimentConfig::default_cross_layer_config();

  app::ElibraryOptions app = default_overload_app();

  double li_rps() const noexcept {
    const double total = load_factor * capacity_rps;
    return total > ls_rps ? total - ls_rps : 0.0;
  }

  /// E-library options tuned for compute saturation: small payloads (the
  /// bottleneck vNIC never saturates), 20 ms think time, 7 app workers
  /// per service, a 2 s request deadline, and the admission defaults
  /// (adaptive limit seeded at 7, four slots reserved for LS).
  static app::ElibraryOptions default_overload_app();
};

struct OverloadExperimentResult {
  WorkloadSummary ls;
  WorkloadSummary li;
  stats::LogHistogram ls_latency;
  stats::LogHistogram li_latency;

  /// admission_* counters summed over all sidecars, split by the class
  /// the shed request carried.
  std::uint64_t ls_shed = 0;
  std::uint64_t li_shed = 0;
  std::uint64_t default_shed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_preempted = 0;
  std::uint64_t admission_accepted = 0;
  std::uint64_t admission_queued = 0;

  std::uint64_t upstream_retries = 0;
  std::uint64_t retries_suppressed_by_overload = 0;
  std::uint64_t timeouts = 0;

  std::uint64_t events_executed = 0;
  sim::LoopStats loop_stats;
  /// Unified meshnet-metrics-v1 snapshot (admission_* series included).
  obs::MetricsSnapshot metrics;
};

OverloadExperimentResult run_overload_experiment(
    const OverloadExperimentConfig& config);

}  // namespace meshnet::workload
